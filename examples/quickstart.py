#!/usr/bin/env python
"""Quickstart: schedule one MoE layer with FSMoE on a simulated cluster.

Walks the full FSMoE pipeline from the paper in ~40 lines:

1. describe the cluster (paper Testbed B) and the standard parallel layout;
2. run the online profiler and fit the alpha-beta performance models;
3. describe an MoE transformer layer;
4. let Algorithm 1 pick per-phase pipeline degrees;
5. simulate every training system and compare iteration times.

Run:  python examples/quickstart.py
"""

from repro import (
    FSMoE,
    MoELayerSpec,
    Tutel,
    DeepSpeedMoE,
    find_optimal_pipeline_degree,
    profile_cluster,
    profile_layer,
    standard_layout,
    testbed_b,
)

# 1. the cluster: 8 nodes x 4 GPUs, 100 Gb/s InfiniBand (paper Table 3).
cluster = testbed_b()
parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
print(f"cluster: {cluster.name} ({cluster.total_gpus} GPUs), "
      f"layout: MP=ESP={parallel.n_mp}, EP=DP={parallel.n_ep}")

# 2. online profiling (paper section 3.2): microbenchmark + least squares.
profiled = profile_cluster(cluster, parallel, noise=0.01, seed=0)
print("fitted models (r^2):",
      {name: round(r2, 5) for name, r2 in profiled.r_squared.items()})
models = profiled.models

# 3. one transformer-MoE layer (GShard routing, top-2, f=1.2).
spec = MoELayerSpec(
    batch_size=2,
    seq_len=1024,
    embed_dim=2048,
    hidden_scale=4,
    num_experts=parallel.n_ep,
    top_k=2,
    capacity_factor=1.2,
    num_heads=16,
)
profile = profile_layer(spec, parallel, models)

# 4. Algorithm 1: optimal pipeline degree per phase.
fw = find_optimal_pipeline_degree(profile.ctx_fw)
bw = find_optimal_pipeline_degree(profile.ctx_bw)
print(f"Algorithm 1: forward r={fw.degree} ({fw.case.name}, "
      f"{fw.time_ms:.2f} ms), backward r={bw.degree} ({bw.case.name}, "
      f"{bw.time_ms:.2f} ms)")

# 5. full-iteration comparison (2 identical layers).
profiles = [profile, profile]
for system in (DeepSpeedMoE(), Tutel(), FSMoE()):
    t = system.iteration_time_ms(profiles, models)
    print(f"{system.name:>8}: {t:8.2f} ms / iteration")

t_tutel = Tutel().iteration_time_ms(profiles, models)
t_fsmoe = FSMoE().iteration_time_ms(profiles, models)
print(f"\nFSMoE speedup over Tutel: {t_tutel / t_fsmoe:.2f}x "
      f"(paper Table 5 average: 1.22x on this testbed)")
