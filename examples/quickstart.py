#!/usr/bin/env python
"""Quickstart: schedule one MoE layer with FSMoE on a simulated cluster.

Walks the full FSMoE pipeline from the paper in ~40 lines, through the
library's front door (the Workspace session API):

1. open a Workspace and name the cluster through the registry;
2. the online profiler runs once behind the workspace's persistent cache;
3. describe an MoE transformer layer;
4. let Algorithm 1 pick per-phase pipeline degrees;
5. plan + simulate every training system and compare iteration times
   (systems are registry names -- no imports);
6. the winning plan is already persisted as JSON in the plan cache and
   replays bit-identically.

Run:  python examples/quickstart.py
"""

import tempfile

from repro import (
    IterationPlan,
    MoELayerSpec,
    Workspace,
    find_optimal_pipeline_degree,
    get_cluster,
    get_system,
)

with tempfile.TemporaryDirectory(prefix="repro-quickstart-") as root:
    # 1. the cluster: 8 nodes x 4 GPUs, 100 Gb/s InfiniBand (paper Table 3),
    # and a session rooted on disk.  Reopening the same root later would
    # skip straight to the cached profiles and plans.
    cluster = get_cluster("B")
    workspace = Workspace(root)

    # 2. the profiling front-end (paper section 3.2: microbenchmark + least
    # squares) runs once, behind the workspace's store.
    compiler = workspace.compiler(cluster, noise=0.01)
    parallel = compiler.parallel
    print(f"cluster: {cluster.name} ({cluster.total_gpus} GPUs), "
          f"layout: MP=ESP={parallel.n_mp}, EP=DP={parallel.n_ep}")
    print("fitted models (r^2):",
          {name: round(r2, 5) for name, r2 in compiler.fit_quality.items()})

    # 3. one transformer-MoE layer (GShard routing, top-2, f=1.2).
    spec = MoELayerSpec(
        batch_size=2,
        seq_len=1024,
        embed_dim=2048,
        hidden_scale=4,
        num_experts=parallel.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=16,
    )
    profile = compiler.layer_profile(spec)

    # 4. Algorithm 1: optimal pipeline degree per phase.
    fw = find_optimal_pipeline_degree(profile.ctx_fw)
    bw = find_optimal_pipeline_degree(profile.ctx_bw)
    print(f"Algorithm 1: forward r={fw.degree} ({fw.case.name}, "
          f"{fw.time_ms:.2f} ms), backward r={bw.degree} ({bw.case.name}, "
          f"{bw.time_ms:.2f} ms)")

    # 5. full-iteration comparison (2 identical layers; heterogeneous
    # stacks -- a list of different specs -- work exactly the same way).
    # Systems come from the registry by name.
    stack = [spec, spec]
    times = {}
    for name in ("dsmoe", "tutel", "fsmoe"):
        system = get_system(name)
        plan = workspace.plan(stack, system, cluster, noise=0.01)
        times[system.name] = plan.makespan_ms()
        print(f"{system.name:>8}: {times[system.name]:8.2f} ms / iteration")

    print(f"\nFSMoE speedup over Tutel: "
          f"{times['Tutel'] / times['FSMoE']:.2f}x "
          f"(paper Table 5 average: 1.22x on this testbed)")

    # 6. plans are plain data on disk: reload, replay -- no re-planning.
    plan = workspace.plan(stack, get_system("fsmoe"), cluster, noise=0.01)
    replayed = IterationPlan.from_json(plan.to_json())
    assert replayed.makespan_ms() == plan.makespan_ms()
    stats = workspace.stats
    print(f"plan JSON round-trip OK ({len(plan.to_json())} bytes, "
          f"degrees {plan.degrees})")
    print(f"session caches: {stats.profiles.misses} profiles fitted, "
          f"{stats.plan_misses} plans compiled, "
          f"{stats.plan_hits} plan cache hits")
