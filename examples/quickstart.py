#!/usr/bin/env python
"""Quickstart: schedule one MoE layer with FSMoE on a simulated cluster.

Walks the full FSMoE pipeline from the paper in ~40 lines:

1. describe the cluster (paper Testbed B) and the standard parallel layout;
2. build a PlanCompiler: the online profiler runs once behind a cache;
3. describe an MoE transformer layer;
4. let Algorithm 1 pick per-phase pipeline degrees;
5. compile + simulate every training system and compare iteration times;
6. persist the winning plan as JSON (it replays bit-identically).

Run:  python examples/quickstart.py
"""

from repro import (
    DeepSpeedMoE,
    FSMoE,
    IterationPlan,
    MoELayerSpec,
    PlanCompiler,
    Tutel,
    find_optimal_pipeline_degree,
    testbed_b,
)

# 1. the cluster: 8 nodes x 4 GPUs, 100 Gb/s InfiniBand (paper Table 3).
cluster = testbed_b()

# 2. the plan compiler: profiles the deployment once (paper section 3.2:
# microbenchmark + least squares), then serves everything from its store.
compiler = PlanCompiler(cluster, noise=0.01, seed=0)
parallel = compiler.parallel
print(f"cluster: {cluster.name} ({cluster.total_gpus} GPUs), "
      f"layout: MP=ESP={parallel.n_mp}, EP=DP={parallel.n_ep}")
print("fitted models (r^2):",
      {name: round(r2, 5) for name, r2 in compiler.fit_quality.items()})

# 3. one transformer-MoE layer (GShard routing, top-2, f=1.2).
spec = MoELayerSpec(
    batch_size=2,
    seq_len=1024,
    embed_dim=2048,
    hidden_scale=4,
    num_experts=parallel.n_ep,
    top_k=2,
    capacity_factor=1.2,
    num_heads=16,
)
profile = compiler.layer_profile(spec)

# 4. Algorithm 1: optimal pipeline degree per phase.
fw = find_optimal_pipeline_degree(profile.ctx_fw)
bw = find_optimal_pipeline_degree(profile.ctx_bw)
print(f"Algorithm 1: forward r={fw.degree} ({fw.case.name}, "
      f"{fw.time_ms:.2f} ms), backward r={bw.degree} ({bw.case.name}, "
      f"{bw.time_ms:.2f} ms)")

# 5. full-iteration comparison (2 identical layers; heterogeneous stacks
# -- a list of different specs -- work exactly the same way).
stack = [spec, spec]
times = {}
for system in (DeepSpeedMoE(), Tutel(), FSMoE()):
    times[system.name] = compiler.iteration_time_ms(stack, system)
    print(f"{system.name:>8}: {times[system.name]:8.2f} ms / iteration")

print(f"\nFSMoE speedup over Tutel: {times['Tutel'] / times['FSMoE']:.2f}x "
      f"(paper Table 5 average: 1.22x on this testbed)")

# 6. plans are plain data: serialize, reload, replay -- no re-planning.
plan = compiler.compile(stack, FSMoE())
replayed = IterationPlan.from_json(plan.to_json())
assert replayed.makespan_ms() == plan.makespan_ms()
print(f"plan JSON round-trip OK ({len(plan.to_json())} bytes, "
      f"degrees {plan.degrees})")
print(f"profile store: {compiler.store.stats}")
