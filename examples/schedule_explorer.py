#!/usr/bin/env python
"""Schedule explorer: render the paper's Fig. 3 for any configuration.

Builds one generalized layer from CLI-style knobs, runs every training
system's schedule through the discrete-event executor, and prints the
ASCII Gantt chart of each backward pass plus a speedup summary -- a
visual version of the paper's Fig. 3a-d.

Run:  python examples/schedule_explorer.py [--testbed A|B] [--seq-len N]
"""

import argparse

from repro import (
    MoELayerSpec,
    PlanCompiler,
    testbed_a,
    testbed_b,
)
from repro.systems import (
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--testbed", choices=("A", "B"), default="B")
    parser.add_argument("--seq-len", type=int, default=1024)
    parser.add_argument("--embed-dim", type=int, default=2048)
    parser.add_argument("--batch-size", type=int, default=2)
    parser.add_argument("--hidden-scale", type=float, default=3.0)
    parser.add_argument("--capacity-factor", type=float, default=1.2)
    parser.add_argument("--width", type=int, default=100)
    args = parser.parse_args()

    cluster = testbed_a() if args.testbed == "A" else testbed_b()
    compiler = PlanCompiler(cluster)
    parallel = compiler.parallel

    spec = MoELayerSpec(
        batch_size=args.batch_size,
        seq_len=args.seq_len,
        embed_dim=args.embed_dim,
        hidden_scale=args.hidden_scale,
        num_experts=parallel.n_ep,
        top_k=2,
        capacity_factor=args.capacity_factor,
        num_heads=16,
    )
    stack = [spec, spec]

    systems = [
        DeepSpeedMoE(), Tutel(), TutelImproved(), PipeMoELina(),
        FSMoENoIIO(), FSMoE(),
    ]
    print(f"# {cluster.name}, B={spec.batch_size} L={spec.seq_len} "
          f"M={spec.embed_dim} H={spec.hidden_dim} E={spec.num_experts} "
          f"f={spec.capacity_factor}")
    print("# glyphs: D dispatch, C combine, G allgather, S reducescatter, "
          "E experts, R grad-allreduce, o others\n")

    baseline = None
    for system in systems:
        timeline = compiler.simulate(stack, system, phase="backward")
        if baseline is None:
            baseline = timeline.makespan_ms
        speedup = baseline / timeline.makespan_ms
        print(f"--- {system.name}: backward {timeline.makespan_ms:.2f} ms "
              f"({speedup:.2f}x vs DS-MoE) ---")
        print(timeline.gantt_ascii(width=args.width))
        print()


if __name__ == "__main__":
    main()
