#!/usr/bin/env python
"""Flexibility demo: a custom gate, a custom expert, and paired hooks.

Reproduces the paper's Listing 1/2 workflow: extend the abstract
interfaces (GateBase / ExpertBase / CallbackBase), drop the pieces into
MOELayer, and verify the layer still runs -- including a compression /
decompression hook pair around the dispatch, the paper's §3.1 example of
non-invasive modification.

Run:  python examples/custom_gate_and_hooks.py
"""

import numpy as np

from repro.moe import MOELayer
from repro.moe.gates import capacity_assign
from repro.moe.interfaces import Assignment, CallbackBase, ExpertBase, GateBase
from repro.moe.functional import softmax, top_k


class HashGate(GateBase):
    """A learned-parameter-free gate: route by a hash of the token.

    Deterministic hash routing (as studied in "Hash Layers" follow-ups to
    BASE) is trivial to express against the GateBase interface -- exactly
    the extensibility argument of the paper.
    """

    def assign(self, x: np.ndarray, capacity: int) -> Assignment:
        s = x.shape[0]
        # hash = bucketed sum of the token embedding
        buckets = (np.abs(x).sum(axis=1) * 1000).astype(np.int64)
        first = buckets % self.num_experts
        second = (buckets // 7) % self.num_experts
        indices = np.stack([first, second], axis=1)[:, : self.top_k]
        weights = np.full_like(indices, 1.0 / self.top_k, dtype=float)
        token_ids, slot_weights, dropped, _ = capacity_assign(
            indices, weights, self.num_experts, capacity
        )
        scores = softmax(np.zeros((s, self.num_experts)), axis=-1)
        return Assignment(
            token_ids=token_ids,
            weights=slot_weights,
            scores=scores,
            aux_loss=0.0,
            dropped=dropped,
        )


class GatedLinearExpert(ExpertBase):
    """A minimal custom expert: one gated linear layer."""

    def __init__(self, embed_dim: int, seed: int = 0) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.params["w"] = rng.normal(0, embed_dim**-0.5,
                                      (embed_dim, embed_dim))
        self.zero_grad()
        self._cache = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        pre = x @ self.params["w"]
        self._cache = {"x": x, "pre": pre}
        return np.tanh(pre)

    def backward(self, dy: np.ndarray) -> np.ndarray:
        pre = self._cache["pre"]
        d_pre = dy * (1.0 - np.tanh(pre) ** 2)
        self.grads["w"] += self._cache["x"].T @ d_pre
        return d_pre @ self.params["w"].T


class QuantizeHooks(CallbackBase):
    """Paper §3.1's example: compress before dispatch, decompress after.

    Simulates int8 communication compression: the pair must be transparent
    up to quantization error.
    """

    def before_dispatch_hook(self, x, ctx):
        scale = np.abs(x).max() / 127.0 + 1e-12
        ctx.storage["scale"] = scale
        ctx.storage["bytes_saved"] = x.nbytes * 3 // 4
        return np.round(x / scale)  # int8-grid values

    def after_dispatch_hook(self, x, ctx):
        return x * ctx.storage["scale"]


def main() -> None:
    rng = np.random.default_rng(0)
    s, m, e = 256, 64, 8

    gate = HashGate(embed_dim=m, num_experts=e, top_k=2)
    experts = [GatedLinearExpert(m, seed=i) for i in range(e)]
    hooks = QuantizeHooks()
    layer = MOELayer(
        gate, experts, capacity_factor=1.5, callbacks=(hooks,),
        name="custom-moe",
    )

    x = rng.normal(size=(s, m))
    y = layer.forward(x)
    dx = layer.backward(np.ones_like(y))

    reference = MOELayer(
        HashGate(embed_dim=m, num_experts=e, top_k=2),
        [GatedLinearExpert(m, seed=i) for i in range(e)],
        capacity_factor=1.5,
    ).forward(x)
    err = float(np.abs(y - reference).max())

    print(f"custom MoE layer: input {x.shape} -> output {y.shape}")
    print(f"tokens dropped by hash routing: {int(layer._cache['assignment'].dropped.sum())}")
    print(f"gradient w.r.t. input: |dx| = {np.abs(dx).sum():.2f}")
    print(f"int8 hook pair max quantization error: {err:.4f} "
          f"(transparent up to quantization, as in paper §3.1)")
    print("custom gate + custom expert + hooks all ran through the "
          "unmodified MOELayer -- no core changes needed.")


if __name__ == "__main__":
    main()
