#!/usr/bin/env python
"""Capacity planning: how fast would Mixtral-7B train on each testbed?

A downstream-user scenario: given a model and a cluster, estimate the
iteration time under every training system, the benefit of FSMoE's
scheduling, and where the time goes (communication vs computation) --
the kind of what-if analysis the simulated substrate makes free.

Run:  python examples/mixtral_cluster_planning.py [workspace-dir]

Pass a directory to keep the workspace between runs: the second
invocation answers every what-if from the persistent caches.
"""

import sys
import tempfile

from repro import Workspace, standard_layout, testbed_a, testbed_b
from repro.bench import evaluate_model, format_table
from repro.models import MIXTRAL_7B, layer_op_breakdown, layer_spec_for
from repro.models.memory import estimate_memory, max_layers_that_fit
from repro.systems import DeepSpeedMoE, FSMoE, Tutel

def plan(workspace, cluster, seq_len: int, num_layers: int) -> None:
    store = workspace.store
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = store.models(cluster, parallel)

    spec = layer_spec_for(
        MIXTRAL_7B, batch_size=1, seq_len=seq_len, num_experts=parallel.n_ep
    )

    # memory check first -- the paper trims layer counts exactly this way.
    gpu_gib = cluster.node.gpu.memory_gib
    footprint = estimate_memory(spec, parallel, num_layers)
    limit = max_layers_that_fit(spec, parallel, gpu_gib)
    print(f"{cluster.name}: {num_layers} layers -> "
          f"{footprint.total_gib:.1f} GiB/GPU of {gpu_gib:.0f} GiB "
          f"({'fits' if footprint.fits(gpu_gib) else 'DOES NOT FIT'}; "
          f"max {limit} layers)")
    profile = store.layer_profile(spec, parallel, models)
    breakdown = layer_op_breakdown(profile, models, "backward")
    total = sum(breakdown.values())
    comm = (
        breakdown["AlltoAll"] + breakdown["AllGather"]
        + breakdown["ReduceScatter"] + breakdown["AllReduce"]
    )

    result = evaluate_model(
        MIXTRAL_7B, cluster, models,
        [DeepSpeedMoE(), Tutel(), FSMoE()],
        seq_len=seq_len, num_layers=num_layers, store=store,
    )
    tokens = spec.batch_size * seq_len * parallel.n_dp

    rows = []
    for name in ("DS-MoE", "Tutel", "FSMoE"):
        t = result.times_ms[name]
        rows.append([
            name,
            f"{t:.1f}",
            f"{result.speedup(name, 'DS-MoE'):.2f}x",
            f"{tokens / (t / 1000.0):,.0f}",
        ])
    print(format_table(
        ["system", "iter (ms)", "vs DS-MoE", "tokens/s"],
        rows,
        title=(
            f"{cluster.name}: Mixtral-7B ({num_layers} layers, L={seq_len})"
            f" -- backward comm share {100 * comm / total:.0f}%"
        ),
    ))
    print()


def main(workspace: Workspace) -> None:
    # One workspace for both testbeds: re-running a what-if against an
    # already-profiled deployment costs nothing -- and with an on-disk
    # root, neither does re-running the whole script.
    plan(workspace, testbed_a(), seq_len=1024, num_layers=7)
    plan(workspace, testbed_b(), seq_len=256, num_layers=7)
    workspace.save()
    stats = workspace.stats
    print(f"(workspace {workspace.root}: {stats.profiles.misses} profiles "
          f"fitted this run, {stats.profiles.hits} served from cache)")
    print("Reading: FSMoE's gains grow with the communication share; the "
          "simulator lets you answer 'is this cluster worth it?' before "
          "renting it.")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        main(Workspace(sys.argv[1]))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-planning-") as tmp:
            main(Workspace(tmp))
