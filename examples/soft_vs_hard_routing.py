#!/usr/bin/env python
"""Soft vs. hard routing: train both MoE flavours on the same toy task.

The paper's framework hosts both families (§3.1): hard top-k gates
(GShard and friends) that dispatch discrete tokens, and SoftMoE, which
sends every expert a convex mixture of all tokens and is therefore fully
differentiable.  This example trains both on a piecewise-nonlinear
regression task and reports the loss curves plus the routing statistics
that distinguish them.

Run:  python examples/soft_vs_hard_routing.py
"""

import numpy as np

from repro.moe import GShardGate, MOELayer, SimpleFFNExpert, SoftMoELayer

S, M, E, K, H = 128, 16, 4, 2, 32
STEPS = 40
LR = 0.3


def toy_task(rng):
    """Tokens from E clusters, each with its own nonlinear map."""
    centers = rng.normal(size=(E, M)) * 2.0
    maps = rng.normal(0, M**-0.5, (E, M, M))
    labels = rng.integers(0, E, size=S)
    x = centers[labels] + rng.normal(size=(S, M)) * 0.3
    y = np.einsum("sm,smn->sn", x, maps[labels])
    return x, np.tanh(y)


def sgd(params, grads, lr):
    for name, grad in grads.items():
        params[name] -= lr * grad


def train_hard(x, y, rng):
    gate = GShardGate(M, E, K, seed=1)
    experts = [SimpleFFNExpert(M, H, seed=10 + e) for e in range(E)]
    layer = MOELayer(gate, experts, capacity_factor=2.0)
    losses = []
    for _ in range(STEPS):
        layer.zero_grad()
        out = layer.forward(x)
        err = out - y
        losses.append(float((err**2).mean()))
        layer.backward(2 * err / err.size)
        sgd(gate.params, gate.grads, LR)
        for expert in experts:
            sgd(expert.params, expert.grads, LR)
    assignment = layer._cache["assignment"]
    load = (assignment.token_ids >= 0).sum(axis=1)
    return losses, load


def train_soft(x, y, rng):
    experts = [SimpleFFNExpert(M, H, seed=20 + e) for e in range(E)]
    layer = SoftMoELayer(experts, embed_dim=M, slots_per_expert=2, seed=2)
    losses = []
    for _ in range(STEPS):
        layer.zero_grad()
        out = layer.forward(x)
        err = out - y
        losses.append(float((err**2).mean()))
        layer.backward(2 * err / err.size)
        sgd(layer.params, {"phi": layer.grads["phi"]}, LR)
        for expert in experts:
            sgd(expert.params, expert.grads, LR)
    return losses


def main() -> None:
    rng = np.random.default_rng(0)
    x, y = toy_task(rng)

    hard_losses, hard_load = train_hard(x, y, rng)
    soft_losses = train_soft(x, y, rng)

    print("step | hard top-2 loss | soft-moe loss")
    for step in range(0, STEPS, 8):
        print(f"{step:4d} | {hard_losses[step]:15.5f} | "
              f"{soft_losses[step]:13.5f}")
    print(f"{STEPS - 1:4d} | {hard_losses[-1]:15.5f} | "
          f"{soft_losses[-1]:13.5f}")

    print(f"\nhard routing final expert load (slots used): "
          f"{hard_load.tolist()}")
    print("soft routing uses every expert for every token by construction.")
    print("\nBoth flavours train through the same ExpertBase modules -- "
          "the framework hosts either routing family unchanged.")


if __name__ == "__main__":
    main()
