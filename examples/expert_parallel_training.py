#!/usr/bin/env python
"""Functional expert-parallel training on virtual ranks.

Runs *real* numpy computation: four virtual ranks each own two of eight
experts, tokens are routed by a GShard gate, exchanged with the NCCL
AlltoAll algorithm, processed by the owning rank, and combined back --
then a few SGD steps on a toy regression objective show the loss
dropping, with gradients flowing through the manual backward pass.

Run:  python examples/expert_parallel_training.py
"""

import numpy as np

from repro.moe import (
    GShardGate,
    MOELayer,
    NcclAllToAll,
    SimpleFFNExpert,
    TwoDHierarchicalAllToAll,
)
from repro.moe.layer import expert_parallel_forward

WORLD = 4
S, M, E, K, H = 64, 32, 8, 2, 64
LR = 0.02
STEPS = 12


def make_replicas():
    """One MOELayer per rank; gates share weights, experts are global."""
    experts = [SimpleFFNExpert(M, H, seed=100 + e) for e in range(E)]
    layers = []
    for _ in range(WORLD):
        gate = GShardGate(M, E, K, seed=7)
        layers.append(MOELayer(gate, experts, capacity_factor=2.0))
    return layers


def main() -> None:
    rng = np.random.default_rng(0)
    layers = make_replicas()

    # toy task: the layer should reproduce a fixed random linear map.
    target_w = rng.normal(0, M**-0.5, (M, M))
    inputs = [rng.normal(size=(S, M)) for _ in range(WORLD)]
    targets = [x @ target_w for x in inputs]

    # The two dispatch algorithms must be interchangeable (paper §3.1).
    direct = expert_parallel_forward(layers, inputs, NcclAllToAll(WORLD))
    staged = expert_parallel_forward(
        layers, inputs, TwoDHierarchicalAllToAll(WORLD, gpus_per_node=2)
    )
    max_diff = max(
        float(np.abs(a - b).max()) for a, b in zip(direct, staged)
    )
    print(f"NCCL-A2A vs 2DH-A2A max output difference: {max_diff:.2e}")

    for step in range(STEPS):
        total_loss = 0.0
        for layer in layers:
            layer.zero_grad()
        for rank in range(WORLD):
            layer = layers[rank]
            y = layer.forward(inputs[rank])
            err = y - targets[rank]
            total_loss += float((err**2).mean())
            layer.backward(2.0 * err / err.size)
        # experts are shared objects, so their grads already sum over the
        # ranks that touched them -- apply SGD once.
        seen = set()
        for layer in layers:
            for expert in layer.experts:
                if id(expert) in seen:
                    continue
                seen.add(id(expert))
                for name, grad in expert.grads.items():
                    expert.params[name] -= LR * grad
        if step % 3 == 0 or step == STEPS - 1:
            print(f"step {step:2d}: loss = {total_loss / WORLD:.5f}")

    print("loss decreases through the routed, dispatched, manually "
          "backpropagated MoE layer.")


if __name__ == "__main__":
    main()
