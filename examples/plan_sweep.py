#!/usr/bin/env python
"""Batch planning: sweep a deployment grid through the shared cache.

The planner's batch API answers "which system, which shape, which
cluster?" questions wholesale:

1. build a sweep grid -- layer shapes x training systems x testbeds;
2. ``plan_many`` fans it out over a thread pool, deduplicating all
   profiling through one ProfileStore;
3. re-planning the same grid is free (every profile is a cache hit);
4. any plan in the result serializes to JSON and replays bit-identically
   -- including heterogeneous stacks, where each layer has its own shape.

This is the raw compatibility path; the Workspace / ExperimentSpec API
(examples/experiment_sweep.py) layers disk persistence and a plan cache
on top of exactly this machinery.

Run:  python examples/plan_sweep.py
"""

import time

from repro import (
    FSMoE,
    IterationPlan,
    MoELayerSpec,
    ProfileStore,
    Tutel,
    plan_many,
    testbed_a,
    testbed_b,
)

# 1. the grid: 4 layer shapes x 2 systems x 2 testbeds = 16 points.
# 24 experts divide both EP widths (6 nodes on A, 8 on B).
shapes = [
    MoELayerSpec(batch_size=b, seq_len=512, embed_dim=m,
                 num_experts=24, num_heads=16)
    for b in (1, 2) for m in (1024, 2048)
]
systems = [Tutel(), FSMoE()]
clusters = [testbed_a(), testbed_b()]

store = ProfileStore()
t0 = time.perf_counter()
sweep = plan_many(shapes, systems, clusters, num_layers=2, store=store)
cold_s = time.perf_counter() - t0
print(f"cold sweep: {len(sweep)} points in {cold_s:.1f}s -- {store.stats}")

# 2. the tidy result table.
for row in sweep.rows():
    print(f"  {row['cluster']:<10} B={row['batch_size']} "
          f"M={row['embed_dim']}  {row['system']:>6}: "
          f"{row['makespan_ms']:7.2f} ms")

# 3. re-planning the same grid does zero new profiling.
before = store.stats
t0 = time.perf_counter()
plan_many(shapes, systems, clusters, num_layers=2, store=store)
warm_s = time.perf_counter() - t0
delta = store.stats - before
print(f"warm sweep: {warm_s:.1f}s, new profiles fitted: {delta.misses}")

# 4. heterogeneous stacks are one grid entry: a thin top-1 layer feeding
# a wide top-2 layer, planned as a single iteration.
hetero = [
    shapes[0].with_(top_k=1),
    shapes[0].with_(embed_dim=2048, hidden_scale=3.0),
]
result = plan_many([hetero], [FSMoE()], [testbed_b()], store=store)
plan = result.points[0].plan
replay = IterationPlan.from_json(plan.to_json())
assert replay.simulate() == plan.simulate()
print(f"heterogeneous plan: degrees {plan.degrees}, "
      f"{result.points[0].makespan_ms:.2f} ms, JSON round-trip OK")
