#!/usr/bin/env python
"""The unified experiment API: Workspace + ExperimentSpec + registries.

The new front door in four steps:

1. describe a whole experiment -- clusters x stacks x systems -- as one
   declarative, serializable :class:`ExperimentSpec` (systems, models and
   clusters are named through the string registries, no imports needed);
2. open a :class:`Workspace`: a disk-rooted session owning a persistent
   profile store and a content-addressed plan cache;
3. sweep the grid; every profile and every compiled plan lands on disk;
4. re-run the sweep -- in this process or any later one -- and observe
   *zero* new profiles and *zero* new plans via the exact counters.

The same spec drives the CLI:  python -m repro sweep spec.json -w ws

Run:  python examples/experiment_sweep.py
"""

import tempfile
import time

from repro import ExperimentSpec, Workspace, available_systems

# 1. the experiment, as data.  This dict could equally live in a JSON or
# TOML file (ExperimentSpec.from_file) and run via `python -m repro sweep`.
SPEC = ExperimentSpec.from_dict(
    {
        "name": "demo-grid",
        "clusters": ["B"],
        "systems": ["tutel", "fsmoe"],
        "stacks": [
            {"model": "GPT2-XL", "seq_len": 512, "num_layers": 2},
            {
                "layers": [
                    {"batch_size": 1, "seq_len": 512, "embed_dim": 1024,
                     "num_experts": 24, "num_heads": 16},
                    {"batch_size": 1, "seq_len": 512, "embed_dim": 2048,
                     "num_experts": 24, "num_heads": 16},
                ]
            },  # a heterogeneous stack is just another grid entry
        ],
        "solver": "slsqp",  # the fast Step-2 solver for FSMoE
    }
)

with tempfile.TemporaryDirectory(prefix="repro-demo-ws-") as root:
    # 2. the session.  Point several processes at the same directory and
    # they share one cache.
    workspace = Workspace(root)
    print(f"registered systems: {', '.join(available_systems())}")

    # 3. the cold sweep: profiles fitted, plans compiled, all persisted.
    t0 = time.perf_counter()
    result = workspace.sweep(SPEC)
    cold_s = time.perf_counter() - t0
    stats = workspace.stats
    print(f"\ncold sweep: {len(result)} points in {cold_s:.1f}s "
          f"({stats.profiles.misses} profiles fitted, "
          f"{stats.plan_misses} plans compiled)")
    for row in result.rows():
        print(f"  {row['cluster']:<10} M={row['embed_dim']:<5} "
              f"{row['system']:>6}: {row['makespan_ms']:8.2f} ms")

    # 4. the warm re-run: a NEW session over the same directory computes
    # nothing -- every profile and plan comes off disk, bit-identically.
    rerun = Workspace(root)
    t0 = time.perf_counter()
    replay = rerun.sweep(SPEC)
    warm_s = time.perf_counter() - t0
    stats = rerun.stats
    assert stats.warm, stats
    assert [p.makespan_ms for p in replay.points] == [
        p.makespan_ms for p in result.points
    ]
    print(f"\nwarm re-run: {warm_s:.2f}s -- "
          f"{stats.profiles.misses} profiles fitted, "
          f"{stats.plan_misses} plans compiled, "
          f"{stats.plan_hits} plans replayed from cache")
    print("every makespan identical to the cold run (bit-identical replay)")

    info = rerun.cache_info()
    print(f"\nworkspace layout: {info['plan_entries']} plan files "
          f"({info['plan_bytes']} bytes) + profiles.json "
          f"({info['profile_entries']} entries)")
    print("CLI equivalent:  python -m repro sweep spec.json "
          f"--workspace {root} --expect-warm")
