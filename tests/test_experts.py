"""Gradient-checked tests for the expert networks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.moe.experts import MixtralFFNExpert, SimpleFFNExpert

M, H, T = 10, 24, 6


@pytest.fixture(params=[SimpleFFNExpert, MixtralFFNExpert])
def expert(request):
    return request.param(M, H, seed=7)


class TestForward:
    def test_output_shape(self, expert):
        x = np.random.default_rng(0).normal(size=(T, M))
        assert expert.forward(x).shape == (T, M)

    def test_rejects_bad_shape(self, expert):
        with pytest.raises(ShapeError):
            expert.forward(np.zeros((T, M + 1)))

    def test_backward_before_forward_raises(self, expert):
        with pytest.raises(ShapeError):
            expert.backward(np.zeros((T, M)))

    def test_num_parameters(self):
        simple = SimpleFFNExpert(M, H)
        assert simple.num_parameters() == M * H + H + H * M + M
        mixtral = MixtralFFNExpert(M, H)
        assert mixtral.num_parameters() == 3 * M * H


class TestGradients:
    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_input_gradient_matches_fd(self, seed):
        for cls in (SimpleFFNExpert, MixtralFFNExpert):
            expert = cls(M, H, seed=seed)
            rng = np.random.default_rng(seed + 1)
            x = rng.normal(size=(T, M))
            dy = rng.normal(size=(T, M))
            expert.forward(x)
            dx = expert.backward(dy)

            eps = 1e-6
            i, j = 2, 3
            x_up = x.copy(); x_up[i, j] += eps
            x_dn = x.copy(); x_dn[i, j] -= eps
            fd = np.sum((expert.forward(x_up) - expert.forward(x_dn)) * dy) / (
                2 * eps
            )
            assert dx[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    @pytest.mark.parametrize(
        "cls,param",
        [
            (SimpleFFNExpert, "w1"),
            (SimpleFFNExpert, "w2"),
            (SimpleFFNExpert, "b1"),
            (SimpleFFNExpert, "b2"),
            (MixtralFFNExpert, "w_gate"),
            (MixtralFFNExpert, "w_up"),
            (MixtralFFNExpert, "w_down"),
        ],
    )
    def test_weight_gradients_match_fd(self, cls, param):
        expert = cls(M, H, seed=13)
        rng = np.random.default_rng(17)
        x = rng.normal(size=(T, M))
        dy = rng.normal(size=(T, M))
        expert.zero_grad()
        expert.forward(x)
        expert.backward(dy)
        analytic = expert.grads[param]

        w = expert.params[param]
        index = (1, 2) if w.ndim == 2 else (1,)
        eps = 1e-6
        w[index] += eps
        up = expert.forward(x)
        w[index] -= 2 * eps
        down = expert.forward(x)
        w[index] += eps
        fd = float(np.sum((up - down) * dy) / (2 * eps))
        assert analytic[index] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_gradients_accumulate(self):
        expert = SimpleFFNExpert(M, H, seed=1)
        x = np.random.default_rng(2).normal(size=(T, M))
        dy = np.ones((T, M))
        expert.zero_grad()
        expert.forward(x)
        expert.backward(dy)
        first = expert.grads["w1"].copy()
        expert.forward(x)
        expert.backward(dy)
        np.testing.assert_allclose(expert.grads["w1"], 2 * first)

    def test_zero_grad_resets(self, expert):
        x = np.random.default_rng(3).normal(size=(T, M))
        expert.forward(x)
        expert.backward(np.ones((T, M)))
        expert.zero_grad()
        for g in expert.grads.values():
            assert (g == 0).all()
