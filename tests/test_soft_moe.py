"""Tests for the SoftMoE layer (dense differentiable routing)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.moe.experts import SimpleFFNExpert
from repro.moe.soft_moe import SoftMoELayer

S, M, E, P, H = 24, 10, 4, 2, 16
RNG = np.random.default_rng(0)


def make_layer(seed=3):
    experts = [SimpleFFNExpert(M, H, seed=seed + e) for e in range(E)]
    return SoftMoELayer(experts, embed_dim=M, slots_per_expert=P, seed=seed)


class TestForward:
    def test_output_shape(self):
        layer = make_layer()
        assert layer.forward(RNG.normal(size=(S, M))).shape == (S, M)

    def test_slot_count(self):
        layer = make_layer()
        assert layer.total_slots == E * P
        assert layer.params["phi"].shape == (M, E * P)

    def test_dispatch_weights_are_convex_over_tokens(self):
        layer = make_layer()
        layer.forward(RNG.normal(size=(S, M)))
        dispatch = layer._cache["dispatch"]
        np.testing.assert_allclose(dispatch.sum(axis=0), 1.0, rtol=1e-9)

    def test_combine_weights_are_convex_over_slots(self):
        layer = make_layer()
        layer.forward(RNG.normal(size=(S, M)))
        combine = layer._cache["combine"]
        np.testing.assert_allclose(combine.sum(axis=1), 1.0, rtol=1e-9)

    def test_no_tokens_dropped_ever(self):
        """SoftMoE's core property: every token influences the output."""
        layer = make_layer()
        x = RNG.normal(size=(S, M))
        y0 = layer.forward(x)
        x2 = x.copy()
        x2[S - 1] += 10.0  # perturb the last token only
        y2 = layer.forward(x2)
        assert not np.allclose(y0[: S - 1], y2[: S - 1])  # mixes globally

    def test_rejects_bad_shapes(self):
        layer = make_layer()
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((S, M + 1)))
        with pytest.raises(ShapeError):
            SoftMoELayer([], embed_dim=M)
        with pytest.raises(ShapeError):
            SoftMoELayer(
                [SimpleFFNExpert(M, H)], embed_dim=M, slots_per_expert=0
            )


class TestBackward:
    def test_backward_before_forward(self):
        with pytest.raises(ShapeError):
            make_layer().backward(np.zeros((S, M)))

    def test_input_gradient_finite_difference(self):
        layer = make_layer(seed=11)
        x = RNG.normal(size=(8, M))
        dy = RNG.normal(size=(8, M))
        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(dy)

        eps = 1e-6
        i, j = 3, 5
        x_up = x.copy(); x_up[i, j] += eps
        x_dn = x.copy(); x_dn[i, j] -= eps
        fd = np.sum((layer.forward(x_up) - layer.forward(x_dn)) * dy) / (2 * eps)
        assert dx[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_phi_gradient_finite_difference(self):
        layer = make_layer(seed=13)
        x = RNG.normal(size=(8, M))
        dy = RNG.normal(size=(8, M))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(dy)
        analytic = layer.grads["phi"].copy()

        phi = layer.params["phi"]
        eps = 1e-6
        i, j = 2, 3
        phi[i, j] += eps
        up = layer.forward(x)
        phi[i, j] -= 2 * eps
        down = layer.forward(x)
        phi[i, j] += eps
        fd = float(np.sum((up - down) * dy) / (2 * eps))
        assert analytic[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)

    def test_expert_gradients_flow(self):
        layer = make_layer()
        layer.zero_grad()
        layer.forward(RNG.normal(size=(S, M)))
        layer.backward(np.ones((S, M)))
        for expert in layer.experts:
            assert np.abs(expert.grads["w1"]).sum() > 0

    def test_training_reduces_loss(self):
        """A few SGD steps on phi + experts must reduce a simple loss."""
        layer = make_layer(seed=29)
        x = RNG.normal(size=(32, M))
        target = np.tanh(x @ RNG.normal(0, M**-0.5, (M, M)))
        losses = []
        for _ in range(15):
            layer.zero_grad()
            y = layer.forward(x)
            err = y - target
            losses.append(float((err**2).mean()))
            layer.backward(2 * err / err.size)
            layer.params["phi"] -= 0.5 * layer.grads["phi"]
            for expert in layer.experts:
                for name, grad in expert.grads.items():
                    expert.params[name] -= 0.5 * grad
        assert losses[-1] < losses[0] * 0.9
