"""Tests for the memory-footprint estimator against the paper's §6.4."""

import pytest

from repro.config import standard_layout
from repro.errors import ConfigError
from repro.models import MIXTRAL_7B, MIXTRAL_22B, layer_spec_for
from repro.models.memory import (
    estimate_memory,
    layer_parameter_bytes,
    max_layers_that_fit,
)
from repro.parallel.topology import testbed_a, testbed_b


@pytest.fixture(scope="module")
def setup_b():
    cluster = testbed_b()
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    spec = layer_spec_for(
        MIXTRAL_7B, batch_size=1, seq_len=256, num_experts=parallel.n_ep
    )
    return cluster, parallel, spec


class TestFootprint:
    def test_components_positive(self, setup_b):
        _, parallel, spec = setup_b
        fp = estimate_memory(spec, parallel, 7)
        assert fp.parameter_bytes > 0
        assert fp.gradient_bytes == fp.parameter_bytes
        assert fp.optimizer_bytes == 2 * fp.parameter_bytes
        assert fp.activation_bytes > 0
        assert fp.total_bytes == (
            fp.parameter_bytes + fp.gradient_bytes + fp.optimizer_bytes
            + fp.activation_bytes
        )

    def test_scales_linearly_with_layers(self, setup_b):
        _, parallel, spec = setup_b
        one = estimate_memory(spec, parallel, 1)
        four = estimate_memory(spec, parallel, 4)
        assert four.total_bytes == pytest.approx(4 * one.total_bytes)

    def test_rejects_bad_layer_count(self, setup_b):
        _, parallel, spec = setup_b
        with pytest.raises(ConfigError):
            estimate_memory(spec, parallel, 0)

    def test_expert_shards_split_over_esp(self, setup_b):
        _, parallel, spec = setup_b
        wide = layer_parameter_bytes(spec, parallel)
        narrow = layer_parameter_bytes(
            spec, parallel.with_(n_esp=parallel.n_esp * 2,
                                 n_mp=parallel.n_mp * 2)
        )
        assert narrow < wide


class TestPaperLayerCounts:
    def test_mixtral7b_7_layers_fit_2080ti(self, setup_b):
        """Paper §6.4: 7 Mixtral-7B layers are chosen to fit 11 GB GPUs."""
        cluster, parallel, spec = setup_b
        fp = estimate_memory(spec, parallel, MIXTRAL_7B.num_layers)
        assert fp.fits(cluster.node.gpu.memory_gib)

    def test_mixtral7b_full_32_layers_do_not_fit_2080ti(self, setup_b):
        """...while the full 32-layer model would not."""
        cluster, parallel, spec = setup_b
        fp = estimate_memory(spec, parallel, 32)
        assert not fp.fits(cluster.node.gpu.memory_gib)

    def test_mixtral22b_33_layers_fit_a6000(self):
        """Paper §6.4: 33 Mixtral-22B layers fit the 48 GB A6000s."""
        cluster = testbed_a()
        parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
        spec = layer_spec_for(
            MIXTRAL_22B, batch_size=1, seq_len=1024,
            num_experts=parallel.n_ep,
        )
        fp = estimate_memory(spec, parallel, MIXTRAL_22B.num_layers)
        assert fp.fits(cluster.node.gpu.memory_gib)

    def test_max_layers_helper_consistent(self, setup_b):
        cluster, parallel, spec = setup_b
        limit = max_layers_that_fit(
            spec, parallel, cluster.node.gpu.memory_gib
        )
        assert limit >= MIXTRAL_7B.num_layers
        assert limit < 32
        assert estimate_memory(spec, parallel, limit).fits(
            cluster.node.gpu.memory_gib
        )
        if limit > 0:
            assert not estimate_memory(spec, parallel, limit + 1).fits(
                cluster.node.gpu.memory_gib
            )