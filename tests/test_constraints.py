"""Unit and property tests for the Q1-Q7 constraints (paper §4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import PipelineContext, context_from_volumes
from repro.core.perf_model import LinearPerfModel, PerfModelSet

from .helpers import pipeline_contexts


def simple_ctx(**overrides) -> PipelineContext:
    defaults = dict(
        a2a=LinearPerfModel(0.2, 2e-7),
        n_a2a=1e7,
        ag=LinearPerfModel(0.05, 1e-7),
        n_ag=1e7,
        rs=LinearPerfModel(0.05, 1e-7),
        n_rs=1e7,
        exp=LinearPerfModel(0.1, 1e-10),
        n_exp=1e10,
        t_gar=0.0,
    )
    defaults.update(overrides)
    return PipelineContext(**defaults)


class TestChunkTimes:
    def test_chunk_times_follow_eq1(self):
        ctx = simple_ctx()
        r = 4
        assert ctx.t_a2a(r) == pytest.approx(0.2 + 1e7 / r * 2e-7)
        assert ctx.t_exp(r) == pytest.approx(0.1 + 1e10 / r * 1e-10)

    def test_with_t_gar(self):
        ctx = simple_ctx().with_t_gar(5.0)
        assert ctx.t_gar == 5.0
        assert ctx.n_a2a == 1e7


class TestMarginsMatchBooleans:
    @given(ctx=pipeline_contexts(with_gar=True), r=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_consistency(self, ctx, r):
        for q in range(1, 8):
            margin = getattr(ctx, f"q{q}_margin")(r)
            boolean = getattr(ctx, f"q{q}")(r)
            assert boolean == (margin > 0)


class TestKnownRegimes:
    def test_q1_true_when_a2a_dominates(self):
        ctx = simple_ctx(n_a2a=1e8, n_ag=1e6, n_rs=1e6)
        assert ctx.q1(4)

    def test_q2_true_when_experts_dominate(self):
        ctx = simple_ctx(n_exp=1e12, n_a2a=1e6)
        assert ctx.q2(4)

    def test_q4_scales_with_gar(self):
        ctx = simple_ctx()
        assert not ctx.q4(4)
        assert ctx.with_t_gar(100.0).q4(4)


class TestContextFromVolumes:
    def make_models(self):
        m = LinearPerfModel(0.1, 1e-7)
        return PerfModelSet(
            a2a=m, allgather=m, reducescatter=m, allreduce=m,
            gemm=LinearPerfModel(0.05, 1e-10),
        )

    def test_backward_doubles_experts_only(self):
        models = self.make_models()
        kwargs = dict(
            a2a_bytes=1e7,
            esp_shard_bytes=1e7,
            expert_macs=1e10,
            expert_num_gemms=2,
        )
        fw = context_from_volumes(models, **kwargs)
        bw = context_from_volumes(models, backward=True, **kwargs)
        assert bw.n_exp == 2 * fw.n_exp
        assert bw.exp.alpha == 2 * fw.exp.alpha
        assert bw.n_a2a == fw.n_a2a
        assert bw.n_ag == fw.n_ag
