"""Tests for the three AlltoAll dispatch algorithms (paper §3.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.moe.dispatch import (
    NcclAllToAll,
    OneDHierarchicalAllToAll,
    TwoDHierarchicalAllToAll,
)


def buffers_for(world: int, experts: int, t: int, m: int, seed: int):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(experts, t, m)) for _ in range(world)]


class TestEquivalence:
    @given(
        world_nodes=st.sampled_from([(4, 2), (8, 4), (8, 2), (6, 3)]),
        t=st.integers(1, 5),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_three_algorithms_agree(self, world_nodes, t, seed):
        world, g = world_nodes
        buffers = buffers_for(world, world * 2, t, 3, seed)
        direct = NcclAllToAll(world).dispatch(buffers)
        one_d = OneDHierarchicalAllToAll(world, g).dispatch(buffers)
        two_d = TwoDHierarchicalAllToAll(world, g).dispatch(buffers)
        for a, b, c in zip(direct, one_d, two_d):
            np.testing.assert_allclose(a, b, atol=1e-12)
            np.testing.assert_allclose(a, c, atol=1e-12)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_dispatch_combine_roundtrip(self, seed):
        world = 4
        buffers = buffers_for(world, 8, 3, 5, seed)
        for algo in (
            NcclAllToAll(world),
            OneDHierarchicalAllToAll(world, 2),
            TwoDHierarchicalAllToAll(world, 2),
        ):
            back = algo.combine(algo.dispatch(buffers))
            for original, returned in zip(buffers, back):
                np.testing.assert_allclose(original, returned, atol=1e-12)

    def test_single_node_degenerates_to_direct(self):
        world = 4
        buffers = buffers_for(world, 8, 2, 3, seed=1)
        direct = NcclAllToAll(world).dispatch(buffers)
        two_d = TwoDHierarchicalAllToAll(world, 4).dispatch(buffers)
        for a, b in zip(direct, two_d):
            np.testing.assert_allclose(a, b)


class TestSemantics:
    def test_rank_receives_its_expert_slices(self):
        world = 4
        buffers = buffers_for(world, 8, 2, 3, seed=5)
        out = NcclAllToAll(world).dispatch(buffers)
        local = 8 // world
        for dst in range(world):
            for src in range(world):
                received = out[dst][src * local : (src + 1) * local]
                sent = buffers[src][dst * local : (dst + 1) * local]
                np.testing.assert_allclose(received, sent)


class TestValidation:
    def test_wrong_rank_count(self):
        with pytest.raises(ShapeError):
            NcclAllToAll(4).dispatch(buffers_for(3, 8, 2, 3, 0))

    def test_indivisible_experts(self):
        with pytest.raises(ShapeError):
            NcclAllToAll(4).dispatch(buffers_for(4, 6, 2, 3, 0))

    def test_mismatched_shapes(self):
        buffers = buffers_for(4, 8, 2, 3, 0)
        buffers[2] = np.zeros((8, 3, 3))
        with pytest.raises(ShapeError):
            NcclAllToAll(4).dispatch(buffers)

    def test_bad_constructor_args(self):
        with pytest.raises(ShapeError):
            NcclAllToAll(0)
        with pytest.raises(ShapeError):
            TwoDHierarchicalAllToAll(4, 3)  # world not divisible by node
