"""Tests for the batched Algorithm-1 solver (core/fastsolve.py)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.constraints import ContextArrays, PipelineContext
from repro.core.cases import analytic_time, analytic_time_batch, classify, classify_batch
from repro.core.fastsolve import (
    clear_solver_cache,
    solve_degree,
    solve_degrees_batch,
    solver_stats,
)
from repro.core.perf_model import LinearPerfModel
from repro.core.pipeline_degree import (
    find_optimal_pipeline_degree,
    get_default_degree_solver,
    oracle_integer_degree,
    set_default_degree_solver,
    solve_degrees,
)
from repro.errors import SolverError

from .helpers import pipeline_contexts


def random_contexts(n: int, seed: int = 0) -> list[PipelineContext]:
    """Physically plausible random contexts spanning all four cases."""
    rng = np.random.default_rng(seed)

    def model(lo: float = 1e-8, hi: float = 1e-6) -> LinearPerfModel:
        return LinearPerfModel(
            alpha=float(rng.uniform(0.01, 0.5)),
            beta=float(rng.uniform(lo, hi)),
        )

    out = []
    for _ in range(n):
        out.append(
            PipelineContext(
                a2a=model(),
                n_a2a=float(rng.uniform(1e5, 5e8)),
                ag=model(),
                n_ag=float(rng.uniform(1e5, 5e8)),
                rs=model(),
                n_rs=float(rng.uniform(1e5, 5e8)),
                exp=model(1e-11, 1e-9),
                n_exp=float(rng.uniform(1e8, 1e12)),
                t_gar=float(rng.uniform(0.0, 30.0)),
            )
        )
    return out


def degenerate_variants(base: PipelineContext) -> list[PipelineContext]:
    """Zero-comm / zero-compute / zero-everything edge contexts."""
    return [
        replace(base, n_a2a=0.0),
        replace(base, n_ag=0.0, n_rs=0.0),
        replace(base, n_exp=0.0),
        replace(base, n_a2a=0.0, n_ag=0.0, n_rs=0.0),
        replace(base, n_a2a=0.0, n_ag=0.0, n_rs=0.0, n_exp=0.0),
        replace(base, t_gar=0.0),
        replace(base, t_gar=1e6),
    ]


class TestMatchesOracle:
    def test_batch_matches_oracle_on_200_random_contexts(self):
        """The acceptance property: exact agreement with the oracle.

        250 random contexts plus degenerate variants (zero comm, zero
        compute, everything zero) at several r_max values, including
        r_max=1.
        """
        ctxs = random_contexts(250, seed=7)
        ctxs += degenerate_variants(ctxs[0])
        ctxs += degenerate_variants(ctxs[1])
        assert len(ctxs) > 200
        for r_max in (16, 5, 1):
            solutions = solve_degrees_batch(ctxs, r_max)
            for ctx, solution in zip(ctxs, solutions):
                oracle = oracle_integer_degree(ctx, r_max)
                assert solution.degree == oracle.degree
                assert abs(solution.time_ms - oracle.time_ms) <= 1e-9
                assert solution.case is oracle.case

    @given(ctx=pipeline_contexts(with_gar=True))
    @settings(max_examples=60, deadline=None)
    def test_batch_matches_oracle_hypothesis(self, ctx):
        solution = solve_degree(ctx, 16)
        oracle = oracle_integer_degree(ctx, 16)
        assert solution.degree == oracle.degree
        assert abs(solution.time_ms - oracle.time_ms) <= 1e-9

    def test_solution_time_is_exact_analytic_time(self):
        for ctx in random_contexts(20, seed=3):
            solution = solve_degree(ctx, 16)
            assert solution.time_ms == pytest.approx(
                analytic_time(ctx, float(solution.degree))
            )
            assert 1 <= solution.degree <= 16

    def test_per_case_times_cover_all_cases(self):
        ctx = random_contexts(1, seed=5)[0]
        solution = solve_degree(ctx, 16)
        assert len(solution.per_case_time_ms) == 4
        assert min(solution.per_case_time_ms.values()) < float("inf")
        # The winning case's best time is the solution time.
        assert solution.per_case_time_ms[solution.case] == pytest.approx(
            solution.time_ms
        )


class TestVectorizedPrimitives:
    def test_classify_batch_matches_scalar(self):
        ctxs = random_contexts(40, seed=11)
        arrays = ContextArrays.pack(ctxs)
        degrees = np.arange(1, 17, dtype=float).reshape(1, -1)
        cases = classify_batch(arrays, degrees)
        for i, ctx in enumerate(ctxs):
            for j, r in enumerate(range(1, 17)):
                assert cases[i, j] == classify(ctx, float(r)).value

    def test_analytic_time_batch_bitwise_matches_scalar(self):
        ctxs = random_contexts(40, seed=13) + degenerate_variants(
            random_contexts(1, seed=17)[0]
        )
        arrays = ContextArrays.pack(ctxs)
        degrees = np.arange(1, 17, dtype=float).reshape(1, -1)
        times = analytic_time_batch(arrays, degrees)
        for i, ctx in enumerate(ctxs):
            for j, r in enumerate(range(1, 17)):
                assert times[i, j] == analytic_time(ctx, float(r))


class TestInterface:
    def test_rejects_bad_rmax(self):
        ctx = random_contexts(1)[0]
        with pytest.raises(SolverError):
            solve_degrees_batch([ctx], 0)

    def test_empty_batch(self):
        assert solve_degrees_batch([], 16) == ()

    def test_duplicates_resolve_to_one_solve(self):
        ctx = random_contexts(1, seed=23)[0]
        clear_solver_cache(reset_stats=False)
        before = solver_stats()
        solutions = solve_degrees_batch([ctx] * 10, 16)
        after = solver_stats()
        assert len(solutions) == 10
        assert len({id(s) for s in solutions}) == 1
        assert (after.solves - before.solves) == 1

    def test_memo_hits_across_calls(self):
        ctx = random_contexts(1, seed=29)[0]
        clear_solver_cache()
        solve_degree(ctx, 16)
        before = solver_stats()
        solve_degree(ctx, 16)
        after = solver_stats()
        assert after.cache_hits == before.cache_hits + 1
        assert after.solves == before.solves

    def test_stats_track_batch_sizes(self):
        clear_solver_cache()
        ctxs = random_contexts(12, seed=31)
        before = solver_stats()
        solve_degrees_batch(ctxs, 16)
        after = solver_stats()
        assert after.batch_calls == before.batch_calls + 1
        assert after.max_batch_size >= 12


class TestSolverDispatch:
    def test_default_solver_is_batch(self):
        assert get_default_degree_solver() == "batch"

    def test_find_optimal_accepts_explicit_solver(self):
        ctx = random_contexts(1, seed=37)[0]
        batch = find_optimal_pipeline_degree(ctx, solver="batch")
        slsqp = find_optimal_pipeline_degree(ctx, solver="slsqp")
        # SLSQP is near-optimal; batch is exact.
        assert batch.time_ms <= slsqp.time_ms + 1e-9

    def test_unknown_solver_rejected(self):
        ctx = random_contexts(1)[0]
        with pytest.raises(SolverError):
            find_optimal_pipeline_degree(ctx, solver="bogus")
        with pytest.raises(SolverError):
            set_default_degree_solver("bogus")

    def test_set_default_solver_roundtrip(self):
        previous = set_default_degree_solver("slsqp")
        try:
            assert get_default_degree_solver() == "slsqp"
            ctx = random_contexts(1, seed=41)[0]
            via_default = solve_degrees((ctx,), 16)[0]
            explicit = find_optimal_pipeline_degree(ctx, solver="slsqp")
            assert via_default.degree == explicit.degree
        finally:
            set_default_degree_solver(previous)
        assert get_default_degree_solver() == previous
