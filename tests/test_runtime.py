"""Property tests for the virtual-rank collectives (data semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.runtime import (
    VirtualGroup,
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
)


def rank_buffers(world: int, rows: int, cols: int, seed: int):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(rows, cols)) for _ in range(world)]


worlds = st.sampled_from([2, 4, 8])
seeds = st.integers(0, 100)


class TestIdentities:
    @given(world=worlds, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_allreduce_is_sum(self, world, seed):
        buffers = rank_buffers(world, 4, 3, seed)
        out = all_reduce(buffers)
        expected = sum(buffers)
        for o in out:
            np.testing.assert_allclose(o, expected)

    @given(world=worlds, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_reduce_scatter_then_all_gather_equals_all_reduce(self, world, seed):
        buffers = rank_buffers(world, world * 2, 3, seed)
        rs = reduce_scatter(buffers)
        ag = all_gather(rs)
        ar = all_reduce(buffers)
        for a, b in zip(ag, ar):
            np.testing.assert_allclose(a, b)

    @given(world=worlds, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_all_to_all_is_involution(self, world, seed):
        buffers = rank_buffers(world, world * 3, 2, seed)
        twice = all_to_all(all_to_all(buffers))
        for original, roundtrip in zip(buffers, twice):
            np.testing.assert_allclose(original, roundtrip)

    @given(world=worlds, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_all_gather_slices_recover_inputs(self, world, seed):
        buffers = rank_buffers(world, 2, 3, seed)
        gathered = all_gather(buffers)
        for rank, original in enumerate(buffers):
            slice_ = gathered[0][rank * 2 : (rank + 1) * 2]
            np.testing.assert_allclose(slice_, original)

    @given(world=worlds, seed=seeds)
    @settings(max_examples=20, deadline=None)
    def test_all_to_all_moves_correct_slices(self, world, seed):
        buffers = rank_buffers(world, world, 2, seed)
        out = all_to_all(buffers)
        for dst in range(world):
            for src in range(world):
                np.testing.assert_allclose(
                    out[dst][src : src + 1], buffers[src][dst : dst + 1]
                )


class TestValidation:
    def test_empty_group_rejected(self):
        with pytest.raises(ShapeError):
            all_reduce([])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ShapeError):
            all_reduce([np.zeros((2, 2)), np.zeros((3, 2))])

    def test_indivisible_axis_rejected(self):
        with pytest.raises(ShapeError):
            all_to_all([np.zeros((3, 2)), np.zeros((3, 2))])
        with pytest.raises(ShapeError):
            reduce_scatter([np.zeros((3, 2)), np.zeros((3, 2))])


class TestVirtualGroup:
    def test_enforces_membership_count(self):
        group = VirtualGroup(world_size=4)
        with pytest.raises(ShapeError):
            group.all_reduce([np.zeros(2)] * 3)

    def test_delegates(self):
        group = VirtualGroup(world_size=2, name="ep")
        buffers = [np.ones((2, 2)), np.full((2, 2), 3.0)]
        out = group.all_reduce(buffers)
        np.testing.assert_allclose(out[0], 4.0)

    def test_rejects_bad_world(self):
        with pytest.raises(ShapeError):
            VirtualGroup(world_size=0)
