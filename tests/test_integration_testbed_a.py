"""Integration shapes on Testbed A (the paper's larger cluster)."""

import pytest

from repro import MoELayerSpec
from repro.bench import evaluate_config, evaluate_model
from repro.models import MIXTRAL_7B, layer_op_breakdown, profile_layer
from repro.systems import (
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    Tutel,
    TutelImproved,
)

#: paper Table 2, Testbed A, GPT2 layer (B=4, L=1024): op -> (fw, bw) ms.
PAPER_TABLE2_A = {
    "AlltoAll": (6.9, 6.9),
    "AllReduce": (0.0, 5.26),
    "AllGather": (4.6, 4.6),
    "ReduceScatter": (5.4, 5.4),
    "Experts": (3.1, 6.1),
    "Attention": (1.7, 3.6),
}


@pytest.fixture(scope="module")
def gpt2_spec_a(parallel_a):
    return MoELayerSpec(
        batch_size=4,
        seq_len=1024,
        embed_dim=1600,
        hidden_scale=4,
        num_experts=parallel_a.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=25,
    )


class TestTable2CalibrationA:
    @pytest.mark.parametrize("phase,col", [("forward", 0), ("backward", 1)])
    def test_within_25_percent_of_paper(
        self, gpt2_spec_a, parallel_a, models_a, phase, col
    ):
        profile = profile_layer(gpt2_spec_a, parallel_a, models_a)
        ours = layer_op_breakdown(profile, models_a, phase)
        for op, values in PAPER_TABLE2_A.items():
            expected = values[col]
            if expected == 0.0:
                assert ours[op] == 0.0
            else:
                assert ours[op] == pytest.approx(expected, rel=0.25), op


class TestOrderingA:
    @pytest.fixture(scope="class")
    def result(self, cluster_a, models_a, parallel_a):
        spec = MoELayerSpec(
            batch_size=2,
            seq_len=1024,
            embed_dim=2048,
            hidden_scale=3,
            num_experts=parallel_a.n_ep,
            top_k=2,
            capacity_factor=1.2,
            num_heads=16,
        )
        systems = [
            DeepSpeedMoE(), Tutel(), TutelImproved(), FSMoENoIIO(), FSMoE(),
        ]
        return evaluate_config(spec, cluster_a, models_a, systems)

    def test_full_ranking(self, result):
        t = result.times_ms
        assert t["FSMoE"] < t["FSMoE-No-IIO"]
        assert t["FSMoE-No-IIO"] <= t["Tutel"] + 1e-9
        assert t["Tutel"] < t["DS-MoE"]

    def test_speedup_band(self, result):
        s = result.speedup("FSMoE", "Tutel")
        assert 1.05 < s < 1.9


class TestMixtralEndToEndA:
    def test_paper_fig6_shape(self, cluster_a, models_a):
        result = evaluate_model(
            MIXTRAL_7B,
            cluster_a,
            models_a,
            [DeepSpeedMoE(), Tutel(), FSMoE()],
            seq_len=1024,
            num_layers=4,
        )
        assert result.speedup("FSMoE", "DS-MoE") > 1.25
        assert result.speedup("FSMoE", "Tutel") > 1.1