"""Tests for the two-step adaptive gradient partitioning (paper §5)."""

import pytest

from repro.core.constraints import PipelineContext
from repro.core.gradient_partition import (
    GeneralizedLayer,
    plan_gradient_partition,
)
from repro.core.perf_model import LinearPerfModel
from repro.errors import SolverError
from repro.units import MB

AR = LinearPerfModel(alpha=0.3, beta=5e-7)


def make_layer(
    grad_mb: float = 10.0,
    dense_ms: float = 5.0,
    expert_heavy: bool = True,
) -> GeneralizedLayer:
    if expert_heavy:
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.15, 1e-7), n_a2a=5e6,
            ag=LinearPerfModel(0.05, 1e-8), n_ag=5e6,
            rs=LinearPerfModel(0.05, 1e-8), n_rs=5e6,
            exp=LinearPerfModel(0.1, 1e-9), n_exp=2e10,
        )
    else:
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.15, 4e-7), n_a2a=6e7,
            ag=LinearPerfModel(0.05, 1e-8), n_ag=2e6,
            rs=LinearPerfModel(0.05, 1e-8), n_rs=2e6,
            exp=LinearPerfModel(0.05, 1e-11), n_exp=1e9,
        )
    return GeneralizedLayer(
        ctx=ctx, dense_overlappable_ms=dense_ms, grad_bytes=grad_mb * MB
    )


class TestConservation:
    @pytest.mark.parametrize("n_layers", [1, 2, 4, 8])
    def test_every_byte_is_placed_once(self, n_layers):
        layers = [make_layer() for _ in range(n_layers)]
        plan = plan_gradient_partition(layers, AR, use_differential_evolution=False)
        placed = (
            sum(plan.moe_window_bytes)
            + sum(plan.dense_window_bytes)
            + sum(plan.extra_bytes)
            + plan.tail_bytes
        )
        total = sum(layer.grad_bytes for layer in layers)
        assert placed == pytest.approx(total)

    def test_conservation_with_de(self):
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, seed=1, de_maxiter=10)
        placed = (
            sum(plan.moe_window_bytes)
            + sum(plan.dense_window_bytes)
            + sum(plan.extra_bytes)
            + plan.tail_bytes
        )
        assert placed == pytest.approx(sum(l.grad_bytes for l in layers))


class TestAvailability:
    def test_single_layer_all_tail(self):
        """A lone layer's gradients exist only after its own backward."""
        plan = plan_gradient_partition([make_layer()], AR)
        assert plan.moe_window_bytes == (0.0,)
        assert plan.dense_window_bytes == (0.0,)
        assert plan.extra_bytes == (0.0,)
        assert plan.tail_bytes == pytest.approx(10 * MB)

    def test_last_layer_hosts_nothing(self):
        """The first-processed (last-index) layer has no upstream grads."""
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, de_maxiter=8, seed=0)
        assert plan.moe_window_bytes[-1] == 0.0
        assert plan.dense_window_bytes[-1] == 0.0
        assert plan.extra_bytes[-1] == 0.0

    def test_prefix_sums_respect_production(self):
        layers = [make_layer(grad_mb=20.0) for _ in range(5)]
        plan = plan_gradient_partition(layers, AR, de_maxiter=8, seed=2)
        consumed = 0.0
        produced = 0.0
        for i in reversed(range(5)):
            consumed += (
                plan.moe_window_bytes[i]
                + plan.dense_window_bytes[i]
                + plan.extra_bytes[i]
            )
            assert consumed <= produced + 1e-6
            produced += layers[i].grad_bytes


class TestQuality:
    def test_windows_absorb_before_tail(self):
        """With large windows and small grads, nothing reaches the tail
        except the first layer's own gradients."""
        layers = [make_layer(grad_mb=2.0, dense_ms=50.0) for _ in range(3)]
        plan = plan_gradient_partition(layers, AR, use_differential_evolution=False)
        assert plan.tail_bytes == pytest.approx(2.0 * MB)

    def test_de_no_worse_than_greedy_only(self):
        layers = [make_layer(grad_mb=60.0, dense_ms=1.0) for _ in range(4)]
        greedy = plan_gradient_partition(
            layers, AR, use_differential_evolution=False
        )
        de = plan_gradient_partition(layers, AR, seed=3)
        assert (
            de.total_estimated_backward_ms()
            <= greedy.total_estimated_backward_ms() + 1e-6
        )

    def test_t_gar_reflects_assigned_bytes(self):
        layers = [make_layer(grad_mb=30.0) for _ in range(3)]
        plan = plan_gradient_partition(layers, AR, seed=4)
        for i in range(3):
            assigned = plan.moe_window_bytes[i] + plan.extra_bytes[i]
            expected = AR.time_ms(assigned)
            assert plan.t_gar_ms[i] == pytest.approx(expected)

    def test_merged_comm_windows_smaller_or_equal(self):
        layers = [make_layer(grad_mb=30.0, dense_ms=0.0) for _ in range(3)]
        dedicated = plan_gradient_partition(
            layers, AR, use_differential_evolution=False
        )
        merged = plan_gradient_partition(
            layers, AR, merged_comm=True, use_differential_evolution=False
        )
        assert sum(merged.moe_window_bytes) <= sum(
            dedicated.moe_window_bytes
        ) + 1e-9


class TestInterface:
    def test_rejects_empty(self):
        with pytest.raises(SolverError):
            plan_gradient_partition([], AR)

    def test_rejects_negative_inputs(self):
        with pytest.raises(SolverError):
            GeneralizedLayer(
                ctx=make_layer().ctx,
                dense_overlappable_ms=-1.0,
                grad_bytes=0.0,
            )
        with pytest.raises(SolverError):
            GeneralizedLayer(
                ctx=make_layer().ctx,
                dense_overlappable_ms=0.0,
                grad_bytes=-5.0,
            )

    def test_zero_gradients(self):
        layers = [
            GeneralizedLayer(
                ctx=make_layer().ctx, dense_overlappable_ms=1.0, grad_bytes=0.0
            )
            for _ in range(2)
        ]
        plan = plan_gradient_partition(layers, AR)
        assert plan.tail_bytes == 0.0
        assert plan.tail_ms == 0.0


class TestStep2Solvers:
    def test_rejects_unknown_solver(self):
        with pytest.raises(SolverError, match="unknown Step-2 solver"):
            plan_gradient_partition([make_layer()], AR, solver="adam")

    def test_none_skips_step2(self):
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, solver="none")
        assert all(x == 0.0 for x in plan.extra_bytes)

    def test_legacy_flag_still_wins(self):
        layers = [make_layer() for _ in range(3)]
        plan = plan_gradient_partition(
            layers, AR, solver="de", use_differential_evolution=False
        )
        assert all(x == 0.0 for x in plan.extra_bytes)

    def test_slsqp_conserves_every_byte(self):
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, solver="slsqp")
        placed = (
            sum(plan.moe_window_bytes)
            + sum(plan.dense_window_bytes)
            + sum(plan.extra_bytes)
            + plan.tail_bytes
        )
        total = sum(layer.grad_bytes for layer in layers)
        assert placed == pytest.approx(total)

    def test_slsqp_respects_availability(self):
        """Cumulative Step-2 bytes from the back never exceed what is
        pending when that layer's backward starts (paper Eq. 5)."""
        layers = [make_layer(grad_mb=40.0) for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, solver="slsqp")
        produced = 0.0
        for i in reversed(range(4)):
            hidden = (
                plan.moe_window_bytes[i]
                + plan.dense_window_bytes[i]
                + plan.extra_bytes[i]
            )
            assert hidden <= produced + 1e-6
            produced += layers[i].grad_bytes - hidden
        assert produced == pytest.approx(plan.tail_bytes)

    def test_slsqp_not_much_worse_than_de(self):
        layers = [make_layer(grad_mb=60.0) for _ in range(4)]
        de = plan_gradient_partition(layers, AR, solver="de", seed=0)
        slsqp = plan_gradient_partition(layers, AR, solver="slsqp")
        greedy = plan_gradient_partition(layers, AR, solver="none")
        # the local solve must land within a few percent of DE and never
        # behind skipping Step 2 entirely
        assert (
            slsqp.total_estimated_backward_ms()
            <= de.total_estimated_backward_ms() * 1.05
        )
        assert (
            slsqp.total_estimated_backward_ms()
            <= greedy.total_estimated_backward_ms() + 1e-9
        )

    def test_fsmoe_system_accepts_solver(self):
        from repro.systems import FSMoE, FSMoENoIIO

        assert FSMoE(solver="slsqp").solver == "slsqp"
        assert FSMoENoIIO(solver="slsqp").solver == "slsqp"
        with pytest.raises(SolverError):
            FSMoE(solver="bogus")
        fp_de = FSMoE(solver="de").fingerprint()
        fp_sl = FSMoE(solver="slsqp").fingerprint()
        assert fp_de != fp_sl
