"""Tests for the two-step adaptive gradient partitioning (paper §5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.constraints import PipelineContext
from repro.core.fastsolve import solver_stats
from repro.core.gradient_partition import (
    GeneralizedLayer,
    _repair,
    _repair_matrix,
    _step1_fill,
    plan_gradient_partition,
    resolve_step2_impl,
)
from repro.core.perf_model import LinearPerfModel
from repro.errors import SolverError
from repro.units import MB

AR = LinearPerfModel(alpha=0.3, beta=5e-7)


def make_layer(
    grad_mb: float = 10.0,
    dense_ms: float = 5.0,
    expert_heavy: bool = True,
) -> GeneralizedLayer:
    if expert_heavy:
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.15, 1e-7), n_a2a=5e6,
            ag=LinearPerfModel(0.05, 1e-8), n_ag=5e6,
            rs=LinearPerfModel(0.05, 1e-8), n_rs=5e6,
            exp=LinearPerfModel(0.1, 1e-9), n_exp=2e10,
        )
    else:
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.15, 4e-7), n_a2a=6e7,
            ag=LinearPerfModel(0.05, 1e-8), n_ag=2e6,
            rs=LinearPerfModel(0.05, 1e-8), n_rs=2e6,
            exp=LinearPerfModel(0.05, 1e-11), n_exp=1e9,
        )
    return GeneralizedLayer(
        ctx=ctx, dense_overlappable_ms=dense_ms, grad_bytes=grad_mb * MB
    )


class TestConservation:
    @pytest.mark.parametrize("n_layers", [1, 2, 4, 8])
    def test_every_byte_is_placed_once(self, n_layers):
        layers = [make_layer() for _ in range(n_layers)]
        plan = plan_gradient_partition(layers, AR, use_differential_evolution=False)
        placed = (
            sum(plan.moe_window_bytes)
            + sum(plan.dense_window_bytes)
            + sum(plan.extra_bytes)
            + plan.tail_bytes
        )
        total = sum(layer.grad_bytes for layer in layers)
        assert placed == pytest.approx(total)

    def test_conservation_with_de(self):
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, seed=1, de_maxiter=10)
        placed = (
            sum(plan.moe_window_bytes)
            + sum(plan.dense_window_bytes)
            + sum(plan.extra_bytes)
            + plan.tail_bytes
        )
        assert placed == pytest.approx(sum(l.grad_bytes for l in layers))


class TestAvailability:
    def test_single_layer_all_tail(self):
        """A lone layer's gradients exist only after its own backward."""
        plan = plan_gradient_partition([make_layer()], AR)
        assert plan.moe_window_bytes == (0.0,)
        assert plan.dense_window_bytes == (0.0,)
        assert plan.extra_bytes == (0.0,)
        assert plan.tail_bytes == pytest.approx(10 * MB)

    def test_last_layer_hosts_nothing(self):
        """The first-processed (last-index) layer has no upstream grads."""
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, de_maxiter=8, seed=0)
        assert plan.moe_window_bytes[-1] == 0.0
        assert plan.dense_window_bytes[-1] == 0.0
        assert plan.extra_bytes[-1] == 0.0

    def test_prefix_sums_respect_production(self):
        layers = [make_layer(grad_mb=20.0) for _ in range(5)]
        plan = plan_gradient_partition(layers, AR, de_maxiter=8, seed=2)
        consumed = 0.0
        produced = 0.0
        for i in reversed(range(5)):
            consumed += (
                plan.moe_window_bytes[i]
                + plan.dense_window_bytes[i]
                + plan.extra_bytes[i]
            )
            assert consumed <= produced + 1e-6
            produced += layers[i].grad_bytes


class TestQuality:
    def test_windows_absorb_before_tail(self):
        """With large windows and small grads, nothing reaches the tail
        except the first layer's own gradients."""
        layers = [make_layer(grad_mb=2.0, dense_ms=50.0) for _ in range(3)]
        plan = plan_gradient_partition(layers, AR, use_differential_evolution=False)
        assert plan.tail_bytes == pytest.approx(2.0 * MB)

    def test_de_no_worse_than_greedy_only(self):
        layers = [make_layer(grad_mb=60.0, dense_ms=1.0) for _ in range(4)]
        greedy = plan_gradient_partition(
            layers, AR, use_differential_evolution=False
        )
        de = plan_gradient_partition(layers, AR, seed=3)
        assert (
            de.total_estimated_backward_ms()
            <= greedy.total_estimated_backward_ms() + 1e-6
        )

    def test_t_gar_reflects_assigned_bytes(self):
        layers = [make_layer(grad_mb=30.0) for _ in range(3)]
        plan = plan_gradient_partition(layers, AR, seed=4)
        for i in range(3):
            assigned = plan.moe_window_bytes[i] + plan.extra_bytes[i]
            expected = AR.time_ms(assigned)
            assert plan.t_gar_ms[i] == pytest.approx(expected)

    def test_merged_comm_windows_smaller_or_equal(self):
        layers = [make_layer(grad_mb=30.0, dense_ms=0.0) for _ in range(3)]
        dedicated = plan_gradient_partition(
            layers, AR, use_differential_evolution=False
        )
        merged = plan_gradient_partition(
            layers, AR, merged_comm=True, use_differential_evolution=False
        )
        assert sum(merged.moe_window_bytes) <= sum(
            dedicated.moe_window_bytes
        ) + 1e-9


class TestInterface:
    def test_rejects_empty(self):
        with pytest.raises(SolverError):
            plan_gradient_partition([], AR)

    def test_rejects_negative_inputs(self):
        with pytest.raises(SolverError):
            GeneralizedLayer(
                ctx=make_layer().ctx,
                dense_overlappable_ms=-1.0,
                grad_bytes=0.0,
            )
        with pytest.raises(SolverError):
            GeneralizedLayer(
                ctx=make_layer().ctx,
                dense_overlappable_ms=0.0,
                grad_bytes=-5.0,
            )

    def test_zero_gradients(self):
        layers = [
            GeneralizedLayer(
                ctx=make_layer().ctx, dense_overlappable_ms=1.0, grad_bytes=0.0
            )
            for _ in range(2)
        ]
        plan = plan_gradient_partition(layers, AR)
        assert plan.tail_bytes == 0.0
        assert plan.tail_ms == 0.0


class TestStep2Solvers:
    def test_rejects_unknown_solver(self):
        with pytest.raises(SolverError, match="unknown Step-2 solver"):
            plan_gradient_partition([make_layer()], AR, solver="adam")

    def test_none_skips_step2(self):
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, solver="none")
        assert all(x == 0.0 for x in plan.extra_bytes)

    def test_legacy_flag_still_wins(self):
        layers = [make_layer() for _ in range(3)]
        plan = plan_gradient_partition(
            layers, AR, solver="de", use_differential_evolution=False
        )
        assert all(x == 0.0 for x in plan.extra_bytes)

    def test_slsqp_conserves_every_byte(self):
        layers = [make_layer() for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, solver="slsqp")
        placed = (
            sum(plan.moe_window_bytes)
            + sum(plan.dense_window_bytes)
            + sum(plan.extra_bytes)
            + plan.tail_bytes
        )
        total = sum(layer.grad_bytes for layer in layers)
        assert placed == pytest.approx(total)

    def test_slsqp_respects_availability(self):
        """Cumulative Step-2 bytes from the back never exceed what is
        pending when that layer's backward starts (paper Eq. 5)."""
        layers = [make_layer(grad_mb=40.0) for _ in range(4)]
        plan = plan_gradient_partition(layers, AR, solver="slsqp")
        produced = 0.0
        for i in reversed(range(4)):
            hidden = (
                plan.moe_window_bytes[i]
                + plan.dense_window_bytes[i]
                + plan.extra_bytes[i]
            )
            assert hidden <= produced + 1e-6
            produced += layers[i].grad_bytes - hidden
        assert produced == pytest.approx(plan.tail_bytes)

    def test_slsqp_not_much_worse_than_de(self):
        layers = [make_layer(grad_mb=60.0) for _ in range(4)]
        de = plan_gradient_partition(layers, AR, solver="de", seed=0)
        slsqp = plan_gradient_partition(layers, AR, solver="slsqp")
        greedy = plan_gradient_partition(layers, AR, solver="none")
        # the local solve must land within a few percent of DE and never
        # behind skipping Step 2 entirely
        assert (
            slsqp.total_estimated_backward_ms()
            <= de.total_estimated_backward_ms() * 1.05
        )
        assert (
            slsqp.total_estimated_backward_ms()
            <= greedy.total_estimated_backward_ms() + 1e-9
        )

    def test_explicit_slsqp_survives_legacy_flag(self):
        """The legacy switch only downgrades DE; an explicit non-DE
        solver is honored as written (it used to be forced to none)."""
        from repro.core.fastsolve import solver_stats

        layers = [make_layer(grad_mb=80.0, dense_ms=1.0) for _ in range(4)]
        before = solver_stats()
        with_flag = plan_gradient_partition(
            layers, AR, solver="slsqp", use_differential_evolution=False
        )
        # Step 2 actually ran: the objective was evaluated (solver="none"
        # never touches it), so the flag no longer silently forced "none".
        assert (solver_stats() - before).step2_objective_calls > 0
        without_flag = plan_gradient_partition(layers, AR, solver="slsqp")
        assert with_flag.extra_bytes == without_flag.extra_bytes
        assert with_flag.tail_bytes == without_flag.tail_bytes

    def test_default_solver_follows_legacy_flag(self):
        layers = [make_layer() for _ in range(3)]
        off = plan_gradient_partition(
            layers, AR, use_differential_evolution=False
        )
        explicit_none = plan_gradient_partition(layers, AR, solver="none")
        assert off.extra_bytes == explicit_none.extra_bytes
        assert off.tail_bytes == explicit_none.tail_bytes

    def test_fsmoe_system_accepts_solver(self):
        from repro.systems import FSMoE, FSMoENoIIO

        assert FSMoE(solver="slsqp").solver == "slsqp"
        assert FSMoENoIIO(solver="slsqp").solver == "slsqp"
        with pytest.raises(SolverError):
            FSMoE(solver="bogus")
        fp_de = FSMoE(solver="de").fingerprint()
        fp_sl = FSMoE(solver="slsqp").fingerprint()
        assert fp_de != fp_sl


def _step1_fill_reference(layers, ar_model, moe_windows_ms):
    """The pre-vectorization Step-1 fill, kept verbatim as the oracle."""
    n = len(layers)
    moe_bytes = [0.0] * n
    dense_bytes = [0.0] * n
    residual_before = [0.0] * n
    pending = 0.0
    for i in reversed(range(n)):
        take_moe = min(pending, ar_model.inverse(moe_windows_ms[i]))
        pending -= take_moe
        moe_bytes[i] = take_moe
        take_dense = min(
            pending, ar_model.inverse(layers[i].dense_overlappable_ms)
        )
        pending -= take_dense
        dense_bytes[i] = take_dense
        residual_before[i] = pending
        pending += layers[i].grad_bytes
    return moe_bytes, dense_bytes, residual_before


def _repair_reference(proposal, residual_before):
    """The pre-vectorization repair loop, kept verbatim as the oracle."""
    n = len(residual_before)
    repaired = np.zeros(n)
    consumed = 0.0
    for i in reversed(range(n)):
        available = max(0.0, residual_before[i] - consumed)
        repaired[i] = min(max(0.0, proposal[i]), available)
        consumed += repaired[i]
    return repaired


@st.composite
def _stacks(draw):
    n = draw(st.integers(1, 5))
    layers = tuple(
        make_layer(
            grad_mb=draw(st.floats(0.0, 80.0)),
            dense_ms=draw(st.floats(0.0, 10.0)),
            expert_heavy=draw(st.booleans()),
        )
        for _ in range(n)
    )
    windows = tuple(draw(st.floats(0.0, 5.0)) for _ in range(n))
    return layers, windows


class TestVectorizedHelpers:
    """The NumPy rewrites are pinned bit-identical to the Python loops."""

    @settings(max_examples=50, deadline=None)
    @given(stack=_stacks())
    def test_step1_fill_matches_reference(self, stack):
        layers, windows = stack
        got = _step1_fill(layers, AR, windows)
        want = _step1_fill_reference(layers, AR, windows)
        assert got == want  # exact: same floats, same IEEE op order

    def test_step1_fill_zero_beta_model(self):
        """beta=0 hits inverse's infinite-capacity branch array-wise."""
        flat = LinearPerfModel(alpha=0.5, beta=0.0)
        layers = tuple(make_layer(grad_mb=10.0, dense_ms=2.0) for _ in range(3))
        windows = (0.1, 1.0, 0.0)
        assert _step1_fill(layers, flat, windows) == _step1_fill_reference(
            layers, flat, windows
        )

    @settings(max_examples=50, deadline=None)
    @given(
        residual=st.lists(st.floats(0.0, 1e8), min_size=1, max_size=6),
        seed=st.integers(0, 1000),
    )
    def test_repair_matrix_rows_match_scalar_repair(self, residual, seed):
        rng = np.random.default_rng(seed)
        proposals = rng.uniform(-1e7, 2e8, size=(7, len(residual)))
        batched = _repair_matrix(proposals, residual)
        for row in range(proposals.shape[0]):
            scalar = _repair(proposals[row], residual)
            assert batched[row].tolist() == scalar.tolist()
            assert scalar.tolist() == _repair_reference(
                proposals[row], residual
            ).tolist()


def _plans_identical(plan_a, plan_b):
    assert plan_a.moe_window_bytes == plan_b.moe_window_bytes
    assert plan_a.dense_window_bytes == plan_b.dense_window_bytes
    assert plan_a.extra_bytes == plan_b.extra_bytes
    assert plan_a.tail_bytes == plan_b.tail_bytes
    assert plan_a.t_gar_ms == plan_b.t_gar_ms
    assert plan_a.tail_ms == plan_b.tail_ms
    assert [s.degree for s in plan_a.solutions] == [
        s.degree for s in plan_b.solutions
    ]


class TestBatchedStep2:
    """`REPRO_STEP2_IMPL=batch` and `=scalar` yield bit-identical plans."""

    @settings(max_examples=15, deadline=None)
    @given(stack=_stacks(), seed=st.integers(0, 50))
    def test_same_seed_same_plan(self, stack, seed):
        layers, _ = stack
        plans = [
            plan_gradient_partition(
                list(layers), AR, seed=seed, de_maxiter=10, step2_impl=impl
            )
            for impl in ("batch", "scalar")
        ]
        _plans_identical(plans[0], plans[1])

    @pytest.mark.parametrize(
        "layers",
        [
            # single layer: everything is tail, Step 2 is a no-op
            [lambda: make_layer()],
            # zero residual: huge dense windows absorb every byte
            [lambda: make_layer(grad_mb=1.0, dense_ms=100.0)] * 3,
            # zero gradients at all
            [lambda: GeneralizedLayer(
                ctx=make_layer().ctx,
                dense_overlappable_ms=1.0,
                grad_bytes=0.0,
            )] * 2,
        ],
        ids=["single-layer", "zero-residual", "zero-grads"],
    )
    def test_degenerate_stacks(self, layers):
        built = [factory() for factory in layers]
        batch = plan_gradient_partition(built, AR, step2_impl="batch")
        scalar = plan_gradient_partition(built, AR, step2_impl="scalar")
        _plans_identical(batch, scalar)

    def test_zero_comm_stack(self):
        """Layers with no communication volume at all still plan."""
        free = LinearPerfModel(alpha=0.0, beta=0.0)
        ctx = PipelineContext(
            a2a=free, n_a2a=0.0, ag=free, n_ag=0.0,
            rs=free, n_rs=0.0, exp=LinearPerfModel(0.1, 1e-9), n_exp=1e9,
        )
        built = [
            GeneralizedLayer(
                ctx=ctx, dense_overlappable_ms=1.0, grad_bytes=20.0 * MB
            )
            for _ in range(3)
        ]
        batch = plan_gradient_partition(built, AR, step2_impl="batch")
        scalar = plan_gradient_partition(built, AR, step2_impl="scalar")
        _plans_identical(batch, scalar)

    def test_env_var_selects_impl(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEP2_IMPL", "scalar")
        assert resolve_step2_impl() == "scalar"
        # an explicit argument wins over the environment
        assert resolve_step2_impl("batch") == "batch"
        monkeypatch.delenv("REPRO_STEP2_IMPL")
        assert resolve_step2_impl() == "batch"

    def test_unknown_impl_rejected(self, monkeypatch):
        with pytest.raises(SolverError, match="unknown Step-2 impl"):
            resolve_step2_impl("turbo")
        monkeypatch.setenv("REPRO_STEP2_IMPL", "bogus")
        with pytest.raises(SolverError, match="unknown Step-2 impl"):
            plan_gradient_partition([make_layer()], AR)

    def test_step2_counters_measure_batching(self):
        layers = [make_layer(grad_mb=80.0, dense_ms=1.0) for _ in range(4)]

        before = solver_stats()
        plan_gradient_partition(layers, AR, seed=7, step2_impl="batch")
        batched = solver_stats() - before
        assert batched.step2_objective_calls > 0
        # a batched pass covers a whole DE population per call
        assert batched.step2_candidates > batched.step2_objective_calls

        before = solver_stats()
        plan_gradient_partition(layers, AR, seed=7, step2_impl="scalar")
        scalar = solver_stats() - before
        # the scalar path evaluates exactly one candidate per call
        assert scalar.step2_objective_calls == scalar.step2_candidates > 0
        # both paths evaluated the same candidates overall
        assert scalar.step2_candidates == batched.step2_candidates
