"""Test package marker: enables the relative imports of shared helpers."""
