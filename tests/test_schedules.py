"""Tests for the task-graph schedule builders (paper Fig. 3)."""

import pytest

from repro.core.constraints import PipelineContext
from repro.core.perf_model import LinearPerfModel
from repro.core.schedules import (
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    SINGLE_STREAM,
    THREE_STREAM,
    TWO_STREAM,
    add_moe_block,
    build_iteration_graph,
    chunk_gradient,
)
from repro.errors import ScheduleError
from repro.sim import TaskGraph, TaskKind, simulate
from repro.units import MB

AR = LinearPerfModel(alpha=0.3, beta=5e-7)

CTX = PipelineContext(
    a2a=LinearPerfModel(0.15, 2e-7), n_a2a=2e7,
    ag=LinearPerfModel(0.05, 5e-8), n_ag=2e7,
    rs=LinearPerfModel(0.05, 5e-8), n_rs=2e7,
    exp=LinearPerfModel(0.1, 5e-10), n_exp=2e10,
)


def make_spec(streams, gar_mode, n_layers=2, grad_mb=10.0, plan=None,
              degree=4):
    layer_fw = LayerPhaseSchedule(ctx=CTX, degree=degree, dense_ms=1.0)
    layer_bw = LayerPhaseSchedule(ctx=CTX, degree=degree, dense_ms=2.0)
    return IterationSpec(
        name="test",
        forward=(layer_fw,) * n_layers,
        backward=(layer_bw,) * n_layers,
        grad_bytes=(grad_mb * MB,) * n_layers,
        ar_model=AR,
        streams=streams,
        gar_mode=gar_mode,
        plan=plan,
    )


class TestMoEBlock:
    def test_task_count_and_kinds(self):
        g = TaskGraph()
        handle = add_moe_block(
            g, CTX, degree=3, streams=THREE_STREAM,
            entry_deps=(), priority_base=0, label="blk",
        )
        assert len(g.tasks) == 5 * 3
        assert len(handle.dispatch_ids) == 3
        assert len(handle.combine_ids) == 3
        kinds = [t.kind for t in g.tasks]
        assert kinds.count(TaskKind.A2A_DISPATCH) == 3
        assert kinds.count(TaskKind.EXPERT) == 3

    def test_chunk_dependency_chain(self):
        g = TaskGraph()
        add_moe_block(
            g, CTX, degree=2, streams=THREE_STREAM,
            entry_deps=(), priority_base=0, label="blk",
        )
        by_name = {t.name: t for t in g.tasks}
        assert by_name["blk AG(0)"].deps == (by_name["blk D(0)"].task_id,)
        assert by_name["blk E(0)"].deps == (by_name["blk AG(0)"].task_id,)
        assert by_name["blk RS(0)"].deps == (by_name["blk E(0)"].task_id,)
        assert by_name["blk C(0)"].deps == (by_name["blk RS(0)"].task_id,)

    def test_streams_respect_map(self):
        g = TaskGraph()
        add_moe_block(
            g, CTX, degree=2, streams=THREE_STREAM,
            entry_deps=(), priority_base=0, label="blk",
        )
        for t in g.tasks:
            if t.kind in (TaskKind.A2A_DISPATCH, TaskKind.A2A_COMBINE):
                assert t.stream == "inter"
            elif t.kind in (TaskKind.ESP_ALLGATHER, TaskKind.ESP_REDUCESCATTER):
                assert t.stream == "intra"
            else:
                assert t.stream == "compute"

    def test_gar_slice_between_dispatch_and_combines(self):
        g = TaskGraph()
        add_moe_block(
            g, CTX, degree=2, streams=THREE_STREAM,
            entry_deps=(), priority_base=0, label="blk",
            gar_slice_ms=1.0,
        )
        by_name = {t.name: t for t in g.tasks}
        gar = by_name["blk GAR(pipe)"]
        assert by_name["blk D(1)"].task_id in gar.deps
        assert gar.task_id in by_name["blk C(0)"].deps

    def test_background_gar_does_not_gate_combines(self):
        g = TaskGraph()
        add_moe_block(
            g, CTX, degree=2, streams=TWO_STREAM,
            entry_deps=(), priority_base=0, label="blk",
            gar_slice_ms=1.0, gar_background=True,
        )
        by_name = {t.name: t for t in g.tasks}
        gar = by_name["blk GAR(pipe)"]
        assert gar.task_id not in by_name["blk C(0)"].deps
        assert gar.priority >= 10**9


class TestIterationGraph:
    def test_single_stream_makespan_is_total_work(self):
        spec = make_spec(SINGLE_STREAM, GarMode.END, degree=1)
        g = build_iteration_graph(spec)
        tl = simulate(g)
        assert tl.makespan_ms == pytest.approx(g.total_work_ms())

    def test_multi_stream_strictly_faster(self):
        sequential = simulate(
            build_iteration_graph(make_spec(SINGLE_STREAM, GarMode.END))
        ).makespan_ms
        overlapped = simulate(
            build_iteration_graph(make_spec(THREE_STREAM, GarMode.END))
        ).makespan_ms
        assert overlapped < sequential

    def test_gar_task_counts(self):
        end = build_iteration_graph(make_spec(TWO_STREAM, GarMode.END))
        dense = build_iteration_graph(
            make_spec(TWO_STREAM, GarMode.DENSE_OVERLAP)
        )
        chunks = build_iteration_graph(
            make_spec(TWO_STREAM, GarMode.FIXED_CHUNKS, grad_mb=70.0)
        )
        def gar_count(g):
            return sum(
                1 for t in g.tasks if t.kind is TaskKind.GRAD_ALLREDUCE
            )
        assert gar_count(end) == 2
        assert gar_count(dense) == 2
        assert gar_count(chunks) == 2 * 3  # 70 MB -> 30 + 30 + 10 per layer

    def test_phase_split(self):
        spec = make_spec(THREE_STREAM, GarMode.END)
        fw = build_iteration_graph(spec, phase="forward")
        bw = build_iteration_graph(spec, phase="backward")
        both = build_iteration_graph(spec, phase="both")
        assert len(fw.tasks) + len(bw.tasks) == len(both.tasks)
        assert all("fw" in t.name for t in fw.tasks)
        assert not any("fw" in t.name for t in bw.tasks)

    def test_unknown_phase_rejected(self):
        with pytest.raises(ScheduleError):
            build_iteration_graph(
                make_spec(THREE_STREAM, GarMode.END), phase="sideways"
            )

    def test_forward_backward_ordering(self):
        spec = make_spec(THREE_STREAM, GarMode.END, n_layers=2)
        tl = simulate(build_iteration_graph(spec))
        fw_end = max(
            r.end_ms for r in tl.records if r.task.name.startswith("fw")
        )
        bw_start = min(
            r.start_ms for r in tl.records if r.task.name.startswith("bw")
        )
        assert bw_start >= fw_end - 1e-9

    def test_gar_end_runs_last(self):
        spec = make_spec(TWO_STREAM, GarMode.END)
        tl = simulate(build_iteration_graph(spec))
        gar_starts = [
            r.start_ms
            for r in tl.records
            if r.task.kind is TaskKind.GRAD_ALLREDUCE
        ]
        non_gar_end = max(
            r.end_ms
            for r in tl.records
            if r.task.kind is not TaskKind.GRAD_ALLREDUCE
        )
        assert min(gar_starts) >= non_gar_end - 1e-9


class TestValidation:
    def test_mismatched_lengths_rejected(self):
        layer = LayerPhaseSchedule(ctx=CTX, degree=1, dense_ms=1.0)
        with pytest.raises(ScheduleError):
            IterationSpec(
                name="bad",
                forward=(layer,),
                backward=(layer, layer),
                grad_bytes=(0.0,),
                ar_model=AR,
                streams=TWO_STREAM,
                gar_mode=GarMode.END,
            )

    def test_adaptive_requires_plan(self):
        layer = LayerPhaseSchedule(ctx=CTX, degree=1, dense_ms=1.0)
        with pytest.raises(ScheduleError):
            IterationSpec(
                name="bad",
                forward=(layer,),
                backward=(layer,),
                grad_bytes=(1.0,),
                ar_model=AR,
                streams=THREE_STREAM,
                gar_mode=GarMode.ADAPTIVE,
            )

    def test_degree_must_be_positive(self):
        with pytest.raises(ScheduleError):
            LayerPhaseSchedule(ctx=CTX, degree=0, dense_ms=1.0)


class TestChunkGradient:
    def test_exact_multiple(self):
        assert chunk_gradient(60 * MB, 30 * MB) == [30 * MB, 30 * MB]

    def test_remainder(self):
        chunks = chunk_gradient(70 * MB, 30 * MB)
        assert chunks[:2] == [30 * MB, 30 * MB]
        assert chunks[2] == pytest.approx(10 * MB)

    def test_zero(self):
        assert chunk_gradient(0.0, 30 * MB) == []

    def test_rejects_bad_chunk(self):
        with pytest.raises(ScheduleError):
            chunk_gradient(10.0, 0.0)
