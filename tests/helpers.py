"""Shared test helpers: random pipeline contexts via hypothesis."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.core.constraints import PipelineContext
from repro.core.perf_model import LinearPerfModel


@st.composite
def pipeline_contexts(
    draw,
    with_gar: bool = False,
    max_alpha: float = 0.5,
) -> PipelineContext:
    """Random but physically plausible pipeline contexts.

    Alphas span launch latencies (0.01-0.5 ms); per-chunk byte/MAC volumes
    span light to heavy layers, so all four cases of §4.2 are reachable.
    """
    def model() -> LinearPerfModel:
        return LinearPerfModel(
            alpha=draw(st.floats(0.01, max_alpha)),
            beta=draw(st.floats(1e-8, 1e-6)),
        )

    volume = st.floats(1e5, 5e8)
    t_gar = draw(st.floats(0.0, 30.0)) if with_gar else 0.0
    return PipelineContext(
        a2a=model(),
        n_a2a=draw(volume),
        ag=model(),
        n_ag=draw(volume),
        rs=model(),
        n_rs=draw(volume),
        exp=LinearPerfModel(
            alpha=draw(st.floats(0.01, max_alpha)),
            beta=draw(st.floats(1e-11, 1e-9)),
        ),
        n_exp=draw(st.floats(1e8, 1e12)),
        t_gar=t_gar,
    )
