"""Smoke tests: the runnable examples must stay runnable.

The two heavyweight capacity-planning examples are exercised indirectly
through the systems/bench tests; here we run the fast, self-contained
ones end to end as subprocesses.
"""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"
SRC = EXAMPLES.parent / "src"

FAST_EXAMPLES = [
    "custom_gate_and_hooks.py",
    "expert_parallel_training.py",
    "soft_vs_hard_routing.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    # pytest's ``pythonpath`` option only patches this process; example
    # subprocesses need the source tree on PYTHONPATH explicitly.
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()  # every example prints its findings


def test_all_examples_exist_and_are_documented():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3  # the deliverable floor
    for script in scripts:
        text = script.read_text()
        assert text.startswith(("#!/usr/bin/env python", '"""')), script.name
        assert '"""' in text, f"{script.name} lacks a docstring"