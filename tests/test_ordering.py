"""Tests for the two ordering functions: equivalence and gradients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe.gates import GShardGate
from repro.moe.ordering import GShardOrder, TutelOrder

M, E, K = 12, 4, 2


def make_assignment(s: int, capacity: int, seed: int):
    rng = np.random.default_rng(seed)
    gate = GShardGate(M, E, K, seed=seed)
    x = rng.normal(size=(s, M))
    return x, gate.assign(x, capacity)


class TestEquivalence:
    @given(s=st.integers(4, 40), cap=st.integers(2, 24), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_forward_identical(self, s, cap, seed):
        x, a = make_assignment(s, cap, seed)
        np.testing.assert_allclose(
            GShardOrder().forward(x, a), TutelOrder().forward(x, a), atol=1e-12
        )

    @given(s=st.integers(4, 40), cap=st.integers(2, 24), seed=st.integers(0, 50))
    @settings(max_examples=40, deadline=None)
    def test_inverse_identical(self, s, cap, seed):
        x, a = make_assignment(s, cap, seed)
        rng = np.random.default_rng(seed + 1)
        buffer = rng.normal(size=(E, a.capacity, M))
        np.testing.assert_allclose(
            GShardOrder().inverse(buffer, a, s),
            TutelOrder().inverse(buffer, a, s),
            atol=1e-12,
        )

    @given(s=st.integers(4, 24), cap=st.integers(2, 16), seed=st.integers(0, 20))
    @settings(max_examples=25, deadline=None)
    def test_backward_identical(self, s, cap, seed):
        x, a = make_assignment(s, cap, seed)
        rng = np.random.default_rng(seed + 2)
        d_buffer = rng.normal(size=(E, a.capacity, M))
        dy = rng.normal(size=(s, M))
        buffer = TutelOrder().forward(x, a)
        g1 = GShardOrder()
        g2 = TutelOrder()
        np.testing.assert_allclose(
            g1.backward_forward(d_buffer, a, s),
            g2.backward_forward(d_buffer, a, s),
            atol=1e-12,
        )
        db1, dw1 = g1.backward_inverse(dy, buffer, a)
        db2, dw2 = g2.backward_inverse(dy, buffer, a)
        np.testing.assert_allclose(db1, db2, atol=1e-12)
        np.testing.assert_allclose(dw1, dw2, atol=1e-12)


class TestSemantics:
    @pytest.mark.parametrize("order_cls", [GShardOrder, TutelOrder])
    def test_buffer_rows_are_selected_tokens(self, order_cls):
        x, a = make_assignment(16, 8, seed=3)
        buffer = order_cls().forward(x, a)
        for e in range(E):
            for t in range(a.capacity):
                token = a.token_ids[e, t]
                if token >= 0:
                    np.testing.assert_allclose(buffer[e, t], x[token])
                else:
                    np.testing.assert_allclose(buffer[e, t], 0.0)

    @pytest.mark.parametrize("order_cls", [GShardOrder, TutelOrder])
    def test_inverse_applies_weights(self, order_cls):
        x, a = make_assignment(16, 32, seed=4)  # ample capacity, no drops
        order = order_cls()
        buffer = order.forward(x, a)
        y = order.inverse(buffer, a, 16)
        # identity experts + normalized GShard weights => y == x exactly
        np.testing.assert_allclose(y, x, atol=1e-9)

    @pytest.mark.parametrize("order_cls", [GShardOrder, TutelOrder])
    def test_forward_backward_adjoint(self, order_cls):
        """<forward(x), g> == <x, backward_forward(g)> (gather adjoint)."""
        x, a = make_assignment(20, 8, seed=5)
        rng = np.random.default_rng(9)
        g = rng.normal(size=(E, a.capacity, M))
        order = order_cls()
        lhs = float(np.sum(order.forward(x, a) * g))
        rhs = float(np.sum(x * order.backward_forward(g, a, 20)))
        assert lhs == pytest.approx(rhs)

    @pytest.mark.parametrize("order_cls", [GShardOrder, TutelOrder])
    def test_inverse_gradients_finite_difference(self, order_cls):
        x, a = make_assignment(10, 6, seed=6)
        order = order_cls()
        rng = np.random.default_rng(11)
        buffer = rng.normal(size=(E, a.capacity, M))
        dy = rng.normal(size=(10, M))
        d_buffer, d_weights = order.backward_inverse(dy, buffer, a)

        eps = 1e-6
        e, t, m = 1, 0, 2
        buffer[e, t, m] += eps
        up = order.inverse(buffer, a, 10)
        buffer[e, t, m] -= 2 * eps
        down = order.inverse(buffer, a, 10)
        buffer[e, t, m] += eps
        fd = float(np.sum((up - down) * dy) / (2 * eps))
        assert d_buffer[e, t, m] == pytest.approx(fd, abs=1e-6)
