"""Fault injection against the network serving tier.

Clients die mid-request and mid-response, the server drains under
load, four clients hammer it concurrently -- and after every scenario
the exact counter invariants must hold: at the network tier
``requests == completed + failed + shed + drained``, at the service
tier ``dedup_hits + resolved == completed``.  Windowed ``since()``
snapshots of :class:`ServiceStats` and :class:`CacheStats` are taken
*while* the load runs and must never tear.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro import (
    NetClient,
    NetServer,
    QueueFullError,
    ServiceError,
    Workspace,
)
from repro.serve import (
    duplicate_heavy_wire_requests,
    retry_priorities,
    run_net_closed_loop,
    run_net_open_loop,
)

TINY_PAYLOAD = {
    "cluster": "B",
    "system": "tutel",
    "solver": "slsqp",
    "stack": {
        "layers": [
            {
                "batch_size": 1,
                "seq_len": 256,
                "embed_dim": 512,
                "num_experts": 8,
                "num_heads": 8,
            }
        ],
        "num_layers": 2,
    },
}


def small_stream(total: int, distinct: int = 4) -> list[dict]:
    """A small duplicate-heavy wire stream (shallow stacks: fast)."""
    return duplicate_heavy_wire_requests(total, distinct, depth=2)


def assert_net_invariant(stats) -> None:
    assert stats.requests == (
        stats.completed + stats.failed + stats.shed + stats.drained
    ), stats.to_dict()


def assert_service_invariant(stats) -> None:
    assert stats.dedup_hits + stats.resolved == stats.completed


def wait_until(predicate, timeout_s: float = 20.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached before timeout")


class TestClientDeath:
    def test_kill_client_mid_request_leaves_server_healthy(self, tmp_path):
        with NetServer(Workspace(tmp_path / "ws"), flush_ms=1.0) as server:
            for _ in range(3):
                host, port = server.address.rsplit(":", 1)
                sock = socket.create_connection((host, int(port)))
                # half a frame, then a hard RST mid-request
                sock.sendall(b'{"op": "plan", "schema": 1, "request')
                sock.setsockopt(
                    socket.SOL_SOCKET,
                    socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
                sock.close()
            client = NetClient(server.address)
            try:
                assert client.ping() is True
                response = client.plan(TINY_PAYLOAD)
                assert response["ok"] is True
            finally:
                client.close()
            stats = server.stats_snapshot()
            assert_net_invariant(stats)
            assert stats.internal_errors == 0

    def test_drop_socket_mid_response_counts_dropped(self, tmp_path):
        # A wide flush window guarantees the client is gone before the
        # response is ready: the resolution outcome is still counted
        # (completed), the undeliverable write as dropped.
        with NetServer(
            Workspace(tmp_path / "ws"), flush_ms=250.0
        ) as server:
            host, port = server.address.rsplit(":", 1)
            sock = socket.create_connection((host, int(port)))
            frame = {
                "op": "plan",
                "schema": 1,
                "request": TINY_PAYLOAD,
            }
            import json

            sock.sendall(json.dumps(frame).encode() + b"\n")
            # wait for admission, then die before the flush resolves it
            wait_until(lambda: server.stats_snapshot().requests == 1)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            sock.close()
            wait_until(lambda: server.stats_snapshot().completed == 1)
            wait_until(lambda: server.stats_snapshot().dropped == 1)
            stats = server.stats_snapshot()
            assert stats.completed == 1
            assert stats.dropped == 1
            assert_net_invariant(stats)
            # and the server still serves others
            client = NetClient(server.address)
            try:
                assert client.ping() is True
            finally:
                client.close()


class TestDrain:
    def test_drain_under_load_answers_every_admitted_request(
        self, tmp_path
    ):
        server = NetServer(Workspace(tmp_path / "ws"), flush_ms=5.0)
        server.start()
        payloads = small_stream(60)
        outcomes = {"ok": 0, "refused": 0, "transport": 0}
        lock = threading.Lock()

        def worker(share):
            client = NetClient(server.address, retries=0, timeout_s=10.0)
            try:
                for payload in share:
                    try:
                        client.plan(payload)
                        key = "ok"
                    except QueueFullError:
                        key = "refused"  # shed or draining: a clean no
                    except ServiceError:
                        key = "transport"  # server gone mid-call
                    with lock:
                        outcomes[key] += 1
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(payloads[k::3],))
            for k in range(3)
        ]
        for thread in threads:
            thread.start()
        # let some requests land, then drain while the rest arrive
        wait_until(lambda: server.stats_snapshot().requests >= 5)
        server.close(drain=True)
        for thread in threads:
            thread.join()
        stats = server.stats_snapshot()
        assert_net_invariant(stats)
        # everything the server admitted was answered with a result
        assert stats.completed + stats.failed >= 1
        assert stats.dropped == 0
        assert outcomes["ok"] == stats.completed
        # post-drain connections are refused at the socket
        with pytest.raises(ServiceError):
            NetClient(server.address, retries=0, timeout_s=1.0).ping()

    def test_close_without_drain_flushes_queued_as_draining(
        self, tmp_path
    ):
        server = NetServer(Workspace(tmp_path / "ws"), flush_ms=5.0)
        server.start()
        payloads = small_stream(40)
        results = []
        lock = threading.Lock()

        def worker(share):
            client = NetClient(server.address, retries=0, timeout_s=10.0)
            try:
                for payload in share:
                    try:
                        client.plan(payload)
                        outcome = "ok"
                    except QueueFullError:
                        outcome = "refused"
                    except ServiceError:
                        outcome = "transport"
                    with lock:
                        results.append(outcome)
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(payloads[k::2],))
            for k in range(2)
        ]
        for thread in threads:
            thread.start()
        wait_until(lambda: server.stats_snapshot().requests >= 3)
        server.close(drain=False)
        for thread in threads:
            thread.join()
        stats = server.stats_snapshot()
        assert_net_invariant(stats)
        assert_service_invariant(server.service.stats_snapshot())


class TestConcurrencyHammer:
    def test_four_client_hammer_counters_balance_exactly(self, tmp_path):
        payloads = small_stream(200)
        priorities = retry_priorities(len(payloads), seed=1)
        with NetServer(
            Workspace(tmp_path / "ws"), flush_ms=2.0
        ) as server:
            result = run_net_closed_loop(
                server.address,
                payloads,
                clients=4,
                priorities=priorities,
            )
            net = server.stats_snapshot()
            service = server.service.stats_snapshot()
            # client-side and server-side tallies agree exactly
            assert result.requests == 200
            assert result.completed + result.shed_gave_up + result.failed \
                == result.requests
            assert result.completed == net.completed
            assert result.failed == 0
            # the exact network-tier invariant
            assert_net_invariant(net)
            assert net.internal_errors == 0
            assert net.dropped == 0
            # the exact service-tier dedup invariant
            assert_service_invariant(service)
            # both lanes actually carried traffic
            lanes = {lane.name: lane for lane in net.lanes}
            assert lanes["interactive"].admitted > 0
            assert lanes["batch"].admitted > 0
            assert net.requests == (
                lanes["interactive"].admitted
                + lanes["batch"].admitted
                + net.shed
                + net.drained
                + net.failed
            )
            # the duplicate-heavy stream deduplicates server-side
            assert service.dedup_hits > 0

    def test_open_loop_driver_measures_from_scheduled_time(self, tmp_path):
        payloads = small_stream(40)
        with NetServer(
            Workspace(tmp_path / "ws"), flush_ms=1.0
        ) as server:
            result = run_net_open_loop(
                server.address,
                payloads,
                rate_rps=400.0,
                clients=4,
            )
            assert result.completed == 40
            assert result.failed == 0 and result.shed_gave_up == 0
            assert len(result.latencies_ms) == 40
            assert result.p95_ms >= result.p50_ms >= 0.0
            assert_net_invariant(server.stats_snapshot())

    def test_overload_sheds_with_retry_after_and_recovers(self, tmp_path):
        # A tiny lane over a capacity-1 service backlog forces sheds:
        # the dispatcher holds its one admitted request (backpressure,
        # never a drop) while the lane bound refuses the burst's tail
        # with retry_after_ms.
        import json as _json

        with NetServer(
            Workspace(tmp_path / "ws"),
            flush_ms=100.0,  # hold the backlog full during the burst
            capacity=1,
            lane_capacity=2,
            per_client=2,
        ) as server:
            host, port = server.address.rsplit(":", 1)
            sock = socket.create_connection((host, int(port)))
            reader = sock.makefile("rb")
            for i in range(10):
                payload = {
                    **TINY_PAYLOAD,
                    "seed": i,  # distinct: no completed-cache hits
                }
                sock.sendall(
                    _json.dumps(
                        {
                            "op": "plan",
                            "schema": 1,
                            "id": i,
                            "request": payload,
                        }
                    ).encode()
                    + b"\n"
                )
            shed_seen = ok_seen = 0
            for _ in range(10):
                response = _json.loads(reader.readline())
                if response["ok"]:
                    ok_seen += 1
                else:
                    assert response["error"]["code"] == "shed"
                    assert response["retry_after_ms"] > 0
                    shed_seen += 1
            reader.close()
            sock.close()
            assert shed_seen > 0
            assert ok_seen + shed_seen == 10
            stats = server.stats_snapshot()
            assert stats.shed == shed_seen
            assert stats.completed == ok_seen
            assert stats.backpressure_waits > 0
            assert_net_invariant(stats)


class TestWindowedSnapshotsUnderLoad:
    def test_service_and_cache_windows_hold_under_live_load(
        self, tmp_path
    ):
        payloads = small_stream(150)
        with NetServer(
            Workspace(tmp_path / "ws"), flush_ms=2.0
        ) as server:
            service = server.service
            workspace = service.workspace
            service_snaps = [service.stats_snapshot()]
            workspace_snaps = [workspace.stats]
            net_snaps = [server.stats_snapshot()]
            stop = threading.Event()

            def sampler():
                while not stop.is_set():
                    service_snaps.append(service.stats_snapshot())
                    workspace_snaps.append(workspace.stats)
                    net_snaps.append(server.stats_snapshot())
                    time.sleep(0.002)

            thread = threading.Thread(target=sampler)
            thread.start()
            result = run_net_closed_loop(
                server.address, payloads, clients=4
            )
            stop.set()
            thread.join()
            service_snaps.append(service.stats_snapshot())
            workspace_snaps.append(workspace.stats)
            net_snaps.append(server.stats_snapshot())

        assert result.completed == 150
        assert len(service_snaps) >= 3, "sampler never ran"

        for before, after in zip(service_snaps, service_snaps[1:]):
            window = after.since(before)
            # no torn reads: every windowed counter is non-negative
            # and the dedup identity holds inside every window.
            assert window.requests >= 0
            assert window.completed >= 0
            assert window.failed >= 0
            assert window.resolved >= 0
            assert window.dedup_hits >= 0
            assert window.batches >= 0
            assert window.dedup_hits + window.resolved == window.completed
            assert window.latency.count >= 0

        for before, after in zip(workspace_snaps, workspace_snaps[1:]):
            cache_window = after.cache - before.cache
            for tier in (
                cache_window.l1,
                cache_window.l2,
                cache_window.l3,
                cache_window.profiles_remote,
            ):
                assert tier.hits >= 0
                assert tier.misses >= 0

        for before, after in zip(net_snaps, net_snaps[1:]):
            assert after.requests >= before.requests
            assert after.completed >= before.completed
            assert after.accounted >= before.accounted

        # whole-run window equals the lifetime counters
        total = service_snaps[-1].since(service_snaps[0])
        assert total.completed == service_snaps[-1].completed
        assert total.dedup_hits + total.resolved == total.completed
