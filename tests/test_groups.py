"""Unit tests for repro.parallel.groups."""

import pytest

from repro.config import ParallelSpec, standard_layout
from repro.errors import TopologyError
from repro.parallel.groups import build_group_layout
from repro.parallel.topology import testbed_a, testbed_b


@pytest.fixture
def layout_b():
    cluster = testbed_b()
    return build_group_layout(cluster, standard_layout(32, 4))


class TestLayoutShape:
    def test_group_counts(self, layout_b):
        assert len(layout_b.mp_groups) == 8  # one per node
        assert len(layout_b.esp_groups) == 8
        assert len(layout_b.ep_groups) == 4  # one per local index
        assert len(layout_b.dp_groups) == 4
        assert len(layout_b.pp_stages) == 1

    def test_mp_groups_are_node_local(self, layout_b):
        for group in layout_b.mp_groups:
            nodes = {rank // 4 for rank in group}
            assert len(nodes) == 1
            assert len(group) == 4

    def test_ep_groups_span_nodes(self, layout_b):
        for group in layout_b.ep_groups:
            assert len(group) == 8
            locals_ = {rank % 4 for rank in group}
            assert len(locals_) == 1  # same local index on every node

    def test_esp_coincides_with_mp(self, layout_b):
        assert layout_b.esp_groups == layout_b.mp_groups

    def test_every_rank_in_every_group_kind(self, layout_b):
        for rank in range(32):
            groups = layout_b.groups_of_rank(rank)
            assert set(groups) == {"mp", "esp", "ep", "dp", "pp"}
            assert rank in groups["mp"]

    def test_rank_out_of_range(self, layout_b):
        with pytest.raises(TopologyError):
            layout_b.groups_of_rank(32)


class TestPipelineStages:
    def test_two_stages_on_testbed_a(self):
        cluster = testbed_a()
        layout = build_group_layout(cluster, standard_layout(48, 8, n_pp=2))
        assert len(layout.pp_stages) == 2
        assert len(layout.pp_stages[0]) == 24
        assert set(layout.pp_stages[0]) == set(range(24))
        # EP groups never cross stage boundaries.
        for group in layout.ep_groups:
            stages = {rank // 24 for rank in group}
            assert len(stages) == 1


class TestValidation:
    def test_rejects_wrong_mp_width(self):
        with pytest.raises(TopologyError):
            build_group_layout(
                testbed_b(),
                ParallelSpec(n_dp=8, n_mp=8, n_ep=8, n_esp=8),
            )

    def test_rejects_wrong_ep_width(self):
        with pytest.raises(TopologyError):
            build_group_layout(
                testbed_b(),
                ParallelSpec(n_dp=4, n_mp=4, n_ep=4, n_esp=4),
            )

    def test_rejects_uneven_pp(self):
        with pytest.raises(TopologyError):
            build_group_layout(
                testbed_b(),
                ParallelSpec(n_dp=8, n_mp=4, n_ep=8, n_esp=4, n_pp=3),
            )
