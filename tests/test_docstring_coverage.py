"""The docstring-coverage gate: public API documentation cannot erode."""

from __future__ import annotations

import textwrap

from repro.report.doccheck import (
    BASELINE_COVERAGE,
    default_root,
    main,
    scan_tree,
)


class TestScanTree:
    def test_counts_public_defs_only(self, tmp_path):
        package = tmp_path / "pkg"
        package.mkdir()
        (package / "__init__.py").write_text('"""Package doc."""\n')
        (package / "mod.py").write_text(textwrap.dedent(
            '''
            """Module doc."""

            def documented():
                """Doc."""

            def undocumented():
                pass

            def _private():
                pass

            class Public:
                """Doc."""

                def method(self):
                    pass

                def __dunder__(self):
                    pass

            class _Hidden:
                def whatever(self):
                    pass
            '''
        ))
        (package / "_internal.py").write_text("def anything():\n    pass\n")
        report = scan_tree(package)
        # pkg, pkg.mod, documented, undocumented, Public, Public.method
        assert report.total == 6
        assert report.documented == 4
        assert set(report.missing) == {
            "pkg.mod.undocumented", "pkg.Public.method".replace(
                "pkg.Public", "pkg.mod.Public"
            ),
        }

    def test_empty_tree_is_full_coverage(self, tmp_path):
        assert scan_tree(tmp_path / "nothing").coverage == 1.0


class TestGate:
    def test_repro_package_meets_the_baseline(self):
        report = scan_tree(default_root())
        assert report.coverage >= BASELINE_COVERAGE, (
            f"public docstring coverage dropped to "
            f"{report.coverage:.1%} (< {BASELINE_COVERAGE:.0%}); "
            f"undocumented: {report.missing[:10]}"
        )

    def test_main_exit_codes(self, tmp_path, capsys):
        package = tmp_path / "p"
        package.mkdir()
        (package / "__init__.py").write_text("def f():\n    pass\n")
        assert main(["--root", str(package), "--min", "0.0"]) == 0
        assert main(["--root", str(package), "--min", "1.0"]) == 1
        err = capsys.readouterr().err
        assert "missing docstring: p.f" in err
