"""Tests for timeline exports (rows + Chrome trace)."""

import json

from repro.sim import TaskGraph, TaskKind, simulate


def build_timeline():
    g = TaskGraph()
    a = g.add("dispatch", TaskKind.A2A_DISPATCH, "inter", 2.0)
    b = g.add("experts", TaskKind.EXPERT, "compute", 3.0, deps=(a,))
    g.add("combine", TaskKind.A2A_COMBINE, "inter", 2.0, deps=(b,))
    return simulate(g)


class TestRows:
    def test_one_row_per_task(self):
        rows = build_timeline().to_rows()
        assert len(rows) == 3
        assert {row["name"] for row in rows} == {
            "dispatch", "experts", "combine"
        }

    def test_row_fields(self):
        rows = build_timeline().to_rows()
        first = min(rows, key=lambda r: r["start_ms"])
        assert first["name"] == "dispatch"
        assert first["kind"] == "a2a_dispatch"
        assert first["stream"] == "inter"
        assert first["duration_ms"] == 2.0
        assert first["end_ms"] == first["start_ms"] + first["duration_ms"]


class TestChromeTrace:
    def test_valid_json_with_duration_events(self):
        trace = json.loads(build_timeline().to_chrome_trace())
        events = trace["traceEvents"]
        duration_events = [e for e in events if e["ph"] == "X"]
        assert len(duration_events) == 3
        for event in duration_events:
            assert event["dur"] > 0
            assert event["ts"] >= 0

    def test_streams_become_threads(self):
        trace = json.loads(build_timeline().to_chrome_trace())
        metadata = [
            e for e in trace["traceEvents"] if e.get("cat") == "__metadata"
        ]
        assert {m["args"]["name"] for m in metadata} == {"inter", "compute"}

    def test_microsecond_units(self):
        trace = json.loads(build_timeline().to_chrome_trace())
        dispatch = next(
            e for e in trace["traceEvents"]
            if e.get("name") == "dispatch" and e["ph"] == "X"
        )
        assert dispatch["dur"] == 2000.0  # 2 ms -> 2000 us


class TestJsonRoundTrip:
    def test_reconstructs_equal_timeline(self):
        original = build_timeline()
        replayed = type(original).from_json(original.to_json())
        assert replayed == original
        assert replayed.makespan_ms == original.makespan_ms
        assert replayed.streams == original.streams

    def test_keeps_all_task_fields(self):
        original = build_timeline()
        replayed = type(original).from_json(original.to_json())
        for before, after in zip(original.records, replayed.records):
            assert after.task == before.task  # kind, deps, priority intact

    def test_unknown_version_rejected(self):
        import pytest

        from repro.sim.timeline import Timeline

        text = build_timeline().to_json()
        data = json.loads(text)
        data["version"] = 99
        with pytest.raises(ValueError):
            Timeline.from_json(json.dumps(data))
