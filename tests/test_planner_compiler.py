"""Tests for PlanCompiler: cached front-end, heterogeneous back-end."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.moe.gates import GateKind
from repro.parallel.collectives import A2AAlgorithm, CollectiveCostModel
from repro.planner import PlanCompiler, ProfileStore
from repro.systems import FSMoE, Tutel


@pytest.fixture(scope="module")
def compiler(cluster_b):
    return PlanCompiler(cluster_b)


class TestFrontEnd:
    def test_default_layout_is_standard(self, compiler, cluster_b):
        assert compiler.parallel.n_mp == cluster_b.gpus_per_node
        assert compiler.parallel.n_ep == cluster_b.num_nodes

    def test_profiling_is_cached(self, cluster_b, small_spec):
        store = ProfileStore()
        compiler = PlanCompiler(cluster_b, store=store)
        compiler.layer_profile(small_spec)
        compiler.layer_profile(small_spec)
        assert store.stats.cluster_misses == 1
        assert store.stats.layer_misses == 1
        assert store.stats.layer_hits == 1

    def test_injected_models_skip_profiling(
        self, cluster_b, models_b, small_spec
    ):
        store = ProfileStore()
        compiler = PlanCompiler(cluster_b, store=store, models=models_b)
        assert compiler.models is models_b
        compiler.layer_profile(small_spec)
        assert store.stats.cluster_misses == 0
        with pytest.raises(ConfigError):
            compiler.fit_quality

    def test_fit_quality_from_profiling_run(self, compiler):
        quality = compiler.fit_quality
        assert set(quality) == {
            "a2a", "allgather", "reducescatter", "allreduce", "gemm"
        }
        assert all(r2 > 0.999 for r2 in quality.values())


class TestStacks:
    def test_single_spec_is_one_layer(self, compiler, small_spec):
        profiles = compiler.resolve_stack(small_spec)
        assert len(profiles) == 1

    def test_per_layer_gate_kinds(self, compiler, small_spec):
        profiles = compiler.resolve_stack(
            [small_spec, small_spec],
            gate_kind=[GateKind.GSHARD, GateKind.EXPERT_CHOICE],
        )
        # expert-choice fills experts exactly -> different a2a volume.
        assert profiles[0].volumes.a2a_bytes != profiles[1].volumes.a2a_bytes

    def test_empty_stack_rejected(self, compiler):
        with pytest.raises(ConfigError):
            compiler.resolve_stack([])

    def test_gate_kind_length_mismatch_rejected(self, compiler, small_spec):
        with pytest.raises(ConfigError):
            compiler.resolve_stack(
                [small_spec, small_spec], gate_kind=[GateKind.GSHARD]
            )

    def test_fsmoe_beats_tutel_through_compiler(self, compiler, small_spec):
        stack = [small_spec, small_spec]
        t_fsmoe = compiler.iteration_time_ms(stack, FSMoE())
        t_tutel = compiler.iteration_time_ms(stack, Tutel())
        assert t_fsmoe < t_tutel

    def test_system_compile_plan_hook_matches_compiler(
        self, compiler, small_spec
    ):
        profiles = compiler.resolve_stack([small_spec, small_spec])
        via_system = FSMoE().compile_plan(profiles, compiler.models)
        via_compiler = compiler.compile([small_spec, small_spec], FSMoE())
        assert via_system == via_compiler


class TestBestA2AAlgorithm:
    def test_winner_matches_cost_table_minimum(
        self, compiler, cluster_b, small_spec
    ):
        """Regression: the pick must be the argmin of the oracle costs."""
        from repro.parallel.volumes import compute_layer_volumes

        best, costs = compiler.best_a2a_algorithm(small_spec)
        assert set(costs) == set(A2AAlgorithm)
        assert costs[best] == min(costs.values())

        # independently recompute the table from the collective oracle.
        volumes = compute_layer_volumes(small_spec, compiler.parallel)
        oracle = CollectiveCostModel(cluster_b)
        expected = {
            algo: oracle.alltoall_ms(
                volumes.a2a_bytes, compiler.parallel.n_ep, algo
            )
            for algo in A2AAlgorithm
        }
        assert costs == expected
        assert best == min(expected, key=expected.get)

    def test_cost_table_cached_per_message_size(self, cluster_b, small_spec):
        compiler = PlanCompiler(cluster_b)
        compiler.best_a2a_algorithm(small_spec)
        # same AlltoAll bytes (num_heads does not change dispatch volume)
        # -> same cache entry; different seq_len -> new entry.
        compiler.best_a2a_algorithm(small_spec.with_(num_heads=8))
        assert len(compiler._a2a_costs) == 1
        compiler.best_a2a_algorithm(small_spec.with_(seq_len=1024))
        assert len(compiler._a2a_costs) == 2

    def test_returned_table_is_a_copy(self, compiler, small_spec):
        _, costs = compiler.best_a2a_algorithm(small_spec)
        costs[A2AAlgorithm.NCCL] = -1.0
        _, fresh = compiler.best_a2a_algorithm(small_spec)
        assert fresh[A2AAlgorithm.NCCL] > 0
