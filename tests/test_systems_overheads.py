"""Tests for system-specific overhead modelling paths."""

import pytest

from repro.bench import evaluate_model
from repro.models import GPT2_XL, profile_layer
from repro.moe.gates import GateKind
from repro.systems import DeepSpeedMoE, FSMoE
from repro.systems.dsmoe import ROUTING_OVERHEAD


class TestDSMoERoutingOverhead:
    def test_overhead_constant_is_sane(self):
        assert ROUTING_OVERHEAD > 1.0

    def test_dense_time_includes_routing_penalty(self, profile_b, models_b):
        spec = DeepSpeedMoE().build_iteration_spec((profile_b,), models_b)
        penalty = (ROUTING_OVERHEAD - 1.0) * (
            profile_b.gate_ms + profile_b.order_ms
        )
        assert spec.forward[0].dense_ms == pytest.approx(
            profile_b.dense_fw_ms + penalty
        )

    def test_fsmoe_does_not_pay_it(self, profile_b, models_b):
        spec = FSMoE().build_iteration_spec((profile_b,), models_b)
        assert spec.forward[0].dense_ms == pytest.approx(
            profile_b.dense_fw_ms
        )


class TestEvaluateModelOverrides:
    def test_routing_overhead_by_system(self, cluster_b, models_b):
        plain = evaluate_model(
            GPT2_XL, cluster_b, models_b, [DeepSpeedMoE()],
            seq_len=256, num_layers=2,
        )
        penalized = evaluate_model(
            GPT2_XL, cluster_b, models_b, [DeepSpeedMoE()],
            seq_len=256, num_layers=2,
            routing_overhead_by_system={"DS-MoE": 10.0},
        )
        assert penalized.times_ms["DS-MoE"] > plain.times_ms["DS-MoE"]

    def test_override_only_hits_named_system(self, cluster_b, models_b):
        result = evaluate_model(
            GPT2_XL, cluster_b, models_b, [DeepSpeedMoE(), FSMoE()],
            seq_len=256, num_layers=2,
            routing_overhead_by_system={"DS-MoE": 10.0},
        )
        baseline = evaluate_model(
            GPT2_XL, cluster_b, models_b, [FSMoE()],
            seq_len=256, num_layers=2,
        )
        assert result.times_ms["FSMoE"] == pytest.approx(
            baseline.times_ms["FSMoE"]
        )

    def test_gate_kind_flows_through(self, cluster_b, models_b):
        gshard = evaluate_model(
            GPT2_XL, cluster_b, models_b, [FSMoE()],
            seq_len=256, num_layers=2, gate_kind=GateKind.GSHARD,
        )
        ec = evaluate_model(
            GPT2_XL, cluster_b, models_b, [FSMoE()],
            seq_len=256, num_layers=2, gate_kind=GateKind.EXPERT_CHOICE,
        )
        # expert choice moves less data (f -> 1.0), so it is faster.
        assert ec.times_ms["FSMoE"] < gshard.times_ms["FSMoE"]


class TestAnalyticTracksExecutedBroadly:
    def test_forward_consistency_on_profile(self, profile_b, models_b):
        """FSMoE's analytic forward time tracks the executed forward."""
        from repro.core.pipeline_degree import find_optimal_pipeline_degree

        system = FSMoE()
        executed = system.iteration_time_ms(
            (profile_b,), models_b, phase="forward", include_gar=False
        )
        sol = find_optimal_pipeline_degree(profile_b.ctx_fw)
        analytic = sol.time_ms + profile_b.dense_fw_ms
        # dependency-exact DES vs head/tail-approximate closed form
        assert executed == pytest.approx(analytic, rel=0.35)