"""Workspace sessions: persistent caches, warm starts, corruption handling."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    ExperimentSpec,
    FSMoE,
    MoELayerSpec,
    StackSpec,
    Tutel,
    Workspace,
    WorkspaceError,
)
from repro import testbed_b as make_testbed_b
from repro.api.workspace import WORKSPACE_SCHEMA_VERSION

SRC = Path(__file__).parent.parent / "src"


def tiny_spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        name="tiny",
        clusters=("B",),
        systems=("tutel", "fsmoe"),
        stacks=(
            StackSpec(
                layers=(
                    MoELayerSpec(
                        batch_size=1,
                        seq_len=256,
                        embed_dim=512,
                        num_experts=8,
                        num_heads=8,
                    ),
                ),
                num_layers=2,
            ),
        ),
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestWorkspaceBasics:
    def test_cold_sweep_populates_both_caches(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        result = ws.sweep(tiny_spec())
        assert len(result) == 2
        stats = ws.stats
        assert stats.plan_misses == 2 and stats.plan_hits == 0
        assert stats.profiles.misses > 0
        assert (tmp_path / "ws" / "profiles.json").exists()
        assert len(list((tmp_path / "ws" / "plans").glob("*.json"))) == 2

    def test_same_session_rerun_hits_plan_cache(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        ws.sweep(tiny_spec())
        before = ws.stats
        ws.sweep(tiny_spec())
        after = ws.stats
        assert after.plan_misses == before.plan_misses
        assert after.plan_hits == before.plan_hits + 2
        assert after.profiles.misses == before.profiles.misses

    def test_warm_reopen_is_fully_cached(self, tmp_path):
        root = tmp_path / "ws"
        cold = Workspace(root).sweep(tiny_spec())
        warm_ws = Workspace(root)
        warm = warm_ws.sweep(tiny_spec())
        stats = warm_ws.stats
        assert stats.warm
        assert stats.profiles.misses == 0
        assert stats.plan_misses == 0
        assert stats.plan_hits == 2
        # bit-identical replay: same simulated timelines, same makespans
        for a, b in zip(cold.points, warm.points):
            assert a.makespan_ms == b.makespan_ms
            assert a.plan.simulate() == b.plan.simulate()

    def test_different_spec_misses(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        ws = Workspace(root)
        ws.sweep(tiny_spec(seed=7))  # different profiling seed
        assert ws.stats.plan_misses == 2

    def test_plan_api_uses_cache(self, tmp_path):
        root = tmp_path / "ws"
        ws = Workspace(root)
        spec = MoELayerSpec(embed_dim=512, num_experts=8, num_heads=8)
        cluster = make_testbed_b()
        plan = ws.plan([spec, spec], FSMoE(), cluster)
        assert ws.stats.plan_misses == 1
        ws2 = Workspace(root)
        replay = ws2.plan([spec, spec], FSMoE(), cluster)
        assert ws2.stats.plan_hits == 1 and ws2.stats.plan_misses == 0
        assert replay.simulate() == plan.simulate()

    def test_solver_is_part_of_plan_identity(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        spec = MoELayerSpec(embed_dim=512, num_experts=8, num_heads=8)
        cluster = make_testbed_b()
        ws.plan([spec, spec], FSMoE(solver="de"), cluster)
        ws.plan([spec, spec], FSMoE(solver="slsqp"), cluster)
        assert ws.stats.plan_misses == 2  # distinct cache entries

    def test_system_identity_not_just_name(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        spec = MoELayerSpec(embed_dim=512, num_experts=8, num_heads=8)
        cluster = make_testbed_b()
        ws.plan(spec, Tutel(), cluster)
        ws.plan(spec, Tutel(r_max=4), cluster)
        assert ws.stats.plan_misses == 2

    def test_every_system_knob_reaches_the_fingerprint(self, tmp_path):
        """Differently-configured instances of each system must never
        share a plan-cache entry."""
        from repro.systems import PipeMoELina

        ws = Workspace(tmp_path / "ws")
        spec = MoELayerSpec(embed_dim=512, num_experts=8, num_heads=8)
        cluster = make_testbed_b()
        ws.plan(spec, PipeMoELina(), cluster)
        ws.plan(spec, PipeMoELina(chunk_bytes=1e6), cluster)
        assert ws.stats.plan_misses == 2

    def test_clear_empties_disk_and_counters(self, tmp_path):
        root = tmp_path / "ws"
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        ws.clear()
        assert ws.cache_info()["plan_entries"] == 0
        assert not (root / "profiles.json").exists()
        assert ws.stats.plan_hits == ws.stats.plan_misses == 0
        # planning again recompiles from scratch
        ws.sweep(tiny_spec())
        assert ws.stats.plan_misses == 2


class TestSweepGateOverrides:
    def test_per_layer_gates_change_the_plan(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        uniform = ws.sweep(tiny_spec(systems=("fsmoe",)))
        overridden = ws.sweep(
            tiny_spec(
                systems=("fsmoe",),
                stacks=(
                    StackSpec(
                        layers=(
                            MoELayerSpec(
                                batch_size=1,
                                seq_len=256,
                                embed_dim=512,
                                num_experts=8,
                                num_heads=8,
                            ),
                        ),
                        num_layers=2,
                        gates=("xmoe", "expert_choice"),
                    ),
                ),
            )
        )
        # Distinct gating is a distinct plan identity (no false cache hit).
        assert ws.stats.plan_misses == 2
        row = overridden.points[0].row()
        assert row["gate_kind"] == "xmoe,expert_choice"
        assert uniform.points[0].row()["gate_kind"] == "gshard"

    def test_stats_expose_solver_counters(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        ws.sweep(tiny_spec(systems=("fsmoe",)))
        solver = ws.stats.solver
        assert solver.solves > 0
        assert solver.batch_calls > 0
        assert solver.max_batch_size >= 1


class TestPlanGC:
    def test_gc_evicts_only_stale_plan_files(self, tmp_path):
        root = tmp_path / "ws"
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        plans = sorted((root / "plans").glob("*.json"))
        assert len(plans) == 2
        stale = plans[0]
        stale_bytes = stale.stat().st_size
        old = 10 * 86400
        os.utime(stale, (stale.stat().st_atime - old,
                         stale.stat().st_mtime - old))

        swept = Workspace.gc_plans(root, max_age_days=7)
        assert swept["removed"] == 1 and swept["kept"] == 1
        assert swept["removed_bytes"] == stale_bytes
        assert swept["kept_bytes"] > 0
        assert not stale.exists() and plans[1].exists()

        # Nothing left to evict on a second pass.
        again = Workspace.gc_plans(root, max_age_days=7)
        assert again["removed"] == 0 and again["kept"] == 1
        assert again["removed_bytes"] == 0

    def test_gc_rejects_negative_age(self, tmp_path):
        from repro import ConfigError

        with pytest.raises(ConfigError):
            Workspace.gc_plans(tmp_path, max_age_days=-1)

    def test_gc_age_zero_evicts_everything(self, tmp_path):
        root = tmp_path / "ws"
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        old = 60  # any mtime in the past is older than "0 days"
        for path in (root / "plans").glob("*.json"):
            os.utime(path, (path.stat().st_atime - old,
                            path.stat().st_mtime - old))
        swept = Workspace.gc_plans(root, max_age_days=0)
        assert swept["removed"] == 2 and swept["kept"] == 0


class TestWorkspacePersistenceEdges:
    def test_cross_process_warm_start(self, tmp_path):
        """A second *process* re-running the sweep computes nothing new."""
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        program = (
            "from repro import Workspace\n"
            "from tests.test_workspace import tiny_spec\n"
            f"ws = Workspace({str(root)!r})\n"
            "ws.sweep(tiny_spec())\n"
            "stats = ws.stats\n"
            "assert stats.warm, stats\n"
            "print('profile_misses', stats.profiles.misses,"
            " 'plan_misses', stats.plan_misses,"
            " 'plan_hits', stats.plan_hits)\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC), str(SRC.parent), env.get("PYTHONPATH", "")]
        )
        result = subprocess.run(
            [sys.executable, "-c", program],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "profile_misses 0 plan_misses 0 plan_hits 2" in result.stdout

    def test_schema_version_mismatch_is_refused(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        payload = json.loads((root / "profiles.json").read_text())
        payload["schema_version"] = WORKSPACE_SCHEMA_VERSION + 1
        (root / "profiles.json").write_text(json.dumps(payload))
        with pytest.raises(WorkspaceError, match="schema version"):
            Workspace(root)

    def test_plan_schema_version_mismatch_is_refused(self, tmp_path):
        root = tmp_path / "ws"
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        plan_file = next((root / "plans").glob("*.json"))
        payload = json.loads(plan_file.read_text())
        payload["schema_version"] = WORKSPACE_SCHEMA_VERSION + 1
        plan_file.write_text(json.dumps(payload))
        fresh = Workspace(root)
        with pytest.raises(WorkspaceError, match="schema version"):
            fresh.sweep(tiny_spec())

    def test_truncated_profiles_file_recovers(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        text = (root / "profiles.json").read_text()
        (root / "profiles.json").write_text(text[: len(text) // 2])
        with pytest.warns(UserWarning, match="unreadable"):
            ws = Workspace(root)
        # quarantined, not deleted; session still fully usable
        assert (root / "profiles.json.corrupt").exists()
        ws.sweep(tiny_spec())
        assert ws.stats.plan_hits == 2  # plan cache survived unharmed
        # an uncached variant must re-profile: the store really was lost
        ws.sweep(tiny_spec(seed=3))
        assert ws.stats.profiles.misses > 0

    def test_truncated_plan_file_recovers(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        plan_file = next((root / "plans").glob("*.json"))
        plan_file.write_text(plan_file.read_text()[:40])
        fresh = Workspace(root)
        with pytest.warns(UserWarning, match="unreadable"):
            fresh.sweep(tiny_spec())
        stats = fresh.stats
        assert stats.plan_misses == 1 and stats.plan_hits == 1
        # the recompiled plan replaced the truncated file
        warm = Workspace(root)
        warm.sweep(tiny_spec())
        assert warm.stats.warm

    def test_undecodable_profile_entries_are_skipped(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        payload = json.loads((root / "profiles.json").read_text())
        payload["entries"].append({"k": {"__dc__": "FutureType", "f": {}},
                                  "v": None})
        (root / "profiles.json").write_text(json.dumps(payload))
        ws = Workspace(root)  # must not raise
        ws.sweep(tiny_spec())
        assert ws.stats.plan_hits == 2

    def test_root_expands_home_shorthand(self, tmp_path, monkeypatch):
        monkeypatch.setenv("HOME", str(tmp_path))
        ws = Workspace("~/ws-home-test")
        assert ws.root == tmp_path / "ws-home-test"
        assert not (Path.cwd() / "~").exists()

    def test_discard_works_without_opening(self, tmp_path):
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        payload = json.loads((root / "profiles.json").read_text())
        payload["schema_version"] = 999
        (root / "profiles.json").write_text(json.dumps(payload))
        removed = Workspace.discard(root)
        assert removed["profiles"] == 1 and removed["plans"] == 2
        # and the workspace opens cleanly again
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        assert ws.stats.plan_misses == 2

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        root = tmp_path / "ws"
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        ws.save()
        # the persistent advisory lock file is deliberate; anything else
        # hidden would be a leaked temp file from a non-atomic write
        leftovers = [
            p
            for p in root.iterdir()
            if p.name.startswith(".") and p.name != ".workspace.lock"
        ]
        assert leftovers == []
