"""The plan-serving layer: coalescing, dedup, errors, stats wiring."""

from __future__ import annotations

import threading

import pytest

from repro import (
    Client,
    ConfigError,
    MoELayerSpec,
    PlanRequest,
    PlanService,
    QueueFullError,
    ServiceClosedError,
    Workspace,
)
from repro.serve import duplicate_heavy_requests
from repro.serve.stats import percentile
from repro.systems.registry import get_system


def tiny_request(cluster_b, *, seq_len=256, system="tutel", depth=2):
    layer = MoELayerSpec(
        batch_size=1,
        seq_len=seq_len,
        embed_dim=512,
        num_experts=8,
        num_heads=8,
    )
    return PlanRequest(
        stack=(layer,) * depth,
        system=get_system(system, solver="slsqp"),
        cluster=cluster_b,
    )


@pytest.fixture()
def workspace(tmp_path):
    return Workspace(tmp_path / "ws")


class TestCoalescingAndDedup:
    def test_duplicate_burst_resolves_once(self, workspace, cluster_b):
        request = tiny_request(cluster_b)
        # A wide flush window guarantees the whole burst lands in one
        # batch, making every counter exact.
        with PlanService(workspace, flush_ms=250.0) as service:
            futures = [service.submit(request) for _ in range(40)]
            plans = [future.result() for future in futures]
            stats = service.stats_snapshot()
        assert stats.requests == 40
        assert stats.completed == 40
        assert stats.resolved == 1  # 100% dedup beyond the first
        assert stats.dedup_hits == 39
        assert stats.batches == 1 and stats.max_batch == 40
        assert workspace.stats.plan_misses == 1
        first = plans[0].to_json()
        assert all(plan.to_json() == first for plan in plans)

    def test_equal_configured_system_instances_coalesce(
        self, workspace, cluster_b
    ):
        layer = MoELayerSpec(
            batch_size=1, seq_len=256, embed_dim=512,
            num_experts=8, num_heads=8,
        )
        with PlanService(workspace, flush_ms=250.0) as service:
            futures = [
                service.submit(
                    PlanRequest(
                        stack=(layer,),
                        # fresh instance per request: identity must key
                        # on the fingerprint, not the object
                        system=get_system("tutel"),
                        cluster=cluster_b,
                    )
                )
                for _ in range(5)
            ]
            [future.result() for future in futures]
            stats = service.stats_snapshot()
        assert stats.resolved == 1 and stats.dedup_hits == 4

    def test_mixed_stream_bit_identical_to_serial(
        self, tmp_path, cluster_b
    ):
        requests = [
            tiny_request(cluster_b, seq_len=256, system="tutel"),
            tiny_request(cluster_b, seq_len=256, system="fsmoe"),
            tiny_request(cluster_b, seq_len=512, system="tutel"),
        ] * 6
        serial_ws = Workspace(tmp_path / "serial")
        serial = [
            serial_ws.plan(req.stack, req.system, req.cluster)
            for req in requests
        ]
        service_ws = Workspace(tmp_path / "service")
        with PlanService(service_ws, flush_ms=100.0) as service:
            futures = [service.submit(req) for req in requests]
            served = [future.result() for future in futures]
            stats = service.stats_snapshot()
        assert [p.to_json() for p in served] == [
            p.to_json() for p in serial
        ]
        # invariant: every completion is either a resolution or a dedup
        assert stats.dedup_hits + stats.resolved == stats.completed == 18

    def test_threaded_clients_get_identical_plans(
        self, tmp_path, cluster_b
    ):
        requests = [
            tiny_request(cluster_b, seq_len=256),
            tiny_request(cluster_b, seq_len=384),
            tiny_request(cluster_b, seq_len=256, system="fsmoe"),
        ]
        serial_ws = Workspace(tmp_path / "serial")
        expected = {
            id(req): serial_ws.plan(req.stack, req.system, req.cluster)
            .to_json()
            for req in requests
        }
        service_ws = Workspace(tmp_path / "service")
        errors: list[BaseException] = []

        with PlanService(service_ws, flush_ms=5.0) as service:
            client = Client(service)

            def hammer(worker: int) -> None:
                try:
                    for i in range(12):
                        req = requests[(worker + i) % len(requests)]
                        plan = client.plan(
                            req.stack, req.system, req.cluster
                        )
                        assert plan.to_json() == expected[id(req)]
                except BaseException as exc:  # surfaced below
                    errors.append(exc)

            threads = [
                threading.Thread(target=hammer, args=(w,)) for w in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = service.stats_snapshot()
        assert errors == []
        assert stats.completed == 72 and stats.failed == 0
        assert stats.dedup_hits + stats.resolved == stats.completed
        # only 3 distinct plans exist however the batches landed
        assert service_ws.stats.plan_misses == 3

    def test_worker_pool_matches_serial_resolution(
        self, tmp_path, cluster_b
    ):
        requests = [
            tiny_request(cluster_b, seq_len=s) for s in (256, 384, 512)
        ]
        baseline_ws = Workspace(tmp_path / "baseline")
        expected = [
            baseline_ws.plan(r.stack, r.system, r.cluster).to_json()
            for r in requests
        ]
        pooled_ws = Workspace(tmp_path / "pooled")
        with PlanService(pooled_ws, flush_ms=100.0, workers=3) as service:
            futures = [service.submit(r) for r in requests]
            got = [f.result().to_json() for f in futures]
        assert got == expected


class TestQueueAndShutdown:
    def test_queue_full_raises(self, workspace, cluster_b):
        request = tiny_request(cluster_b)
        # A huge flush window keeps the backlog undrained.
        service = PlanService(workspace, flush_ms=60000.0, capacity=3)
        try:
            for _ in range(3):
                service.submit(request)
            with pytest.raises(QueueFullError):
                service.submit(request)
            assert service.stats_snapshot().rejected == 1
        finally:
            service.close(drain=True)

    def test_submit_after_close_raises(self, workspace, cluster_b):
        service = PlanService(workspace)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(tiny_request(cluster_b))
        # closing twice is a no-op
        service.close()

    def test_close_without_drain_fails_pending(
        self, workspace, cluster_b
    ):
        service = PlanService(workspace, flush_ms=60000.0)
        future = service.submit(tiny_request(cluster_b))
        service.close(drain=False)
        with pytest.raises(ServiceClosedError):
            future.result(timeout=5)
        assert service.stats_snapshot().failed == 1

    def test_close_with_drain_resolves_pending(
        self, workspace, cluster_b
    ):
        service = PlanService(workspace, flush_ms=60000.0)
        future = service.submit(tiny_request(cluster_b))
        service.close(drain=True)
        assert future.result(timeout=5).num_layers == 2

    def test_malformed_request_fails_at_submit(
        self, workspace, cluster_b
    ):
        with PlanService(workspace) as service:
            with pytest.raises(ConfigError):
                service.submit(
                    PlanRequest(
                        stack=(),
                        system=get_system("tutel"),
                        cluster=cluster_b,
                    )
                )
            # a bad gate arity fails the same way
            layer = MoELayerSpec(
                batch_size=1, seq_len=256, embed_dim=512,
                num_experts=8, num_heads=8,
            )
            with pytest.raises(ConfigError):
                service.submit(
                    PlanRequest(
                        stack=(layer, layer),
                        system=get_system("tutel"),
                        cluster=cluster_b,
                        gate_kind=("gshard",) * 3,
                    )
                )

    def test_cancelled_future_does_not_kill_the_coalescer(
        self, workspace, cluster_b
    ):
        """A caller's cancel() must not take the service down with it."""
        with PlanService(workspace, flush_ms=30.0) as service:
            doomed = service.submit(tiny_request(cluster_b))
            keeper = service.submit(tiny_request(cluster_b, seq_len=384))
            assert doomed.cancel()  # still pending: cancellation wins
            plan = keeper.result(timeout=30)
            assert plan.num_layers == 2
            # the service keeps serving after the cancellation
            again = service.submit(tiny_request(cluster_b))
            assert again.result(timeout=30).num_layers == 2
            stats = service.stats_snapshot()
        assert doomed.cancelled()
        assert stats.failed == 1  # the cancelled member
        assert stats.dedup_hits + stats.resolved == stats.completed

    def test_cancelled_duplicate_still_serves_its_group(
        self, workspace, cluster_b
    ):
        """One cancelled copy must not starve the other group members."""
        request = tiny_request(cluster_b)
        with PlanService(workspace, flush_ms=100.0) as service:
            futures = [service.submit(request) for _ in range(6)]
            futures[2].cancel()
            plans = [
                f.result(timeout=30)
                for i, f in enumerate(futures)
                if i != 2
            ]
            stats = service.stats_snapshot()
        assert len({plan.to_json() for plan in plans}) == 1
        assert stats.completed == 5 and stats.failed == 1
        assert stats.dedup_hits + stats.resolved == stats.completed

    def test_resolution_error_propagates_and_service_survives(
        self, workspace, cluster_b
    ):
        # 3 experts cannot be laid out on Testbed-B's EP width of 8.
        bad = PlanRequest(
            stack=(
                MoELayerSpec(
                    batch_size=1, seq_len=256, embed_dim=512,
                    num_experts=3, num_heads=8,
                ),
            ),
            system=get_system("tutel"),
            cluster=cluster_b,
        )
        with PlanService(workspace, flush_ms=1.0) as service:
            with pytest.raises(Exception):
                service.submit(bad).result(timeout=30)
            # the service keeps serving afterwards
            good = service.submit(tiny_request(cluster_b)).result(timeout=30)
            stats = service.stats_snapshot()
        assert good.num_layers == 2
        assert stats.failed == 1 and stats.completed == 1


class TestStatsSurface:
    def test_stats_wired_into_workspace(self, workspace, cluster_b):
        assert workspace.stats.service is None
        with PlanService(workspace, flush_ms=50.0) as service:
            service.submit(tiny_request(cluster_b)).result(timeout=30)
            surfaced = workspace.stats.service
            assert surfaced is not None
            assert surfaced.completed == 1
            assert surfaced.requests == 1
        # still readable after close; detachable explicitly
        assert workspace.stats.service is not None
        workspace.bind_service(None)
        assert workspace.stats.service is None

    def test_latency_percentiles_ordered(self, workspace, cluster_b):
        with PlanService(workspace, flush_ms=10.0) as service:
            futures = [
                service.submit(tiny_request(cluster_b)) for _ in range(10)
            ]
            [future.result() for future in futures]
            stats = service.stats_snapshot()
        assert 0.0 < stats.p50_latency_ms <= stats.p95_latency_ms
        assert stats.dedup_rate == pytest.approx(0.9)
        assert stats.mean_batch == pytest.approx(10.0)

    def test_percentile_helper(self):
        assert percentile([], 50) == 0.0
        assert percentile([3.0], 95) == 3.0
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0

    def test_join_reaches_quiescence(self, workspace, cluster_b):
        with PlanService(workspace, flush_ms=1.0) as service:
            futures = [
                service.submit(tiny_request(cluster_b)) for _ in range(5)
            ]
            assert service.join(timeout_s=30.0)
            for future in futures:
                assert future.done()


class TestLoadGenerator:
    def test_stream_is_deterministic_and_duplicate_heavy(self):
        first = duplicate_heavy_requests(30, 4, depth=2)
        second = duplicate_heavy_requests(30, 4, depth=2)
        assert len(first) == 30
        assert [r.stack[0].seq_len for r in first] == [
            r.stack[0].seq_len for r in second
        ]
        keys = {
            (r.stack, tuple(r.system.fingerprint())) for r in first
        }
        assert len(keys) == 4

    def test_rejects_malformed_shape(self):
        with pytest.raises(ConfigError):
            duplicate_heavy_requests(3, 5)
        with pytest.raises(ConfigError):
            duplicate_heavy_requests(0, 0)
