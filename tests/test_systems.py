"""Tests for the six training systems and their schedules."""

import pytest

from repro.core.schedules import GarMode, SINGLE_STREAM, THREE_STREAM, TWO_STREAM
from repro.sim import TaskKind
from repro.systems import (
    ALL_SYSTEMS,
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
)


@pytest.fixture(scope="module")
def profiles(profile_b):
    return (profile_b, profile_b)


class TestSpecConstruction:
    def test_dsmoe_is_sequential_r1(self, profiles, models_b):
        spec = DeepSpeedMoE().build_iteration_spec(profiles, models_b)
        assert spec.streams == SINGLE_STREAM
        assert all(l.degree == 1 for l in spec.forward + spec.backward)
        assert spec.gar_mode is GarMode.END

    def test_tutel_two_streams_shared_degree(self, profiles, models_b):
        spec = Tutel().build_iteration_spec(profiles, models_b)
        assert spec.streams == TWO_STREAM
        degrees = {l.degree for l in spec.forward + spec.backward}
        assert len(degrees) == 1  # one degree for both phases (paper §4.4)

    def test_tutel_improved_overlaps_gar(self, profiles, models_b):
        spec = TutelImproved().build_iteration_spec(profiles, models_b)
        assert spec.gar_mode is GarMode.DENSE_OVERLAP

    def test_lina_uses_fixed_chunks(self, profiles, models_b):
        system = PipeMoELina()
        spec = system.build_iteration_spec(profiles, models_b)
        assert spec.gar_mode is GarMode.FIXED_CHUNKS
        assert spec.gar_chunk_bytes == system.chunk_bytes

    def test_fsmoe_three_streams_adaptive(self, profiles, models_b):
        spec = FSMoE().build_iteration_spec(profiles, models_b)
        assert spec.streams == THREE_STREAM
        assert spec.gar_mode is GarMode.ADAPTIVE
        assert spec.plan is not None

    def test_fsmoe_no_iio_merges_comm(self, profiles, models_b):
        spec = FSMoENoIIO().build_iteration_spec(profiles, models_b)
        assert spec.streams == TWO_STREAM
        assert spec.streams.merges_comm

    def test_fsmoe_phase_degrees_can_differ(self, profiles, models_b):
        spec = FSMoE().build_iteration_spec(profiles, models_b)
        fw = {l.degree for l in spec.forward}
        bw = {l.degree for l in spec.backward}
        assert fw and bw  # both computed; equality is workload-dependent

    def test_exclude_gar_drops_gradient_tasks(self, profiles, models_b):
        for system_cls in ALL_SYSTEMS:
            system = system_cls()
            spec = system.build_iteration_spec(
                profiles, models_b, include_gar=False
            )
            assert all(b == 0.0 for b in spec.grad_bytes)


class TestIterationTimes:
    def test_every_system_runs(self, profiles, models_b):
        for system_cls in ALL_SYSTEMS:
            t = system_cls().iteration_time_ms(profiles, models_b)
            assert t > 0

    def test_paper_ordering_holds_on_calibrated_testbed(self, profiles, models_b):
        """Fig. 6 / Table 5 ordering: DS-MoE slowest, FSMoE fastest."""
        times = {
            cls.name: cls().iteration_time_ms(profiles, models_b)
            for cls in ALL_SYSTEMS
        }
        assert times["FSMoE"] < times["Tutel"]
        assert times["FSMoE"] < times["FSMoE-No-IIO"]
        assert times["Tutel"] < times["DS-MoE"]
        assert times["Tutel-Improved"] <= times["Tutel"]

    def test_gar_exclusion_is_faster(self, profiles, models_b):
        for system_cls in (Tutel, FSMoE):
            system = system_cls()
            with_gar = system.iteration_time_ms(profiles, models_b)
            without = system.iteration_time_ms(
                profiles, models_b, include_gar=False
            )
            assert without < with_gar

    def test_phase_times_consistent(self, profiles, models_b):
        fw, bw_no, bw_gar = FSMoE().phase_times_ms(profiles, models_b)
        assert fw > 0
        assert bw_no > fw  # backward has doubled compute
        assert bw_gar >= bw_no

    def test_timeline_streams(self, profiles, models_b):
        tl = FSMoE().timeline(profiles, models_b)
        assert set(tl.streams) == {"compute", "intra", "inter"}
        assert tl.kind_ms(TaskKind.GRAD_ALLREDUCE) > 0

    def test_forward_phase_has_no_gar(self, profiles, models_b):
        tl = FSMoE().timeline(profiles, models_b, phase="forward")
        assert tl.kind_ms(TaskKind.GRAD_ALLREDUCE) == 0.0
