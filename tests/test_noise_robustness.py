"""Robustness: FSMoE's decisions survive noisy profiling (paper §3.2).

The scheduler only ever sees fitted models; these tests inject realistic
and extreme measurement noise into the profiling pass and check that the
decisions (pipeline degrees, system ranking) stay sound -- the property
that makes online profiling viable on real, jittery clusters.
"""

import pytest

from repro import MoELayerSpec, standard_layout, testbed_b
from repro.core.pipeline_degree import find_optimal_pipeline_degree
from repro.core.profiler import profile_cluster
from repro.models import profile_layer
from repro.systems import FSMoE, Tutel


@pytest.fixture(scope="module")
def noisy_setup():
    cluster = testbed_b()
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    exact = profile_cluster(cluster, parallel).models
    noisy = profile_cluster(cluster, parallel, noise=0.05, seed=42).models
    spec = MoELayerSpec(
        batch_size=2,
        seq_len=512,
        embed_dim=2048,
        hidden_scale=3,
        num_experts=parallel.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=16,
    )
    return parallel, exact, noisy, spec


class TestNoisyProfiles:
    def test_fitted_models_stay_close(self, noisy_setup):
        _, exact, noisy, _ = noisy_setup
        probe = 8 * 2**20
        for name in ("a2a", "allgather", "reducescatter", "allreduce"):
            exact_t = getattr(exact, name).time_ms(probe)
            noisy_t = getattr(noisy, name).time_ms(probe)
            assert noisy_t == pytest.approx(exact_t, rel=0.1), name

    def test_degree_decision_stable_under_noise(self, noisy_setup):
        parallel, exact, noisy, spec = noisy_setup
        exact_profile = profile_layer(spec, parallel, exact)
        noisy_profile = profile_layer(spec, parallel, noisy)
        r_exact = find_optimal_pipeline_degree(exact_profile.ctx_fw).degree
        r_noisy = find_optimal_pipeline_degree(noisy_profile.ctx_fw).degree
        assert abs(r_exact - r_noisy) <= 2

    def test_ranking_survives_noise(self, noisy_setup):
        parallel, _, noisy, spec = noisy_setup
        profile = profile_layer(spec, parallel, noisy)
        profiles = [profile, profile]
        t_fsmoe = FSMoE().iteration_time_ms(profiles, noisy)
        t_tutel = Tutel().iteration_time_ms(profiles, noisy)
        assert t_fsmoe < t_tutel

    def test_decision_quality_degrades_gracefully(self, noisy_setup):
        """Degrees chosen from noisy models, evaluated on exact times.

        The cost of scheduling with a 5%-noisy profile must be small --
        within a few percent of scheduling with the exact profile.
        """
        parallel, exact, noisy, spec = noisy_setup
        exact_profile = profile_layer(spec, parallel, exact)
        noisy_profile = profile_layer(spec, parallel, noisy)

        from repro.core.cases import analytic_time

        r_exact = find_optimal_pipeline_degree(exact_profile.ctx_bw).degree
        r_noisy = find_optimal_pipeline_degree(noisy_profile.ctx_bw).degree
        # evaluate both degrees under the exact model
        t_with_exact_r = analytic_time(exact_profile.ctx_bw, float(r_exact))
        t_with_noisy_r = analytic_time(exact_profile.ctx_bw, float(r_noisy))
        assert t_with_noisy_r <= t_with_exact_r * 1.05