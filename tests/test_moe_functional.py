"""Property tests for the numpy numerics in repro.moe.functional."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ShapeError
from repro.moe.functional import (
    l2_normalize,
    one_hot,
    relu,
    relu_backward,
    sigmoid,
    silu,
    silu_backward,
    softmax,
    softmax_backward,
    softplus,
    top_k,
)

arrays = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=16),
    elements=st.floats(-50, 50),
)


class TestSoftmax:
    @given(x=arrays)
    @settings(max_examples=50, deadline=None)
    def test_rows_sum_to_one(self, x):
        y = softmax(x, axis=-1)
        np.testing.assert_allclose(y.sum(axis=-1), 1.0, rtol=1e-9)
        assert (y >= 0).all()

    def test_stable_for_large_inputs(self):
        y = softmax(np.array([[1e4, 1e4 + 1.0]]))
        assert np.isfinite(y).all()

    @given(x=arrays)
    @settings(max_examples=30, deadline=None)
    def test_backward_matches_finite_difference(self, x):
        dy = np.ones_like(x)
        y = softmax(x, axis=-1)
        analytic = softmax_backward(y, dy, axis=-1)
        # d(sum of softmax)/dx == 0 since rows always sum to 1.
        np.testing.assert_allclose(analytic, 0.0, atol=1e-9)


class TestActivations:
    @given(x=arrays)
    @settings(max_examples=30, deadline=None)
    def test_sigmoid_bounded(self, x):
        y = sigmoid(x)
        # float64 saturates to exactly 0/1 beyond |x| ~ 37.
        assert ((y >= 0) & (y <= 1)).all()
        moderate = np.abs(x) < 30
        assert ((y[moderate] > 0) & (y[moderate] < 1)).all()

    @given(x=arrays)
    @settings(max_examples=30, deadline=None)
    def test_softplus_positive_and_above_relu(self, x):
        y = softplus(x)
        assert (y > 0).all()
        assert (y >= relu(x)).all()

    @given(v=st.floats(-20, 20))
    @settings(max_examples=40, deadline=None)
    def test_silu_derivative_finite_difference(self, v):
        x = np.array([v])
        eps = 1e-6
        fd = (silu(x + eps) - silu(x - eps)) / (2 * eps)
        np.testing.assert_allclose(silu_backward(x), fd, atol=1e-5)

    def test_relu_backward_zero_at_negative(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu_backward(x), [0.0, 0.0, 1.0])


class TestL2Normalize:
    @given(x=arrays)
    @settings(max_examples=30, deadline=None)
    def test_unit_rows(self, x):
        x = x + 1.0  # avoid exactly-zero rows
        y = l2_normalize(x, axis=-1)
        norms = np.linalg.norm(y, axis=-1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-6)

    def test_zero_row_safe(self):
        y = l2_normalize(np.zeros((2, 3)))
        assert np.isfinite(y).all()


class TestTopK:
    @given(x=arrays, k=st.integers(1, 2))
    @settings(max_examples=50, deadline=None)
    def test_values_sorted_and_correct(self, x, k):
        vals, idx = top_k(x, k, axis=-1)
        assert vals.shape == x.shape[:-1] + (k,)
        # descending order
        assert (np.diff(vals, axis=-1) <= 1e-12).all()
        # values actually come from the indexed positions
        np.testing.assert_array_equal(
            np.take_along_axis(x, idx, axis=-1), vals
        )
        # they are the true maxima
        np.testing.assert_allclose(
            vals[..., 0], x.max(axis=-1), rtol=1e-12
        )

    def test_rejects_k_too_large(self):
        with pytest.raises(ShapeError):
            top_k(np.zeros((2, 3)), 4)


class TestOneHot:
    def test_basic(self):
        out = one_hot(np.array([0, 2]), 3)
        np.testing.assert_array_equal(out, [[1, 0, 0], [0, 0, 1]])

    def test_negative_means_empty(self):
        out = one_hot(np.array([-1, 1]), 2)
        np.testing.assert_array_equal(out, [[0, 0], [0, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_nd_shape(self):
        out = one_hot(np.zeros((2, 3), dtype=int), 4)
        assert out.shape == (2, 3, 4)
