"""Tests for IterationPlan serialization and replay."""

from __future__ import annotations

import pytest

from repro.core.schedules import GarMode, GarPlacement
from repro.errors import ScheduleError, SolverError
from repro.planner import IterationPlan, PlanCompiler
from repro.systems import (
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
)

ALL = [
    DeepSpeedMoE, Tutel, TutelImproved, PipeMoELina, FSMoENoIIO, FSMoE,
]


@pytest.fixture(scope="module")
def compiler(cluster_b):
    return PlanCompiler(cluster_b)


@pytest.fixture(scope="module")
def hetero_stack(small_spec):
    """Three generalized layers with three distinct shapes."""
    return [
        small_spec,
        small_spec.with_(embed_dim=2048, hidden_scale=3.0),
        small_spec.with_(top_k=1),
    ]


class TestCompileToPlan:
    @pytest.mark.parametrize("system_cls", ALL)
    def test_heterogeneous_stack_plans_and_simulates(
        self, compiler, hetero_stack, system_cls
    ):
        """Acceptance: >=2 distinct specs end-to-end under every system."""
        plan = compiler.compile(hetero_stack, system_cls())
        assert plan.num_layers == 3
        timeline = plan.simulate()
        assert timeline.makespan_ms > 0
        # one expert block per layer per phase actually executed.
        from repro.sim.events import TaskKind
        expert_records = [
            r for r in timeline.records if r.task.kind is TaskKind.EXPERT
        ]
        assert len(expert_records) >= 2 * plan.num_layers

    def test_heterogeneous_layers_get_distinct_schedules(
        self, compiler, hetero_stack
    ):
        plan = compiler.compile(hetero_stack, FSMoE())
        # distinct shapes -> distinct chunk volumes in the contexts.
        volumes = {phase.ctx.n_a2a for phase in plan.forward}
        assert len(volumes) == 3

    def test_spec_round_trip(self, compiler, small_spec):
        plan = compiler.compile([small_spec] * 2, FSMoE())
        rebuilt = IterationPlan.from_spec(plan.to_spec())
        assert rebuilt == plan


class TestJsonRoundTrip:
    @pytest.mark.parametrize("system_cls", ALL)
    def test_bit_identical_simulation(
        self, compiler, hetero_stack, system_cls
    ):
        """Acceptance: serialize -> deserialize -> simulate, exactly."""
        plan = compiler.compile(hetero_stack, system_cls())
        replayed = IterationPlan.from_json(plan.to_json())
        assert replayed == plan
        original = plan.simulate()
        again = replayed.simulate()
        assert original == again  # bit-identical records, not approx
        assert original.to_json() == again.to_json()

    def test_json_is_versioned_plain_data(self, compiler, small_spec):
        plan = compiler.compile(small_spec, Tutel())
        data = plan.to_dict()
        assert data["version"] == 1
        assert len(data["layers"]) == 1
        assert set(data["layers"][0]) == {"forward", "backward"}

    def test_unknown_version_rejected(self, compiler, small_spec):
        plan = compiler.compile(small_spec, Tutel())
        data = plan.to_dict()
        data["version"] = 99
        with pytest.raises(ScheduleError):
            IterationPlan.from_dict(data)

    def test_adaptive_plan_keeps_gar_placement(self, compiler, small_spec):
        plan = compiler.compile([small_spec] * 3, FSMoE())
        assert plan.gar_mode is GarMode.ADAPTIVE
        assert plan.gar is not None
        replayed = IterationPlan.from_json(plan.to_json())
        assert replayed.gar == plan.gar
        # placed + tail bytes account for every gradient byte.
        placed = (
            sum(replayed.gar.moe_ar_bytes)
            + sum(replayed.gar.dense_window_bytes)
            + replayed.gar.tail_bytes
        )
        assert placed == pytest.approx(sum(plan.grad_bytes))


class TestGarPlacement:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SolverError):
            GarPlacement(
                moe_window_bytes=(1.0, 2.0),
                dense_window_bytes=(1.0,),
                extra_bytes=(0.0, 0.0),
                tail_bytes=0.0,
                t_gar_ms=(0.0, 0.0),
            )

    def test_moe_ar_bytes_sums_window_and_extra(self):
        placement = GarPlacement(
            moe_window_bytes=(1.0, 2.0),
            dense_window_bytes=(0.0, 0.0),
            extra_bytes=(3.0, 4.0),
            tail_bytes=0.0,
            t_gar_ms=(0.0, 0.0),
        )
        assert placement.moe_ar_bytes == (4.0, 6.0)
