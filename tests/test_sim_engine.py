"""Unit tests for the discrete-event engine and task graphs."""

import pytest

from repro.errors import ScheduleError
from repro.sim import Task, TaskGraph, TaskKind, simulate


def make_graph():
    return TaskGraph()


class TestTaskGraph:
    def test_ids_sequential(self):
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "s", 1.0)
        b = g.add("b", TaskKind.OTHERS, "s", 1.0, deps=(a,))
        assert (a, b) == (0, 1)

    def test_rejects_forward_dep(self):
        g = make_graph()
        with pytest.raises(ScheduleError):
            g.add("a", TaskKind.OTHERS, "s", 1.0, deps=(0,))

    def test_rejects_negative_duration(self):
        g = make_graph()
        with pytest.raises(ScheduleError):
            g.add("a", TaskKind.OTHERS, "s", -1.0)

    def test_streams_in_first_use_order(self):
        g = make_graph()
        g.add("a", TaskKind.OTHERS, "x", 1.0)
        g.add("b", TaskKind.OTHERS, "y", 1.0)
        g.add("c", TaskKind.OTHERS, "x", 1.0)
        assert g.streams == ("x", "y")

    def test_total_work(self):
        g = make_graph()
        g.add("a", TaskKind.OTHERS, "x", 1.5)
        g.add("b", TaskKind.OTHERS, "y", 2.5)
        assert g.total_work_ms() == 4.0

    def test_sinks(self):
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "x", 1.0)
        b = g.add("b", TaskKind.OTHERS, "x", 1.0, deps=(a,))
        c = g.add("c", TaskKind.OTHERS, "y", 1.0, deps=(a,))
        assert set(g.sinks()) == {b, c}

    def test_merge_chains_roots(self):
        g1 = make_graph()
        a = g1.add("a", TaskKind.OTHERS, "x", 1.0)
        g2 = make_graph()
        g2.add("b", TaskKind.OTHERS, "x", 2.0)
        mapping = g1.merge(g2, deps=(a,))
        assert g1.tasks[mapping[0]].deps == (a,)
        assert simulate(g1).makespan_ms == 3.0


class TestEngine:
    def test_empty_graph(self):
        assert simulate(make_graph()).makespan_ms == 0.0

    def test_serial_chain(self):
        g = make_graph()
        prev = ()
        for i in range(5):
            t = g.add(f"t{i}", TaskKind.OTHERS, "s", 2.0, deps=prev)
            prev = (t,)
        assert simulate(g).makespan_ms == 10.0

    def test_same_stream_serializes_independent_tasks(self):
        g = make_graph()
        g.add("a", TaskKind.OTHERS, "s", 3.0)
        g.add("b", TaskKind.OTHERS, "s", 4.0)
        assert simulate(g).makespan_ms == 7.0

    def test_different_streams_overlap(self):
        g = make_graph()
        g.add("a", TaskKind.OTHERS, "x", 3.0)
        g.add("b", TaskKind.OTHERS, "y", 4.0)
        assert simulate(g).makespan_ms == 4.0

    def test_priority_orders_ready_tasks(self):
        g = make_graph()
        g.add("low", TaskKind.OTHERS, "s", 1.0, priority=10)
        g.add("high", TaskKind.OTHERS, "s", 1.0, priority=1)
        tl = simulate(g)
        first = min(tl.records, key=lambda r: r.start_ms)
        assert first.task.name == "high"

    def test_dependency_across_streams(self):
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "x", 5.0)
        g.add("b", TaskKind.OTHERS, "y", 1.0, deps=(a,))
        tl = simulate(g)
        assert tl.makespan_ms == 6.0

    def test_work_conserving_no_idle_with_ready_work(self):
        # y-stream task becomes ready at t=1; y must start it immediately.
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "x", 1.0)
        g.add("b", TaskKind.OTHERS, "y", 2.0, deps=(a,))
        g.add("c", TaskKind.OTHERS, "y", 1.0, deps=(a,), priority=5)
        tl = simulate(g)
        assert tl.makespan_ms == 4.0  # 1 + (2 then 1) on y

    def test_zero_duration_tasks(self):
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "s", 0.0)
        b = g.add("b", TaskKind.OTHERS, "s", 0.0, deps=(a,))
        g.add("c", TaskKind.OTHERS, "s", 1.0, deps=(b,))
        assert simulate(g).makespan_ms == 1.0

    def test_stall_detection_on_manual_cycle(self):
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "s", 1.0)
        b = g.add("b", TaskKind.OTHERS, "s", 1.0, deps=(a,))
        # Manually corrupt into a cycle (bypasses add() validation).
        g.tasks[a] = Task(
            task_id=a,
            name="a",
            kind=TaskKind.OTHERS,
            stream="s",
            duration_ms=1.0,
            deps=(b,),
        )
        with pytest.raises(ScheduleError):
            simulate(g)

    def test_stall_diagnostic_reports_count_and_names(self):
        # A 2-cycle blocking a downstream task: the diagnostic must count
        # all three unfinished tasks and name the first few.
        g = make_graph()
        a = g.add("first-of-cycle", TaskKind.OTHERS, "s", 1.0)
        b = g.add("second-of-cycle", TaskKind.OTHERS, "s", 1.0, deps=(a,))
        g.add("downstream", TaskKind.OTHERS, "s", 1.0, deps=(b,))
        g.tasks[a] = Task(
            task_id=a,
            name="first-of-cycle",
            kind=TaskKind.OTHERS,
            stream="s",
            duration_ms=1.0,
            deps=(b,),
        )
        with pytest.raises(ScheduleError) as excinfo:
            simulate(g)
        message = str(excinfo.value)
        assert "3 unfinished" in message
        assert "first-of-cycle" in message
        assert "downstream" in message

    def test_stall_diagnostic_counts_only_unfinished(self):
        # A healthy prefix completes; only the corrupted tail is reported.
        g = make_graph()
        done = g.add("done", TaskKind.OTHERS, "s", 1.0)
        a = g.add("stuck-a", TaskKind.OTHERS, "s", 1.0, deps=(done,))
        b = g.add("stuck-b", TaskKind.OTHERS, "s", 1.0, deps=(a,))
        g.tasks[a] = Task(
            task_id=a,
            name="stuck-a",
            kind=TaskKind.OTHERS,
            stream="s",
            duration_ms=1.0,
            deps=(done, b),
        )
        with pytest.raises(ScheduleError) as excinfo:
            simulate(g)
        message = str(excinfo.value)
        assert "2 unfinished" in message
        assert "done" not in message.split("first few:")[1]

    def test_equal_priority_ties_break_on_task_id(self):
        # Insertion order is the id order; ready tasks with equal priority
        # must run in that order regardless of name or duration.
        g = make_graph()
        g.add("z-late-name", TaskKind.OTHERS, "s", 3.0, priority=5)
        g.add("a-early-name", TaskKind.OTHERS, "s", 1.0, priority=5)
        g.add("m-middle", TaskKind.OTHERS, "s", 2.0, priority=5)
        tl = simulate(g)
        started = [r.task.name for r in tl.records]
        assert started == ["z-late-name", "a-early-name", "m-middle"]

    def test_equal_priority_simulation_is_deterministic(self):
        # Same graph, many equal-priority tasks over two streams: repeated
        # runs must produce identical timelines (heap ties resolved by id).
        def build():
            g = make_graph()
            roots = [
                g.add(f"r{i}", TaskKind.OTHERS, f"s{i % 2}", 1.0, priority=0)
                for i in range(6)
            ]
            for i, root in enumerate(roots):
                g.add(
                    f"c{i}",
                    TaskKind.EXPERT,
                    f"s{(i + 1) % 2}",
                    0.5,
                    deps=(root,),
                    priority=0,
                )
            return g

        first = simulate(build())
        second = simulate(build())
        assert first == second
        assert first.to_json() == second.to_json()

    def test_background_priority_fills_gaps(self):
        # Foreground: a(x, 2) -> b(y, 2); background on y should run during
        # the wait, not after b.
        g = make_graph()
        a = g.add("a", TaskKind.OTHERS, "x", 2.0)
        g.add("b", TaskKind.OTHERS, "y", 2.0, deps=(a,), priority=0)
        g.add("bg", TaskKind.GRAD_ALLREDUCE, "y", 1.5, priority=10**9)
        tl = simulate(g)
        assert tl.makespan_ms == 4.0  # bg fits in y's initial idle window
