"""Unit tests for the online profiler (paper §3.2 / §6.2 / Fig. 5)."""

import pytest

from repro.config import standard_layout
from repro.core.profiler import profile_cluster
from repro.parallel.collectives import A2AAlgorithm, CollectiveCostModel
from repro.parallel.topology import testbed_a, testbed_b


class TestNoiseFreeFit:
    @pytest.mark.parametrize("factory", [testbed_a, testbed_b])
    def test_recovers_oracle_exactly(self, factory):
        cluster = factory()
        parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
        result = profile_cluster(cluster, parallel)
        oracle = CollectiveCostModel(cluster)
        probe = 4 * 2**20  # 4 MiB
        assert result.models.a2a.time_ms(probe) == pytest.approx(
            oracle.alltoall_ms(probe, parallel.n_ep), rel=1e-6
        )
        assert result.models.allreduce.time_ms(probe) == pytest.approx(
            oracle.allreduce_ms(probe, parallel.n_dp), rel=1e-6
        )
        assert result.models.allgather.time_ms(probe) == pytest.approx(
            oracle.allgather_ms(probe, parallel.n_esp), rel=1e-6
        )

    def test_r_squared_is_one_without_noise(self):
        cluster = testbed_b()
        parallel = standard_layout(32, 4)
        result = profile_cluster(cluster, parallel)
        for name, r2 in result.r_squared.items():
            assert r2 == pytest.approx(1.0), name


class TestNoisyFit:
    def test_fig5_quality_r2(self):
        """Paper Fig. 5: r-squared >= 0.998 for comm, 0.9987 for GEMM."""
        cluster = testbed_b()
        parallel = standard_layout(32, 4)
        result = profile_cluster(cluster, parallel, noise=0.02, seed=7)
        for name, r2 in result.r_squared.items():
            assert r2 > 0.99, (name, r2)

    def test_seed_determinism(self):
        cluster = testbed_a()
        parallel = standard_layout(48, 8)
        r1 = profile_cluster(cluster, parallel, noise=0.05, seed=3)
        r2 = profile_cluster(cluster, parallel, noise=0.05, seed=3)
        assert r1.models.a2a == r2.models.a2a
        r3 = profile_cluster(cluster, parallel, noise=0.05, seed=4)
        assert r1.models.a2a != r3.models.a2a

    def test_samples_recorded_per_op(self):
        cluster = testbed_b()
        parallel = standard_layout(32, 4)
        result = profile_cluster(cluster, parallel)
        assert set(result.samples) == {
            "a2a", "allgather", "reducescatter", "allreduce", "gemm"
        }
        sizes, times = result.samples["a2a"]
        assert len(sizes) == len(times) == 24  # paper sweep length


class TestAlgorithmChoice:
    def test_profiles_selected_a2a_algorithm(self):
        cluster = testbed_b()
        parallel = standard_layout(32, 4)
        direct = profile_cluster(cluster, parallel, a2a_algorithm=A2AAlgorithm.NCCL)
        hier = profile_cluster(
            cluster, parallel, a2a_algorithm=A2AAlgorithm.HIER_2D
        )
        probe = 8 * 2**20
        assert hier.models.a2a.time_ms(probe) > direct.models.a2a.time_ms(probe)
