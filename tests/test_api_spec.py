"""ExperimentSpec: parsing, validation, serialization, resolution."""

from __future__ import annotations

import sys

import pytest

from repro import (
    ClusterRef,
    ConfigError,
    ExperimentSpec,
    FSMoE,
    MoELayerSpec,
    StackSpec,
    standard_layout,
)
from repro.models import MIXTRAL_7B


def layer(**overrides) -> MoELayerSpec:
    fields = dict(embed_dim=512, num_experts=8, num_heads=8)
    fields.update(overrides)
    return MoELayerSpec(**fields)


class TestClusterRef:
    def test_from_string(self):
        ref = ClusterRef.from_data("A")
        assert ref.resolve().name == "Testbed-A"

    def test_from_dict_with_scaling(self):
        ref = ClusterRef.from_data({"name": "A", "total_gpus": 16})
        cluster = ref.resolve()
        assert cluster.total_gpus == 16

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigError):
            ClusterRef.from_data({"name": "A", "gpus": 16})

    def test_to_data_compact(self):
        assert ClusterRef("B").to_data() == "B"
        assert ClusterRef("A", 16).to_data() == {
            "name": "A", "total_gpus": 16,
        }


class TestStackSpec:
    def test_needs_exactly_one_source(self):
        with pytest.raises(ConfigError):
            StackSpec()
        with pytest.raises(ConfigError):
            StackSpec(model="GPT2-XL", layers=(layer(),))

    def test_model_stack_resolves_with_deployment_experts(self):
        parallel = standard_layout(32, 4)
        stack = StackSpec(model="Mixtral-7B", seq_len=256).resolve(parallel)
        assert len(stack) == MIXTRAL_7B.num_layers
        assert stack[0].num_experts == parallel.n_ep
        assert stack[0].seq_len == 256

    def test_model_stack_depth_override(self):
        parallel = standard_layout(32, 4)
        stack = StackSpec(model="gpt2-xl", num_layers=3).resolve(parallel)
        assert len(stack) == 3

    def test_single_layer_replicates(self):
        parallel = standard_layout(32, 4)
        stack = StackSpec(layers=(layer(),), num_layers=4).resolve(parallel)
        assert len(stack) == 4 and len(set(stack)) == 1

    def test_heterogeneous_layers_kept_verbatim(self):
        parallel = standard_layout(32, 4)
        layers = (layer(), layer(embed_dim=1024))
        stack = StackSpec(layers=layers).resolve(parallel)
        assert stack == layers

    def test_depth_conflict_rejected(self):
        with pytest.raises(ConfigError):
            StackSpec(layers=(layer(), layer()), num_layers=3)

    def test_dict_layers_validated_eagerly(self):
        with pytest.raises(ConfigError):
            StackSpec(layers=({"embed_dim": 512, "bogus_field": 1},))

    def test_of_helper(self):
        stack = StackSpec.of(layer(), num_layers=4)
        assert stack.num_layers == 4 and stack.layers == (layer(),)

    def test_per_layer_gates_round_trip(self):
        stack = StackSpec(
            layers=(layer(), layer(embed_dim=1024)),
            gates=("xmoe", "gshard"),
        )
        data = stack.to_data()
        assert data["gates"] == ["xmoe", "gshard"]
        assert StackSpec.from_data(data) == stack
        spec = ExperimentSpec(
            name="gates", clusters=("B",), systems=("fsmoe",), stacks=(stack,)
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_gates_resolve_per_layer(self):
        from repro import GateKind

        stack = StackSpec(
            layers=(layer(), layer(embed_dim=1024)),
            gates=("xmoe", "expert_choice"),
        )
        assert stack.resolve_gates(2, GateKind.GSHARD) == (
            GateKind.XMOE,
            GateKind.EXPERT_CHOICE,
        )
        # A single gate string covers the whole (replicated) stack.
        single = StackSpec(layers=(layer(),), num_layers=3, gates="sigmoid")
        assert single.gates == ("sigmoid",)
        assert single.resolve_gates(3, GateKind.GSHARD) == (
            GateKind.SIGMOID,
        ) * 3
        # No override falls back to the experiment-level default.
        plain = StackSpec(layers=(layer(),), num_layers=2)
        assert plain.resolve_gates(2, GateKind.GSHARD) == (
            GateKind.GSHARD,
        ) * 2

    def test_gates_depth_mismatch_rejected(self):
        from repro import GateKind

        stack = StackSpec(
            layers=(layer(), layer(embed_dim=1024)),
            gates=("xmoe", "gshard"),
        )
        with pytest.raises(ConfigError, match="gates"):
            stack.resolve_gates(3, GateKind.GSHARD)

    def test_unknown_gate_override_rejected(self):
        with pytest.raises(ConfigError, match="unknown gate"):
            StackSpec(layers=(layer(),), gates=("topk",))


class TestExperimentSpec:
    def spec(self, **overrides) -> ExperimentSpec:
        fields = dict(
            name="t",
            clusters=("B",),
            systems=("tutel", "fsmoe"),
            stacks=(StackSpec(layers=(layer(),)),),
        )
        fields.update(overrides)
        return ExperimentSpec(**fields)

    def test_json_round_trip(self):
        spec = self.spec(solver="slsqp", noise=0.01, seed=3)
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_model_stack_round_trip(self):
        spec = self.spec(
            stacks=(StackSpec(model="GPT2-XL", num_layers=2),),
        )
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_defaults_omitted_from_document(self):
        doc = self.spec().to_dict()
        assert "solver" not in doc and "noise" not in doc

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown experiment keys"):
            ExperimentSpec.from_dict(
                {"clusters": ["B"], "systems": ["fsmoe"],
                 "stacks": [{"model": "GPT2-XL"}], "svolver": "de"}
            )

    def test_rejects_missing_axes(self):
        with pytest.raises(ConfigError, match="lacks"):
            ExperimentSpec.from_dict({"clusters": ["B"], "systems": ["x"]})
        with pytest.raises(ConfigError):
            self.spec(systems=())

    def test_rejects_unknown_gate_and_solver(self):
        with pytest.raises(ValueError):
            self.spec(gate="bogus")
        with pytest.raises(ConfigError, match="solver"):
            self.spec(solver="bogus")

    def test_resolve_systems_threads_solver(self):
        systems = self.spec(solver="slsqp").resolve_systems()
        fsmoe = [s for s in systems if isinstance(s, FSMoE)][0]
        assert fsmoe.solver == "slsqp"
        # non-FSMoE systems simply ignore the knob
        assert systems[0].name == "Tutel"

    def test_resolve_builds_standard_layouts(self):
        deployments, systems = self.spec().resolve()
        (cluster, parallel), = deployments
        assert cluster.name == "Testbed-B"
        assert parallel.n_mp == cluster.gpus_per_node

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="tomllib is 3.11+"
    )
    def test_from_toml(self):
        text = """
name = "toml-exp"
clusters = ["B"]
systems = ["fsmoe"]
solver = "slsqp"

[[stacks]]
model = "Mixtral-7B"
num_layers = 2
seq_len = 256
"""
        spec = ExperimentSpec.from_toml(text)
        assert spec.name == "toml-exp"
        assert spec.stacks[0].model == "Mixtral-7B"
        assert spec.solver == "slsqp"

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "exp.json"
        spec = self.spec()
        path.write_text(spec.to_json())
        assert ExperimentSpec.from_file(path) == spec
