"""Property tests on schedule invariants, over random workloads."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perf_model import LinearPerfModel
from repro.core.schedules import (
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    SINGLE_STREAM,
    THREE_STREAM,
    TWO_STREAM,
    build_iteration_graph,
)
from repro.sim import simulate

from .helpers import pipeline_contexts

AR = LinearPerfModel(alpha=0.2, beta=4e-7)


def spec_for(ctx, streams, degree, n_layers=2, grad_mb=8.0,
             gar_mode=GarMode.END):
    fw = LayerPhaseSchedule(ctx=ctx, degree=degree, dense_ms=1.0)
    bw = LayerPhaseSchedule(ctx=ctx, degree=degree, dense_ms=2.0)
    return IterationSpec(
        name="prop",
        forward=(fw,) * n_layers,
        backward=(bw,) * n_layers,
        grad_bytes=(grad_mb * 1e6,) * n_layers,
        ar_model=AR,
        streams=streams,
        gar_mode=gar_mode,
    )


@given(ctx=pipeline_contexts(), degree=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_makespan_bounded_by_work_and_critical_path(ctx, degree):
    spec = spec_for(ctx, THREE_STREAM, degree)
    graph = build_iteration_graph(spec)
    timeline = simulate(graph)
    # never faster than the busiest stream, never slower than total work
    busiest = max(timeline.busy_ms(s) for s in timeline.streams)
    assert timeline.makespan_ms >= busiest - 1e-9
    assert timeline.makespan_ms <= graph.total_work_ms() + 1e-9


@given(ctx=pipeline_contexts(), degree=st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_more_streams_never_hurt(ctx, degree):
    """With identical tasks, splitting streams can only remove contention."""
    t1 = simulate(
        build_iteration_graph(spec_for(ctx, SINGLE_STREAM, degree))
    ).makespan_ms
    t2 = simulate(
        build_iteration_graph(spec_for(ctx, TWO_STREAM, degree))
    ).makespan_ms
    t3 = simulate(
        build_iteration_graph(spec_for(ctx, THREE_STREAM, degree))
    ).makespan_ms
    assert t2 <= t1 + 1e-9
    assert t3 <= t2 + 1e-9


@given(ctx=pipeline_contexts(), degree=st.integers(1, 8))
@settings(max_examples=20, deadline=None)
def test_gar_overlap_never_slower_than_exposed(ctx, degree):
    """Background-priority AllReduce can only fill gaps, never add time."""
    exposed = simulate(
        build_iteration_graph(
            spec_for(ctx, THREE_STREAM, degree, gar_mode=GarMode.END)
        )
    ).makespan_ms
    overlapped = simulate(
        build_iteration_graph(
            spec_for(ctx, THREE_STREAM, degree, gar_mode=GarMode.DENSE_OVERLAP)
        )
    ).makespan_ms
    # Non-preemptive head-of-line blocking can cost at most one AllReduce.
    assert overlapped <= exposed + AR.time_ms(8.0 * 1e6) + 1e-9


@given(ctx=pipeline_contexts(), degree=st.integers(1, 8),
       n_layers=st.integers(1, 4))
@settings(max_examples=20, deadline=None)
def test_makespan_monotone_in_layers(ctx, degree, n_layers):
    shorter = simulate(
        build_iteration_graph(
            spec_for(ctx, THREE_STREAM, degree, n_layers=n_layers)
        )
    ).makespan_ms
    longer = simulate(
        build_iteration_graph(
            spec_for(ctx, THREE_STREAM, degree, n_layers=n_layers + 1)
        )
    ).makespan_ms
    assert longer > shorter


@given(ctx=pipeline_contexts())
@settings(max_examples=20, deadline=None)
def test_phase_split_consistent_with_both(ctx):
    spec = spec_for(ctx, THREE_STREAM, 4)
    fw = simulate(build_iteration_graph(spec, phase="forward")).makespan_ms
    bw = simulate(build_iteration_graph(spec, phase="backward")).makespan_ms
    both = simulate(build_iteration_graph(spec, phase="both")).makespan_ms
    # phases serialize at the loss boundary
    assert both == pytest.approx(fw + bw, rel=1e-9)