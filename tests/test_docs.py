"""The docs suite is machine-verified: generated pages cannot drift."""

from __future__ import annotations

import pathlib

import pytest

DOCS = pathlib.Path(__file__).parent.parent / "docs"


class TestGeneratedCliReference:
    def test_cli_md_matches_the_parser(self):
        """`docs/CLI.md` is byte-identical to a fresh argparse render.

        Regenerate with `python -m repro docs` after changing the CLI.
        """
        from repro.report.clidoc import render_cli_markdown

        committed = (DOCS / "CLI.md").read_text()
        assert committed == render_cli_markdown(), (
            "docs/CLI.md is stale; run `python -m repro docs`"
        )

    def test_render_is_deterministic(self, monkeypatch):
        from repro.report.clidoc import render_cli_markdown

        first = render_cli_markdown()
        # a different terminal width must not change the output
        monkeypatch.setenv("COLUMNS", "220")
        assert render_cli_markdown() == first

    def test_every_subcommand_has_a_section(self):
        from repro.api.cli import build_parser
        from repro.report.clidoc import _subparsers

        text = (DOCS / "CLI.md").read_text()
        for name in _subparsers(build_parser()):
            assert f"## `{name}`" in text


class TestDocsPages:
    #: every documentation page the README's index promises.
    PAGES = (
        "ARCHITECTURE.md",
        "REPRODUCING.md",
        "CLI.md",
        "EXPERIMENTS.md",
        "PLAN_SCHEMA.md",
        "SERVING.md",
        "CACHING.md",
        "PERFORMANCE.md",
    )

    @pytest.mark.parametrize("page", PAGES)
    def test_page_exists_and_is_linked_from_readme(self, page):
        assert (DOCS / page).is_file()
        readme = (DOCS.parent / "README.md").read_text()
        assert f"docs/{page}" in readme

    def test_architecture_covers_every_layer(self):
        text = (DOCS / "ARCHITECTURE.md").read_text()
        for package in (
            "src/repro/core/", "src/repro/planner/", "src/repro/api/",
            "src/repro/serve/", "src/repro/report/", "src/repro/moe/",
            "src/repro/sim/", "src/repro/systems/", "src/repro/bench/",
            "src/repro/cache/",
        ):
            assert package in text, f"ARCHITECTURE.md misses {package}"

    def test_architecture_points_at_pinned_tests(self):
        text = (DOCS / "ARCHITECTURE.md").read_text()
        for guard in (
            "tests/test_fastsolve.py",
            "tests/test_noiio_sweep.py",
            "tests/test_workspace.py",
            "tests/test_serve.py",
            "tests/test_report.py",
        ):
            assert guard in text, f"ARCHITECTURE.md misses {guard}"

    def test_readme_reproduces_the_paper_with_one_command(self):
        readme = (DOCS.parent / "README.md").read_text()
        assert "python -m repro report" in readme
