"""Tests for plan_many: grid fan-out, deduplication, cache replay."""

from __future__ import annotations

import time

import pytest

from repro.errors import ConfigError
from repro.planner import PlanCompiler, ProfileStore, plan_many
from repro.systems import DeepSpeedMoE, FSMoE, Tutel


def sweep_specs(small_spec):
    """A 4-spec axis; x3 systems = a 12-point grid on one cluster."""
    return [
        small_spec,
        small_spec.with_(batch_size=1),
        small_spec.with_(seq_len=256),
        small_spec.with_(top_k=1),
    ]


def sweep_systems():
    return [DeepSpeedMoE(), Tutel(), FSMoE()]


class TestGrid:
    def test_points_follow_grid_order(
        self, cluster_b, models_b, small_spec
    ):
        specs = sweep_specs(small_spec)
        result = plan_many(
            specs,
            sweep_systems(),
            [cluster_b],
            num_layers=2,
            models_by_cluster={cluster_b: models_b},
        )
        assert len(result) == 12
        names = [p.system_name for p in result.points]
        assert names == ["DS-MoE", "Tutel", "FSMoE"] * 4
        stacks = [p.stack for p in result.points]
        assert stacks[0] == (small_spec,) * 2
        assert all(len(stack) == 2 for stack in stacks)

    def test_rows_are_tidy(self, cluster_b, models_b, small_spec):
        result = plan_many(
            [small_spec],
            [Tutel()],
            [cluster_b],
            models_by_cluster={cluster_b: models_b},
        )
        (row,) = result.rows()
        assert row["cluster"] == cluster_b.name
        assert row["system"] == "Tutel"
        assert row["makespan_ms"] > 0
        assert row["heterogeneous"] is False

    def test_heterogeneous_stack_entry(self, cluster_b, models_b, small_spec):
        stack = [small_spec, small_spec.with_(top_k=1)]
        result = plan_many(
            [stack],
            [FSMoE()],
            [cluster_b],
            models_by_cluster={cluster_b: models_b},
        )
        (point,) = result.points
        assert point.stack == tuple(stack)
        assert point.row()["heterogeneous"] is True

    def test_empty_axes_rejected(self, cluster_b, models_b, small_spec):
        with pytest.raises(ConfigError):
            plan_many([], [Tutel()], [cluster_b])
        with pytest.raises(ConfigError):
            plan_many([small_spec], [], [cluster_b])
        with pytest.raises(ConfigError):
            plan_many([small_spec], [Tutel()], [])
        with pytest.raises(ConfigError):
            plan_many([[]], [Tutel()], [cluster_b])

    def test_non_positive_num_layers_rejected(
        self, cluster_b, models_b, small_spec
    ):
        with pytest.raises(ConfigError):
            plan_many([small_spec], [Tutel()], [cluster_b], num_layers=0)

    def test_same_named_clusters_stay_distinct(self, cluster_b, small_spec):
        """Regression: clusters are keyed by spec, not by display name."""
        from dataclasses import replace

        slower = replace(
            cluster_b,
            inter_link=replace(
                cluster_b.inter_link,
                bandwidth_bytes_per_ms=(
                    cluster_b.inter_link.bandwidth_bytes_per_ms / 4
                ),
            ),
        )
        assert slower.name == cluster_b.name
        result = plan_many(
            [small_spec], [Tutel()], [cluster_b, slower], num_layers=2
        )
        fast, slow = result.points
        assert fast.cluster is cluster_b and slow.cluster is slower
        assert slow.makespan_ms > fast.makespan_ms
        assert len(result.times_by_config()) == 2

    def test_results_match_sequential_compiler(
        self, cluster_b, models_b, small_spec
    ):
        """The fan-out changes wall-clock, never results."""
        specs = sweep_specs(small_spec)[:2]
        result = plan_many(
            specs,
            [FSMoE()],
            [cluster_b],
            num_layers=2,
            models_by_cluster={cluster_b: models_b},
        )
        compiler = PlanCompiler(cluster_b, models=models_b)
        for point, spec in zip(result.points, specs):
            expected = compiler.iteration_time_ms([spec] * 2, FSMoE())
            assert point.makespan_ms == expected


class TestCacheBehaviour:
    def test_sweep_deduplicates_profiling(self, cluster_b, small_spec):
        """Acceptance: a 12-point grid profiles 1 cluster + 4 layers."""
        store = ProfileStore()
        result = plan_many(
            sweep_specs(small_spec),
            sweep_systems(),
            [cluster_b],
            num_layers=2,
            store=store,
        )
        assert len(result) == 12
        stats = store.stats
        assert stats.cluster_misses == 1
        assert stats.layer_misses == 4
        assert stats.layer_hits > 0

    def test_replanning_same_grid_profiles_nothing(
        self, cluster_b, small_spec
    ):
        """Acceptance: the second sweep is all cache hits."""
        store = ProfileStore()
        specs = sweep_specs(small_spec)
        plan_many(specs, sweep_systems(), [cluster_b], num_layers=2,
                  store=store)
        before = store.stats
        again = plan_many(specs, sweep_systems(), [cluster_b], num_layers=2,
                          store=store)
        delta = store.stats - before
        assert delta.misses == 0
        assert delta.hits >= 12  # every point still consulted the store
        assert len(again) == 12

    def test_cached_sweep_beats_sequential_uncached(
        self, cluster_b, small_spec
    ):
        """Acceptance benchmark: shared-store sweep vs per-point re-profiling.

        The uncached baseline pays the online profiler (a full
        microbenchmark sweep + least-squares fits) for every grid point;
        the batched sweep pays it once.  The margin is large (>5x here),
        so the timing assertion is robust to scheduler jitter.
        """
        specs = sweep_specs(small_spec)
        systems = sweep_systems()

        t0 = time.perf_counter()
        plan_many(specs, systems, [cluster_b], num_layers=2,
                  store=ProfileStore())
        batched_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        for spec in specs:
            for system in systems:
                fresh = PlanCompiler(cluster_b, store=ProfileStore())
                fresh.iteration_time_ms([spec] * 2, system)
        sequential_s = time.perf_counter() - t0

        assert batched_s < sequential_s
