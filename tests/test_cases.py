"""Unit and property tests for the four-case taxonomy (paper §4.2, §5.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cases import (
    CASE_BRANCHES,
    Case,
    analytic_time,
    case_time,
    classify,
    overlappable_time,
    overlappable_time_merged_comm,
)
from repro.core.constraints import PipelineContext
from repro.core.perf_model import LinearPerfModel

from .helpers import pipeline_contexts


def ctx_for(case: Case) -> PipelineContext:
    """Hand-built contexts landing squarely in each case."""
    small = LinearPerfModel(0.01, 1e-8)
    if case is Case.CASE1:  # huge GAR -> inter-node dominated
        return PipelineContext(
            a2a=LinearPerfModel(0.2, 3e-7), n_a2a=5e7,
            ag=small, n_ag=1e6, rs=small, n_rs=1e6,
            exp=LinearPerfModel(0.05, 1e-10), n_exp=1e9,
            t_gar=500.0,
        )
    if case is Case.CASE2:  # experts dominate
        return PipelineContext(
            a2a=LinearPerfModel(0.1, 1e-7), n_a2a=1e6,
            ag=small, n_ag=1e6, rs=small, n_rs=1e6,
            exp=LinearPerfModel(0.05, 1e-9), n_exp=1e11,
        )
    if case is Case.CASE3:  # AlltoAll dominates
        return PipelineContext(
            a2a=LinearPerfModel(0.2, 3e-7), n_a2a=1e8,
            ag=small, n_ag=1e6, rs=small, n_rs=1e6,
            exp=LinearPerfModel(0.05, 1e-10), n_exp=1e8,
        )
    # CASE4: intra-node dominates
    return PipelineContext(
        a2a=LinearPerfModel(0.05, 1e-8), n_a2a=1e6,
        ag=LinearPerfModel(0.1, 5e-7), n_ag=1e8,
        rs=LinearPerfModel(0.1, 5e-7), n_rs=1e8,
        exp=LinearPerfModel(0.05, 1e-10), n_exp=1e8,
    )


class TestClassification:
    @pytest.mark.parametrize("case", list(Case))
    def test_hand_built_contexts_classify(self, case):
        assert classify(ctx_for(case), 4.0) is case

    @given(ctx=pipeline_contexts(with_gar=True), r=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_classification_total(self, ctx, r):
        """Every (ctx, r) belongs to exactly one case -- never raises."""
        case = classify(ctx, float(r))
        assert case in Case

    @given(ctx=pipeline_contexts(with_gar=True), r=st.integers(1, 16))
    @settings(max_examples=80, deadline=None)
    def test_case_matches_a_branch(self, ctx, r):
        """classify's decision tree agrees with the CASE_BRANCHES table."""
        case = classify(ctx, float(r))
        satisfied = []
        for candidate, branches in CASE_BRANCHES.items():
            for branch in branches:
                if all(
                    getattr(ctx, name)(float(r)) is wanted
                    for name, wanted in branch
                ):
                    satisfied.append(candidate)
        # Strict predicates can leave boundary ties unmatched, but when a
        # branch matches it must agree with classify.
        if satisfied:
            assert case in satisfied


class TestCaseTimes:
    def test_case1_formula(self):
        ctx = ctx_for(Case.CASE1)
        r = 4.0
        expected = 2 * r * ctx.t_a2a(r) + ctx.t_gar
        assert case_time(ctx, r, Case.CASE1) == pytest.approx(expected)

    def test_case2_formula(self):
        ctx = ctx_for(Case.CASE2)
        r = 4.0
        expected = (
            2 * ctx.t_a2a(r) + ctx.t_ag(r) + ctx.t_rs(r) + r * ctx.t_exp(r)
        )
        assert case_time(ctx, r, Case.CASE2) == pytest.approx(expected)

    def test_case3_formula(self):
        ctx = ctx_for(Case.CASE3)
        r = 4.0
        expected = 2 * r * ctx.t_a2a(r) + ctx.t_ag(r) + ctx.t_rs(r)
        assert case_time(ctx, r, Case.CASE3) == pytest.approx(expected)

    def test_case4_formula(self):
        ctx = ctx_for(Case.CASE4)
        r = 4.0
        expected = 2 * ctx.t_a2a(r) + r * (ctx.t_ag(r) + ctx.t_rs(r))
        assert case_time(ctx, r, Case.CASE4) == pytest.approx(expected)

    @given(ctx=pipeline_contexts(with_gar=True), r=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_analytic_time_positive(self, ctx, r):
        assert analytic_time(ctx, float(r)) > 0


class TestOverlappableTime:
    @given(ctx=pipeline_contexts(), r=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_window_non_negative(self, ctx, r):
        assert overlappable_time(ctx, float(r)) >= 0.0
        assert overlappable_time_merged_comm(ctx, float(r)) >= 0.0

    @given(ctx=pipeline_contexts(), r=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_merged_window_never_larger(self, ctx, r):
        """A merged comm stream has at most the dedicated stream's slack."""
        merged = overlappable_time_merged_comm(ctx, float(r))
        dedicated = overlappable_time(ctx, float(r))
        assert merged <= dedicated + 1e-9

    def test_case3_window_is_ag_plus_rs(self):
        ctx = ctx_for(Case.CASE3)
        r = 4.0
        assert overlappable_time(ctx, r) == pytest.approx(
            ctx.t_ag(r) + ctx.t_rs(r)
        )

    def test_window_ignores_existing_gar(self):
        ctx = ctx_for(Case.CASE2)
        assert overlappable_time(ctx.with_t_gar(10.0), 4.0) == pytest.approx(
            overlappable_time(ctx, 4.0)
        )
