"""Unit tests for repro.parallel.collectives cost models."""

import pytest

from repro.errors import TopologyError
from repro.parallel.collectives import A2AAlgorithm, CollectiveCostModel
from repro.parallel.topology import testbed_a, testbed_b
from repro.units import MB


@pytest.fixture(params=["A", "B"], name="oracle")
def oracle_fixture(request):
    cluster = testbed_a() if request.param == "A" else testbed_b()
    return CollectiveCostModel(cluster)


class TestBasics:
    def test_zero_bytes_cost_nothing(self, oracle):
        assert oracle.allgather_ms(0, 4) == 0.0
        assert oracle.reducescatter_ms(0, 4) == 0.0
        assert oracle.allreduce_ms(0, 8) == 0.0
        assert oracle.alltoall_ms(0, 8) == 0.0
        assert oracle.gemm_ms(0) == 0.0

    def test_group_of_one_costs_nothing(self, oracle):
        assert oracle.allgather_ms(MB, 1) == 0.0
        assert oracle.allreduce_ms(MB, 1) == 0.0
        assert oracle.alltoall_ms(MB, 1) == 0.0

    def test_monotone_in_bytes(self, oracle):
        for fn in (
            lambda n: oracle.allgather_ms(n, 4),
            lambda n: oracle.reducescatter_ms(n, 4),
            lambda n: oracle.allreduce_ms(n, 8),
            lambda n: oracle.alltoall_ms(n, 8),
        ):
            assert fn(2 * MB) > fn(MB) > 0

    def test_allgather_reducescatter_symmetric(self, oracle):
        assert oracle.allgather_ms(MB, 4) == pytest.approx(
            oracle.reducescatter_ms(MB, 4)
        )

    def test_allreduce_is_two_phases(self, oracle):
        # ring AllReduce == ReduceScatter + AllGather on the same fabric
        # modulo bandwidth efficiency and link choice; check scaling shape.
        t1 = oracle.allreduce_ms(MB, 8)
        t2 = oracle.allreduce_ms(2 * MB, 8)
        alpha = 2 * oracle.inter_link.startup_ms
        assert t2 - alpha == pytest.approx(2 * (t1 - alpha))

    def test_gemm_launch_per_kernel(self, oracle):
        one = oracle.gemm_ms(1e9, num_gemms=1)
        two = oracle.gemm_ms(1e9, num_gemms=2)
        launch = oracle.cluster.node.gpu.gemm_launch_ms
        assert two - one == pytest.approx(launch)

    def test_gemm_rejects_negative(self, oracle):
        with pytest.raises(TopologyError):
            oracle.gemm_ms(-1)


class TestNICSharing:
    def test_default_share_is_node_width(self):
        cluster = testbed_b()
        shared = CollectiveCostModel(cluster)
        exclusive = CollectiveCostModel(cluster, nic_concurrency=1)
        assert shared.alltoall_ms(MB, 8) > exclusive.alltoall_ms(MB, 8)

    def test_rejects_bad_concurrency(self):
        with pytest.raises(TopologyError):
            CollectiveCostModel(testbed_b(), nic_concurrency=0)


class TestA2AAlgorithms:
    def test_all_algorithms_positive(self, oracle):
        for algo in A2AAlgorithm:
            assert oracle.alltoall_ms(4 * MB, 8, algo) > 0

    def test_hierarchical_pays_staging_for_large_messages(self, oracle):
        direct = oracle.alltoall_ms(64 * MB, 8, A2AAlgorithm.NCCL)
        two_d = oracle.alltoall_ms(64 * MB, 8, A2AAlgorithm.HIER_2D)
        assert two_d > direct

    def test_efficiency_slows_a2a(self):
        fast = testbed_b()
        slow = CollectiveCostModel(
            type(fast)(
                name=fast.name,
                node=fast.node,
                num_nodes=fast.num_nodes,
                inter_link=fast.inter_link,
                a2a_efficiency=fast.a2a_efficiency / 2,
                allreduce_efficiency=fast.allreduce_efficiency,
            )
        )
        base = CollectiveCostModel(fast)
        assert slow.alltoall_ms(MB, 8) > base.alltoall_ms(MB, 8)
