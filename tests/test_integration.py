"""Integration tests: the full pipeline against the paper's shapes.

These are the regression pins for the reproduction: they encode the
qualitative claims of the paper's evaluation and fail if a change to the
library breaks a shape (who wins, by roughly what factor).
"""

import pytest

from repro import MoELayerSpec, standard_layout
from repro.bench import evaluate_config, evaluate_model
from repro.core.cases import analytic_time
from repro.core.pipeline_degree import find_optimal_pipeline_degree
from repro.core.schedules import GarMode, THREE_STREAM, IterationSpec, \
    LayerPhaseSchedule, build_iteration_graph
from repro.models import GPT2_XL, layer_op_breakdown, profile_layer
from repro.sim import simulate
from repro.systems import (
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
)

#: paper Table 2, Testbed B, GPT2 layer (B=4, L=1024): op -> (fw, bw) ms.
PAPER_TABLE2_B = {
    "AlltoAll": (11.2, 11.2),
    "AllReduce": (0.0, 7.3),
    "AllGather": (15.5, 15.5),
    "ReduceScatter": (15.7, 15.2),
    "Experts": (6.7, 13.0),
    "Attention": (4.5, 8.6),
}


@pytest.fixture(scope="module")
def gpt2_spec_b(parallel_b):
    return MoELayerSpec(
        batch_size=4,
        seq_len=1024,
        embed_dim=1600,
        hidden_scale=4,
        num_experts=parallel_b.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=25,
    )


class TestTable2Calibration:
    """The simulated testbed reproduces the paper's measured op times."""

    @pytest.mark.parametrize("phase,col", [("forward", 0), ("backward", 1)])
    def test_within_15_percent_of_paper(
        self, gpt2_spec_b, parallel_b, models_b, phase, col
    ):
        profile = profile_layer(gpt2_spec_b, parallel_b, models_b)
        ours = layer_op_breakdown(profile, models_b, phase)
        for op, values in PAPER_TABLE2_B.items():
            expected = values[col]
            if expected == 0.0:
                assert ours[op] == 0.0
            else:
                assert ours[op] == pytest.approx(expected, rel=0.15), op


class TestSystemOrdering:
    """Fig. 6 / Table 5: the ranking of the six systems."""

    @pytest.fixture(scope="class")
    def result(self, cluster_b, models_b, parallel_b):
        spec = MoELayerSpec(
            batch_size=2,
            seq_len=512,
            embed_dim=2048,
            hidden_scale=3,
            num_experts=parallel_b.n_ep,
            top_k=2,
            capacity_factor=1.2,
            num_heads=16,
        )
        systems = [
            DeepSpeedMoE(),
            Tutel(),
            TutelImproved(),
            PipeMoELina(),
            FSMoENoIIO(),
            FSMoE(),
        ]
        return evaluate_config(spec, cluster_b, models_b, systems)

    def test_fsmoe_beats_everything(self, result):
        fsmoe = result.times_ms["FSMoE"]
        for name, t in result.times_ms.items():
            if name != "FSMoE":
                assert fsmoe < t, name

    def test_dsmoe_slowest(self, result):
        dsmoe = result.times_ms["DS-MoE"]
        for name, t in result.times_ms.items():
            if name != "DS-MoE":
                assert t < dsmoe, name

    def test_speedup_bands(self, result):
        """FSMoE over Tutel lands in a plausible band around the paper's
        1.18-1.22x average (individual configs spread wider)."""
        s = result.speedup("FSMoE", "Tutel")
        assert 1.05 < s < 1.8

    def test_iio_overlap_contributes(self, result):
        """Table 5: FSMoE > FSMoE-No-IIO (the IIO overlap matters)."""
        assert result.times_ms["FSMoE"] < result.times_ms["FSMoE-No-IIO"]


class TestEndToEndModels:
    def test_gpt2_xl_table6_band(self, cluster_b, models_b):
        """Table 6: FSMoE 1.33-1.42x over DS-MoE on GPT2-XL, Testbed B."""
        result = evaluate_model(
            GPT2_XL,
            cluster_b,
            models_b,
            [DeepSpeedMoE(), FSMoE()],
            seq_len=256,
            num_layers=4,
        )
        s = result.speedup("FSMoE", "DS-MoE")
        assert 1.2 < s < 1.7


class TestAnalyticVersusExecuted:
    """Algorithm 1's closed forms track the DES-executed makespan."""

    def test_single_layer_no_gar(self, profile_b, models_b):
        ctx = profile_b.ctx_fw
        sol = find_optimal_pipeline_degree(ctx)
        layer = LayerPhaseSchedule(ctx=ctx, degree=sol.degree, dense_ms=0.0)
        spec = IterationSpec(
            name="check",
            forward=(layer,),
            backward=(layer,),
            grad_bytes=(0.0,),
            ar_model=models_b.allreduce,
            streams=THREE_STREAM,
            gar_mode=GarMode.END,
        )
        executed = simulate(
            build_iteration_graph(spec, phase="forward")
        ).makespan_ms
        analytic = analytic_time(ctx, float(sol.degree))
        # The paper's formulas carry head/tail approximations; the DES is
        # dependency-exact.  They must agree within one chunk's slack.
        slack = (
            ctx.t_a2a(sol.degree)
            + ctx.t_ag(sol.degree)
            + ctx.t_rs(sol.degree)
            + ctx.t_exp(sol.degree)
        )
        assert abs(executed - analytic) <= slack + 1e-6
