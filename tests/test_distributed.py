"""Tests for the executable Fig. 2 dataflow (DP+MP+EP+ESP on data).

The headline assertion: the fully distributed stage (token-split MP,
AlltoAll EP dispatch, hidden-sharded ESP experts, the whole Fig. 2
pipeline) produces *exactly* the same numbers as a single-process
MOELayer holding identical weights.
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.moe.distributed import (
    DistributedMoEConfig,
    DistributedMoEStage,
    build_reference_layers,
)
from repro.moe.experts import SimpleFFNExpert
from repro.moe.gates import GShardGate


def make_config(**overrides):
    base = dict(
        num_nodes=2,
        gpus_per_node=2,
        embed_dim=12,
        hidden_dim=16,
        num_experts=4,
        top_k=2,
        ffn_type="simple",
    )
    base.update(overrides)
    return DistributedMoEConfig(**base)


class TestConfig:
    def test_derived_quantities(self):
        cfg = make_config()
        assert cfg.experts_per_node == 2
        assert cfg.hidden_shard == 8

    def test_rejects_uneven_experts(self):
        with pytest.raises(ShapeError):
            make_config(num_experts=3)

    def test_rejects_uneven_hidden(self):
        with pytest.raises(ShapeError):
            make_config(hidden_dim=15)

    def test_rejects_unknown_ffn(self):
        with pytest.raises(ShapeError):
            make_config(ffn_type="dense")


class TestEquivalenceWithSingleProcess:
    @pytest.mark.parametrize(
        "nodes,gpus,experts,ffn",
        [
            (2, 2, 4, "simple"),
            (2, 2, 4, "mixtral"),
            (4, 2, 4, "simple"),
            (2, 4, 8, "mixtral"),
            (3, 2, 6, "simple"),
        ],
    )
    def test_distributed_equals_local(self, nodes, gpus, experts, ffn):
        cfg = make_config(
            num_nodes=nodes,
            gpus_per_node=gpus,
            num_experts=experts,
            ffn_type=ffn,
            hidden_dim=16 * gpus,
        )
        stage, references = build_reference_layers(cfg, seed=7)
        rng = np.random.default_rng(11)
        tokens = 8 * gpus
        inputs = [
            rng.normal(size=(tokens, cfg.embed_dim)) for _ in range(nodes)
        ]
        distributed = stage.forward(inputs)
        local = [ref.forward(x) for ref, x in zip(references, inputs)]
        for node, (a, b) in enumerate(zip(distributed, local)):
            np.testing.assert_allclose(a, b, atol=1e-9, err_msg=f"node {node}")

    def test_different_batches_per_node(self):
        """DP semantics: nodes process independent data."""
        cfg = make_config()
        stage, references = build_reference_layers(cfg, seed=3)
        rng = np.random.default_rng(5)
        inputs = [rng.normal(size=(8, cfg.embed_dim)) for _ in range(2)]
        out = stage.forward(inputs)
        assert not np.allclose(out[0], out[1])
        for ref, x, y in zip(references, inputs, out):
            np.testing.assert_allclose(ref.forward(x), y, atol=1e-9)


class TestValidation:
    def test_wrong_node_count(self):
        cfg = make_config()
        stage, _ = build_reference_layers(cfg)
        with pytest.raises(ShapeError):
            stage.forward([np.zeros((8, cfg.embed_dim))])

    def test_wrong_embed_dim(self):
        cfg = make_config()
        stage, _ = build_reference_layers(cfg)
        with pytest.raises(ShapeError):
            stage.forward([np.zeros((8, 5))] * 2)

    def test_tokens_not_divisible_by_mp(self):
        cfg = make_config()
        stage, _ = build_reference_layers(cfg)
        with pytest.raises(ShapeError):
            stage.forward([np.zeros((7, cfg.embed_dim))] * 2)

    def test_expert_count_mismatch(self):
        cfg = make_config()
        gate = GShardGate(cfg.embed_dim, cfg.num_experts, cfg.top_k)
        with pytest.raises(ShapeError):
            DistributedMoEStage(
                cfg,
                gate,
                [SimpleFFNExpert(cfg.embed_dim, cfg.hidden_dim)],
                capacity=64,
            )

    def test_gate_width_mismatch(self):
        cfg = make_config()
        gate = GShardGate(cfg.embed_dim, cfg.num_experts * 2, cfg.top_k)
        experts = [
            SimpleFFNExpert(cfg.embed_dim, cfg.hidden_dim)
            for _ in range(cfg.num_experts)
        ]
        with pytest.raises(ShapeError):
            DistributedMoEStage(cfg, gate, experts, capacity=64)
