"""Tests for the benchmark harness (grid, runner, reporting)."""

import pytest

from repro.bench import (
    configured_layer_grid,
    evaluate_config,
    format_table,
    geometric_mean,
    grid_size,
    speedups_over,
)
from repro.bench.workloads import TABLE4_GRID
from repro.config import MoELayerSpec
from repro.errors import ConfigError
from repro.systems import FSMoE, Tutel


class TestGrid:
    def test_paper_grid_size_is_1458(self):
        assert grid_size() == 1458

    def test_full_grid_materializes(self):
        specs = configured_layer_grid("B", num_experts=8)
        assert len(specs) == 1458
        assert len(set(specs)) == 1458  # all distinct

    def test_testbed_seq_lens(self):
        assert TABLE4_GRID.seq_lens("A") == (512, 1024, 2048)
        assert TABLE4_GRID.seq_lens("B") == (256, 512, 1024)
        with pytest.raises(ConfigError):
            TABLE4_GRID.seq_lens("C")

    def test_stride_subsamples(self):
        specs = configured_layer_grid("B", num_experts=8, stride=6)
        assert len(specs) == 1458 // 6
        with pytest.raises(ConfigError):
            configured_layer_grid("B", num_experts=8, stride=0)

    def test_nodrop_configs_present(self):
        specs = configured_layer_grid("A", num_experts=6)
        assert any(s.capacity_factor is None for s in specs)
        assert any(s.ffn_type == "mixtral" for s in specs)


class TestRunner:
    def test_evaluate_config(self, cluster_b, models_b, small_spec):
        systems = [Tutel(), FSMoE()]
        result = evaluate_config(small_spec, cluster_b, models_b, systems)
        assert set(result.times_ms) == {"Tutel", "FSMoE"}
        assert result.speedup("FSMoE", "Tutel") > 1.0

    def test_expert_count_coerced_to_nodes(self, cluster_b, models_b):
        spec = MoELayerSpec(
            batch_size=1, seq_len=256, embed_dim=1024,
            num_experts=3, top_k=2, num_heads=16,
        )
        result = evaluate_config(spec, cluster_b, models_b, [Tutel()])
        assert result.spec.num_experts == 8  # Testbed B has 8 nodes

    def test_speedup_unknown_system(self, cluster_b, models_b, small_spec):
        result = evaluate_config(small_spec, cluster_b, models_b, [Tutel()])
        with pytest.raises(ConfigError):
            result.speedup("Nope", "Tutel")


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        assert geometric_mean([1.0, 1.0, 1.0]) == 1.0

    def test_geometric_mean_rejects_bad_input(self):
        with pytest.raises(ConfigError):
            geometric_mean([])
        with pytest.raises(ConfigError):
            geometric_mean([1.0, 0.0])

    def test_speedups_over(self, cluster_b, models_b, small_spec):
        systems = [Tutel(), FSMoE()]
        results = [
            evaluate_config(small_spec, cluster_b, models_b, systems),
            evaluate_config(
                small_spec.with_(seq_len=256), cluster_b, models_b, systems
            ),
        ]
        table = speedups_over(results, "Tutel")
        assert table["Tutel"] == pytest.approx(1.0)
        assert table["FSMoE"] > 1.0

    def test_speedups_over_empty(self):
        with pytest.raises(ConfigError):
            speedups_over([], "Tutel")


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            ["sys", "speedup"],
            [["FSMoE", 1.218], ["Tutel", 1.0]],
            title="Table 5",
        )
        assert "Table 5" in text
        assert "FSMoE" in text
        assert "1.218" in text
        lines = text.splitlines()
        assert len(lines) == 5  # title + header + rule + 2 rows
