"""Tests for model presets, layer profiling and the Table-2 breakdown."""

import pytest

from repro.config import MoELayerSpec
from repro.errors import ConfigError
from repro.models import (
    GPT2_XL,
    MIXTRAL_7B,
    MIXTRAL_22B,
    MODEL_PRESETS,
    gpipe_iteration_ms,
    layer_op_breakdown,
    layer_spec_for,
    microbatch_spec,
    profile_layer,
    split_stages,
)
from repro.models.transformer import BREAKDOWN_OPS
from repro.moe.gates import GateKind


class TestPresets:
    def test_registry_complete(self):
        assert set(MODEL_PRESETS) == {"GPT2-XL", "Mixtral-7B", "Mixtral-22B"}

    def test_mixtral_7b_geometry(self):
        spec = layer_spec_for(
            MIXTRAL_7B, batch_size=1, seq_len=1024, num_experts=8
        )
        assert spec.embed_dim == 4096
        assert spec.hidden_dim == 14336
        assert spec.ffn_type == "mixtral"

    def test_mixtral_22b_geometry(self):
        spec = layer_spec_for(
            MIXTRAL_22B, batch_size=1, seq_len=1024, num_experts=6
        )
        assert spec.embed_dim == 6144
        assert spec.hidden_dim == 16384

    def test_gpt2_heads_divide(self):
        spec = layer_spec_for(GPT2_XL, batch_size=1, seq_len=256, num_experts=8)
        assert spec.embed_dim % spec.num_heads == 0

    def test_paper_e2e_defaults(self):
        assert MIXTRAL_7B.top_k == 2
        assert MIXTRAL_7B.capacity_factor == 1.2
        assert MIXTRAL_7B.num_layers == 7  # Testbed-B setting (§6.4)
        assert MIXTRAL_22B.num_layers == 33  # Testbed-A setting (§6.4)

    def test_rejects_bad_expert_count(self):
        with pytest.raises(ConfigError):
            layer_spec_for(GPT2_XL, batch_size=1, seq_len=256, num_experts=0)


class TestProfileLayer:
    def test_profile_fields_positive(self, profile_b):
        assert profile_b.dense_fw_ms > 0
        assert profile_b.dense_bw_ms > profile_b.dense_fw_ms
        assert profile_b.grad_bytes > 0
        assert profile_b.gate_ms > 0
        assert profile_b.order_ms > 0

    def test_backward_context_doubles_experts(self, profile_b):
        assert profile_b.ctx_bw.n_exp == 2 * profile_b.ctx_fw.n_exp
        assert profile_b.ctx_bw.n_a2a == profile_b.ctx_fw.n_a2a

    def test_expert_choice_shrinks_capacity(self, small_spec, parallel_b, models_b):
        gshard = profile_layer(
            small_spec, parallel_b, models_b, gate_kind=GateKind.GSHARD
        )
        ec = profile_layer(
            small_spec, parallel_b, models_b, gate_kind=GateKind.EXPERT_CHOICE
        )
        assert ec.volumes.a2a_bytes < gshard.volumes.a2a_bytes
        assert ec.spec.capacity_factor == 1.0

    def test_xmoe_costs_more_routing(self, small_spec, parallel_b, models_b):
        gshard = profile_layer(
            small_spec, parallel_b, models_b, gate_kind=GateKind.GSHARD
        )
        xmoe = profile_layer(
            small_spec, parallel_b, models_b, gate_kind=GateKind.XMOE
        )
        assert xmoe.gate_ms > gshard.gate_ms

    def test_routing_overhead_multiplier(self, small_spec, parallel_b, models_b):
        base = profile_layer(small_spec, parallel_b, models_b)
        slow = profile_layer(
            small_spec, parallel_b, models_b, routing_overhead=3.0
        )
        assert slow.gate_ms == pytest.approx(3.0 * base.gate_ms)
        with pytest.raises(ConfigError):
            profile_layer(small_spec, parallel_b, models_b, routing_overhead=0)


class TestBreakdown:
    def test_all_paper_ops_present(self, profile_b, models_b):
        fw = layer_op_breakdown(profile_b, models_b, "forward")
        assert tuple(fw) == BREAKDOWN_OPS

    def test_forward_has_no_allreduce(self, profile_b, models_b):
        fw = layer_op_breakdown(profile_b, models_b, "forward")
        assert fw["AllReduce"] == 0.0

    def test_backward_doubles_compute(self, profile_b, models_b):
        fw = layer_op_breakdown(profile_b, models_b, "forward")
        bw = layer_op_breakdown(profile_b, models_b, "backward")
        assert bw["Attention"] == pytest.approx(2 * fw["Attention"])
        assert bw["Experts"] > 1.8 * fw["Experts"]
        assert bw["AllReduce"] > 0
        assert bw["AlltoAll"] == pytest.approx(fw["AlltoAll"])

    def test_rejects_unknown_phase(self, profile_b, models_b):
        with pytest.raises(ConfigError):
            layer_op_breakdown(profile_b, models_b, "sideways")


class TestPipelineParallel:
    def test_microbatch_splits_batch_first(self):
        spec = MoELayerSpec(batch_size=4, seq_len=1024)
        micro = microbatch_spec(spec, 4)
        assert micro.batch_size == 1
        assert micro.seq_len == 1024

    def test_microbatch_falls_back_to_sequence(self):
        spec = MoELayerSpec(batch_size=1, seq_len=1024)
        micro = microbatch_spec(spec, 4)
        assert micro.batch_size == 1
        assert micro.seq_len == 256

    def test_microbatch_rejects_unsplittable(self):
        spec = MoELayerSpec(batch_size=1, seq_len=1000)
        with pytest.raises(ConfigError):
            microbatch_spec(spec, 3)

    def test_gpipe_formula(self):
        # (m + p - 1) * (tf + tb) + exposed
        assert gpipe_iteration_ms(2.0, 3.0, 1.0, num_stages=2, num_micro=4) == (
            pytest.approx(5 * 5.0 + 1.0)
        )

    def test_gpipe_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            gpipe_iteration_ms(1.0, 1.0, 0.0, num_stages=0, num_micro=2)

    def test_gpipe_per_stage_sequences_generalize_scalars(self):
        homogeneous = gpipe_iteration_ms(
            2.0, 3.0, 1.0, num_stages=2, num_micro=4
        )
        as_sequences = gpipe_iteration_ms(
            [2.0, 2.0], [3.0, 3.0], [1.0, 1.0], num_stages=2, num_micro=4
        )
        assert as_sequences == pytest.approx(homogeneous)

    def test_gpipe_heterogeneous_stages(self):
        # drain = (2+4) + (3+5) = 14; steady = 3 * (4 + 5) = 27; gar = 1.5
        t = gpipe_iteration_ms(
            [2.0, 4.0], [3.0, 5.0], [0.5, 1.5], num_stages=2, num_micro=4
        )
        assert t == pytest.approx(14.0 + 27.0 + 1.5)

    def test_gpipe_slow_stage_paces_the_pipeline(self):
        balanced = gpipe_iteration_ms(
            [3.0, 3.0], [3.0, 3.0], 0.0, num_stages=2, num_micro=8
        )
        skewed = gpipe_iteration_ms(
            [2.0, 4.0], [2.0, 4.0], 0.0, num_stages=2, num_micro=8
        )
        # same total work, but the slow stage dominates the steady state
        assert skewed > balanced

    def test_gpipe_rejects_wrong_sequence_length(self):
        with pytest.raises(ConfigError, match="entries for"):
            gpipe_iteration_ms(
                [1.0, 2.0, 3.0], 1.0, 0.0, num_stages=2, num_micro=2
            )

    def test_split_stages_even_and_remainder(self):
        assert split_stages(8, 2) == (4, 4)
        assert split_stages(7, 2) == (4, 3)
        assert split_stages(33, 4) == (9, 8, 8, 8)
        assert split_stages(3, 3) == (1, 1, 1)

    def test_split_stages_rejects_impossible(self):
        with pytest.raises(ConfigError):
            split_stages(2, 3)
        with pytest.raises(ConfigError):
            split_stages(0, 1)
