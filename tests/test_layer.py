"""Tests for MOELayer: forward/backward, hooks, expert parallelism."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.moe import (
    GShardGate,
    MOELayer,
    MixtralFFNExpert,
    NcclAllToAll,
    SimpleFFNExpert,
    TutelOrder,
    GShardOrder,
)
from repro.moe.interfaces import CallbackBase
from repro.moe.layer import expert_parallel_forward

S, M, E, K, H = 32, 12, 4, 2, 20
RNG = np.random.default_rng(0)


def make_layer(capacity_factor=2.0, callbacks=(), order=None, seed=1):
    gate = GShardGate(M, E, K, seed=seed)
    experts = [SimpleFFNExpert(M, H, seed=seed + 1 + e) for e in range(E)]
    return MOELayer(
        gate, experts, capacity_factor=capacity_factor,
        callbacks=callbacks, order=order,
    )


class TestForward:
    def test_shapes_2d_and_3d(self):
        layer = make_layer()
        x2 = RNG.normal(size=(S, M))
        assert layer.forward(x2).shape == (S, M)
        x3 = RNG.normal(size=(2, S // 2, M))
        assert layer.forward(x3).shape == (2, S // 2, M)

    def test_rejects_bad_rank(self):
        with pytest.raises(ShapeError):
            make_layer().forward(np.zeros((2, 2, 2, 2)))

    def test_capacity_formula(self):
        layer = make_layer(capacity_factor=1.2)
        # ceil(k * f * S / E) = ceil(2 * 1.2 * 32 / 4) = 20
        assert layer.capacity(32) == 20

    def test_nodrop_capacity_is_all_tokens(self):
        layer = make_layer(capacity_factor=None)
        assert layer.capacity(32) == 32

    def test_identity_experts_reproduce_input(self):
        """With ample capacity and identity experts, combine(dispatch(x)) == x."""
        class IdentityExpert(SimpleFFNExpert):
            def forward(self, x):
                self._cache = {"x": x}
                return x
        gate = GShardGate(M, E, K, seed=3)
        layer = MOELayer(
            gate,
            [IdentityExpert(M, H) for _ in range(E)],
            capacity_factor=None,
        )
        x = RNG.normal(size=(S, M))
        np.testing.assert_allclose(layer.forward(x), x, atol=1e-9)

    def test_mixtral_experts_work(self):
        gate = GShardGate(M, E, K, seed=5)
        layer = MOELayer(
            gate,
            [MixtralFFNExpert(M, H, seed=6 + e) for e in range(E)],
            capacity_factor=2.0,
        )
        assert layer.forward(RNG.normal(size=(S, M))).shape == (S, M)

    def test_gate_expert_count_mismatch(self):
        gate = GShardGate(M, E, K, seed=1)
        with pytest.raises(ShapeError):
            MOELayer(gate, [SimpleFFNExpert(M, H)] * (E - 1))

    def test_aux_loss_populated(self):
        layer = make_layer()
        assert layer.aux_loss == 0.0
        layer.forward(RNG.normal(size=(S, M)))
        assert layer.aux_loss > 0.0

    def test_order_choices_equivalent(self):
        x = RNG.normal(size=(S, M))
        y1 = make_layer(order=TutelOrder(), seed=11).forward(x)
        y2 = make_layer(order=GShardOrder(), seed=11).forward(x)
        np.testing.assert_allclose(y1, y2, atol=1e-10)


class TestBackward:
    def test_backward_before_forward_raises(self):
        with pytest.raises(ShapeError):
            make_layer().backward(np.zeros((S, M)))

    def test_input_gradient_finite_difference(self):
        layer = make_layer(seed=21)
        x = RNG.normal(size=(12, M))
        dy = RNG.normal(size=(12, M))
        layer.zero_grad()
        layer.forward(x)
        dx = layer.backward(dy)

        eps = 1e-6
        i, j = 4, 7
        x_up = x.copy(); x_up[i, j] += eps
        x_dn = x.copy(); x_dn[i, j] -= eps
        fd = np.sum((layer.forward(x_up) - layer.forward(x_dn)) * dy) / (2 * eps)
        assert dx[i, j] == pytest.approx(fd, rel=1e-3, abs=1e-6)

    def test_expert_grads_populated(self):
        layer = make_layer()
        layer.zero_grad()
        layer.forward(RNG.normal(size=(S, M)))
        layer.backward(np.ones((S, M)))
        touched = [
            float(np.abs(e.grads["w1"]).sum()) for e in layer.experts
        ]
        assert sum(t > 0 for t in touched) >= 1

    def test_gate_grads_populated(self):
        layer = make_layer()
        layer.zero_grad()
        layer.forward(RNG.normal(size=(S, M)))
        layer.backward(np.ones((S, M)))
        assert np.abs(layer.gate.grads["w_gate"]).sum() > 0

    def test_zero_grad_clears_everything(self):
        layer = make_layer()
        layer.forward(RNG.normal(size=(S, M)))
        layer.backward(np.ones((S, M)))
        layer.zero_grad()
        assert np.abs(layer.gate.grads["w_gate"]).sum() == 0
        for expert in layer.experts:
            assert np.abs(expert.grads["w1"]).sum() == 0


class RecordingCallback(CallbackBase):
    def __init__(self):
        self.sites = []

    def before_moe_start_hook(self, x, ctx):
        self.sites.append("before_moe_start")
        return x

    def before_dispatch_hook(self, x, ctx):
        self.sites.append("before_dispatch")
        ctx.storage["scale"] = 2.0
        return x * 2.0

    def after_dispatch_hook(self, x, ctx):
        self.sites.append("after_dispatch")
        return x / ctx.storage["scale"]

    def before_combine_hook(self, x, ctx):
        self.sites.append("before_combine")
        return x

    def after_combine_hook(self, x, ctx):
        self.sites.append("after_combine")
        return x

    def before_moe_end_hook(self, x, ctx):
        self.sites.append("before_moe_end")
        return x


class TestHooks:
    def test_hooks_called_in_order(self):
        cb = RecordingCallback()
        layer = make_layer(callbacks=(cb,))
        layer.forward(RNG.normal(size=(S, M)))
        assert cb.sites == [
            "before_moe_start",
            "before_dispatch",
            "after_dispatch",
            "before_combine",
            "after_combine",
            "before_moe_end",
        ]

    def test_compress_decompress_pair_is_transparent(self):
        """The paper's compression example: hooks must not change results."""
        x = RNG.normal(size=(S, M))
        plain = make_layer(seed=31).forward(x)
        hooked = make_layer(seed=31, callbacks=(RecordingCallback(),)).forward(x)
        np.testing.assert_allclose(plain, hooked, atol=1e-12)


class TestExpertParallel:
    @pytest.mark.parametrize("world", [2, 4])
    def test_ep_equals_local_execution(self, world):
        layers = []
        for _ in range(world):
            gate = GShardGate(M, E, K, seed=77)
            experts = [SimpleFFNExpert(M, H, seed=100 + e) for e in range(E)]
            layers.append(MOELayer(gate, experts, capacity_factor=2.0))
        inputs = [RNG.normal(size=(16, M)) for _ in range(world)]
        ep = expert_parallel_forward(layers, inputs, NcclAllToAll(world))
        local = [layers[r].forward(inputs[r]) for r in range(world)]
        for a, b in zip(ep, local):
            np.testing.assert_allclose(a, b, atol=1e-9)

    def test_rejects_uneven_experts(self):
        layers = [make_layer(seed=1) for _ in range(3)]  # E=4 over 3 ranks
        inputs = [RNG.normal(size=(8, M))] * 3
        with pytest.raises(ShapeError):
            expert_parallel_forward(layers, inputs, NcclAllToAll(3))

    def test_rejects_mismatched_inputs(self):
        layers = [make_layer(seed=1) for _ in range(2)]
        with pytest.raises(ShapeError):
            expert_parallel_forward(
                layers, [RNG.normal(size=(8, M))], NcclAllToAll(2)
            )
