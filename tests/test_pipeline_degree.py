"""Tests for Algorithm 1 (FindOptimalPipelineDegree)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cases import Case, analytic_time
from repro.core.constraints import PipelineContext
from repro.core.perf_model import LinearPerfModel
from repro.core.pipeline_degree import (
    find_optimal_pipeline_degree,
    oracle_integer_degree,
)
from repro.errors import SolverError

from .helpers import pipeline_contexts


class TestAgainstOracle:
    @given(ctx=pipeline_contexts(with_gar=True))
    @settings(max_examples=40, deadline=None)
    def test_slsqp_matches_integer_oracle(self, ctx):
        """Algorithm 1 finds (near-)oracle degrees on the analytic model.

        The SLSQP search solves smooth relaxations, so we assert the
        resulting *time* is within 2% of the brute-force optimum (ties in
        degree are fine -- several degrees often share the optimum).
        """
        slsqp = find_optimal_pipeline_degree(ctx, r_max=16)
        oracle = oracle_integer_degree(ctx, r_max=16)
        assert slsqp.time_ms <= oracle.time_ms * 1.02 + 1e-9

    @given(ctx=pipeline_contexts())
    @settings(max_examples=30, deadline=None)
    def test_solution_consistent_with_analytic_time(self, ctx):
        sol = find_optimal_pipeline_degree(ctx, r_max=16)
        assert sol.time_ms == pytest.approx(
            analytic_time(ctx, float(sol.degree))
        )
        assert 1 <= sol.degree <= 16


class TestKnownOptima:
    def test_startup_dominated_prefers_r1(self):
        """Huge alphas + tiny volumes: chunking only adds startups."""
        ctx = PipelineContext(
            a2a=LinearPerfModel(5.0, 1e-9), n_a2a=1e4,
            ag=LinearPerfModel(5.0, 1e-9), n_ag=1e4,
            rs=LinearPerfModel(5.0, 1e-9), n_rs=1e4,
            exp=LinearPerfModel(5.0, 1e-12), n_exp=1e6,
        )
        assert find_optimal_pipeline_degree(ctx).degree == 1

    def test_balanced_overlap_prefers_pipelining(self):
        """Zero startup + equal comm/compute: more chunks always help."""
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.001, 2e-7), n_a2a=5e7,
            ag=LinearPerfModel(0.001, 1e-8), n_ag=5e7,
            rs=LinearPerfModel(0.001, 1e-8), n_rs=5e7,
            exp=LinearPerfModel(0.001, 1e-9), n_exp=2e10,
        )
        assert find_optimal_pipeline_degree(ctx).degree >= 4

    def test_gar_shifts_regime_to_case1(self):
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.2, 2e-7), n_a2a=5e7,
            ag=LinearPerfModel(0.05, 1e-8), n_ag=5e6,
            rs=LinearPerfModel(0.05, 1e-8), n_rs=5e6,
            exp=LinearPerfModel(0.1, 1e-10), n_exp=1e9,
            t_gar=1000.0,
        )
        sol = find_optimal_pipeline_degree(ctx)
        assert sol.case is Case.CASE1
        # In case 1 time = 2 r alpha + const + t_gar: minimal r wins.
        assert sol.degree == 1


class TestInterface:
    def test_rejects_bad_rmax(self):
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.1, 1e-7), n_a2a=1e6,
            ag=LinearPerfModel(0.1, 1e-7), n_ag=1e6,
            rs=LinearPerfModel(0.1, 1e-7), n_rs=1e6,
            exp=LinearPerfModel(0.1, 1e-10), n_exp=1e9,
        )
        with pytest.raises(SolverError):
            find_optimal_pipeline_degree(ctx, r_max=0)
        with pytest.raises(SolverError):
            oracle_integer_degree(ctx, r_max=0)

    def test_per_case_times_reported(self):
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.1, 1e-7), n_a2a=1e7,
            ag=LinearPerfModel(0.05, 1e-8), n_ag=1e7,
            rs=LinearPerfModel(0.05, 1e-8), n_rs=1e7,
            exp=LinearPerfModel(0.05, 1e-10), n_exp=1e10,
        )
        sol = find_optimal_pipeline_degree(ctx)
        assert set(sol.per_case_time_ms) == set(Case)
        assert min(sol.per_case_time_ms.values()) < float("inf")

    def test_rmax_caps_degree(self):
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.0001, 2e-7), n_a2a=5e7,
            ag=LinearPerfModel(0.0001, 1e-8), n_ag=5e7,
            rs=LinearPerfModel(0.0001, 1e-8), n_rs=5e7,
            exp=LinearPerfModel(0.0001, 1e-9), n_exp=2e10,
        )
        assert find_optimal_pipeline_degree(ctx, r_max=3).degree <= 3


class TestForwardBackwardDiffer:
    def test_912_of_1458_claim_mechanism(self, profile_b):
        """Paper §4.4: fw and bw can have different optimal degrees.

        Verify the mechanism exists for the reference profile: backward
        doubles the expert share, which changes the case geometry.
        """
        fw = find_optimal_pipeline_degree(profile_b.ctx_fw)
        bw = find_optimal_pipeline_degree(profile_b.ctx_bw)
        assert fw.degree >= 1 and bw.degree >= 1
        # Degrees (and, in intra-dominated Case 4, even the times) may
        # coincide; backward can never be cheaper than forward.
        assert bw.time_ms >= fw.time_ms
