"""Table rendering: alignment, degenerate inputs, unicode, Markdown."""

from __future__ import annotations

from repro.bench.reporting import format_markdown_table, format_table


class TestFormatTable:
    def test_columns_align_on_widest_cell(self):
        text = format_table(
            ["sys", "iteration (ms)"],
            [["FSMoE", 1.0], ["a-much-longer-name", 123.456]],
        )
        lines = text.splitlines()
        # every rendered line has the same width (cells are padded)
        header, rule, *rows = lines
        assert len(set(map(len, [header, *rows]))) == 1
        # the separator matches the header's column structure
        assert rule.count("-+-") == 1
        assert len(rule) == len(header)
        # cell starts line up column by column
        assert header.index("| iteration") == rows[0].index("| 1.000")

    def test_floats_render_with_three_decimals(self):
        text = format_table(["x"], [[1.5], [2.0]])
        assert "1.500" in text and "2.000" in text

    def test_empty_rows_render_header_and_rule_only(self):
        text = format_table(["a", "bb"], [])
        assert text.splitlines() == ["a | bb", "--+---"]

    def test_empty_rows_with_title(self):
        text = format_table(["a"], [], title="empty table")
        assert text.splitlines() == ["empty table", "a", "-"]

    def test_empty_cells_keep_structure(self):
        text = format_table(["a", "b"], [["", "x"], ["y", ""]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(map(len, lines[2:]))) == 1

    def test_unicode_cells_round_trip(self):
        text = format_table(
            ["système", "Δt (ms)"],
            [["FSMoE™", "1.2×"], ["§5-ablation", "naïve"]],
        )
        assert "FSMoE™" in text
        assert "§5-ablation" in text
        assert "Δt (ms)" in text
        # widths are computed in code points, so alignment still holds
        header, rule, *rows = text.splitlines()
        assert len(set(map(len, [header, *rows]))) == 1

    def test_non_string_cells_use_str(self):
        text = format_table(["k", "v"], [[1, None], [(2, 3), True]])
        assert "None" in text and "(2, 3)" in text and "True" in text


class TestFormatMarkdownTable:
    def test_shape(self):
        text = format_markdown_table(["a", "b"], [["x", 1.5]])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| x | 1.500 |"

    def test_pipes_in_cells_are_escaped(self):
        text = format_markdown_table(["h"], [["a|b"]])
        assert "a\\|b" in text
        # the row still has exactly the delimiter pipes
        row = text.splitlines()[2]
        assert row.replace("\\|", "").count("|") == 2

    def test_empty_rows(self):
        text = format_markdown_table(["only", "header"], [])
        assert text.splitlines() == [
            "| only | header |", "| --- | --- |",
        ]
