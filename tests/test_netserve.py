"""Wire-protocol conformance for the network serving tier.

Every malformed input -- broken JSON, non-object frames, wrong schema,
unknown ops, oversized lines, truncated frames, seeded random fuzz --
must get a structured error response on a live connection, never a hang
or a dead server; the same discipline is asserted against the cache
tier's :class:`~repro.cache.remote.CacheServer`.  The shared
:class:`~repro.serve.protocol.Backoff` policy is pinned with injected
RNG and sleepers so the retry behavior of :class:`NetClient` and
:class:`RemoteTier` is deterministic.
"""

from __future__ import annotations

import json
import random
import socket

import pytest

from repro import (
    Backoff,
    ConfigError,
    NetClient,
    NetServer,
    ProtocolError,
    QueueFullError,
    ServiceError,
    Workspace,
)
from repro.cache.remote import CacheServer, RemoteTier
from repro.serve.protocol import (
    E_BAD_FRAME,
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_BAD_SCHEMA,
    E_OVERSIZED,
    E_PLAN_FAILED,
    E_UNKNOWN_OP,
    PROTOCOL_SCHEMA_VERSION,
    retry_priorities,
)

TINY_PAYLOAD = {
    "cluster": "B",
    "system": "tutel",
    "solver": "slsqp",
    "stack": {
        "layers": [
            {
                "batch_size": 1,
                "seq_len": 256,
                "embed_dim": 512,
                "num_experts": 8,
                "num_heads": 8,
            }
        ],
        "num_layers": 2,
    },
}


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """One NetServer shared by the module (tests only read counters
    relatively or poke the protocol, so sharing is safe and fast)."""
    workspace = Workspace(tmp_path_factory.mktemp("netserve") / "ws")
    with NetServer(workspace, flush_ms=1.0, max_line_bytes=64 * 1024) as srv:
        yield srv


@pytest.fixture()
def raw(server):
    """A raw socket + buffered reader on the server."""
    host, port = server.address.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=30.0)
    reader = sock.makefile("rb")
    yield sock, reader
    reader.close()
    sock.close()


def send_line(sock, payload: bytes) -> None:
    sock.sendall(payload if payload.endswith(b"\n") else payload + b"\n")


def read_response(reader) -> dict:
    line = reader.readline()
    assert line, "server closed the connection instead of answering"
    response = json.loads(line)
    assert isinstance(response, dict)
    return response


def error_code(response: dict) -> str:
    assert response["ok"] is False
    return response["error"]["code"]


class TestProtocolConformance:
    def test_malformed_json_gets_structured_error(self, raw):
        sock, reader = raw
        send_line(sock, b"this is not json")
        assert error_code(read_response(reader)) == E_BAD_JSON

    def test_non_object_frame_is_refused(self, raw):
        sock, reader = raw
        for frame in (b"[1, 2, 3]", b'"hello"', b"17", b"null", b"true"):
            send_line(sock, frame)
            assert error_code(read_response(reader)) == E_BAD_FRAME

    def test_missing_and_wrong_schema_are_refused(self, raw):
        sock, reader = raw
        send_line(sock, json.dumps({"op": "ping"}).encode())
        assert error_code(read_response(reader)) == E_BAD_SCHEMA
        send_line(sock, json.dumps({"op": "ping", "schema": 99}).encode())
        response = read_response(reader)
        assert error_code(response) == E_BAD_SCHEMA
        assert str(PROTOCOL_SCHEMA_VERSION) in response["error"]["message"]

    def test_unknown_op_is_refused_and_echoes_id(self, raw):
        sock, reader = raw
        send_line(
            sock,
            json.dumps(
                {"op": "mystery", "schema": PROTOCOL_SCHEMA_VERSION,
                 "id": "req-7"}
            ).encode(),
        )
        response = read_response(reader)
        assert error_code(response) == E_UNKNOWN_OP
        assert response["id"] == "req-7"

    def test_oversized_line_is_refused_and_connection_resyncs(self, raw):
        sock, reader = raw
        sock.sendall(b"x" * (128 * 1024) + b"\n")
        assert error_code(read_response(reader)) == E_OVERSIZED
        # the connection is still usable afterwards
        send_line(
            sock,
            json.dumps(
                {"op": "ping", "schema": PROTOCOL_SCHEMA_VERSION}
            ).encode(),
        )
        assert read_response(reader)["pong"] is True

    def test_truncated_frame_then_close_leaves_server_alive(self, server):
        host, port = server.address.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)), timeout=10.0)
        # half a JSON object, no newline, then a hard close
        sock.sendall(b'{"op": "plan", "schema": 1, "request": {"clu')
        sock.close()
        client = NetClient(server.address)
        assert client.ping() is True
        client.close()

    def test_blank_lines_are_ignored(self, raw):
        sock, reader = raw
        sock.sendall(b"\n\n   \n")
        send_line(
            sock,
            json.dumps(
                {"op": "ping", "schema": PROTOCOL_SCHEMA_VERSION}
            ).encode(),
        )
        assert read_response(reader)["pong"] is True

    def test_bad_plan_payloads_get_bad_request(self, raw):
        sock, reader = raw
        payloads = [
            None,
            [1, 2],
            {},
            {"cluster": "B"},
            {**TINY_PAYLOAD, "mystery": 1},
            {**TINY_PAYLOAD, "cluster": "no-such-cluster"},
            {**TINY_PAYLOAD, "system": "no-such-system"},
            {**TINY_PAYLOAD, "gate": "no-such-gate"},
            {**TINY_PAYLOAD, "seed": "not-a-number"},
        ]
        for payload in payloads:
            send_line(
                sock,
                json.dumps(
                    {
                        "op": "plan",
                        "schema": PROTOCOL_SCHEMA_VERSION,
                        "request": payload,
                    }
                ).encode(),
            )
            assert error_code(read_response(reader)) == E_BAD_REQUEST

    def test_bad_priority_and_detail_are_refused(self, raw):
        sock, reader = raw
        for field, value in (("priority", "urgent"), ("detail", "everything")):
            send_line(
                sock,
                json.dumps(
                    {
                        "op": "plan",
                        "schema": PROTOCOL_SCHEMA_VERSION,
                        field: value,
                        "request": TINY_PAYLOAD,
                    }
                ).encode(),
            )
            assert error_code(read_response(reader)) == E_BAD_REQUEST

    def test_protocol_errors_are_counted_not_requests(self, server, raw):
        sock, reader = raw
        before = server.stats_snapshot()
        send_line(sock, b"not json")
        read_response(reader)
        after = server.stats_snapshot()
        assert after.protocol_errors == before.protocol_errors + 1
        assert after.requests == before.requests

    def test_plan_roundtrip_and_digest(self, server):
        client = NetClient(server.address)
        try:
            response = client.plan(TINY_PAYLOAD, digest=True)
            assert response["ok"] is True
            result = response["result"]
            assert result["system"] == "Tutel"
            assert result["num_layers"] == 2
            assert result["makespan_ms"] > 0
            assert isinstance(response["digest"], str)
            # the digest matches what the workspace derives locally
            from repro.serve.protocol import parse_plan_payload

            request = parse_plan_payload(TINY_PAYLOAD)
            expected = server.service.workspace.plan_digest(
                request.stack, request.system, request.cluster,
                gate_kind=request.gate_kind,
            )
            assert response["digest"] == expected
        finally:
            client.close()

    def test_detail_plan_matches_direct_workspace_plan(self, server):
        client = NetClient(server.address)
        try:
            response = client.plan(TINY_PAYLOAD, detail="plan")
            from repro.serve.protocol import parse_plan_payload

            request = parse_plan_payload(TINY_PAYLOAD)
            direct = server.service.workspace.plan(
                request.stack, request.system, request.cluster,
                gate_kind=request.gate_kind,
            )
            assert response["plan"] == direct.to_dict()
        finally:
            client.close()

    def test_impossible_plan_is_plan_failed_not_a_crash(self, server):
        client = NetClient(server.address)
        try:
            bad = {**TINY_PAYLOAD, "routing_overhead": -1e9}
            with pytest.raises((ServiceError, ProtocolError)) as info:
                client.plan(bad)
            assert not isinstance(info.value, QueueFullError)
            assert client.ping() is True
        finally:
            client.close()

    def test_stats_and_metrics_ops(self, server):
        client = NetClient(server.address)
        try:
            client.plan(TINY_PAYLOAD)
            stats = client.stats()
            assert stats["net"]["requests"] >= 1
            assert stats["net"]["completed"] >= 1
            assert "interactive" in stats["net"]["lanes"]
            assert stats["service"]["requests"] >= 1
            exposition = client.metrics()
            assert "repro_net_requests" in exposition
            assert "repro_net_lane_interactive_depth" in exposition
        finally:
            client.close()


def fuzz_roundtrip(address: str, frames: list[bytes]) -> None:
    """Send frames, then prove the server still answers a ping."""
    host, port = address.rsplit(":", 1)
    sock = socket.create_connection((host, int(port)), timeout=30.0)
    reader = sock.makefile("rb")
    try:
        for frame in frames:
            sock.sendall(frame)
            if frame.endswith(b"\n") and frame.strip():
                response = reader.readline()
                assert response, "server hung up mid-fuzz"
                decoded = json.loads(response)
                assert isinstance(decoded, dict)
                assert "ok" in decoded
        sock.sendall(
            json.dumps(
                {"op": "ping", "schema": PROTOCOL_SCHEMA_VERSION}
            ).encode()
            + b"\n"
        )
        # drain until the pong: unterminated junk may have queued one
        # refusal ahead of it.
        for _ in range(4):
            response = json.loads(reader.readline())
            if response.get("pong") is True:
                break
        else:  # pragma: no cover - failure path
            raise AssertionError("no pong after fuzz frames")
    finally:
        reader.close()
        sock.close()


def random_frames(seed: int, count: int = 40) -> list[bytes]:
    """Seeded adversarial frames: random bytes, always newline-bounded."""
    rng = random.Random(seed)
    frames = []
    for _ in range(count):
        size = rng.randrange(1, 200)
        body = bytes(
            rng.randrange(1, 256) for _ in range(size)
        ).replace(b"\n", b" ")
        frames.append(body + b"\n")
    return frames


def mutated_frames(seed: int, count: int = 40) -> list[bytes]:
    """Seeded structure-aware mutations of a valid plan frame."""
    rng = random.Random(seed)
    base = json.dumps(
        {
            "op": "plan",
            "schema": PROTOCOL_SCHEMA_VERSION,
            "request": TINY_PAYLOAD,
        }
    ).encode()
    frames = []
    for _ in range(count):
        body = bytearray(base)
        for _ in range(rng.randrange(1, 6)):
            kind = rng.randrange(3)
            pos = rng.randrange(len(body))
            if kind == 0:  # flip
                byte = rng.randrange(32, 127)
                body[pos] = byte if byte != 0x0A else 0x20
            elif kind == 1 and len(body) > 2:  # delete
                del body[pos]
            else:  # insert
                body.insert(pos, rng.randrange(32, 127))
        frames.append(bytes(body).replace(b"\n", b" ") + b"\n")
    return frames


FUZZ_SEEDS = (0, 1, 2, 3, 4, 5, 6, 7)


class TestFuzz:
    """The seeded fuzz budget; `-k fuzz` selects exactly these."""

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzz_random_bytes_never_kill_the_server(self, server, seed):
        fuzz_roundtrip(server.address, random_frames(seed))

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzz_mutated_plan_frames_never_kill_the_server(
        self, server, seed
    ):
        fuzz_roundtrip(server.address, mutated_frames(seed))

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_fuzz_cache_server_mirrors_the_discipline(self, seed):
        cache_server = CacheServer()
        cache_server.start()
        try:
            host, port = cache_server.address.rsplit(":", 1)
            sock = socket.create_connection(
                (host, int(port)), timeout=30.0
            )
            reader = sock.makefile("rb")
            try:
                for frame in random_frames(seed, count=25):
                    sock.sendall(frame)
                    response = reader.readline()
                    assert response, "cache server hung up mid-fuzz"
                    decoded = json.loads(response)
                    assert isinstance(decoded, dict)
                # still serves the real protocol afterwards
                sock.sendall(
                    json.dumps(
                        {"op": "stat", "schema": 1}
                    ).encode()
                    + b"\n"
                )
                decoded = json.loads(reader.readline())
                assert decoded["ok"] is True
            finally:
                reader.close()
                sock.close()
        finally:
            cache_server.close()

    def test_fuzz_counters_stay_consistent(self, server):
        before = server.stats_snapshot()
        fuzz_roundtrip(server.address, random_frames(99))
        after = server.stats_snapshot()
        window = {
            "requests": after.requests - before.requests,
            "accounted": after.accounted - before.accounted,
            "internal": after.internal_errors - before.internal_errors,
        }
        assert window["internal"] == 0
        assert window["requests"] == window["accounted"]


class TestBackoff:
    def test_deterministic_delay_sequence(self):
        slept = []
        backoff = Backoff(
            base_ms=10.0, factor=2.0, max_ms=100.0, jitter=0.0,
            sleep=slept.append,
        )
        for attempt in range(5):
            backoff.wait(attempt)
        assert slept == [0.01, 0.02, 0.04, 0.08, 0.1]  # capped at max

    def test_jitter_is_seeded_and_bounded(self):
        delays = [
            Backoff(
                base_ms=100.0, max_ms=100.0, jitter=0.5,
                rng=random.Random(7), sleep=lambda s: None,
            ).delay_ms(0)
            for _ in range(20)
        ]
        assert len(set(delays)) == 1  # same seed, same delay
        assert all(50.0 <= delay <= 150.0 for delay in delays)
        spread = [
            Backoff(
                base_ms=100.0, max_ms=100.0, jitter=0.5,
                rng=random.Random(seed), sleep=lambda s: None,
            ).delay_ms(0)
            for seed in range(20)
        ]
        assert len(set(spread)) > 1  # different seeds actually jitter

    def test_floor_ms_honors_retry_after(self):
        backoff = Backoff(
            base_ms=1.0, max_ms=10.0, jitter=0.0, sleep=lambda s: None
        )
        assert backoff.delay_ms(0, floor_ms=250.0) == 250.0
        assert backoff.delay_ms(0) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            Backoff(base_ms=0.0)
        with pytest.raises(ConfigError):
            Backoff(factor=0.5)
        with pytest.raises(ConfigError):
            Backoff(base_ms=10.0, max_ms=5.0)
        with pytest.raises(ConfigError):
            Backoff(jitter=1.0)

    def test_retry_priorities_is_deterministic(self):
        first = retry_priorities(100, batch_fraction=0.25, seed=3)
        again = retry_priorities(100, batch_fraction=0.25, seed=3)
        assert first == again
        assert set(first) == {"interactive", "batch"}
        assert retry_priorities(10, batch_fraction=0.0) == (
            ["interactive"] * 10
        )
        with pytest.raises(ConfigError):
            retry_priorities(10, batch_fraction=1.5)


class TestRemoteTierBackoff:
    def test_unreachable_server_waits_between_attempts(self):
        slept = []
        backoff = Backoff(
            base_ms=10.0, factor=2.0, max_ms=200.0, jitter=0.0,
            sleep=slept.append,
        )
        tier = RemoteTier(
            "127.0.0.1:1", retries=3, backoff=backoff, timeout_s=0.2
        )
        assert tier.get("some-key") is None  # degrades, never raises
        assert slept == [0.01, 0.02, 0.04]

    def test_zero_retries_never_sleeps(self):
        slept = []
        backoff = Backoff(base_ms=10.0, jitter=0.0, sleep=slept.append)
        tier = RemoteTier(
            "127.0.0.1:1", retries=0, backoff=backoff, timeout_s=0.2
        )
        assert tier.get("k") is None
        assert slept == []

    def test_negative_retries_rejected(self):
        with pytest.raises(ConfigError):
            RemoteTier("127.0.0.1:1", retries=-1)

    def test_live_server_needs_no_backoff(self):
        cache_server = CacheServer()
        cache_server.start()
        try:
            slept = []
            tier = RemoteTier(
                cache_server.address,
                backoff=Backoff(
                    base_ms=1.0, jitter=0.0, sleep=slept.append
                ),
            )
            assert tier.put("k", "v") is True
            assert tier.get("k") == "v"
            assert slept == []  # healthy path never waits
            tier.close()
        finally:
            cache_server.close()

    def test_netclient_and_remotetier_share_the_policy(self):
        from repro.cache.remote import RemoteTier as TierClass
        from repro.serve.net import NetClient as ClientClass
        import inspect

        tier_src = inspect.getsource(TierClass)
        client_src = inspect.getsource(ClientClass)
        assert "_backoff.wait(attempt" in tier_src
        assert "_backoff.wait(" in client_src


class TestNetClientErrors:
    def test_unreachable_server_raises_service_error_with_backoff(self):
        slept = []
        client = NetClient(
            "127.0.0.1:1",
            retries=2,
            timeout_s=0.2,
            backoff=Backoff(base_ms=5.0, jitter=0.0, sleep=slept.append),
        )
        with pytest.raises(ServiceError):
            client.ping()
        assert slept == [0.005, 0.01]
        client.close()

    def test_bad_address_is_config_error(self):
        with pytest.raises(ConfigError):
            NetClient("no-port-here")
        with pytest.raises(ConfigError):
            NetClient("127.0.0.1:0", retries=-1)

    def test_schema_mismatch_raises_protocol_error(self, server):
        client = NetClient(server.address, schema=42)
        try:
            with pytest.raises(ProtocolError):
                client.ping()
        finally:
            client.close()
