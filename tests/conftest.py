"""Shared fixtures: profiled testbeds and a small reference workload."""

from __future__ import annotations

import pytest

from repro import MoELayerSpec, standard_layout, testbed_a, testbed_b
from repro.core.profiler import profile_cluster
from repro.models import profile_layer


@pytest.fixture(scope="session")
def cluster_b():
    """Paper Testbed B (8 nodes x 4 GPUs)."""
    return testbed_b()


@pytest.fixture(scope="session")
def cluster_a():
    """Paper Testbed A (6 nodes x 8 GPUs)."""
    return testbed_a()


@pytest.fixture(scope="session")
def parallel_b(cluster_b):
    """Standard layout on Testbed B (n_mp = n_esp = 4, n_ep = n_dp = 8)."""
    return standard_layout(cluster_b.total_gpus, cluster_b.gpus_per_node)


@pytest.fixture(scope="session")
def parallel_a(cluster_a):
    """Standard layout on Testbed A (n_mp = n_esp = 8, n_ep = n_dp = 6)."""
    return standard_layout(cluster_a.total_gpus, cluster_a.gpus_per_node)


@pytest.fixture(scope="session")
def models_b(cluster_b, parallel_b):
    """Fitted performance models of Testbed B (noise-free profile)."""
    return profile_cluster(cluster_b, parallel_b).models


@pytest.fixture(scope="session")
def models_a(cluster_a, parallel_a):
    """Fitted performance models of Testbed A (noise-free profile)."""
    return profile_cluster(cluster_a, parallel_a).models


@pytest.fixture(scope="session")
def small_spec(parallel_b):
    """A light MoE layer spec sized for fast tests."""
    return MoELayerSpec(
        batch_size=2,
        seq_len=512,
        embed_dim=1024,
        hidden_scale=2,
        num_experts=parallel_b.n_ep,
        top_k=2,
        capacity_factor=1.2,
        num_heads=16,
    )


@pytest.fixture(scope="session")
def profile_b(small_spec, parallel_b, models_b):
    """Layer profile of the small spec on Testbed B."""
    return profile_layer(small_spec, parallel_b, models_b)
