"""Unit tests for repro.units conversions."""

import pytest

from repro.units import (
    DEFAULT_DTYPE,
    MB,
    MS_PER_S,
    dtype_nbytes,
    gbit_to_bytes_per_ms,
    gbps_to_bytes_per_ms,
    seconds,
)


class TestConversions:
    def test_gbps(self):
        # 1 GB/s == 1e9 bytes / 1e3 ms.
        assert gbps_to_bytes_per_ms(1.0) == pytest.approx(1e6)

    def test_gbit(self):
        # 100 Gb/s == 12.5 GB/s == 1.25e7 bytes/ms.
        assert gbit_to_bytes_per_ms(100.0) == pytest.approx(1.25e7)

    def test_seconds(self):
        assert seconds(1500.0) == pytest.approx(1.5)
        assert MS_PER_S == 1000.0

    def test_dtype_sizes(self):
        assert dtype_nbytes("float32") == 4
        assert dtype_nbytes("float16") == 2
        assert dtype_nbytes("bfloat16") == 2
        assert dtype_nbytes(DEFAULT_DTYPE) == 4

    def test_unknown_dtype_raises(self):
        with pytest.raises(KeyError):
            dtype_nbytes("fp8")

    def test_mb_is_decimal(self):
        assert MB == 1_000_000
