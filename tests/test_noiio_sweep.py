"""The vectorized No-IIO sweep pinned against the simulate-per-degree path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MoELayerSpec, SolverError
from repro.core.constraints import PipelineContext
from repro.core.fastsolve import (
    merged_phase_times,
    solve_merged_phase_degree,
)
from repro.core.perf_model import LinearPerfModel
from repro.core.schedules import (
    TWO_STREAM,
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    build_iteration_graph,
)
from repro.models import profile_layer
from repro.sim.engine import simulate
from repro.core.fastsolve import merged_iteration_times
from repro.systems.fsmoe import (
    FSMoENoIIO,
    _merged_phase_degree,
    _merged_phase_degree_sim,
)
from repro.systems.tutel import (
    Tutel,
    _oracle_degree,
    _oracle_degree_sim,
    _pipemoe_spec,
)

from .helpers import pipeline_contexts

R_MAX = 8


def _sim_phase_time(ctxs, dense_ms, r, phase):
    """Reference: event-simulate one merged-comm phase at one degree."""
    layers = tuple(
        LayerPhaseSchedule(ctx=ctx, degree=r, dense_ms=dense)
        for ctx, dense in zip(ctxs, dense_ms)
    )
    spec = IterationSpec(
        name="noiio-ref",
        forward=layers,
        backward=layers,
        grad_bytes=tuple(0.0 for _ in ctxs),
        ar_model=LinearPerfModel(0.01, 1e-9),
        streams=TWO_STREAM,
        gar_mode=GarMode.END,
    )
    return simulate(build_iteration_graph(spec, phase=phase)).makespan_ms


def _exec_order(ctxs, dense_ms, phase):
    if phase == "forward":
        return list(ctxs), list(dense_ms), True
    return list(reversed(ctxs)), list(reversed(dense_ms)), False


class TestMergedPhaseTimes:
    @settings(max_examples=40, deadline=None)
    @given(
        ctxs=st.lists(pipeline_contexts(), min_size=1, max_size=3),
        denses=st.lists(st.floats(0.0, 3.0), min_size=3, max_size=3),
        phase=st.sampled_from(["forward", "backward"]),
    )
    def test_bit_identical_to_simulator(self, ctxs, denses, phase):
        denses = denses[: len(ctxs)]
        exec_ctxs, exec_dense, dense_first = _exec_order(
            ctxs, denses, phase
        )
        times = merged_phase_times(
            exec_ctxs, exec_dense, R_MAX, dense_first=dense_first
        )
        for r in range(1, R_MAX + 1):
            assert times[r - 1] == _sim_phase_time(ctxs, denses, r, phase)

    def test_degenerate_zero_volume_ops(self):
        """Zero-size ops (0 ms tasks) hit the engine's tie-breaking."""
        zero = LinearPerfModel(alpha=0.0, beta=1e-6)
        some = LinearPerfModel(alpha=0.1, beta=1e-6)
        cases = [
            # no expert compute at all
            PipelineContext(a2a=some, n_a2a=1e6, ag=some, n_ag=1e5,
                            rs=some, n_rs=1e5, exp=zero, n_exp=0.0),
            # no intra-node traffic
            PipelineContext(a2a=some, n_a2a=1e6, ag=some, n_ag=0.0,
                            rs=some, n_rs=0.0, exp=some, n_exp=1e8),
            # free AlltoAll
            PipelineContext(a2a=zero, n_a2a=0.0, ag=some, n_ag=1e5,
                            rs=some, n_rs=1e5, exp=some, n_exp=1e8),
            # everything free
            PipelineContext(a2a=zero, n_a2a=0.0, ag=zero, n_ag=0.0,
                            rs=zero, n_rs=0.0, exp=zero, n_exp=0.0),
        ]
        for ctx in cases:
            for phase in ("forward", "backward"):
                for dense in (0.0, 0.5):
                    ctxs, denses = [ctx, ctx], [dense, dense]
                    exec_ctxs, exec_dense, dense_first = _exec_order(
                        ctxs, denses, phase
                    )
                    times = merged_phase_times(
                        exec_ctxs, exec_dense, R_MAX,
                        dense_first=dense_first,
                    )
                    for r in range(1, R_MAX + 1):
                        assert times[r - 1] == _sim_phase_time(
                            ctxs, denses, r, phase
                        )

    def test_input_validation(self):
        ctx = PipelineContext(
            a2a=LinearPerfModel(0.1, 1e-6), n_a2a=1e6,
            ag=LinearPerfModel(0.1, 1e-6), n_ag=1e5,
            rs=LinearPerfModel(0.1, 1e-6), n_rs=1e5,
            exp=LinearPerfModel(0.1, 1e-9), n_exp=1e8,
        )
        with pytest.raises(SolverError):
            merged_phase_times([ctx], [0.0], 0)
        with pytest.raises(SolverError):
            merged_phase_times([ctx, ctx], [0.0], 4)

    def test_empty_stack_is_zero(self):
        assert np.all(merged_phase_times([], [], 4) == 0.0)


class TestMergedDegreeChoice:
    @settings(max_examples=25, deadline=None)
    @given(
        ctxs=st.lists(pipeline_contexts(), min_size=1, max_size=2),
        phase=st.sampled_from(["forward", "backward"]),
    )
    def test_matches_scalar_sweep_tie_break(self, ctxs, phase):
        """Degree choice equals the ascending sweep with tolerance."""
        denses = [0.4] * len(ctxs)
        exec_ctxs, exec_dense, dense_first = _exec_order(
            ctxs, denses, phase
        )
        degree, time_ms = solve_merged_phase_degree(
            exec_ctxs, exec_dense, R_MAX, dense_first=dense_first
        )
        best_r, best_t = 1, float("inf")
        for r in range(1, R_MAX + 1):
            t = _sim_phase_time(ctxs, denses, r, phase)
            if t < best_t - 1e-12:
                best_t, best_r = t, r
        assert degree == best_r
        assert time_ms == best_t


class TestNoIIOSystemPinned:
    def test_degree_picker_equals_sim_reference(
        self, profile_b, models_b, parallel_b
    ):
        """The production picker matches the kept simulate-per-degree path."""
        hetero_spec = MoELayerSpec(
            batch_size=2, seq_len=1024, embed_dim=2048,
            num_experts=parallel_b.n_ep, num_heads=16,
        )
        other = profile_layer(hetero_spec, parallel_b, models_b)
        stacks = [
            (profile_b,),
            (profile_b,) * 4,
            (profile_b, other, profile_b),
            (other, other),
        ]
        for stack in stacks:
            for phase in ("forward", "backward"):
                for r_max in (1, 4, 16):
                    assert _merged_phase_degree.__wrapped__(
                        stack, models_b, r_max, phase
                    ) == _merged_phase_degree_sim(
                        stack, models_b, r_max, phase
                    )

    def test_noiio_plan_unchanged(self, profile_b, models_b):
        """End to end: FSMoENoIIO's compiled spec still uses swept degrees."""
        system = FSMoENoIIO(solver="slsqp")
        profiles = (profile_b,) * 3
        spec = system.build_iteration_spec(profiles, models_b)
        fw_ref = _merged_phase_degree_sim(
            profiles, models_b, system.r_max, "forward"
        )
        assert {layer.degree for layer in spec.forward} == {fw_ref}


class TestTutelOraclePinned:
    def test_iteration_times_match_simulator(
        self, profile_b, models_b, parallel_b
    ):
        """merged_iteration_times == simulated fw+bw+GAR-tail makespans."""
        hetero_spec = MoELayerSpec(
            batch_size=2, seq_len=1024, embed_dim=2048,
            num_experts=parallel_b.n_ep, num_heads=16,
        )
        other = profile_layer(hetero_spec, parallel_b, models_b)
        for stack in [(profile_b,), (profile_b, other), (other,) * 4]:
            for include_gar in (True, False):
                times = merged_iteration_times(
                    [p.ctx_fw for p in stack],
                    [p.dense_fw_ms for p in stack],
                    [p.ctx_bw for p in stack],
                    [p.dense_bw_ms for p in stack],
                    [
                        models_b.allreduce.time_ms(p.grad_bytes)
                        if include_gar
                        else 0.0
                        for p in stack
                    ],
                    R_MAX,
                )
                for r in range(1, R_MAX + 1):
                    spec = _pipemoe_spec(
                        stack, models_b, r, GarMode.END, include_gar,
                        name="ref",
                    )
                    ref = simulate(
                        build_iteration_graph(spec)
                    ).makespan_ms
                    assert times[r - 1] == ref

    def test_oracle_degree_equals_sim_reference(
        self, profile_b, models_b
    ):
        for stack in [(profile_b,), (profile_b,) * 5]:
            for include_gar in (True, False):
                for r_max in (1, 4, 16):
                    assert _oracle_degree.__wrapped__(
                        stack, models_b, r_max, include_gar
                    ) == _oracle_degree_sim(
                        stack, models_b, r_max, include_gar
                    )

    def test_tutel_spec_uses_swept_degree(self, profile_b, models_b):
        system = Tutel()
        profiles = (profile_b,) * 2
        spec = system.build_iteration_spec(profiles, models_b)
        ref = _oracle_degree_sim(profiles, models_b, system.r_max, True)
        assert {layer.degree for layer in spec.forward} == {ref}
        assert {layer.degree for layer in spec.backward} == {ref}
