"""The report subsystem: manifest, runner, renderer, drift checker."""

from __future__ import annotations

import pytest

from repro import Workspace
from repro.errors import ConfigError, RegistryError
from repro.report import (
    DEFAULT_ARTIFACTS,
    Artifact,
    ArtifactResult,
    ReportConfig,
    available_artifacts,
    check_run,
    first_difference,
    get_artifact,
    register_artifact,
    render_report,
    run_report,
    select_artifacts,
    unregister_artifact,
    write_outputs,
)

TINY_LAYER = {
    "batch_size": 1,
    "seq_len": 256,
    "embed_dim": 512,
    "num_experts": 8,
    "num_heads": 8,
}


def _static_artifact(name: str, text: str = "hello\n") -> Artifact:
    """An artifact whose producer returns fixed bytes (no planning)."""

    def produce(workspace, config):
        return ArtifactResult(
            artifact=name, outputs={f"{name}.txt": text}
        )

    return Artifact(
        name=name,
        title=f"static artifact {name}",
        paper_ref="test",
        producer=produce,
        outputs=(f"{name}.txt",),
    )


def _planning_artifact(name: str) -> Artifact:
    """An artifact that actually plans, so counters move."""

    def produce(workspace, config):
        from repro.api import ClusterRef, ExperimentSpec, StackSpec

        spec = ExperimentSpec(
            name=name,
            clusters=(ClusterRef("B"),),
            systems=("tutel",),
            stacks=(StackSpec.from_data(
                {"layers": [TINY_LAYER], "num_layers": 2}
            ),),
        )
        result = workspace.sweep(spec, max_workers=1)
        text = f"{result.points[0].makespan_ms:.6f}\n"
        return ArtifactResult(
            artifact=name, outputs={f"{name}.txt": text}
        )

    return Artifact(
        name=name,
        title="tiny planning artifact",
        paper_ref="test",
        producer=produce,
        outputs=(f"{name}.txt",),
    )


@pytest.fixture()
def registered():
    """Register test artifacts and guarantee cleanup."""
    names: list[str] = []

    def _register(artifact: Artifact) -> Artifact:
        register_artifact(artifact)
        names.append(artifact.name)
        return artifact

    yield _register
    for name in names:
        unregister_artifact(name)


class TestManifest:
    def test_default_manifest_is_registered(self):
        names = available_artifacts()
        for artifact in DEFAULT_ARTIFACTS:
            assert artifact.name in names

    def test_every_default_producer_resolves(self):
        # The dotted producers import from benchmarks/ -- resolvable
        # from the repository root (where the suite runs).
        for artifact in DEFAULT_ARTIFACTS:
            assert callable(artifact.resolve_producer())

    def test_default_outputs_cover_committed_results_exactly(self):
        import pathlib

        results = (
            pathlib.Path(__file__).parent.parent / "benchmarks" / "results"
        )
        committed = {
            p.name
            for p in results.iterdir()
            if p.suffix in (".txt", ".json")
        }
        declared = {
            name
            for artifact in DEFAULT_ARTIFACTS
            for name in artifact.outputs
        }
        assert declared == committed

    def test_select_by_comma_string(self):
        chosen = select_artifacts("fig7,table5")
        assert [a.name for a in chosen] == ["fig7", "table5"]

    def test_select_unknown_name_lists_available(self):
        with pytest.raises(RegistryError, match="unknown artifact"):
            select_artifacts("no-such-artifact")

    def test_select_none_returns_whole_manifest(self):
        assert len(select_artifacts(None)) == len(available_artifacts())

    def test_register_and_lookup(self, registered):
        artifact = registered(_static_artifact("test-static"))
        assert get_artifact("test-static") is artifact

    def test_duplicate_name_refused(self, registered):
        registered(_static_artifact("test-dup"))
        with pytest.raises(RegistryError):
            register_artifact(_static_artifact("test-dup"))

    def test_malformed_dotted_producer(self):
        artifact = Artifact(
            name="bad", title="", paper_ref="", producer="no_colon",
            outputs=(),
        )
        with pytest.raises(ConfigError, match="module:function"):
            artifact.resolve_producer()

    def test_unimportable_producer_module(self):
        artifact = Artifact(
            name="bad", title="", paper_ref="",
            producer="no_such_module_xyz:produce", outputs=(),
        )
        with pytest.raises(ConfigError, match="not importable"):
            artifact.resolve_producer()


class TestReportConfig:
    def test_step2_solver_defaults(self):
        assert ReportConfig().step2_solver == "de"
        assert ReportConfig(full=True).step2_solver == "slsqp"
        assert ReportConfig(full=True, solver="de").step2_solver == "de"

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_FULL", "1")
        monkeypatch.setenv("REPRO_BENCH_SOLVER", "none")
        monkeypatch.setenv("REPRO_PERF_SMOKE", "1")
        config = ReportConfig.from_env()
        assert config.full and config.smoke
        assert config.step2_solver == "none"


class TestRunner:
    def test_run_collects_outputs_and_counters(self, tmp_path, registered):
        registered(_planning_artifact("test-planner"))
        workspace = Workspace(tmp_path / "ws")
        run = run_report(
            workspace, ReportConfig(), only=["test-planner"]
        )
        assert len(run.runs) == 1
        record = run.runs[0]
        assert record.artifact.name == "test-planner"
        assert "test-planner.txt" in record.result.outputs
        # the windowed counters saw the compile
        assert record.stats.plan_misses == 1
        assert record.stats.profiles.misses > 0
        assert record.wall_s > 0
        assert run.stats.plan_misses == 1

    def test_second_run_is_warm(self, tmp_path, registered):
        registered(_planning_artifact("test-warm"))
        workspace = Workspace(tmp_path / "ws")
        first = run_report(workspace, ReportConfig(), only=["test-warm"])
        second = run_report(workspace, ReportConfig(), only=["test-warm"])
        assert first.runs[0].stats.plan_misses == 1
        assert second.runs[0].stats.plan_misses == 0
        assert second.stats.warm
        # byte-identical artifact bytes across the two runs
        assert first.outputs() == second.outputs()

    def test_progress_callback(self, tmp_path, registered):
        registered(_static_artifact("test-progress"))
        lines: list[str] = []
        run_report(
            Workspace(tmp_path / "ws"),
            ReportConfig(),
            only=["test-progress"],
            progress=lines.append,
        )
        assert len(lines) == 1 and "test-progress" in lines[0]

    def test_undeclared_output_is_refused(self, tmp_path, registered):
        def produce(workspace, config):
            return ArtifactResult(
                artifact="test-extra", outputs={"surprise.txt": "x\n"}
            )

        registered(Artifact(
            name="test-extra", title="", paper_ref="", producer=produce,
            outputs=("declared.txt",),
        ))
        with pytest.raises(ConfigError, match="undeclared"):
            run_report(
                Workspace(tmp_path / "ws"), ReportConfig(),
                only=["test-extra"],
            )

    def test_missing_output_is_refused_when_deterministic(
        self, tmp_path, registered
    ):
        def produce(workspace, config):
            return ArtifactResult(artifact="test-missing", outputs={})

        registered(Artifact(
            name="test-missing", title="", paper_ref="", producer=produce,
            outputs=("declared.txt",),
        ))
        with pytest.raises(ConfigError, match="did not produce"):
            run_report(
                Workspace(tmp_path / "ws"), ReportConfig(),
                only=["test-missing"],
            )

    def test_duplicate_filenames_across_artifacts_refused(
        self, tmp_path, registered
    ):
        def produce(workspace, config):
            return ArtifactResult(
                artifact="whatever", outputs={"same.txt": "x\n"}
            )

        for name in ("test-clash-a", "test-clash-b"):
            registered(Artifact(
                name=name, title="", paper_ref="", producer=produce,
                outputs=("same.txt",),
            ))
        with pytest.raises(ConfigError, match="both produce"):
            run_report(
                Workspace(tmp_path / "ws"), ReportConfig(),
                only=["test-clash-a", "test-clash-b"],
            )

    def test_write_outputs(self, tmp_path, registered):
        registered(_static_artifact("test-write", "content\n"))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-write"],
        )
        written = write_outputs(run, tmp_path / "results")
        assert [p.name for p in written] == ["test-write.txt"]
        assert written[0].read_text() == "content\n"


class TestRender:
    def test_report_contains_tables_and_counters(
        self, tmp_path, registered
    ):
        registered(_planning_artifact("test-render"))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-render"],
        )
        text = render_report(run)
        assert "# FSMoE reproduction report" in text
        assert "test-render.txt" in text
        assert "Counters:" in text and "1 plans compiled" in text
        assert "Wall time" in text

    def test_rendering_is_deterministic_for_one_run(
        self, tmp_path, registered
    ):
        registered(_planning_artifact("test-det1"))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-det1"],
        )
        assert render_report(run) == render_report(run)

    def test_equal_workspaces_render_byte_identically(
        self, tmp_path, registered
    ):
        """Same config, two fresh workspaces -> identical untimed report."""
        registered(_planning_artifact("test-det2"))
        runs = [
            run_report(
                Workspace(tmp_path / f"ws{i}"), ReportConfig(),
                only=["test-det2"],
            )
            for i in (1, 2)
        ]
        first, second = (
            render_report(run, include_timings=False) for run in runs
        )
        assert first == second
        # and the timed variant differs ONLY by the timing lines
        assert "Wall time" not in first
        assert "Wall time" in render_report(runs[0])

    def test_backtick_runs_in_outputs_do_not_break_fences(
        self, tmp_path, registered
    ):
        evil = "before\n````\nstill inside the block\n"
        registered(_static_artifact("test-fence", evil))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-fence"],
        )
        text = render_report(run)
        # the chosen fence is longer than any backtick run in the file,
        # so the content cannot terminate the block early
        assert "`````text\n" in text
        assert text.count("`````") == 2


class TestCheck:
    def test_identical_files_pass(self, tmp_path, registered):
        registered(_static_artifact("test-ok", "stable\n"))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(), only=["test-ok"]
        )
        results = tmp_path / "results"
        write_outputs(run, results)
        assert check_run(run, results) == []

    def test_content_drift_is_reported(self, tmp_path, registered):
        registered(_static_artifact("test-drift", "line one\nnew\n"))
        results = tmp_path / "results"
        results.mkdir()
        (results / "test-drift.txt").write_text("line one\nold\n")
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-drift"],
        )
        drifts = check_run(run, results)
        assert len(drifts) == 1
        assert drifts[0].filename == "test-drift.txt"
        assert "line 2" in drifts[0].reason
        assert "'old'" in drifts[0].reason and "'new'" in drifts[0].reason

    def test_missing_committed_file_is_reported(
        self, tmp_path, registered
    ):
        registered(_static_artifact("test-nofile"))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-nofile"],
        )
        (tmp_path / "results").mkdir()
        drifts = check_run(run, tmp_path / "results")
        assert len(drifts) == 1
        assert "not committed" in drifts[0].reason

    def test_crlf_drift_is_detected(self, tmp_path, registered):
        """read_bytes comparison: newline normalization must not hide drift."""
        registered(_static_artifact("test-crlf", "a\nb\n"))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-crlf"],
        )
        results = tmp_path / "results"
        results.mkdir()
        (results / "test-crlf.txt").write_bytes(b"a\r\nb\r\n")
        drifts = check_run(run, results)
        assert len(drifts) == 1
        assert "byte-level" in drifts[0].reason

    def test_nondeterministic_artifacts_skipped_by_default(
        self, tmp_path, registered
    ):
        artifact = _static_artifact("test-nondet", "varies\n")
        registered(Artifact(
            name=artifact.name, title=artifact.title, paper_ref="test",
            producer=artifact.producer, outputs=artifact.outputs,
            deterministic=False,
        ))
        run = run_report(
            Workspace(tmp_path / "ws"), ReportConfig(),
            only=["test-nondet"],
        )
        results = tmp_path / "results"
        results.mkdir()
        (results / "test-nondet.txt").write_text("different\n")
        assert check_run(run, results) == []
        assert len(check_run(
            run, results, include_nondeterministic=True
        )) == 1


class TestJobs:
    def test_parallel_and_serial_runs_byte_identical(
        self, tmp_path, registered
    ):
        names = [f"test-jobs-{i}" for i in range(4)]
        for i, name in enumerate(names):
            registered(_static_artifact(name, f"text {i}\n"))
        serial = run_report(
            Workspace(tmp_path / "ws1"), ReportConfig(), only=names
        )
        parallel = run_report(
            Workspace(tmp_path / "ws2"), ReportConfig(), only=names, jobs=3
        )
        assert serial.outputs() == parallel.outputs()
        # runs stay in selection order regardless of execution order,
        # so files are written identically and the untimed report is
        # byte-identical to a serial run's
        assert [r.artifact.name for r in parallel.runs] == names
        first = write_outputs(serial, tmp_path / "r1")
        second = write_outputs(parallel, tmp_path / "r2")
        assert [p.name for p in first] == [p.name for p in second]
        assert all(
            a.read_bytes() == b.read_bytes()
            for a, b in zip(first, second)
        )
        assert render_report(
            serial, include_timings=False
        ) == render_report(parallel, include_timings=False)

    def test_parallel_unsafe_artifacts_run_on_calling_thread(
        self, tmp_path, registered
    ):
        import threading

        seen: dict[str, threading.Thread] = {}

        def make(name: str, safe: bool) -> None:
            def produce(workspace, config, name=name):
                seen[name] = threading.current_thread()
                return ArtifactResult(
                    artifact=name, outputs={f"{name}.txt": "x\n"}
                )

            registered(Artifact(
                name=name, title="", paper_ref="test", producer=produce,
                outputs=(f"{name}.txt",), parallel_safe=safe,
            ))

        make("test-safe-a", True)
        make("test-unsafe", False)
        make("test-safe-b", True)
        caller = threading.current_thread()
        run = run_report(
            Workspace(tmp_path / "ws"),
            ReportConfig(),
            only=["test-safe-a", "test-unsafe", "test-safe-b"],
            jobs=2,
        )
        assert seen["test-unsafe"] is caller
        assert seen["test-safe-a"] is not caller
        assert seen["test-safe-b"] is not caller
        assert [r.artifact.name for r in run.runs] == [
            "test-safe-a", "test-unsafe", "test-safe-b",
        ]

    def test_concurrent_planning_single_flights_through_workspace(
        self, tmp_path, registered
    ):
        # Two artifacts plan the identical spec concurrently; the
        # workspace's per-digest single-flight must coalesce them into
        # one compile plus one cache hit.
        registered(_planning_artifact("test-flight-a"))
        registered(_planning_artifact("test-flight-b"))
        run = run_report(
            Workspace(tmp_path / "ws"),
            ReportConfig(),
            only=["test-flight-a", "test-flight-b"],
            jobs=2,
        )
        assert run.stats.plan_misses == 1
        assert run.stats.plan_hits == 1
        outputs = run.outputs()
        assert (
            outputs["test-flight-a.txt"] == outputs["test-flight-b.txt"]
        )

    def test_progress_lines_stay_in_selection_order(
        self, tmp_path, registered
    ):
        names = [f"test-order-{i}" for i in range(3)]
        for name in names:
            registered(_static_artifact(name))
        lines: list[str] = []
        run_report(
            Workspace(tmp_path / "ws"),
            ReportConfig(),
            only=names,
            progress=lines.append,
            jobs=2,
        )
        assert [line.split(":")[0] for line in lines] == names

    def test_jobs_must_be_positive(self, tmp_path, registered):
        registered(_static_artifact("test-bad-jobs"))
        with pytest.raises(ConfigError, match="jobs"):
            run_report(
                Workspace(tmp_path / "ws"), ReportConfig(),
                only=["test-bad-jobs"], jobs=0,
            )


class TestFirstDifference:
    def test_differing_line_is_quoted(self):
        reason = first_difference("a\nb\n", "a\nc\n")
        assert "line 2" in reason and "'b'" in reason and "'c'" in reason

    def test_prefix_reports_line_counts(self):
        assert "line count" in first_difference("a\n", "a\nb\n")

    def test_line_ending_difference(self):
        assert "byte-level" in first_difference("a\nb", "a\r\nb")
