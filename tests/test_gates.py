"""Tests for the four routing functions (paper §2.1 / §3.1 / Table 6)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.moe.gates import (
    GATE_TIMING,
    ExpertChoiceGate,
    GateKind,
    GShardGate,
    SigmoidGate,
    XMoEGate,
    build_gate,
    capacity_assign,
    load_balancing_loss,
)

RNG = np.random.default_rng(42)
S, M, E, K = 48, 16, 8, 2


@pytest.fixture(params=[GShardGate, SigmoidGate, XMoEGate, ExpertChoiceGate])
def gate(request):
    return request.param(M, E, K, seed=5)


class TestCapacityAssign:
    def test_respects_capacity(self):
        indices = np.zeros((10, 1), dtype=int)  # everyone picks expert 0
        weights = np.ones((10, 1))
        token_ids, w, dropped, slot_of = capacity_assign(indices, weights, E, 4)
        assert (token_ids[0] >= 0).sum() == 4
        assert dropped.sum() == 6
        assert (slot_of >= 0).sum() == 4

    def test_fills_in_token_order(self):
        indices = np.array([[1], [1], [1]])
        weights = np.array([[0.5], [0.6], [0.7]])
        token_ids, w, _, _ = capacity_assign(indices, weights, E, 2)
        np.testing.assert_array_equal(token_ids[1], [0, 1])
        np.testing.assert_allclose(w[1], [0.5, 0.6])

    def test_multi_choice_tokens(self):
        indices = np.array([[0, 1], [0, 2]])
        weights = np.array([[0.6, 0.4], [0.7, 0.3]])
        token_ids, w, dropped, _ = capacity_assign(indices, weights, E, 4)
        assert token_ids[0, 0] == 0 and token_ids[0, 1] == 1
        assert token_ids[1, 0] == 0
        assert token_ids[2, 0] == 1
        assert not dropped.any()

    @given(
        s=st.integers(4, 64),
        cap=st.integers(1, 32),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_slots_hold_unique_tokens(self, s, cap, seed):
        rng = np.random.default_rng(seed)
        # Gates select k *distinct* experts per token (top-k semantics).
        indices = np.stack(
            [rng.permutation(E)[:K] for _ in range(s)], axis=0
        )
        weights = rng.random((s, K))
        token_ids, w, dropped, _ = capacity_assign(indices, weights, E, cap)
        for e in range(E):
            used = token_ids[e][token_ids[e] >= 0]
            assert len(used) == len(set(used.tolist()))
        # empty slots carry zero weight
        assert (w[token_ids < 0] == 0).all()


class TestCommonGateBehaviour:
    def test_assignment_shapes(self, gate):
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=16)
        assert a.token_ids.shape == (E, 16)
        assert a.weights.shape == (E, 16)
        assert a.scores.shape == (S, E)
        assert a.dropped.shape == (S,)

    def test_weights_bounded(self, gate):
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=16)
        assert (a.weights >= 0).all()
        assert (a.weights <= 1.0 + 1e-9).all()

    def test_empty_slots_have_zero_weight(self, gate):
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=16)
        empty = a.token_ids < 0
        assert (a.weights[empty] == 0).all()

    def test_deterministic_given_seed(self, gate):
        x = RNG.normal(size=(S, M))
        a1 = type(gate)(M, E, K, seed=9).assign(x, 16)
        a2 = type(gate)(M, E, K, seed=9).assign(x, 16)
        np.testing.assert_array_equal(a1.token_ids, a2.token_ids)


class TestGShard:
    def test_topk_selected_by_probability(self):
        gate = GShardGate(M, E, K, seed=0)
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=S)
        # with ample capacity no token drops
        assert not a.dropped.any()
        # each token contributes at most K slots
        counts = np.bincount(
            a.token_ids[a.token_ids >= 0], minlength=S
        )
        assert counts.max() <= K

    def test_weights_normalized_per_token(self):
        gate = GShardGate(M, E, K, seed=0)
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=S)
        sums = np.zeros(S)
        valid = a.token_ids >= 0
        np.add.at(sums, a.token_ids[valid], a.weights[valid])
        np.testing.assert_allclose(sums, 1.0, rtol=1e-9)

    def test_noisy_mode_changes_routing(self):
        x = RNG.normal(size=(S, M))
        quiet = GShardGate(M, E, K, seed=0, noisy=False).assign(x, S)
        noisy = GShardGate(M, E, K, seed=0, noisy=True).assign(x, S)
        assert not np.array_equal(quiet.token_ids, noisy.token_ids)

    def test_backward_weights_finite_difference(self):
        gate = GShardGate(M, E, K, seed=1)
        x = RNG.normal(size=(8, M))
        a = gate.assign(x, capacity=8)
        d_weights = RNG.normal(size=a.weights.shape)
        gate.zero_grad()
        gate.backward_weights(x, a, d_weights)
        analytic = gate.grads["w_gate"].copy()

        w = gate.params["w_gate"]
        eps = 1e-6
        i, j = 2, 3
        w[i, j] += eps
        up = gate.assign(x, capacity=8)
        w[i, j] -= 2 * eps
        down = gate.assign(x, capacity=8)
        w[i, j] += eps
        fd = np.sum((up.weights - down.weights) * d_weights) / (2 * eps)
        assert analytic[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)


class TestSigmoid:
    def test_weights_are_sigmoids(self):
        gate = SigmoidGate(M, E, K, seed=2)
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=S)
        logits = x @ gate.params["w_gate"]
        valid = a.token_ids >= 0
        for e in range(E):
            for t in np.where(valid[e])[0]:
                token = a.token_ids[e, t]
                expected = 1.0 / (1.0 + np.exp(-logits[token, e]))
                assert a.weights[e, t] == pytest.approx(expected)

    def test_backward_weights_finite_difference(self):
        gate = SigmoidGate(M, E, K, seed=3)
        x = RNG.normal(size=(8, M))
        a = gate.assign(x, capacity=8)
        d_weights = RNG.normal(size=a.weights.shape)
        gate.zero_grad()
        gate.backward_weights(x, a, d_weights)
        analytic = gate.grads["w_gate"].copy()
        w = gate.params["w_gate"]
        eps = 1e-6
        i, j = 1, 4
        w[i, j] += eps
        up = gate.assign(x, 8)
        w[i, j] -= 2 * eps
        down = gate.assign(x, 8)
        w[i, j] += eps
        fd = np.sum((up.weights - down.weights) * d_weights) / (2 * eps)
        assert analytic[i, j] == pytest.approx(fd, rel=1e-4, abs=1e-7)


class TestXMoE:
    def test_scores_are_softmax(self):
        gate = XMoEGate(M, E, K, seed=4)
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=S)
        np.testing.assert_allclose(a.scores.sum(axis=-1), 1.0, rtol=1e-9)

    def test_low_rank_dim_respected(self):
        gate = XMoEGate(M, E, K, low_rank_dim=8, seed=4)
        assert gate.params["w_proj"].shape == (M, 8)
        assert gate.params["expert_emb"].shape == (E, 8)


class TestExpertChoice:
    def test_every_expert_filled_to_capacity(self):
        gate = ExpertChoiceGate(M, E, K, seed=6)
        x = RNG.normal(size=(S, M))
        cap = 6
        a = gate.assign(x, capacity=cap)
        assert (a.token_ids >= 0).sum() == E * cap

    def test_weights_softmax_per_expert(self):
        gate = ExpertChoiceGate(M, E, K, seed=6)
        x = RNG.normal(size=(S, M))
        a = gate.assign(x, capacity=6)
        np.testing.assert_allclose(
            a.weights[:, :6].sum(axis=1), 1.0, rtol=1e-9
        )

    def test_no_aux_loss(self):
        gate = ExpertChoiceGate(M, E, K, seed=6)
        a = gate.assign(RNG.normal(size=(S, M)), capacity=6)
        assert a.aux_loss == 0.0

    def test_capacity_larger_than_tokens(self):
        gate = ExpertChoiceGate(M, E, K, seed=6)
        a = gate.assign(RNG.normal(size=(4, M)), capacity=10)
        assert (a.token_ids >= 0).sum() == E * 4


class TestAuxAndRegistry:
    def test_balanced_router_minimizes_loss(self):
        scores = np.full((S, E), 1.0 / E)
        top_idx = np.tile(np.arange(E), S // E * K).reshape(S, K) % E
        first_uniform = np.arange(S) % E
        top_idx[:, 0] = first_uniform
        loss = load_balancing_loss(scores, top_idx, E)
        assert loss == pytest.approx(1.0)

    def test_imbalanced_router_higher_loss(self):
        scores = np.zeros((S, E))
        scores[:, 0] = 1.0
        top_idx = np.zeros((S, K), dtype=int)
        assert load_balancing_loss(scores, top_idx, E) > 1.0

    def test_build_gate_factory(self):
        for kind in GateKind:
            gate = build_gate(kind, M, E, K, seed=0)
            assert gate.num_experts == E

    def test_timing_registry_complete(self):
        assert set(GATE_TIMING) == set(GateKind)
        assert GATE_TIMING[GateKind.EXPERT_CHOICE].capacity_factor_override == 1.0
        assert GATE_TIMING[GateKind.XMOE].macs_multiplier > 1.0
