"""The telemetry layer: trace spans, metrics registry, exporters, wiring."""

from __future__ import annotations

import json

import pytest

from repro import (
    ConfigError,
    MoELayerSpec,
    PlanRequest,
    PlanService,
    Workspace,
)
from repro.api.spec import ExperimentSpec
from repro.cache import CacheServer, RemoteTier
from repro.cache.stats import CacheStats, TierStats
from repro.core.fastsolve import SolverStats
from repro.obs import (
    DEFAULT_LATENCY_BOUNDS_MS,
    LATENCY_GROWTH,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    SpanRecord,
    Tracer,
    build_tree,
    canonical_tree,
    current_span,
    empty_snapshot,
    exponential_bounds,
    maybe_span,
    parse_prometheus,
    prometheus_name,
    read_trace,
    render_json,
    render_prometheus,
    render_tree,
    samples_from_json,
    workspace_metrics,
)
from repro.planner.store import StoreStats
from repro.serve.stats import ServiceStats, StatsAccumulator, percentile
from repro.systems.registry import get_system

TINY_SPEC = {
    "name": "obs-test",
    "clusters": ["B"],
    "systems": ["tutel", "fsmoe"],
    "stacks": [
        {
            "layers": [
                {
                    "batch_size": 1,
                    "seq_len": 256,
                    "embed_dim": 512,
                    "num_experts": 8,
                    "num_heads": 8,
                }
            ],
            "num_layers": 2,
        }
    ],
}


def tiny_stack(depth=1):
    layer = MoELayerSpec(
        batch_size=1, seq_len=256, embed_dim=512,
        num_experts=8, num_heads=8,
    )
    return (layer,) * depth


# ---------------------------------------------------------------------------
# tracing core


class TestSpanCore:
    def test_nesting_is_ambient(self):
        tracer = Tracer()
        with tracer.start("outer"):
            with tracer.start("inner"):
                assert current_span().name == "inner"
            assert current_span().name == "outer"
        assert current_span() is None
        records = tracer.spans()
        assert [r.name for r in records] == ["inner", "outer"]
        inner, outer = records
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None

    def test_explicit_parent_overrides_context(self):
        tracer = Tracer()
        parent = tracer.start("parent")
        parent.end()
        child = tracer.start("child", parent=parent)
        child.end()
        assert tracer.spans()[-1].parent_id == parent.span_id

    def test_maybe_span_without_tracer_is_none(self):
        assert maybe_span("anything") is None

    def test_maybe_span_inside_active_span(self):
        tracer = Tracer()
        with tracer.start("outer"):
            span = maybe_span("solve", {"contexts": 3})
            assert span is not None
            span.end()
        inner, outer = tracer.spans()
        assert inner.name == "solve" and inner.attrs["contexts"] == 3
        assert inner.parent_id == outer.span_id

    def test_rename_before_end(self):
        # The workspace's probe idiom: l1_probe becomes l1_hit on a hit.
        tracer = Tracer()
        span = tracer.start("l1_probe")
        span.name = "l1_hit"
        span.end()
        assert tracer.spans()[0].name == "l1_hit"

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start("once")
        first = span.end()
        second = span.end()
        assert len(tracer.spans()) == 1
        assert second.span_id == first.span_id

    def test_set_returns_self_and_merges(self):
        tracer = Tracer()
        record = tracer.start("x").set(a=1).set(b=2, a=3).end()
        assert record.attrs == {"a": 3, "b": 2}

    def test_event_is_zero_duration_span(self):
        tracer = Tracer()
        record = tracer.event("tick", {"n": 1})
        assert record.duration_us >= 0
        assert tracer.spans()[0].name == "tick"

    def test_buffer_bound_drops_and_counts(self):
        tracer = Tracer(max_spans=3)
        for index in range(5):
            tracer.start(f"s{index}").end()
        assert len(tracer.spans()) == 3
        assert tracer.dropped == 2
        tracer.clear()
        assert tracer.spans() == () and tracer.dropped == 0

    def test_bad_max_spans_refused(self):
        with pytest.raises(ConfigError):
            Tracer(max_spans=0)


class TestTraceFiles:
    def test_json_line_round_trip(self):
        record = SpanRecord(
            name="plan", span_id=7, parent_id=3,
            start_us=123, duration_us=456,
            attrs={"digest": "ab", "layers": 2},
        )
        assert SpanRecord.from_json_line(record.to_json_line()) == record

    def test_json_line_is_deterministic(self):
        record = SpanRecord(
            name="x", span_id=1, parent_id=None, start_us=0,
            duration_us=0, attrs={"b": 1, "a": 2},
        )
        line = record.to_json_line()
        assert line == json.dumps(json.loads(line), sort_keys=True)

    def test_malformed_lines_raise_config_error(self):
        with pytest.raises(ConfigError):
            SpanRecord.from_json_line("not json")
        with pytest.raises(ConfigError):
            SpanRecord.from_json_line("[1, 2]")
        with pytest.raises(ConfigError):
            SpanRecord.from_json_line('{"name": "x"}')

    def test_file_appended_live_and_read_back(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        with tracer.start("outer", {"k": "v"}):
            tracer.start("inner").end()
        tracer.close()
        records = read_trace(path)
        assert [r.name for r in records] == ["inner", "outer"]
        assert records == tracer.spans()

    def test_write_dumps_buffer(self, tmp_path):
        tracer = Tracer()
        tracer.start("a").end()
        tracer.start("b").end()
        path = tmp_path / "dump.jsonl"
        assert tracer.write(path) == 2
        assert [r.name for r in read_trace(path)] == ["a", "b"]

    def test_spans_beyond_buffer_still_reach_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path, max_spans=2)
        for index in range(4):
            tracer.start(f"s{index}").end()
        tracer.close()
        assert len(tracer.spans()) == 2 and tracer.dropped == 2
        assert len(read_trace(path)) == 4


class TestTrees:
    def make_records(self):
        tracer = Tracer()
        with tracer.start("root", {"cost_ms": 1.5, "digest": "ab"}):
            with tracer.start("child_a"):
                tracer.start("leaf").end()
            tracer.start("child_b").end()
        return tracer.spans()

    def test_build_tree_shape(self):
        roots = build_tree(self.make_records())
        assert len(roots) == 1
        root = roots[0]
        assert root.record.name == "root"
        assert [c.record.name for c in root.children] == [
            "child_a", "child_b",
        ]
        assert root.children[0].children[0].record.name == "leaf"

    def test_orphans_become_roots(self):
        records = self.make_records()
        # Drop the root record: its children must surface as roots.
        headless = [r for r in records if r.name != "root"]
        names = {n.record.name for n in build_tree(headless)}
        assert names == {"child_a", "child_b"}

    def test_self_time_excludes_children(self):
        roots = build_tree(self.make_records())
        root = roots[0]
        child_total = sum(c.total_us for c in root.children)
        assert root.self_us == max(0, root.total_us - child_total)

    def test_render_tree_lines(self):
        text = render_tree(self.make_records())
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "total" in lines[0] and "self" in lines[0]
        assert "[cost_ms=1.5 digest=ab]" in lines[0]
        assert lines[1].startswith("  child_a")

    def test_render_tree_without_timings_is_stable(self):
        text = render_tree(self.make_records(), include_timings=False)
        assert text.splitlines()[0] == "root  [cost_ms=1.5 digest=ab]"

    def test_canonical_tree_strips_ids_and_timings(self):
        canonical = canonical_tree(self.make_records())
        assert canonical[0]["name"] == "root"
        # timing-valued attr dropped, stable attr kept
        assert canonical[0]["attrs"] == {"digest": "ab"}
        flat = json.dumps(canonical)
        assert "span_id" not in flat and "start_us" not in flat

    def test_canonical_tree_orders_siblings_canonically(self):
        first = Tracer()
        with first.start("root"):
            first.start("a").end()
            first.start("b").end()
        second = Tracer()
        with second.start("root"):
            second.start("b").end()
            second.start("a").end()
        assert canonical_tree(first.spans()) == canonical_tree(
            second.spans()
        )


# ---------------------------------------------------------------------------
# metrics registry


class TestHistogram:
    def test_exponential_bounds_cover_range(self):
        bounds = exponential_bounds(0.5, 100.0, 2.0)
        assert bounds[0] == 0.5
        assert bounds[-1] >= 100.0
        ratios = [b / a for a, b in zip(bounds, bounds[1:])]
        assert all(abs(r - 2.0) < 1e-12 for r in ratios)

    def test_exponential_bounds_validation(self):
        with pytest.raises(ConfigError):
            exponential_bounds(0.0, 1.0, 2.0)
        with pytest.raises(ConfigError):
            exponential_bounds(2.0, 1.0, 2.0)
        with pytest.raises(ConfigError):
            exponential_bounds(1.0, 2.0, 1.0)

    def test_bad_bounds_refused(self):
        with pytest.raises(ConfigError):
            Histogram(())
        with pytest.raises(ConfigError):
            Histogram((1.0, 1.0))
        with pytest.raises(ConfigError):
            Histogram((2.0, 1.0))

    def test_empty_quantile_is_zero(self):
        assert Histogram().quantile(50.0) == 0.0
        assert empty_snapshot().quantile(95.0) == 0.0

    def test_quantile_agrees_with_reference_percentile(self):
        # Satellite pin: the bucketed quantile must bracket the old
        # sampling reservoir's nearest-rank percentile from above, by
        # at most one bucket's growth factor, on dense samples.
        samples = [0.01 * i for i in range(1, 2001)]  # 0.01 .. 20 ms
        histogram = Histogram()
        for value in samples:
            histogram.observe(value)
        for q in (1.0, 25.0, 50.0, 90.0, 95.0, 99.0, 100.0):
            old = percentile(samples, q)
            new = histogram.quantile(q)
            assert old <= new <= old * LATENCY_GROWTH + 1e-9

    def test_exact_bound_observation_lands_in_its_bucket(self):
        bounds = (1.0, 2.0, 4.0)
        histogram = Histogram(bounds)
        histogram.observe(2.0)
        snap = histogram.snapshot()
        assert snap.counts == (0, 1, 0, 0)
        assert snap.quantile(50.0) == 2.0

    def test_overflow_reports_last_finite_bound(self):
        histogram = Histogram((1.0, 2.0))
        histogram.observe(999.0)
        assert histogram.quantile(100.0) == 2.0

    def test_snapshot_merge_and_sub_are_exact(self):
        first = Histogram((1.0, 2.0, 4.0))
        second = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 3.0):
            first.observe(value)
        second.observe(8.0)
        merged = first.snapshot().merge(second.snapshot())
        assert merged.count == 4
        assert merged.counts == (1, 1, 1, 1)
        assert merged.sum == pytest.approx(13.0)
        window = merged - first.snapshot()
        assert window.counts == (0, 0, 0, 1)
        assert window.count == 1 and window.sum == pytest.approx(8.0)

    def test_mismatched_bounds_refused(self):
        left = empty_snapshot((1.0, 2.0))
        right = empty_snapshot((1.0, 3.0))
        with pytest.raises(ConfigError):
            left.merge(right)
        with pytest.raises(ConfigError):
            left - right


class TestRegistry:
    def test_counter_monotonic(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ConfigError):
            counter.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge()
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    def test_instruments_are_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("repro.x") is registry.counter("repro.x")
        assert registry.gauge("repro.y") is registry.gauge("repro.y")
        assert registry.histogram("repro.z") is registry.histogram(
            "repro.z"
        )

    def test_kind_conflict_refused(self):
        registry = MetricsRegistry()
        registry.counter("repro.x")
        with pytest.raises(ConfigError):
            registry.gauge("repro.x")
        with pytest.raises(ConfigError):
            registry.histogram("repro.x")

    def test_empty_name_refused(self):
        with pytest.raises(ConfigError):
            MetricsRegistry().counter("")

    def test_snapshot_preserves_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("repro.b").inc()
        registry.gauge("repro.a").set(2)
        names = [sample.name for sample in registry.snapshot()]
        assert names == ["repro.b", "repro.a"]

    def test_set_histogram_loads_snapshot_exactly(self):
        source = Histogram((1.0, 2.0))
        source.observe(0.5)
        source.observe(1.5)
        registry = MetricsRegistry()
        registry.set_histogram("repro.lat", source.snapshot())
        (sample,) = registry.snapshot()
        assert sample.kind == "histogram"
        assert sample.value == source.snapshot()


class TestWorkspaceMetrics:
    def test_counters_exactly_equal_legacy_stats(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        spec = ExperimentSpec.from_dict(TINY_SPEC)
        workspace.sweep(spec, max_workers=1)
        workspace.sweep(spec, max_workers=1)  # warm pass: hits > 0
        stats = workspace.stats
        exposed = parse_prometheus(
            render_prometheus(workspace_metrics(stats).snapshot())
        )
        assert exposed["repro_workspace_plan_hits"] == stats.plan_hits
        assert exposed["repro_workspace_plan_misses"] == stats.plan_misses
        assert (
            exposed["repro_workspace_profile_hits"] == stats.profiles.hits
        )
        cache = stats.cache
        for tier_name, tier in (
            ("l1", cache.l1), ("l2", cache.l2), ("l3", cache.l3),
            ("profiles_remote", cache.profiles_remote),
        ):
            for counter in (
                "hits", "misses", "fills", "writes", "evictions", "errors",
            ):
                assert exposed[
                    f"repro_cache_{tier_name}_{counter}"
                ] == getattr(tier, counter), (tier_name, counter)
            assert exposed[f"repro_cache_{tier_name}_entries"] == tier.entries
            assert exposed[f"repro_cache_{tier_name}_bytes"] == tier.bytes
        solver = stats.solver
        assert exposed["repro_solver_solves"] == solver.solves
        assert exposed["repro_solver_cache_hits"] == solver.cache_hits
        assert exposed["repro_solver_batch_calls"] == solver.batch_calls
        assert (
            exposed["repro_solver_max_batch_size"] == solver.max_batch_size
        )
        # no service bound: the serve family is absent, not zero-filled
        assert not any(key.startswith("repro_serve") for key in exposed)

    def test_service_family_present_when_bound(self, tmp_path, cluster_b):
        workspace = Workspace(tmp_path / "ws")
        with PlanService(workspace, flush_ms=50.0) as service:
            request = PlanRequest(
                stack=tiny_stack(),
                system=get_system("tutel", solver="slsqp"),
                cluster=cluster_b,
            )
            futures = [service.submit(request) for _ in range(3)]
            [future.result() for future in futures]
            stats = workspace.stats
            exposed = parse_prometheus(
                render_prometheus(workspace_metrics(stats).snapshot())
            )
        assert exposed["repro_serve_requests"] == stats.service.requests
        assert exposed["repro_serve_completed"] == stats.service.completed
        assert exposed["repro_serve_dedup_hits"] == stats.service.dedup_hits
        assert (
            exposed["repro_serve_latency_ms_count"]
            == stats.service.latency.count
        )

    def test_windowed_stats_adapt_too(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        spec = ExperimentSpec.from_dict(TINY_SPEC)
        workspace.sweep(spec, max_workers=1)
        before = workspace.stats
        workspace.sweep(spec, max_workers=1)
        window = workspace.stats.since(before)
        exposed = parse_prometheus(
            render_prometheus(workspace_metrics(window).snapshot())
        )
        assert exposed["repro_workspace_plan_misses"] == 0
        assert exposed["repro_workspace_plan_hits"] == window.plan_hits > 0


# ---------------------------------------------------------------------------
# exporters


class TestExporters:
    def sample_registry(self):
        registry = MetricsRegistry()
        registry.counter("repro.a.hits", "hits of a").inc(3)
        registry.gauge("repro.a.bytes").set(1.5)
        histogram = registry.histogram(
            "repro.a.latency_ms", bounds=(1.0, 2.0)
        )
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_prometheus_name_mapping(self):
        assert prometheus_name("repro.cache.l1.hits") == (
            "repro_cache_l1_hits"
        )
        assert prometheus_name("a-b.c") == "a_b_c"

    def test_exposition_shape(self):
        text = render_prometheus(self.sample_registry().snapshot())
        lines = text.splitlines()
        assert "# HELP repro_a_hits hits of a" in lines
        assert "# TYPE repro_a_hits counter" in lines
        assert "repro_a_hits 3" in lines
        assert "repro_a_bytes 1.5" in lines
        assert 'repro_a_latency_ms_bucket{le="1"} 1' in lines
        assert 'repro_a_latency_ms_bucket{le="2"} 1' in lines
        assert 'repro_a_latency_ms_bucket{le="+Inf"} 2' in lines
        assert "repro_a_latency_ms_sum 5.5" in lines
        assert "repro_a_latency_ms_count 2" in lines

    def test_parse_prometheus_round_trip(self):
        text = render_prometheus(self.sample_registry().snapshot())
        parsed = parse_prometheus(text)
        assert parsed["repro_a_hits"] == 3
        assert parsed['repro_a_latency_ms_bucket{le="+Inf"}'] == 2

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ConfigError):
            parse_prometheus("this is not exposition")

    def test_json_round_trip_is_lossless(self):
        samples = self.sample_registry().snapshot()
        assert samples_from_json(render_json(samples)) == samples

    def test_samples_from_json_rejects_garbage(self):
        with pytest.raises(ConfigError):
            samples_from_json("{}")


class TestCacheServerMetrics:
    def test_metrics_op_exposes_store_counters(self):
        server = CacheServer()
        try:
            server.store.put("k", "v", size=1)
            server.store.get("k")
            server.store.get("absent")
            response = server.handle_line(
                json.dumps(
                    {"op": "metrics", "schema": server.schema}
                ).encode()
            )
            assert response["ok"]
            exposed = parse_prometheus(response["exposition"])
            stats = server.store.stats
            assert exposed["repro_cache_server_hits"] == stats.hits
            assert exposed["repro_cache_server_misses"] == stats.misses
            assert exposed["repro_cache_server_entries"] == stats.entries
            assert exposed["repro_cache_server_bytes"] == stats.bytes
        finally:
            server.close()

    def test_remote_tier_metrics_round_trip(self):
        server = CacheServer()
        try:
            address = server.start()
            tier = RemoteTier(address)
            tier.put("k", "v")
            exposition = tier.metrics()
            tier.close()
            assert exposition is not None
            assert parse_prometheus(exposition)[
                "repro_cache_server_entries"
            ] == 1
        finally:
            server.close()

    def test_remote_tier_metrics_degrade_to_none(self):
        server = CacheServer()
        address = server.start()
        server.close()
        assert RemoteTier(address).metrics() is None


# ---------------------------------------------------------------------------
# stats-family windowing (all four families)


class TestStatsWindowing:
    def test_tier_stats_sub_carries_gauges_from_newer(self):
        before = TierStats(
            hits=1, misses=2, fills=1, writes=1, evictions=0, errors=0,
            entries=10, bytes=1000,
        )
        after = TierStats(
            hits=5, misses=3, fills=2, writes=2, evictions=1, errors=1,
            entries=4, bytes=400,
        )
        window = after - before
        assert window.hits == 4 and window.misses == 1
        assert window.fills == 1 and window.writes == 1
        assert window.evictions == 1 and window.errors == 1
        # gauges are levels: the newer snapshot's occupancy, even when
        # lower than the older one's (evictions shrank the tier)
        assert window.entries == 4 and window.bytes == 400

    def test_cache_stats_sub_is_tier_by_tier(self):
        before = CacheStats(l1=TierStats(hits=1, entries=2))
        after = CacheStats(
            l1=TierStats(hits=3, entries=5), l2=TierStats(misses=2)
        )
        window = after - before
        assert window.l1.hits == 2 and window.l1.entries == 5
        assert window.l2.misses == 2

    def test_solver_stats_sub_carries_max_batch_size(self):
        before = SolverStats(solves=10, batch_calls=2, max_batch_size=8)
        after = SolverStats(solves=15, batch_calls=3, max_batch_size=12)
        window = after - before
        assert window.solves == 5 and window.batch_calls == 1
        assert window.max_batch_size == 12  # gauge: later snapshot's

    def test_store_stats_sub_is_plain_delta(self):
        before = StoreStats(cluster_hits=1, layer_misses=2)
        after = StoreStats(
            cluster_hits=4, cluster_misses=1, layer_hits=2, layer_misses=5
        )
        window = after - before
        assert window.cluster_hits == 3 and window.cluster_misses == 1
        assert window.layer_hits == 2 and window.layer_misses == 3
        assert window.hits == 5 and window.misses == 4

    def test_workspace_since_carries_service_from_later(self, tmp_path):
        workspace = Workspace(tmp_path / "ws")
        before = workspace.stats
        assert before.service is None
        accumulator = StatsAccumulator()
        accumulator.request()
        workspace.bind_service(accumulator.snapshot)
        window = workspace.stats.since(before)
        assert isinstance(window.service, ServiceStats)
        assert window.service.requests == 1

    def test_latency_histogram_windows_through_sub(self):
        accumulator = StatsAccumulator()
        accumulator.resolve_cached(latency_ms=1.0)
        before = accumulator.snapshot()
        accumulator.resolve_cached(latency_ms=100.0)
        window = accumulator.snapshot().latency - before.latency
        assert window.count == 1
        assert window.sum == pytest.approx(100.0)


# ---------------------------------------------------------------------------
# workspace/planner/serving wiring


def plan_span_invariant(records):
    """Every plan span has exactly one of {l1,l2,l3}_hit / compile."""
    by_parent: dict[int, list[SpanRecord]] = {}
    for record in records:
        if record.parent_id is not None:
            by_parent.setdefault(record.parent_id, []).append(record)
    plans = [r for r in records if r.name == "plan"]
    assert plans, "trace holds no plan spans"
    outcomes = {"l1_hit", "l2_hit", "l3_hit", "compile"}
    for plan in plans:
        children = by_parent.get(plan.span_id, [])
        matched = [c for c in children if c.name in outcomes]
        assert len(matched) == 1, (
            f"plan span {plan.span_id} has outcomes "
            f"{[c.name for c in matched]}"
        )
    return plans


class TestWorkspaceTracing:
    def test_tracing_is_off_by_default(self, tmp_path):
        assert Workspace(tmp_path / "ws").tracer is None

    def test_cold_plan_traces_probes_and_compile(self, tmp_path, cluster_b):
        workspace = Workspace(tmp_path / "ws", trace=True)
        workspace.plan(tiny_stack(), get_system("fsmoe"), cluster_b)
        records = workspace.tracer.spans()
        (plan,) = plan_span_invariant(records)
        children = [
            r.name for r in records if r.parent_id == plan.span_id
        ]
        assert "l1_probe" in children  # missed, stayed a probe
        assert "compile" in children
        compile_record = next(r for r in records if r.name == "compile")
        # The solver memo is process-wide: an earlier test may have
        # warmed these contexts, so assert the windowed counters are
        # present and account for the work either way.
        attrs = compile_record.attrs
        assert {
            "solver_solves", "solver_cache_hits", "solver_batch_calls",
        } <= set(attrs)
        assert attrs["solver_solves"] + attrs["solver_cache_hits"] >= 1
        assert any(r.name == "solve_degrees" for r in records)
        assert plan.attrs["digest"]
        assert plan.attrs["layers"] == 1

    def test_warm_plan_traces_single_l1_hit(self, tmp_path, cluster_b):
        workspace = Workspace(tmp_path / "ws", trace=True)
        workspace.plan(tiny_stack(), get_system("tutel"), cluster_b)
        workspace.tracer.clear()
        workspace.plan(tiny_stack(), get_system("tutel"), cluster_b)
        records = workspace.tracer.spans()
        (plan,) = plan_span_invariant(records)
        names = [r.name for r in records]
        assert names == ["l1_hit", "plan"]

    def test_disk_warm_plan_traces_l2_hit(self, tmp_path, cluster_b):
        first = Workspace(tmp_path / "ws")
        first.plan(tiny_stack(), get_system("tutel"), cluster_b)
        second = Workspace(tmp_path / "ws", trace=True)
        second.plan(tiny_stack(), get_system("tutel"), cluster_b)
        records = second.tracer.spans()
        plan_span_invariant(records)
        assert "l2_hit" in [r.name for r in records]

    def test_env_var_enables_trace_file(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        workspace = Workspace(tmp_path / "ws")
        assert workspace.tracer is not None
        assert workspace.tracer.path == tmp_path / "ws" / "trace.jsonl"
        monkeypatch.setenv(
            "REPRO_TRACE", str(tmp_path / "custom.jsonl")
        )
        custom = Workspace(tmp_path / "ws2")
        assert custom.tracer.path == tmp_path / "custom.jsonl"

    def test_trace_false_overrides_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert Workspace(tmp_path / "ws", trace=False).tracer is None

    def test_sweep_spans_parent_onto_sweep(self, tmp_path):
        workspace = Workspace(tmp_path / "ws", trace=True)
        spec = ExperimentSpec.from_dict(TINY_SPEC)
        workspace.sweep(spec, max_workers=2)
        records = workspace.tracer.spans()
        sweep = next(r for r in records if r.name == "sweep")
        points = [r for r in records if r.name == "point"]
        assert sweep.attrs == {"name": "obs-test", "points": 2}
        assert len(points) == 2
        assert all(p.parent_id == sweep.span_id for p in points)
        plan_span_invariant(records)

    def test_warm_sweep_canonical_tree_is_deterministic(self, tmp_path):
        # Satellite: two traced runs of the same warm sweep canonicalize
        # to identical span trees (fresh Workspace per run on one root,
        # so both runs are L2-warm and structurally equal).
        spec = ExperimentSpec.from_dict(TINY_SPEC)
        Workspace(tmp_path / "ws").sweep(spec, max_workers=1)

        def traced_run():
            workspace = Workspace(tmp_path / "ws", trace=True)
            workspace.sweep(spec, max_workers=2)
            return canonical_tree(workspace.tracer.spans())

        first = traced_run()
        second = traced_run()
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_service_flush_spans(self, tmp_path, cluster_b):
        workspace = Workspace(tmp_path / "ws", trace=True)
        request = PlanRequest(
            stack=tiny_stack(),
            system=get_system("tutel", solver="slsqp"),
            cluster=cluster_b,
        )
        with PlanService(workspace, flush_ms=100.0) as service:
            futures = [service.submit(request) for _ in range(5)]
            [future.result() for future in futures]
        records = workspace.tracer.spans()
        flush = next(r for r in records if r.name == "flush")
        assert flush.attrs["batch"] == 5
        assert flush.attrs["groups"] == 1
        assert flush.attrs["queue_wait_ms"] >= 0.0
        assert flush.attrs["resolve_ms"] >= 0.0
        resolves = [r for r in records if r.name == "resolve"]
        assert len(resolves) == 1
        assert resolves[0].parent_id == flush.span_id
        assert resolves[0].attrs == {"members": 5, "failed": False}
        plan_span_invariant(records)

    def test_report_runner_artifact_spans(self, tmp_path):
        pytest.importorskip("benchmarks")
        from repro.report import run_report

        workspace = Workspace(tmp_path / "ws", trace=True)
        run = run_report(workspace, only="fw-bw-degree")
        records = workspace.tracer.spans()
        report = next(r for r in records if r.name == "report")
        artifact = next(r for r in records if r.name == "artifact")
        assert report.attrs == {"artifacts": 1}
        assert artifact.parent_id == report.span_id
        assert artifact.attrs["name"] == "fw-bw-degree"
        # REPORT.md timing comes from the span itself
        assert run.runs[0].wall_s == pytest.approx(
            artifact.duration_us / 1e6
        )
