"""Tests for the content-addressed ProfileStore."""

from __future__ import annotations

import threading

import pytest

from repro.core.profiler import profile_cluster
from repro.planner import ProfileStore
from repro.planner.store import StoreStats


class TestClusterProfiles:
    def test_first_request_misses_then_hits(self, cluster_b, parallel_b):
        store = ProfileStore()
        first = store.cluster_profile(cluster_b, parallel_b)
        second = store.cluster_profile(cluster_b, parallel_b)
        assert first is second
        stats = store.stats
        assert stats.cluster_misses == 1
        assert stats.cluster_hits == 1

    def test_matches_uncached_profiler(self, cluster_b, parallel_b):
        store = ProfileStore()
        cached = store.cluster_profile(cluster_b, parallel_b)
        direct = profile_cluster(cluster_b, parallel_b)
        assert cached.models == direct.models

    def test_distinct_knobs_are_distinct_entries(self, cluster_b, parallel_b):
        store = ProfileStore()
        store.cluster_profile(cluster_b, parallel_b, noise=0.0)
        store.cluster_profile(cluster_b, parallel_b, noise=0.01)
        store.cluster_profile(cluster_b, parallel_b, noise=0.01, seed=1)
        assert store.stats.cluster_misses == 3
        assert len(store) == 3

    def test_models_convenience(self, cluster_b, parallel_b, models_b):
        store = ProfileStore()
        assert store.models(cluster_b, parallel_b) == models_b


class TestLayerProfiles:
    def test_layer_profile_identity_on_hit(
        self, cluster_b, parallel_b, models_b, small_spec
    ):
        store = ProfileStore()
        first = store.layer_profile(small_spec, parallel_b, models_b)
        second = store.layer_profile(small_spec, parallel_b, models_b)
        assert first is second
        assert store.stats == StoreStats(layer_hits=1, layer_misses=1)

    def test_distinct_specs_profile_separately(
        self, parallel_b, models_b, small_spec
    ):
        store = ProfileStore()
        store.layer_profile(small_spec, parallel_b, models_b)
        store.layer_profile(
            small_spec.with_(top_k=1), parallel_b, models_b
        )
        assert store.stats.layer_misses == 2

    def test_concurrent_same_key_computes_once(
        self, parallel_b, models_b, small_spec
    ):
        store = ProfileStore()
        results = []
        barrier = threading.Barrier(8)

        def request():
            barrier.wait()
            results.append(
                store.layer_profile(small_spec, parallel_b, models_b)
            )

        threads = [threading.Thread(target=request) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(results) == 8
        assert all(r is results[0] for r in results)
        stats = store.stats
        assert stats.layer_misses == 1
        assert stats.layer_hits == 7

    def test_failed_compute_is_not_cached(self, parallel_b, small_spec):
        store = ProfileStore()
        # A None model set blows up inside the profile computation, after
        # the store committed to a miss; the entry must be evicted so the
        # next request retries instead of replaying the exception.
        with pytest.raises(AttributeError):
            store.layer_profile(small_spec, parallel_b, None)
        assert len(store) == 0


class TestStats:
    def test_subtraction_gives_deltas(self):
        after = StoreStats(
            cluster_hits=5, cluster_misses=2, layer_hits=10, layer_misses=3
        )
        before = StoreStats(
            cluster_hits=1, cluster_misses=2, layer_hits=4, layer_misses=3
        )
        delta = after - before
        assert delta == StoreStats(cluster_hits=4, layer_hits=6)
        assert delta.misses == 0
        assert delta.hits == 10
