"""Unit tests for repro.sim.timeline."""

import pytest

from repro.sim import TaskGraph, TaskKind, simulate


def build_timeline():
    g = TaskGraph()
    a = g.add("a", TaskKind.A2A_DISPATCH, "inter", 2.0)
    b = g.add("b", TaskKind.EXPERT, "compute", 3.0, deps=(a,))
    g.add("c", TaskKind.A2A_COMBINE, "inter", 2.0, deps=(b,))
    return simulate(g)


class TestTimelineStats:
    def test_makespan(self):
        assert build_timeline().makespan_ms == 7.0

    def test_busy_per_stream(self):
        tl = build_timeline()
        assert tl.busy_ms("inter") == 4.0
        assert tl.busy_ms("compute") == 3.0

    def test_utilization(self):
        tl = build_timeline()
        assert tl.utilization("inter") == pytest.approx(4.0 / 7.0)
        assert tl.utilization("compute") == pytest.approx(3.0 / 7.0)

    def test_kind_ms(self):
        tl = build_timeline()
        assert tl.kind_ms(TaskKind.A2A_DISPATCH) == 2.0
        assert tl.kind_ms(TaskKind.EXPERT) == 3.0
        assert tl.kind_ms(TaskKind.GRAD_ALLREDUCE) == 0.0

    def test_records_on_stream_sorted(self):
        tl = build_timeline()
        records = tl.records_on("inter")
        assert [r.task.name for r in records] == ["a", "c"]
        assert records[0].start_ms <= records[1].start_ms

    def test_end_of(self):
        tl = build_timeline()
        assert tl.end_of(0) == 2.0
        with pytest.raises(KeyError):
            tl.end_of(99)


class TestRendering:
    def test_gantt_contains_streams_and_glyphs(self):
        text = build_timeline().gantt_ascii(width=40)
        assert "inter" in text
        assert "compute" in text
        assert "D" in text and "E" in text and "C" in text

    def test_gantt_empty(self):
        g = TaskGraph()
        assert "(empty timeline)" in simulate(g).gantt_ascii()

    def test_summary_mentions_makespan(self):
        text = build_timeline().summary()
        assert "makespan" in text
        assert "inter" in text
