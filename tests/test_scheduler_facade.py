"""Tests for the GenericScheduler facade (paper §3.2)."""

import pytest

from repro.core.scheduler import GenericScheduler
from repro.errors import ConfigError
from repro.moe.gates import GateKind
from repro.systems import FSMoE, Tutel


@pytest.fixture(scope="module")
def scheduler(cluster_b):
    return GenericScheduler(cluster_b)


class TestFrontEnd:
    def test_default_layout_is_standard(self, scheduler, cluster_b):
        assert scheduler.parallel.n_mp == cluster_b.gpus_per_node
        assert scheduler.parallel.n_ep == cluster_b.num_nodes

    def test_fit_quality_reported(self, scheduler):
        quality = scheduler.fit_quality
        assert set(quality) == {
            "a2a", "allgather", "reducescatter", "allreduce", "gemm"
        }
        assert all(r2 > 0.999 for r2 in quality.values())

    def test_profile_layer(self, scheduler, small_spec):
        profile = scheduler.profile(small_spec)
        assert profile.grad_bytes > 0


class TestBackEnd:
    def test_schedule_layer_report(self, scheduler, small_spec):
        report = scheduler.schedule_layer(small_spec)
        assert report.forward.degree >= 1
        assert report.backward.degree >= 1
        assert report.forward_window_ms >= 0
        assert "forward: r=" in report.summary()

    def test_gate_kind_changes_schedule_inputs(self, scheduler, small_spec):
        gshard = scheduler.schedule_layer(small_spec, gate_kind=GateKind.GSHARD)
        ec = scheduler.schedule_layer(
            small_spec, gate_kind=GateKind.EXPERT_CHOICE
        )
        assert (
            ec.profile.volumes.a2a_bytes < gshard.profile.volumes.a2a_bytes
        )

    def test_simulate_iteration(self, scheduler, small_spec):
        timeline = scheduler.simulate_iteration(small_spec, 2, FSMoE())
        assert timeline.makespan_ms > 0
        assert set(timeline.streams) == {"compute", "intra", "inter"}

    def test_simulate_iteration_phases(self, scheduler, small_spec):
        fw = scheduler.simulate_iteration(
            small_spec, 2, Tutel(), phase="forward"
        )
        both = scheduler.simulate_iteration(small_spec, 2, Tutel())
        assert fw.makespan_ms < both.makespan_ms

    def test_rejects_bad_layer_count(self, scheduler, small_spec):
        with pytest.raises(ConfigError):
            scheduler.simulate_iteration(small_spec, 0, FSMoE())

    def test_fsmoe_beats_tutel_through_facade(self, scheduler, small_spec):
        t_fsmoe = scheduler.simulate_iteration(
            small_spec, 2, FSMoE()
        ).makespan_ms
        t_tutel = scheduler.simulate_iteration(
            small_spec, 2, Tutel()
        ).makespan_ms
        assert t_fsmoe < t_tutel

    def test_best_a2a_algorithm(self, scheduler, small_spec):
        best, costs = scheduler.best_a2a_algorithm(small_spec)
        assert best in costs
        assert len(costs) == 3
        assert all(cost > 0 for cost in costs.values())
        assert costs[best] == min(costs.values())
