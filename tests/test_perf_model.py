"""Unit and property tests for repro.core.perf_model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.perf_model import LinearPerfModel, PerfModelSet, fit_linear_model
from repro.errors import SolverError


class TestLinearPerfModel:
    def test_time_linear(self):
        m = LinearPerfModel(alpha=1.0, beta=0.5)
        assert m.time_ms(0) == 0.0
        assert m.time_ms(2) == 2.0
        assert m.time_ms(4) == 3.0

    def test_chunk_time(self):
        m = LinearPerfModel(alpha=1.0, beta=0.5)
        assert m.chunk_time_ms(8, 4) == 1.0 + 1.0

    def test_inverse_roundtrip(self):
        m = LinearPerfModel(alpha=0.3, beta=2e-6)
        n = 1_000_000
        assert m.inverse(m.time_ms(n)) == pytest.approx(n)

    def test_inverse_clamps_below_alpha(self):
        m = LinearPerfModel(alpha=1.0, beta=1.0)
        assert m.inverse(0.5) == 0.0

    def test_inverse_zero_beta(self):
        m = LinearPerfModel(alpha=1.0, beta=0.0)
        assert m.inverse(0.5) == 0.0
        assert m.inverse(2.0) == float("inf")

    def test_scaled(self):
        m = LinearPerfModel(alpha=1.0, beta=2.0).scaled(2.0, 3.0)
        assert (m.alpha, m.beta) == (2.0, 6.0)


class TestFit:
    @given(
        alpha=st.floats(0.01, 2.0),
        beta=st.floats(1e-8, 1e-4),
    )
    @settings(max_examples=30, deadline=None)
    def test_exact_recovery(self, alpha, beta):
        sizes = [float((i + 1) * 2**18) for i in range(16)]
        times = [alpha + beta * n for n in sizes]
        model, r2 = fit_linear_model(sizes, times)
        assert model.alpha == pytest.approx(alpha, rel=1e-6, abs=1e-9)
        assert model.beta == pytest.approx(beta, rel=1e-6)
        assert r2 == pytest.approx(1.0)

    def test_noisy_fit_r2_high(self):
        rng = np.random.default_rng(0)
        sizes = [float((i + 1) * 2**18) for i in range(24)]
        times = [
            (0.2 + 3e-7 * n) * rng.normal(1.0, 0.02) for n in sizes
        ]
        model, r2 = fit_linear_model(sizes, times)
        assert r2 > 0.99
        assert model.beta == pytest.approx(3e-7, rel=0.1)

    def test_negative_alpha_clamped(self):
        sizes = [1.0, 2.0, 3.0]
        times = [0.0, 1.0, 2.0]  # perfect line with alpha = -1
        model, _ = fit_linear_model(sizes, times)
        assert model.alpha == 0.0

    def test_rejects_too_few_samples(self):
        with pytest.raises(SolverError):
            fit_linear_model([1.0], [1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(SolverError):
            fit_linear_model([1.0, 2.0], [1.0])


class TestPerfModelSet:
    def make_set(self):
        m = LinearPerfModel(alpha=0.1, beta=1e-7)
        return PerfModelSet(a2a=m, allgather=m, reducescatter=m, allreduce=m,
                            gemm=LinearPerfModel(alpha=0.05, beta=1e-10))

    def test_expert_model_scales_alpha_only(self):
        s = self.make_set()
        e3 = s.expert_model(3)
        assert e3.alpha == pytest.approx(0.15)
        assert e3.beta == s.gemm.beta

    def test_expert_model_rejects_zero(self):
        with pytest.raises(SolverError):
            self.make_set().expert_model(0)

    def test_as_dict_names(self):
        assert set(self.make_set().as_dict()) == {
            "a2a", "allgather", "reducescatter", "allreduce", "gemm"
        }
