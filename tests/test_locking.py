"""Inter-process locking: FileLock semantics and the workspace hammer."""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import FileLock, LockTimeout, MoELayerSpec, Workspace
from repro.api.workspace import WORKSPACE_SCHEMA_VERSION

SRC = Path(__file__).parent.parent / "src"


class TestFileLock:
    def test_context_manager_acquires_and_releases(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        assert not lock.held
        with lock:
            assert lock.held
        assert not lock.held
        assert (tmp_path / "x.lock").exists()  # lock files persist

    def test_reacquire_while_held_raises(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            with pytest.raises(RuntimeError):
                lock.acquire()

    def test_release_is_idempotent(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        lock.acquire()
        lock.release()
        lock.release()

    def test_second_instance_times_out_while_held(self, tmp_path):
        path = tmp_path / "x.lock"
        holder = FileLock(path)
        contender = FileLock(path, timeout_s=0.1, poll_s=0.01)
        with holder:
            start = time.monotonic()
            with pytest.raises(LockTimeout):
                contender.acquire()
            assert time.monotonic() - start >= 0.1
        # released: the contender gets through now
        with contender:
            assert contender.held

    def test_excludes_across_processes(self, tmp_path):
        """A subprocess holding the lock blocks this process."""
        path = tmp_path / "x.lock"
        script = (
            "import sys, time\n"
            f"sys.path.insert(0, {str(SRC)!r})\n"
            "from repro import FileLock\n"
            f"lock = FileLock({str(path)!r})\n"
            "lock.acquire()\n"
            "print('locked', flush=True)\n"
            "time.sleep(1.0)\n"
            "lock.release()\n"
            "print('released', flush=True)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", script],
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "locked"
            contender = FileLock(path, timeout_s=0.2, poll_s=0.01)
            with pytest.raises(LockTimeout):
                contender.acquire()
            # and once the subprocess lets go, acquisition succeeds
            patient = FileLock(path, timeout_s=10.0, poll_s=0.01)
            with patient:
                assert patient.held
        finally:
            proc.wait(timeout=30)


def _hammer_script(root: Path, worker: int, rounds: int) -> str:
    """One hammer process: plan shared + unique specs, saving each round."""
    return (
        "import sys\n"
        f"sys.path.insert(0, {str(SRC)!r})\n"
        "from repro import MoELayerSpec, Workspace, testbed_b\n"
        "from repro.systems.registry import get_system\n"
        f"ws = Workspace({str(root)!r})\n"
        "cluster = testbed_b()\n"
        f"for round in range({rounds}):\n"
        "    shared = MoELayerSpec(batch_size=1, seq_len=256,\n"
        "                          embed_dim=512, num_experts=8,\n"
        "                          num_heads=8)\n"
        "    unique = MoELayerSpec(batch_size=1,\n"
        f"                          seq_len=300 + 64 * {worker} + round,\n"
        "                          embed_dim=512, num_experts=8,\n"
        "                          num_heads=8)\n"
        "    for spec in (shared, unique):\n"
        "        plan = ws.plan((spec,), get_system('tutel'), cluster)\n"
        "        assert plan.num_layers == 1\n"
        "print('ok', flush=True)\n"
    )


class TestMultiProcessWorkspace:
    def test_concurrent_processes_never_interleave_writes(self, tmp_path):
        """N processes share one root; caches end up whole and complete.

        Every process plans one *shared* spec (cross-process single
        flight / duplicate suppression) and several *unique* specs
        (merge-on-save must union them: pre-locking, last-writer-wins
        dropped other processes' profiles).
        """
        root = tmp_path / "shared-ws"
        workers, rounds = 4, 2
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _hammer_script(root, w, rounds)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
            )
            for w in range(workers)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=300)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"

        # profiles.json is valid, versioned, and holds the union
        data = json.loads((root / "profiles.json").read_text())
        assert data["schema_version"] == WORKSPACE_SCHEMA_VERSION
        reopened = Workspace(root)
        # 1 shared + workers * rounds unique layer profiles, plus the
        # cluster profile entry
        assert len(reopened.store) >= 1 + workers * rounds + 1

        # every plan file parses and matches the schema
        plan_files = sorted((root / "plans").glob("*.json"))
        assert len(plan_files) == 1 + workers * rounds
        for path in plan_files:
            plan_doc = json.loads(path.read_text())
            assert plan_doc["schema_version"] == WORKSPACE_SCHEMA_VERSION
            assert "plan" in plan_doc and "key" in plan_doc
        # no quarantined or temporary leftovers anywhere
        assert list(root.glob("*.corrupt")) == []
        assert [p for p in root.iterdir() if p.name.startswith(".tmp")] == []

        # a warm reopen plans everything from cache
        spec = MoELayerSpec(
            batch_size=1, seq_len=256, embed_dim=512,
            num_experts=8, num_heads=8,
        )
        from repro import testbed_b
        from repro.systems.registry import get_system

        reopened.plan((spec,), get_system("tutel"), testbed_b())
        stats = reopened.stats
        assert stats.plan_misses == 0 and stats.plan_hits == 1
        assert stats.profiles.misses == 0

    def test_merge_save_preserves_foreign_entries(self, tmp_path):
        """save() unions with on-disk entries instead of overwriting."""
        root = tmp_path / "ws"
        first = Workspace(root)
        spec_a = MoELayerSpec(
            batch_size=1, seq_len=256, embed_dim=512,
            num_experts=8, num_heads=8,
        )
        from repro import testbed_b
        from repro.systems.registry import get_system

        first.plan((spec_a,), get_system("tutel"), testbed_b())
        entries_after_first = len(Workspace(root).store)

        # second session, opened BEFORE first's last save, fits another
        # spec and saves; both sessions' entries must survive
        second = Workspace(root)
        spec_b = MoELayerSpec(
            batch_size=1, seq_len=512, embed_dim=512,
            num_experts=8, num_heads=8,
        )
        second.plan((spec_b,), get_system("tutel"), testbed_b())
        first.save()  # re-save stale session: must not clobber spec_b

        final = Workspace(root)
        assert len(final.store) > entries_after_first
        warm = final.plan((spec_b,), get_system("tutel"), testbed_b())
        assert warm is not None
        assert final.stats.profiles.misses == 0
