"""Unit tests for repro.parallel.topology."""

import pytest

from repro.errors import TopologyError
from repro.parallel.topology import (
    LinkSpec,
    TESTBEDS,
    testbed_a,
    testbed_b,
)


class TestLinkSpec:
    def test_transfer_linear(self):
        link = LinkSpec(name="l", bandwidth_bytes_per_ms=1000.0, startup_ms=0.5)
        assert link.transfer_ms(0) == 0.0
        assert link.transfer_ms(1000) == pytest.approx(1.5)
        assert link.transfer_ms(2000) == pytest.approx(2.5)

    def test_transfer_rejects_negative(self):
        link = LinkSpec(name="l", bandwidth_bytes_per_ms=1000.0, startup_ms=0.5)
        with pytest.raises(TopologyError):
            link.transfer_ms(-1)


class TestTestbeds:
    def test_testbed_a_matches_paper_table3(self):
        a = testbed_a()
        assert a.num_nodes == 6
        assert a.gpus_per_node == 8
        assert a.total_gpus == 48
        assert "A6000" in a.node.gpu.name

    def test_testbed_b_matches_paper_table3(self):
        b = testbed_b()
        assert b.num_nodes == 8
        assert b.gpus_per_node == 4
        assert b.total_gpus == 32
        assert "2080" in b.node.gpu.name

    def test_startup_latencies_from_fig5(self):
        # Fig. 5 fitted alphas at the training EP group: base startup plus
        # one per-peer message latency per peer.
        a = testbed_a()
        alpha_a = a.inter_link.startup_ms + a.a2a_per_peer_ms * (
            a.num_nodes - 1
        )
        assert alpha_a == pytest.approx(0.28)  # paper: 2.87e-1
        b = testbed_b()
        alpha_b = b.inter_link.startup_ms + b.a2a_per_peer_ms * (
            b.num_nodes - 1
        )
        assert alpha_b == pytest.approx(0.175)  # paper: 1.75e-1

    def test_registry(self):
        assert set(TESTBEDS) == {"A", "B"}
        assert TESTBEDS["A"]().name == "Testbed-A"

    def test_efficiencies_within_unit(self):
        for cluster in (testbed_a(), testbed_b()):
            assert 0 < cluster.a2a_efficiency <= 1
            assert 0 < cluster.allreduce_efficiency <= 1


class TestScaledTo:
    def test_whole_nodes(self):
        a = testbed_a()
        small = a.scaled_to(16)
        assert small.num_nodes == 2
        assert small.total_gpus == 16
        assert small.inter_link == a.inter_link
        assert small.a2a_efficiency == a.a2a_efficiency

    def test_rejects_partial_node(self):
        with pytest.raises(TopologyError):
            testbed_a().scaled_to(12)

    def test_rejects_oversubscription(self):
        with pytest.raises(TopologyError):
            testbed_b().scaled_to(64)
