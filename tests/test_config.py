"""Unit tests for repro.config."""

import pytest

from repro.config import (
    MoELayerSpec,
    ParallelSpec,
    experts_per_ep_rank,
    standard_layout,
    tokens_per_gpu,
)
from repro.errors import ConfigError


class TestMoELayerSpec:
    def test_defaults_valid(self):
        spec = MoELayerSpec()
        assert spec.hidden_dim == 4 * spec.embed_dim
        assert spec.tokens_per_worker == spec.batch_size * spec.seq_len

    def test_hidden_dim_rounds_fractional_scale(self):
        spec = MoELayerSpec(embed_dim=4096, hidden_scale=3.5)
        assert spec.hidden_dim == 14336

    def test_dtype_bytes(self):
        assert MoELayerSpec(dtype="float32").dtype_bytes == 4
        assert MoELayerSpec(dtype="float16").dtype_bytes == 2

    def test_num_gemms_by_ffn_type(self):
        assert MoELayerSpec(ffn_type="simple").num_gemms_per_expert == 2
        assert MoELayerSpec(ffn_type="mixtral").num_gemms_per_expert == 3

    def test_nodrop_flag(self):
        assert MoELayerSpec(capacity_factor=None).drops_tokens is False
        assert MoELayerSpec(capacity_factor=1.2).drops_tokens is True

    def test_with_replaces_fields(self):
        spec = MoELayerSpec().with_(batch_size=7)
        assert spec.batch_size == 7

    @pytest.mark.parametrize(
        "field,value",
        [
            ("batch_size", 0),
            ("seq_len", -1),
            ("embed_dim", 0),
            ("num_experts", 0),
            ("top_k", 0),
            ("num_heads", -2),
        ],
    )
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(ConfigError):
            MoELayerSpec(**{field: value})

    def test_rejects_topk_above_experts(self):
        with pytest.raises(ConfigError):
            MoELayerSpec(num_experts=2, top_k=3)

    def test_rejects_bad_ffn_type(self):
        with pytest.raises(ConfigError):
            MoELayerSpec(ffn_type="dense")  # type: ignore[arg-type]

    def test_rejects_indivisible_heads(self):
        with pytest.raises(ConfigError):
            MoELayerSpec(embed_dim=1000, num_heads=3)

    def test_rejects_unknown_dtype(self):
        with pytest.raises(KeyError):
            MoELayerSpec(dtype="int8")

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigError):
            MoELayerSpec(capacity_factor=0.0)


class TestParallelSpec:
    def test_world_size(self):
        spec = ParallelSpec(n_dp=6, n_mp=8, n_ep=6, n_esp=8, n_pp=1)
        assert spec.gpus_per_stage == 48
        assert spec.world_size == 48

    def test_standard_layout_invariants(self):
        spec = ParallelSpec(n_dp=6, n_mp=8, n_ep=6, n_esp=8)
        spec.validate_standard_layout()  # should not raise

    def test_standard_layout_rejects_mp_esp_mismatch(self):
        with pytest.raises(ConfigError):
            ParallelSpec(n_dp=2, n_mp=4, n_ep=2, n_esp=2).validate_standard_layout()

    def test_standard_layout_rejects_ep_dp_mismatch(self):
        with pytest.raises(ConfigError):
            ParallelSpec(n_dp=2, n_mp=4, n_ep=4, n_esp=4).validate_standard_layout()

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            ParallelSpec(n_dp=0)


class TestStandardLayout:
    def test_testbed_b_shape(self):
        spec = standard_layout(32, 4)
        assert (spec.n_dp, spec.n_mp, spec.n_ep, spec.n_esp) == (8, 4, 8, 4)

    def test_testbed_a_shape(self):
        spec = standard_layout(48, 8)
        assert (spec.n_dp, spec.n_mp, spec.n_ep, spec.n_esp) == (6, 8, 6, 8)

    def test_pipeline_splits_nodes(self):
        spec = standard_layout(48, 8, n_pp=2)
        assert spec.n_pp == 2
        assert spec.n_ep == 3
        assert spec.world_size == 48

    def test_rejects_uneven_gpus(self):
        with pytest.raises(ConfigError):
            standard_layout(30, 4)

    def test_rejects_uneven_pp(self):
        with pytest.raises(ConfigError):
            standard_layout(32, 4, n_pp=3)


class TestDerivedQuantities:
    def test_experts_per_ep_rank(self):
        spec = MoELayerSpec(num_experts=16)
        parallel = ParallelSpec(n_dp=8, n_mp=4, n_ep=8, n_esp=4)
        assert experts_per_ep_rank(spec, parallel) == 2

    def test_experts_per_ep_rank_uneven_raises(self):
        spec = MoELayerSpec(num_experts=10, top_k=2)
        parallel = ParallelSpec(n_dp=8, n_mp=4, n_ep=8, n_esp=4)
        with pytest.raises(ConfigError):
            experts_per_ep_rank(spec, parallel)

    def test_tokens_per_gpu_splits_over_mp(self):
        spec = MoELayerSpec(batch_size=4, seq_len=1024)
        parallel = ParallelSpec(n_dp=8, n_mp=4, n_ep=8, n_esp=4)
        assert tokens_per_gpu(spec, parallel) == 1024

    def test_tokens_per_gpu_at_least_one(self):
        spec = MoELayerSpec(batch_size=1, seq_len=2, num_experts=2, num_heads=1)
        parallel = ParallelSpec(n_dp=1, n_mp=8, n_ep=1, n_esp=8)
        assert tokens_per_gpu(spec, parallel) == 1
