"""String-keyed registries: systems, model presets, clusters."""

from __future__ import annotations

import pytest

from repro import (
    FSMoE,
    RegistryError,
    Tutel,
    available_clusters,
    available_model_presets,
    available_systems,
    get_cluster,
    get_model_preset,
    get_system,
    register_cluster,
    register_model_preset,
    register_system,
)
from repro import testbed_b as make_testbed_b
from repro.models import MIXTRAL_7B, ModelPreset
from repro.systems import ALL_SYSTEM_KEYS, TrainingSystem


class TestSystemRegistry:
    def test_every_paper_system_is_registered(self):
        for key in ALL_SYSTEM_KEYS:
            assert isinstance(get_system(key), TrainingSystem)

    def test_display_names_and_aliases(self):
        assert isinstance(get_system("DS-MoE"), TrainingSystem)
        assert isinstance(get_system("PipeMoE+Lina"), TrainingSystem)
        assert isinstance(get_system("FSMoE"), FSMoE)
        assert type(get_system("deepspeed-moe")).__name__ == "DeepSpeedMoE"

    def test_lookup_is_case_and_punctuation_insensitive(self):
        assert isinstance(get_system("Tutel Improved"), Tutel)
        assert isinstance(get_system("tutel_improved"), Tutel)

    def test_unknown_name_lists_available(self):
        with pytest.raises(RegistryError, match="available"):
            get_system("megatron")

    def test_kwargs_forwarded_and_pruned(self):
        fsmoe = get_system("fsmoe", r_max=4, solver="slsqp")
        assert fsmoe.r_max == 4 and fsmoe.solver == "slsqp"
        tutel = get_system("tutel", r_max=4, solver="slsqp")  # solver dropped
        assert tutel.r_max == 4
        assert not hasattr(tutel, "solver")

    def test_none_kwargs_mean_defaults(self):
        assert get_system("fsmoe", r_max=None, solver=None).solver == "de"

    def test_register_and_conflict(self):
        class Custom(Tutel):
            name = "Custom"

        register_system("custom-test-system", Custom)
        try:
            assert isinstance(get_system("custom-test-system"), Custom)
            with pytest.raises(RegistryError, match="already registered"):
                register_system("custom-test-system", Custom)
            register_system("custom-test-system", Tutel, overwrite=True)
            assert isinstance(get_system("custom-test-system"), Tutel)
        finally:
            from repro.systems import registry

            registry._REGISTRY.discard("custom-test-system")

    def test_available_systems_sorted(self):
        names = available_systems()
        assert list(names) == sorted(names)
        assert "fsmoe" in names

    def test_overwrite_beats_stale_alias(self):
        """Re-registering under a name that exists as an *alias* must
        actually take effect (the alias previously shadowed the entry)."""
        from repro.systems import registry

        class Mine(Tutel):
            name = "Mine"

        register_system("ds-moe", Mine, overwrite=True)
        try:
            assert isinstance(get_system("ds-moe"), Mine)
            # the canonical dsmoe registration is untouched
            assert type(get_system("dsmoe")).__name__ == "DeepSpeedMoE"
        finally:
            registry._REGISTRY.discard("ds-moe")
            registry._REGISTRY._aliases["ds-moe"] = "dsmoe"

    def test_error_message_is_not_repr_quoted(self):
        with pytest.raises(RegistryError) as err:
            get_system("megatron")
        assert not str(err.value).startswith('"')


class TestModelPresetRegistry:
    def test_lookup_flexible(self):
        assert get_model_preset("Mixtral-7B") is MIXTRAL_7B
        assert get_model_preset("mixtral_7b") is MIXTRAL_7B
        assert get_model_preset("GPT2-XL").name == "GPT2-XL"

    def test_unknown_model(self):
        with pytest.raises(RegistryError, match="available"):
            get_model_preset("llama")

    def test_register_and_overwrite(self):
        preset = ModelPreset(
            name="Tiny-Test",
            embed_dim=256,
            hidden_scale=2.0,
            num_heads=4,
            ffn_type="simple",
            num_layers=2,
        )
        from repro.models import MODEL_PRESETS

        register_model_preset(preset)
        try:
            assert get_model_preset("tiny-test") is preset
            with pytest.raises(RegistryError):
                register_model_preset(preset)
            bigger = ModelPreset(
                name="Tiny-Test",
                embed_dim=512,
                hidden_scale=2.0,
                num_heads=4,
                ffn_type="simple",
                num_layers=2,
            )
            register_model_preset(bigger, overwrite=True)
            assert get_model_preset("tiny-test").embed_dim == 512
        finally:
            MODEL_PRESETS.pop("Tiny-Test", None)

    def test_available_contains_paper_models(self):
        names = available_model_presets()
        assert {"GPT2-XL", "Mixtral-7B", "Mixtral-22B"} <= set(names)


class TestClusterRegistry:
    def test_testbeds_registered(self):
        assert get_cluster("A").name == "Testbed-A"
        assert get_cluster("b").name == "Testbed-B"
        assert get_cluster("testbed-a").name == "Testbed-A"

    def test_scaling(self):
        assert get_cluster("A", total_gpus=16).total_gpus == 16

    def test_unknown_cluster(self):
        with pytest.raises(RegistryError, match="available"):
            get_cluster("frontier")

    def test_register_spec_instance(self):
        from repro.api import registry

        register_cluster("tiny-test-cluster", make_testbed_b())
        try:
            assert get_cluster("tiny-test-cluster").name == "Testbed-B"
            with pytest.raises(RegistryError):
                register_cluster("tiny-test-cluster", make_testbed_b())
        finally:
            registry._REGISTRY.discard("tiny-test-cluster")

    def test_available_sorted(self):
        names = available_clusters()
        assert list(names) == sorted(names)
        assert {"a", "b"} <= set(names)
