"""Unit and property tests for repro.parallel.volumes."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MoELayerSpec, ParallelSpec
from repro.parallel.volumes import (
    compute_layer_volumes,
    effective_capacity_factor,
    nodrop_capacity_factor,
)

PARALLEL_B = ParallelSpec(n_dp=8, n_mp=4, n_ep=8, n_esp=4)


def spec_with(**kwargs) -> MoELayerSpec:
    base = dict(
        batch_size=4,
        seq_len=1024,
        embed_dim=1600,
        hidden_scale=4,
        num_experts=8,
        top_k=2,
        capacity_factor=1.2,
        num_heads=25,
    )
    base.update(kwargs)
    return MoELayerSpec(**base)


class TestCapacity:
    def test_paper_formula(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        # S = 4*1024/4 = 1024; T = ceil(k*f*S/E) = ceil(2*1.2*1024/8) = 308.
        assert vol.local_tokens == 1024
        assert vol.capacity_per_expert == 308

    def test_tokens_per_expert_gathers_all_sources(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        assert vol.tokens_per_expert == 8 * 4 * 308  # N_EP * N_ESP * T

    def test_nodrop_factor_above_one(self):
        assert nodrop_capacity_factor(1024, 8, 2) > 1.0

    def test_nodrop_factor_shrinks_with_tokens(self):
        small = nodrop_capacity_factor(64, 8, 2)
        large = nodrop_capacity_factor(65536, 8, 2)
        assert large < small

    def test_nodrop_single_expert_is_one(self):
        assert nodrop_capacity_factor(1024, 1, 1) == 1.0

    def test_effective_capacity_resolves_none(self):
        spec = spec_with(capacity_factor=None)
        f = effective_capacity_factor(spec, PARALLEL_B)
        assert f > 1.0
        assert effective_capacity_factor(spec_with(), PARALLEL_B) == 1.2


class TestVolumes:
    def test_a2a_bytes_formula(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        assert vol.a2a_bytes == 8 * 308 * 1600 * 4

    def test_esp_shard_is_received_slice(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        # experts/node = 1, so shard = N_EP * T * M * dtype.
        assert vol.esp_shard_bytes == 8 * 308 * 1600 * 4

    def test_mp_shard_splits_tokens(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        assert vol.mp_shard_bytes == 4 * 1024 * 1600 * 4 / 4

    def test_expert_macs_shard_hidden(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        expected = 1 * 2 * vol.tokens_per_expert * 1600 * (6400 / 4)
        assert vol.expert_macs == pytest.approx(expected)

    def test_mixtral_has_three_gemms(self):
        simple = compute_layer_volumes(spec_with(ffn_type="simple"), PARALLEL_B)
        mixtral = compute_layer_volumes(spec_with(ffn_type="mixtral"), PARALLEL_B)
        assert mixtral.expert_num_gemms == 3
        assert simple.expert_num_gemms == 2
        assert mixtral.expert_macs == pytest.approx(1.5 * simple.expert_macs)

    def test_grad_bytes_cover_attention_and_gate(self):
        vol = compute_layer_volumes(spec_with(), PARALLEL_B)
        attn = 4 * 1600 * 1600 / 4
        gate = 1600 * 8
        norm = 4 * 1600
        assert vol.dense_grad_bytes == pytest.approx((attn + gate + norm) * 4)


class TestScaling:
    @given(factor=st.sampled_from([2, 4]))
    @settings(max_examples=10, deadline=None)
    def test_token_proportional_quantities_scale(self, factor):
        base = compute_layer_volumes(spec_with(seq_len=512), PARALLEL_B)
        scaled = compute_layer_volumes(
            spec_with(seq_len=512 * factor), PARALLEL_B
        )
        # capacity ceils to whole tokens, so scaling is near-proportional.
        assert scaled.a2a_bytes == pytest.approx(
            base.a2a_bytes * factor, rel=0.02
        )
        assert scaled.esp_shard_bytes == pytest.approx(
            base.esp_shard_bytes * factor, rel=0.02
        )
        assert scaled.expert_macs == pytest.approx(
            base.expert_macs * factor, rel=0.02
        )
        # gradient volume is parameter-bound, not token-bound.
        assert scaled.dense_grad_bytes == base.dense_grad_bytes

    @given(
        b=st.sampled_from([1, 2, 4]),
        l=st.sampled_from([256, 512, 1024]),
        m=st.sampled_from([1024, 2048]),
        k=st.sampled_from([1, 2, 4]),
    )
    @settings(max_examples=25, deadline=None)
    def test_all_volumes_positive(self, b, l, m, k):
        spec = spec_with(
            batch_size=b, seq_len=l, embed_dim=m, num_heads=16, top_k=k
        )
        vol = compute_layer_volumes(spec, PARALLEL_B)
        assert vol.a2a_bytes > 0
        assert vol.esp_shard_bytes > 0
        assert vol.expert_macs > 0
        assert vol.attention_macs > 0
        assert vol.dense_grad_bytes > 0
        assert vol.capacity_per_expert >= 1

    def test_capacity_ceils(self):
        # k*f*S/E = 2*1.2*256/8 = 76.8 -> 77.
        spec = spec_with(batch_size=1, seq_len=1024)
        vol = compute_layer_volumes(spec, PARALLEL_B)
        assert vol.capacity_per_expert == math.ceil(2 * 1.2 * 256 / 8)
