"""The ``python -m repro`` command line: plan/sweep/bench/serve/cache."""

from __future__ import annotations

import json

import pytest

from repro import FSMoE, IterationPlan, PlanCompiler
from repro import testbed_b as make_testbed_b
from repro.api.cli import main
from repro.models import get_model_preset, layer_spec_for

TINY_SPEC = {
    "name": "cli-test",
    "clusters": ["B"],
    "systems": ["tutel", "fsmoe"],
    "stacks": [
        {
            "layers": [
                {
                    "batch_size": 1,
                    "seq_len": 256,
                    "embed_dim": 512,
                    "num_experts": 8,
                    "num_heads": 8,
                }
            ],
            "num_layers": 2,
        }
    ],
}


@pytest.fixture()
def spec_file(tmp_path):
    path = tmp_path / "exp.json"
    path.write_text(json.dumps(TINY_SPEC))
    return path


class TestPlan:
    def test_json_output_matches_python_api(self, capsys):
        code = main(
            [
                "plan", "--cluster", "B", "--system", "fsmoe",
                "--model", "GPT2-XL", "--layers", "2", "--json",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        plan = IterationPlan.from_json(out)

        compiler = PlanCompiler(make_testbed_b())
        preset = get_model_preset("GPT2-XL")
        spec = layer_spec_for(
            preset,
            batch_size=1,
            seq_len=1024,
            num_experts=compiler.parallel.n_ep,
        )
        reference = compiler.compile([spec] * 2, FSMoE())
        # the acceptance bar: CLI JSON replays to the *same timeline*
        assert plan.simulate() == reference.simulate()

    def test_custom_layer_plan(self, capsys):
        code = main(
            [
                "plan", "--cluster", "B", "--system", "tutel",
                "--embed-dim", "512", "--seq-len", "256", "--num-heads", "8",
                "--layers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "makespan" in out and "plan cache" in out

    def test_plan_uses_workspace_cache(self, tmp_path, capsys):
        argv = [
            "plan", "--cluster", "B", "--system", "fsmoe",
            "--embed-dim", "512", "--seq-len", "256", "--num-heads", "8",
            "--workspace", str(tmp_path / "ws"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "plan cache: 1 hits, 0 misses" in out

    def test_unknown_system_is_reported(self, capsys):
        code = main(
            ["plan", "--cluster", "B", "--system", "megatron"]
        )
        assert code == 2
        assert "unknown system" in capsys.readouterr().err

    def test_custom_layer_defaults_to_deployment_experts(self, capsys):
        # Testbed A has 6 nodes; a hard-coded default of 8 experts would
        # not divide its EP width.
        code = main(
            [
                "plan", "--cluster", "A", "--system", "tutel",
                "--seq-len", "256", "--embed-dim", "512", "--num-heads", "8",
            ]
        )
        assert code == 0
        assert "makespan" in capsys.readouterr().out


class TestSweep:
    def test_cold_then_warm(self, tmp_path, spec_file, capsys):
        ws = str(tmp_path / "ws")
        assert main(["sweep", str(spec_file), "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "2 points" in out
        assert "plan cache: 0 hits, 2 misses" in out

        assert (
            main(
                ["sweep", str(spec_file), "--workspace", ws, "--expect-warm"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "plan cache: 2 hits, 0 misses (100% hit rate)" in out
        assert "profile cache: 0 hits, 0 misses (100% hit rate)" in out

    def test_expect_warm_fails_cold(self, tmp_path, spec_file, capsys):
        code = main(
            [
                "sweep", str(spec_file),
                "--workspace", str(tmp_path / "ws"), "--expect-warm",
            ]
        )
        assert code == 3
        assert "--expect-warm" in capsys.readouterr().err

    def test_json_rows(self, tmp_path, spec_file, capsys):
        assert main(["sweep", str(spec_file), "--json"]) == 0
        out = capsys.readouterr().out
        rows = json.loads(out[: out.rindex("]") + 1])
        assert len(rows) == 2
        assert {row["system"] for row in rows} == {"Tutel", "FSMoE"}

    def test_missing_spec_file(self, capsys):
        assert main(["sweep", "/nonexistent/spec.json"]) == 2

    def test_invalid_json_spec_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"clusters": ["B"],}')  # trailing comma
        assert main(["sweep", str(bad)]) == 2
        assert "invalid JSON spec" in capsys.readouterr().err

    def test_unknown_gate_in_spec_is_a_clean_error(self, tmp_path, capsys):
        doc = dict(TINY_SPEC)
        doc["gate"] = "topk"
        path = tmp_path / "gate.json"
        path.write_text(json.dumps(doc))
        assert main(["sweep", str(path)]) == 2
        assert "unknown gate" in capsys.readouterr().err


class TestBenchAndCache:
    def test_bench_prints_speedups(self, capsys):
        code = main(
            [
                "bench", "--cluster", "B", "--systems", "dsmoe,fsmoe",
                "--embed-dim", "512", "--seq-len", "256", "--num-heads", "8",
                "--layers", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup vs DS-MoE" in out
        assert "FSMoE" in out

    def test_cache_info_and_clear(self, tmp_path, spec_file, capsys):
        ws = str(tmp_path / "ws")
        main(["sweep", str(spec_file), "--workspace", ws])
        capsys.readouterr()

        assert main(["cache", "info", "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "plan_entries: 2" in out

        assert main(["cache", "clear", "--workspace", ws]) == 0
        out = capsys.readouterr().out
        assert "cleared" in out
        assert main(["cache", "--workspace", ws]) == 0
        assert "plan_entries: 0" in capsys.readouterr().out

    def test_cache_gc_evicts_stale_plans(self, tmp_path, spec_file, capsys):
        import os

        ws = tmp_path / "ws"
        main(["sweep", str(spec_file), "--workspace", str(ws)])
        capsys.readouterr()
        plans = sorted((ws / "plans").glob("*.json"))
        stale = plans[0]
        old = 10 * 86400
        os.utime(stale, (stale.stat().st_atime - old,
                         stale.stat().st_mtime - old))

        assert main(["cache", "--workspace", str(ws), "--gc", "7"]) == 0
        out = capsys.readouterr().out
        assert "removed 1 plan file(s)" in out and "kept 1" in out
        assert not stale.exists()

        assert main(["cache", "--workspace", str(ws)]) == 0
        assert "plan_entries: 1" in capsys.readouterr().out

    def test_cache_clear_refuses_gc_combination(
        self, tmp_path, spec_file, capsys
    ):
        ws = tmp_path / "ws"
        main(["sweep", str(spec_file), "--workspace", str(ws)])
        capsys.readouterr()
        code = main(
            ["cache", "clear", "--workspace", str(ws), "--gc", "7"]
        )
        assert code == 2
        assert "--gc cannot be combined" in capsys.readouterr().err
        # Nothing was deleted by the refused command.
        assert len(list((ws / "plans").glob("*.json"))) == 2

    def test_cache_gc_missing_workspace_errors(self, tmp_path, capsys):
        code = main(
            ["cache", "--workspace", str(tmp_path / "nope"), "--gc", "7"]
        )
        assert code == 2

    def test_cache_info_reports_solver_stats(self, tmp_path, spec_file, capsys):
        ws = str(tmp_path / "ws")
        main(["sweep", str(spec_file), "--workspace", ws])
        capsys.readouterr()
        assert main(["cache", "info", "--workspace", ws]) == 0
        assert "degree_solver:" in capsys.readouterr().out

    def test_cache_clear_recovers_schema_mismatch(
        self, tmp_path, spec_file, capsys
    ):
        """The recovery path the refusal error advertises must work."""
        ws = str(tmp_path / "ws")
        main(["sweep", str(spec_file), "--workspace", ws])
        capsys.readouterr()
        profiles = tmp_path / "ws" / "profiles.json"
        payload = json.loads(profiles.read_text())
        payload["schema_version"] = 999
        profiles.write_text(json.dumps(payload))

        assert main(["cache", "info", "--workspace", ws]) == 2  # refused
        assert main(["cache", "clear", "--workspace", ws]) == 0  # recovers
        capsys.readouterr()
        assert main(["sweep", str(spec_file), "--workspace", ws]) == 0


class TestServe:
    REQUEST = {
        "cluster": "B",
        "system": "tutel",
        "stack": {
            "layers": [
                {
                    "batch_size": 1,
                    "seq_len": 256,
                    "embed_dim": 512,
                    "num_experts": 8,
                    "num_heads": 8,
                }
            ],
            "num_layers": 2,
        },
    }

    @pytest.fixture()
    def requests_file(self, tmp_path):
        lines = [
            json.dumps(self.REQUEST),
            json.dumps({**self.REQUEST, "system": "fsmoe",
                        "solver": "slsqp"}),
            json.dumps(self.REQUEST),  # duplicate: must dedup
        ]
        path = tmp_path / "requests.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_requests_stream_round_trips(
        self, tmp_path, requests_file, capsys
    ):
        ws = str(tmp_path / "ws")
        assert main([
            "serve", "--requests", str(requests_file), "--workspace", ws,
        ]) == 0
        captured = capsys.readouterr()
        rows = [json.loads(line) for line in captured.out.splitlines()]
        assert [row["index"] for row in rows] == [0, 1, 2]
        assert rows[0]["system"] == "Tutel"
        assert rows[1]["system"] == "FSMoE"
        # the duplicate answers identically to its first occurrence
        assert rows[2] == {**rows[0], "index": 2}
        assert "dedup" in captured.err

    def test_served_plan_matches_direct_workspace_plan(
        self, tmp_path, requests_file, capsys
    ):
        from repro import MoELayerSpec, Workspace
        from repro.systems.registry import get_system

        ws = str(tmp_path / "ws")
        main(["serve", "--requests", str(requests_file),
              "--workspace", ws])
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        layer = MoELayerSpec(batch_size=1, seq_len=256, embed_dim=512,
                             num_experts=8, num_heads=8)
        direct = Workspace(ws).plan(
            (layer,) * 2, get_system("tutel"), make_testbed_b()
        )
        assert rows[0]["makespan_ms"] == direct.makespan_ms()
        # and the serve run left its plans in the shared cache
        warm = Workspace(ws)
        warm.plan((layer,) * 2, get_system("tutel"), make_testbed_b())
        assert warm.stats.plan_misses == 0

    def test_demo_reports_speedup(self, capsys):
        assert main(["serve", "--demo", "24", "--distinct", "2"]) == 0
        out = capsys.readouterr().out
        assert "speedup:" in out
        assert "plans bit-identical: True" in out
        assert "dedup hits" in out

    def test_requires_exactly_one_mode(self, capsys):
        assert main(["serve"]) == 2
        assert main([
            "serve", "--demo", "4", "--requests", "x.jsonl",
        ]) == 2

    def test_malformed_request_line_is_a_clean_error(
        self, tmp_path, capsys
    ):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"cluster": "B"}\n')
        assert main(["serve", "--requests", str(path)]) == 2
        assert "lacks 'system'" in capsys.readouterr().err

    def test_unknown_request_key_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({**self.REQUEST, "mystery": 1}) + "\n")
        assert main(["serve", "--requests", str(path)]) == 2
        assert "unknown keys" in capsys.readouterr().err


class TestReport:
    @pytest.fixture()
    def tiny_artifact(self):
        from repro.report import (
            Artifact,
            ArtifactResult,
            register_artifact,
            unregister_artifact,
        )

        def produce(workspace, config):
            return ArtifactResult(
                artifact="cli-tiny",
                outputs={"cli_tiny.txt": f"solver={config.step2_solver}\n"},
            )

        register_artifact(Artifact(
            name="cli-tiny",
            title="tiny CLI test artifact",
            paper_ref="test",
            producer=produce,
            outputs=("cli_tiny.txt",),
        ))
        yield
        unregister_artifact("cli-tiny")

    def test_list_prints_the_manifest(self, capsys):
        assert main(["report", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig3", "fig6", "table5", "perf-serve"):
            assert name in out

    def test_unknown_artifact_is_a_clean_error(self, capsys):
        assert main(["report", "--only", "fig99"]) == 2
        assert "unknown artifact" in capsys.readouterr().err

    def test_report_writes_results_and_report_md(
        self, tmp_path, tiny_artifact, capsys
    ):
        results = tmp_path / "results"
        code = main([
            "report", "--only", "cli-tiny",
            "--results-dir", str(results),
            "--report-file", str(tmp_path / "REPORT.md"),
        ])
        assert code == 0
        assert (results / "cli_tiny.txt").read_text() == "solver=de\n"
        report = (tmp_path / "REPORT.md").read_text()
        assert "cli-tiny" in report and "solver=de" in report
        out = capsys.readouterr().out
        assert "wrote 1 artifact file(s)" in out

    def test_solver_flag_reaches_producers(self, tmp_path, tiny_artifact):
        results = tmp_path / "results"
        assert main([
            "report", "--only", "cli-tiny", "--solver", "slsqp",
            "--results-dir", str(results),
            "--report-file", str(tmp_path / "REPORT.md"),
        ]) == 0
        assert (results / "cli_tiny.txt").read_text() == "solver=slsqp\n"

    def test_check_passes_then_fails_on_drift(
        self, tmp_path, tiny_artifact, capsys
    ):
        results = tmp_path / "results"
        main([
            "report", "--only", "cli-tiny", "--results-dir", str(results),
            "--report-file", str(tmp_path / "REPORT.md"),
        ])
        assert main([
            "report", "--only", "cli-tiny", "--check",
            "--results-dir", str(results),
        ]) == 0
        assert "report check passed" in capsys.readouterr().out

        (results / "cli_tiny.txt").write_text("solver=other\n")
        assert main([
            "report", "--only", "cli-tiny", "--check",
            "--results-dir", str(results),
        ]) == 1
        err = capsys.readouterr().err
        assert "drift: cli-tiny: cli_tiny.txt" in err

    def test_check_skips_nondeterministic_artifacts_entirely(
        self, tmp_path, capsys
    ):
        from repro.report import (
            Artifact,
            ArtifactResult,
            register_artifact,
            unregister_artifact,
        )

        calls: list[str] = []

        def produce(workspace, config):
            calls.append("ran")
            return ArtifactResult(
                artifact="cli-nondet", outputs={"cli_nondet.txt": "x\n"}
            )

        register_artifact(Artifact(
            name="cli-nondet", title="", paper_ref="test",
            producer=produce, outputs=("cli_nondet.txt",),
            deterministic=False,
        ))
        try:
            # a selection with nothing checkable is an error, and the
            # producer must never run (it could be minutes of load test)
            code = main([
                "report", "--only", "cli-nondet", "--check",
                "--results-dir", str(tmp_path),
            ])
            assert code == 2
            assert calls == []
            err = capsys.readouterr().err
            assert "no deterministic artifacts" in err
        finally:
            unregister_artifact("cli-nondet")

    def test_check_refuses_non_default_config(self, tmp_path, capsys):
        assert main([
            "report", "--check", "--full", "--results-dir", str(tmp_path),
        ]) == 2
        assert "default-configuration" in capsys.readouterr().err
        assert main([
            "report", "--check", "--solver", "slsqp",
            "--results-dir", str(tmp_path),
        ]) == 2

    def test_no_timings_report_is_byte_stable(
        self, tmp_path, tiny_artifact
    ):
        args = [
            "report", "--only", "cli-tiny", "--no-timings",
            "--results-dir", str(tmp_path / "results"),
            "--report-file", str(tmp_path / "REPORT.md"),
        ]
        assert main(args) == 0
        first = (tmp_path / "REPORT.md").read_text()
        assert "Wall time" not in first and "wall (s)" not in first
        assert main(args) == 0
        assert (tmp_path / "REPORT.md").read_text() == first

    def test_check_does_not_write(self, tmp_path, tiny_artifact):
        results = tmp_path / "results"
        results.mkdir()
        assert main([
            "report", "--only", "cli-tiny", "--check",
            "--results-dir", str(results),
        ]) == 1  # drift: file missing
        assert list(results.iterdir()) == []


class TestDocs:
    def test_write_then_check(self, tmp_path, capsys):
        out = tmp_path / "CLI.md"
        assert main(["docs", "--out", str(out)]) == 0
        assert out.exists()
        assert main(["docs", "--out", str(out), "--check"]) == 0
        assert "matches the parser" in capsys.readouterr().out

    def test_check_detects_drift(self, tmp_path, capsys):
        out = tmp_path / "CLI.md"
        main(["docs", "--out", str(out)])
        out.write_text(out.read_text() + "edited\n")
        assert main(["docs", "--out", str(out), "--check"]) == 1
        assert "stale" in capsys.readouterr().err

    def test_check_missing_file(self, tmp_path, capsys):
        assert main([
            "docs", "--out", str(tmp_path / "nope.md"), "--check",
        ]) == 1
        assert "does not exist" in capsys.readouterr().err
