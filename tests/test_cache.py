"""The tiered cache: LRU properties, tier routing, L3 server, GC, CLI."""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys
from collections import OrderedDict
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigError, Workspace
from repro.api.cli import main
from repro.cache import (
    CACHE_SCHEMA_VERSION,
    CacheServer,
    CacheStats,
    LRUCache,
    RemoteTier,
    TierStats,
    parse_address,
)
from repro.serve import PlanService
from tests.test_workspace import SRC, tiny_spec

pytestmark = pytest.mark.filterwarnings(
    "ignore:workspace cache file"
)


def _request(seq_len: int):
    """The (stack, system, cluster) triple behind :func:`plan_once`."""
    from repro import MoELayerSpec
    from repro import testbed_b as make_testbed_b
    from repro.systems import get_system

    layer = MoELayerSpec(
        batch_size=1, seq_len=seq_len, embed_dim=512,
        num_experts=8, num_heads=8,
    )
    return (layer,), get_system("fsmoe", solver="slsqp"), make_testbed_b()


def plan_once(ws: Workspace, *, seq_len: int = 256):
    """One deterministic plan request through the tier stack."""
    stack, system, cluster = _request(seq_len)
    return ws.plan(stack, system, cluster)


def plan_digest_of(ws: Workspace, *, seq_len: int = 256) -> str:
    """The content address :func:`plan_once` reads and writes."""
    stack, system, cluster = _request(seq_len)
    return ws.plan_digest(stack, system, cluster)


class TestLRUCacheProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["get", "put", "delete"]),
                st.integers(0, 9),
                st.integers(0, 40),
            ),
            max_size=200,
        ),
        max_entries=st.integers(1, 6),
        max_bytes=st.one_of(st.none(), st.integers(1, 120)),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_dict_oracle(self, ops, max_entries, max_bytes):
        """Randomized op sequences agree with an OrderedDict oracle."""
        cache = LRUCache(max_entries, max_bytes)
        oracle: OrderedDict[int, tuple[str, int]] = OrderedDict()
        o_bytes = o_hits = o_misses = o_evictions = 0
        for op, key, size in ops:
            if op == "get":
                got = cache.get(key)
                if key in oracle:
                    oracle.move_to_end(key)
                    o_hits += 1
                    assert got == oracle[key][0]
                else:
                    o_misses += 1
                    assert got is None
            elif op == "put":
                value = f"v{key}x{size}"
                cache.put(key, value, size=size)
                old = oracle.pop(key, None)
                if old is not None:
                    o_bytes -= old[1]
                oracle[key] = (value, size)
                o_bytes += size
                while len(oracle) > max_entries or (
                    max_bytes is not None
                    and o_bytes > max_bytes
                    and len(oracle) > 1
                ):
                    _, (_, dropped) = oracle.popitem(last=False)
                    o_bytes -= dropped
                    o_evictions += 1
            else:
                existed = cache.delete(key)
                old = oracle.pop(key, None)
                assert existed == (old is not None)
                if old is not None:
                    o_bytes -= old[1]
        assert list(cache.keys()) == list(oracle)
        assert len(cache) == len(oracle) <= max_entries
        assert cache.bytes == o_bytes
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.evictions) == (
            o_hits, o_misses, o_evictions,
        )
        assert stats.entries == len(oracle) and stats.bytes == o_bytes

    def test_bounds_validated(self):
        with pytest.raises(ConfigError):
            LRUCache(0)
        with pytest.raises(ConfigError):
            LRUCache(4, 0)

    def test_byte_bound_always_keeps_newest_entry(self):
        cache = LRUCache(4, 10)
        cache.put("big", "x", size=50)
        assert cache.get("big") == "x"  # over budget, but never empty

    def test_clear_and_stats_reset(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a"), cache.get("b")
        cache.clear()
        assert len(cache) == 0 and cache.stats.hits == 1
        cache.clear(reset_stats=True)
        assert cache.stats == TierStats()


class TestTierStatsArithmetic:
    def test_sub_counters_delta_gauges_carried(self):
        later = TierStats(hits=5, misses=3, fills=2, entries=7, bytes=90)
        earlier = TierStats(hits=2, misses=1, entries=4, bytes=40)
        delta = later - earlier
        assert delta.hits == 3 and delta.misses == 2 and delta.fills == 2
        assert delta.entries == 7 and delta.bytes == 90  # levels, not rates
        assert delta.lookups == 5 and delta.hit_rate == 0.6
        assert TierStats().hit_rate == 1.0  # never asked == fully warm

    def test_cache_stats_sub(self):
        later = CacheStats(l1=TierStats(hits=4), l3=TierStats(writes=2))
        earlier = CacheStats(l1=TierStats(hits=1))
        delta = later - earlier
        assert delta.l1.hits == 3 and delta.l3.writes == 2


class TestRemoteProtocol:
    def test_round_trip_and_stat(self):
        server = CacheServer()
        tier = RemoteTier(server.start())
        try:
            assert tier.get("k") is None
            assert tier.put("k", "payload")
            assert tier.get("k") == "payload"
            stat = tier.stat()
            assert stat["entries"] == 1 and stat["hits"] == 1
            assert stat["bytes"] == len("payload")
        finally:
            tier.close()
            server.close()

    def test_schema_mismatch_refused(self):
        server = CacheServer(schema=CACHE_SCHEMA_VERSION + 1)
        tier = RemoteTier(server.start())  # speaks the current schema
        try:
            assert not tier.put("k", "v")
            assert tier.get("k") is None
            assert tier.stat() is None
        finally:
            tier.close()
            server.close()

    def test_unreachable_server_degrades_to_miss(self):
        server = CacheServer()
        address = server.start()
        server.close()  # the port is now dead
        tier = RemoteTier(address, timeout_s=0.5)
        assert tier.get("k") is None
        assert not tier.put("k", "v")
        assert tier.stat() is None

    def test_server_store_is_bounded(self):
        server = CacheServer(max_entries=2)
        tier = RemoteTier(server.start())
        try:
            for i in range(4):
                assert tier.put(f"k{i}", "v")
            stat = tier.stat()
            assert stat["entries"] == 2 and stat["evictions"] == 2
            assert tier.get("k0") is None and tier.get("k3") == "v"
        finally:
            tier.close()
            server.close()

    def test_malformed_requests_get_errors_not_crashes(self):
        server = CacheServer()
        try:
            assert not server.handle_line(b"not json\n")["ok"]
            assert not server.handle_line(b"[1, 2]\n")["ok"]
            bad_op = json.dumps(
                {"op": "nope", "schema": CACHE_SCHEMA_VERSION}
            ).encode()
            assert "unknown op" in server.handle_line(bad_op)["error"]
            no_key = json.dumps(
                {"op": "get", "schema": CACHE_SCHEMA_VERSION}
            ).encode()
            assert not server.handle_line(no_key)["ok"]
        finally:
            server.close()

    def test_parse_address_rejects_garbage(self):
        assert parse_address("host:123") == ("host", 123)
        with pytest.raises(ConfigError):
            parse_address("no-port")
        with pytest.raises(ConfigError):
            parse_address("host:not-a-number")


class TestTierRouting:
    def test_cold_compile_writes_through_then_l1_hits(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        plan_once(ws)
        plan_once(ws)
        cache = ws.stats.cache
        assert cache.l1.misses == 1 and cache.l1.hits == 1
        assert cache.l2.misses == 1 and cache.l2.writes == 1
        assert cache.l1.writes == 1 and cache.l1.fills == 0
        assert cache.l3 == TierStats()  # no remote configured
        assert ws.stats.plan_hits == 1 and ws.stats.plan_misses == 1

    def test_disk_hit_fills_l1(self, tmp_path):
        root = tmp_path / "ws"
        plan_once(Workspace(root))
        ws2 = Workspace(root)
        plan_once(ws2)
        cache = ws2.stats.cache
        assert cache.l2.hits == 1 and cache.l1.fills == 1
        plan_once(ws2)
        assert ws2.stats.cache.l1.hits == 1  # no second disk read
        assert ws2.stats.plan_hits == 2 and ws2.stats.plan_misses == 0

    def test_l1_disabled_reads_disk_every_time(self, tmp_path):
        ws = Workspace(tmp_path / "ws", l1_entries=0)
        plan_once(ws)
        plan_once(ws)
        cache = ws.stats.cache
        assert cache.l1 == TierStats()
        assert cache.l2.hits == 1 and cache.l2.misses == 1
        assert ws.stats.plan_hits == 1 and ws.stats.plan_misses == 1
        assert ws.cache_info()["l1_entries"] == 0

    def test_l1_bounds_evict(self, tmp_path):
        ws = Workspace(tmp_path / "ws", l1_entries=1)
        plan_once(ws, seq_len=256)
        plan_once(ws, seq_len=320)  # evicts the first digest
        assert ws.stats.cache.l1.evictions == 1
        plan_once(ws, seq_len=256)  # back to disk for the evictee
        cache = ws.stats.cache
        assert cache.l2.hits == 1 and cache.l1.fills == 1
        assert ws.stats.plan_misses == 2 and ws.stats.plan_hits == 1

    def test_clear_resets_every_tier(self, tmp_path):
        ws = Workspace(tmp_path / "ws")
        plan_once(ws)
        ws.clear()
        assert ws.stats.cache == CacheStats()
        plan_once(ws)
        assert ws.stats.plan_misses == 1  # genuinely cold again


class TestRemoteTierRouting:
    @pytest.fixture()
    def server(self):
        server = CacheServer()
        server.start()
        yield server
        server.close()

    def test_l3_round_trip_fills_lower_tiers(self, tmp_path, server):
        ws1 = Workspace(tmp_path / "a", remote=server.address)
        plan_once(ws1)
        stats1 = ws1.stats
        assert stats1.cache.l3.writes == 1 and stats1.cache.l3.misses == 1
        assert stats1.cache.profiles_remote.writes > 0

        ws2 = Workspace(tmp_path / "b", remote=server.address)
        plan_once(ws2)
        stats2 = ws2.stats
        assert stats2.plan_misses == 0 and stats2.plan_hits == 1
        assert stats2.cache.l3.hits == 1
        assert stats2.cache.l2.fills == 1 and stats2.cache.l1.fills == 1
        # a plan served whole from L3 never consults the profile store
        assert stats2.profiles.misses == 0 and stats2.warm

        # the L3 hit landed on disk: a remote-less process now reads L2
        ws3 = Workspace(tmp_path / "b")
        plan_once(ws3)
        assert ws3.stats.cache.l2.hits == 1 and ws3.stats.plan_misses == 0

        # force a recompile on a fresh root: the profiles ws1 published
        # answer from the shared tier, so nothing is re-fitted
        server.store.delete(plan_digest_of(ws1))
        ws4 = Workspace(tmp_path / "c", remote=server.address)
        plan_once(ws4)
        stats4 = ws4.stats
        assert stats4.plan_misses == 1
        assert stats4.cache.profiles_remote.hits > 0
        assert stats4.profiles.misses == 0 and stats4.warm is False

    def test_corrupt_remote_value_refused_and_recompiled(
        self, tmp_path, server
    ):
        ws = Workspace(tmp_path / "ws", remote=server.address)
        dig = plan_digest_of(ws)
        server.store.put(dig, "definitely not a plan document")
        plan_once(ws)
        cache = ws.stats.cache
        assert cache.l3.errors == 1 and cache.l3.hits == 0
        assert ws.stats.plan_misses == 1  # recompiled, not misread
        # the recompile overwrote the poisoned entry with a good one
        assert json.loads(server.store.get(dig))["schema_version"]

    def test_cross_version_remote_is_refused(self, tmp_path, server):
        ws = Workspace(tmp_path / "ws", remote=server.address)
        dig = plan_digest_of(ws)
        doc = {"schema_version": 999, "key": ["?"], "plan": {}}
        server.store.put(dig, json.dumps(doc))
        plan_once(ws)
        cache = ws.stats.cache
        assert cache.l3.errors == 1 and cache.l3.hits == 0
        assert ws.stats.plan_misses == 1

    def test_mismatched_server_schema_degrades_to_cold(self, tmp_path):
        server = CacheServer(schema=CACHE_SCHEMA_VERSION + 1)
        server.start()
        try:
            ws = Workspace(tmp_path / "ws", remote=server.address)
            plan_once(ws)
            cache = ws.stats.cache
            assert cache.l3.hits == 0 and cache.l3.writes == 0
            assert cache.l3.errors > 0  # refused publishes are counted
            assert ws.stats.plan_misses == 1
        finally:
            server.close()

    def test_corrupt_disk_quarantined_then_served_from_l3(
        self, tmp_path, server
    ):
        root = tmp_path / "ws"
        ws1 = Workspace(root, remote=server.address)
        plan_once(ws1)
        dig = plan_digest_of(ws1)
        plan_file = root / "plans" / f"{dig}.json"
        plan_file.write_text("truncated {")
        ws2 = Workspace(root, remote=server.address)
        with pytest.warns(UserWarning, match="unreadable"):
            plan_once(ws2)
        cache = ws2.stats.cache
        assert cache.l2.errors == 1 and cache.l3.hits == 1
        assert ws2.stats.plan_misses == 0
        assert plan_file.exists()  # refilled from the shared tier
        assert (root / "plans" / f"{dig}.json.corrupt").exists()

    def test_env_var_configures_remote(self, tmp_path, server, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_REMOTE", server.address)
        ws = Workspace(tmp_path / "ws")
        plan_once(ws)
        assert ws.stats.cache.l3.writes == 1
        monkeypatch.setenv("REPRO_CACHE_REMOTE", "")
        ws2 = Workspace(tmp_path / "ws2")
        plan_once(ws2)
        assert ws2.stats.cache.l3 == TierStats()

    def test_cross_process_l3_warm_hit(self, tmp_path, server):
        """A second *process* with a fresh root answers from L3 alone."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC), str(SRC.parent), env.get("PYTHONPATH", "")]
        )
        env["REPRO_CACHE_REMOTE"] = server.address
        program = (
            "from repro import Workspace\n"
            "from tests.test_cache import plan_once\n"
            "import sys\n"
            "ws = Workspace(sys.argv[1])\n"
            "plan_once(ws)\n"
            "stats = ws.stats\n"
            "print('misses', stats.plan_misses, stats.profiles.misses,\n"
            "      'l3', stats.cache.l3.hits, 'warm', stats.warm)\n"
        )

        def run(tag):
            result = subprocess.run(
                [sys.executable, "-c", program, str(tmp_path / tag)],
                capture_output=True, text=True, timeout=300, env=env,
            )
            assert result.returncode == 0, result.stderr[-2000:]
            return result.stdout

        assert "misses 1 " in run("cold")
        assert "misses 0 0 l3 1 warm True" in run("warm")


class TestServiceCompletedCache:
    def test_repeat_request_answered_at_submit(self, tmp_path):
        from repro.serve import duplicate_heavy_requests

        request = duplicate_heavy_requests(1, 1, depth=2)[0]
        ws = Workspace(tmp_path / "ws")
        with PlanService(ws, flush_ms=0.0) as service:
            first = service.plan(request)
            again = service.plan(request)
            stats = service.stats_snapshot()
        assert first.to_json() == again.to_json()
        assert stats.completed == 2 and stats.resolved == 1
        assert stats.dedup_hits == 1
        assert stats.dedup_hits + stats.resolved == stats.completed
        assert stats.batches == 1  # the repeat never reached the queue

    def test_completed_cache_bounded_and_evictions_counted(self, tmp_path):
        from repro.serve import duplicate_heavy_requests

        requests = duplicate_heavy_requests(2, 2, depth=2)
        ws = Workspace(tmp_path / "ws")
        with PlanService(
            ws, flush_ms=0.0, completed_cache=1
        ) as service:
            service.plan(requests[0])
            service.plan(requests[1])  # evicts the first entry
            service.plan(requests[0])  # must re-resolve (via L1 tier)
            stats = service.stats_snapshot()
        assert stats.futures_evicted >= 1
        assert stats.resolved == 3 and stats.completed == 3
        assert ws.stats.plan_misses == 2  # the workspace tiers caught it

    def test_completed_cache_disabled(self, tmp_path):
        from repro.serve import duplicate_heavy_requests

        request = duplicate_heavy_requests(1, 1, depth=2)[0]
        ws = Workspace(tmp_path / "ws")
        with PlanService(
            ws, flush_ms=0.0, completed_cache=0
        ) as service:
            service.plan(request)
            service.plan(request)
            stats = service.stats_snapshot()
        assert stats.resolved == 2 and stats.futures_evicted == 0
        assert stats.dedup_hits + stats.resolved == stats.completed

    def test_negative_bound_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            PlanService(Workspace(tmp_path / "ws"), completed_cache=-1)


class TestGCBounds:
    def _two_plans(self, root) -> list[Path]:
        ws = Workspace(root)
        ws.sweep(tiny_spec())
        plans = sorted((root / "plans").glob("*.json"))
        assert len(plans) == 2
        return plans

    def test_max_entries_evicts_lru_order(self, tmp_path):
        root = tmp_path / "ws"
        plans = self._two_plans(root)
        # Make plans[1] the least recently used file.
        os.utime(plans[1], (1, 1))
        swept = Workspace.gc_plans(root, max_entries=1)
        assert swept["removed"] == 1 and swept["kept"] == 1
        assert plans[0].exists() and not plans[1].exists()
        assert swept["removed_bytes"] > 0

    def test_reads_refresh_recency(self, tmp_path):
        root = tmp_path / "ws"
        plans = self._two_plans(root)
        os.utime(plans[0], (1, 1))
        os.utime(plans[1], (2, 2))
        # A warm re-run *reads* both plans, refreshing their mtimes, so
        # an age-based GC that would have evicted them keeps both.
        Workspace(root).sweep(tiny_spec())
        swept = Workspace.gc_plans(root, max_age_days=1)
        assert swept["removed"] == 0 and swept["kept"] == 2

    def test_max_bytes_evicts_until_under_budget(self, tmp_path):
        root = tmp_path / "ws"
        plans = self._two_plans(root)
        total = sum(p.stat().st_size for p in plans)
        keep_one = max(p.stat().st_size for p in plans)
        swept = Workspace.gc_plans(root, max_bytes=keep_one)
        assert swept["removed"] >= 1
        assert swept["kept_bytes"] <= keep_one < total
        swept = Workspace.gc_plans(root, max_bytes=0)
        assert swept["kept"] == 0 and swept["kept_bytes"] == 0

    def test_age_and_size_bounds_compose(self, tmp_path):
        root = tmp_path / "ws"
        plans = self._two_plans(root)
        os.utime(plans[0], (1, 1))  # ancient
        swept = Workspace.gc_plans(root, max_age_days=7, max_entries=1)
        assert swept["removed"] == 1 and swept["kept"] == 1

    def test_bounds_validated(self, tmp_path):
        with pytest.raises(ConfigError):
            Workspace.gc_plans(tmp_path)  # no bound at all
        with pytest.raises(ConfigError):
            Workspace.gc_plans(tmp_path, max_bytes=-1)
        with pytest.raises(ConfigError):
            Workspace.gc_plans(tmp_path, max_entries=-1)


class TestStatsAreCheap:
    def test_stats_snapshot_does_no_scan(self, tmp_path, monkeypatch):
        """Per-request snapshotting must not walk the store or the disk."""
        ws = Workspace(tmp_path / "ws")
        ws.sweep(tiny_spec())

        def boom(*args, **kwargs):
            raise AssertionError("stats must not scan files")

        monkeypatch.setattr(pathlib.Path, "glob", boom)
        monkeypatch.setattr(pathlib.Path, "read_text", boom)
        monkeypatch.setattr(os, "scandir", boom)
        monkeypatch.setattr(os, "listdir", boom)
        before = ws.stats
        after = ws.stats
        window = after.since(before)
        assert before.plan_misses == 2
        assert window.plan_misses == 0 and window.cache.l1.lookups == 0
        assert window.cache.l1.entries == 2  # gauges are levels, carried


class TestCacheCLI:
    def _workspace_with_plans(self, tmp_path) -> Path:
        root = tmp_path / "ws"
        Workspace(root).sweep(tiny_spec())
        return root

    def test_gc_max_entries_reports_eviction(self, tmp_path, capsys):
        root = self._workspace_with_plans(tmp_path)
        code = main(["cache", "-w", str(root), "--max-entries", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "removed 1 plan file(s) in LRU order, kept 1" in out
        assert "evicted" in out and "bytes" in out

    def test_gc_days_keeps_classic_wording(self, tmp_path, capsys):
        root = self._workspace_with_plans(tmp_path)
        code = main(
            ["cache", "-w", str(root), "--gc", "7", "--max-entries", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "older than 7 day(s)" in out and "kept 1" in out

    def test_clear_refuses_size_bounds(self, tmp_path, capsys):
        root = self._workspace_with_plans(tmp_path)
        code = main(["cache", "clear", "-w", str(root), "--max-bytes", "1"])
        assert code == 2
        assert "--gc cannot be combined" in capsys.readouterr().err
        assert list((root / "plans").glob("*.json"))  # nothing deleted

    def test_workspace_required_for_info(self, capsys):
        assert main(["cache"]) == 2
        assert "--workspace" in capsys.readouterr().err

    def test_info_shows_tier_fields(self, tmp_path, capsys):
        root = self._workspace_with_plans(tmp_path)
        assert main(["cache", "-w", str(root)]) == 0
        out = capsys.readouterr().out
        assert "l1_entries: 0" in out  # a fresh open has an empty L1
        assert "remote: " in out

    def test_info_reports_remote_tier(self, tmp_path, capsys):
        root = self._workspace_with_plans(tmp_path)
        server = CacheServer()
        try:
            address = server.start()
            code = main(
                ["cache", "-w", str(root), "--remote", address]
            )
            out = capsys.readouterr().out
            assert code == 0 and "remote_tier: 0 entries" in out
        finally:
            server.close()

    def test_sweep_prints_tier_counters(self, tmp_path, capsys):
        spec_path = tmp_path / "exp.json"
        spec_path.write_text(json.dumps(tiny_spec().to_dict()))
        root = tmp_path / "ws"
        assert main(["sweep", str(spec_path), "-w", str(root)]) == 0
        assert main(["sweep", str(spec_path), "-w", str(root)]) == 0
        out = capsys.readouterr().out
        assert "cache tiers: L1 0h/" in out  # cold run
        assert "L2 2h/" in out or "cache tiers:" in out

    def test_cache_serve_subcommand_serves(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC), env.get("PYTHONPATH", "")]
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "cache", "serve"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert "cache server listening on" in line
            tier = RemoteTier(line.strip().rsplit(" ", 1)[-1])
            assert tier.put("k", "v") and tier.get("k") == "v"
            tier.close()
        finally:
            proc.terminate()
            proc.wait(timeout=30)
