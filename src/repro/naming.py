"""String-keyed registry plumbing shared by systems, clusters and models.

All registries resolve user-supplied names the same way: case-
insensitive, with spaces, underscores, ``+`` and ``/`` collapsed to
single hyphens (``"PipeMoE+Lina"`` -> ``"pipemoe-lina"``,
``"Mixtral_7B"`` -> ``"mixtral-7b"``).  :class:`Registry` packages the
canonical-key store, alias table, overwrite handling and
unknown-name error message so each domain registry is a thin wrapper.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, TypeVar

from .errors import RegistryError

T = TypeVar("T")


def canonical_name(name: str) -> str:
    """Normalize a registry lookup name."""
    out = name.strip().lower()
    for ch in (" ", "_", "+", "/"):
        out = out.replace(ch, "-")
    while "--" in out:
        out = out.replace("--", "-")
    return out


class Registry(Generic[T]):
    """A name -> factory table with aliases and canonical lookup.

    Args:
        kind: what the registry holds (``"system"``, ``"cluster"``, ...);
            used in error messages.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Callable[..., T]] = {}
        self._aliases: dict[str, str] = {}

    def register(
        self,
        key: str,
        factory: Callable[..., T],
        *,
        aliases: Iterable[str] = (),
        overwrite: bool = False,
    ) -> None:
        """Add a factory under a canonicalized key (and aliases).

        Raises:
            RegistryError: when a name is already taken and ``overwrite``
                is False.
        """
        canonical = canonical_name(key)
        names = [canonical] + [canonical_name(alias) for alias in aliases]
        if not overwrite:
            for name in names:
                if name in self._entries or name in self._aliases:
                    raise RegistryError(
                        f"{self.kind} name {name!r} is already registered"
                    )
        # an overwrite must actually take effect: any stale alias that
        # would shadow one of the new names is dropped first
        for name in names:
            self._aliases.pop(name, None)
        self._entries[canonical] = factory
        for alias in names[1:]:
            self._aliases[alias] = canonical

    def lookup(self, name: str) -> Callable[..., T]:
        """The factory behind a (possibly aliased) name.

        Raises:
            RegistryError: for an unknown name, listing what exists.
        """
        canonical = canonical_name(name)
        if canonical not in self._entries:  # direct entries beat aliases
            canonical = self._aliases.get(canonical, canonical)
        factory = self._entries.get(canonical)
        if factory is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: "
                f"{', '.join(self.available())}"
            )
        return factory

    def available(self) -> tuple[str, ...]:
        """Canonical keys of every registration, sorted."""
        return tuple(sorted(self._entries))

    def discard(self, key: str) -> None:
        """Remove a registration and its aliases (mainly for tests)."""
        canonical = canonical_name(key)
        canonical = self._aliases.get(canonical, canonical)
        self._entries.pop(canonical, None)
        self._aliases = {
            alias: target
            for alias, target in self._aliases.items()
            if target != canonical
        }
