"""AlltoAll dispatch/combine algorithms over the virtual EP group.

Three implementations with identical data semantics (the test suite
asserts they agree bit-for-bit) but different cost structures on real
networks (modelled in :mod:`repro.parallel.collectives`):

* :class:`NcclAllToAll` -- direct pairwise exchange (NCCL default);
* :class:`OneDHierarchicalAllToAll` -- Hetu's 1DH: gather to a node
  leader, exchange between leaders, scatter;
* :class:`TwoDHierarchicalAllToAll` -- Tutel/DeepSpeed's 2DH: intra-node
  exchange to align destinations, then inter-node exchange.

Buffers are expert-major (E, T, M); the exchange splits the expert axis
across the ``world_size`` EP ranks, so rank ``i`` ends up with the slots
destined for its local experts from every peer.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..runtime.virtual_cluster import all_to_all
from .interfaces import DispatchBase


def _validate(buffers: list[np.ndarray], world_size: int) -> None:
    if len(buffers) != world_size:
        raise ShapeError(
            f"expected {world_size} rank buffers, got {len(buffers)}"
        )
    e = buffers[0].shape[0]
    if e % world_size != 0:
        raise ShapeError(
            f"expert axis ({e}) not divisible by EP world size ({world_size})"
        )
    for i, buf in enumerate(buffers):
        if buf.shape != buffers[0].shape:
            raise ShapeError(
                f"rank {i} buffer {buf.shape} != rank 0 {buffers[0].shape}"
            )


class NcclAllToAll(DispatchBase):
    """Direct pairwise AlltoAll (the NCCL default algorithm)."""

    def __init__(self, world_size: int) -> None:
        if world_size <= 0:
            raise ShapeError(f"world_size must be positive, got {world_size}")
        self.world_size = world_size

    def dispatch(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Exchange expert-axis slices directly between all pairs."""
        _validate(buffers, self.world_size)
        return all_to_all(buffers, axis=0)

    def combine(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """The inverse exchange (AlltoAll is an involution here)."""
        _validate(buffers, self.world_size)
        return all_to_all(buffers, axis=0)


class OneDHierarchicalAllToAll(DispatchBase):
    """Hetu's 1DH-A2A: stage through one leader per node.

    Every node's ranks first hand their buffers to the node leader
    (simulated concatenation), leaders run the inter-node exchange, then
    results scatter back to the ranks.  Data layout in == data layout out
    of :class:`NcclAllToAll`.
    """

    def __init__(self, world_size: int, gpus_per_node: int = 1) -> None:
        if world_size <= 0 or gpus_per_node <= 0:
            raise ShapeError(
                f"sizes must be positive, got world={world_size} "
                f"node={gpus_per_node}"
            )
        self.world_size = world_size
        self.gpus_per_node = gpus_per_node

    def _exchange(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        _validate(buffers, self.world_size)
        # Staging through leaders permutes nothing observable: the leader
        # forwards each rank's slice to the same destination the direct
        # algorithm would.  We realize it as gather -> exchange -> scatter.
        stacked = [buf.copy() for buf in buffers]  # "gather to leader"
        exchanged = all_to_all(stacked, axis=0)  # leaders exchange
        return [buf.copy() for buf in exchanged]  # "scatter back"

    def dispatch(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Leader-staged token -> expert exchange."""
        return self._exchange(buffers)

    def combine(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Leader-staged expert -> token exchange."""
        return self._exchange(buffers)


class TwoDHierarchicalAllToAll(DispatchBase):
    """Tutel/DeepSpeed's 2DH-A2A: intra-node align, inter-node exchange.

    Phase 1 permutes data *within* each node so that phase 2's inter-node
    messages are contiguous; the composition equals the direct exchange.
    """

    def __init__(self, world_size: int, gpus_per_node: int) -> None:
        if world_size <= 0 or gpus_per_node <= 0:
            raise ShapeError(
                f"sizes must be positive, got world={world_size} "
                f"node={gpus_per_node}"
            )
        if world_size % gpus_per_node != 0:
            raise ShapeError(
                f"world_size ({world_size}) not divisible by gpus_per_node "
                f"({gpus_per_node})"
            )
        self.world_size = world_size
        self.gpus_per_node = gpus_per_node

    def _exchange(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        _validate(buffers, self.world_size)
        g = self.gpus_per_node
        num_nodes = self.world_size // g
        world = self.world_size
        if num_nodes == 1 or g == 1:
            return all_to_all(buffers, axis=0)
        if buffers[0].shape[0] % world != 0:
            raise ShapeError(
                f"expert axis ({buffers[0].shape[0]}) not divisible by "
                f"world size ({world})"
            )

        def permute(buf: np.ndarray, order: list[int]) -> np.ndarray:
            parts = np.split(buf, world, axis=0)
            return np.concatenate([parts[i] for i in order], axis=0)

        # Stage A: regroup destination slices from global-rank order
        # (node-major) to destination-local-index-major order, so the
        # intra-node exchange can split them into g contiguous groups.
        to_local_major = [
            n2 * g + l2 for l2 in range(g) for n2 in range(num_nodes)
        ]
        staged = [permute(buf, to_local_major) for buf in buffers]

        # Phase 1: intra-node AlltoAll -- rank (n, local) collects every
        # slice of node n destined for destination-local-index ``local``.
        after1: list[np.ndarray] = [np.empty(0)] * world
        for node in range(num_nodes):
            ranks = range(node * g, (node + 1) * g)
            exchanged = all_to_all([staged[r] for r in ranks], axis=0)
            for local, arr in enumerate(exchanged):
                after1[node * g + local] = arr

        # Stage B: after phase 1 the elementary slices are ordered
        # (source-local outer, destination-node inner); regroup to
        # destination-node-major so phase 2 can split by node.
        to_node_major = [
            l * num_nodes + n2 for n2 in range(num_nodes) for l in range(g)
        ]
        staged2 = [permute(buf, to_node_major) for buf in after1]

        # Phase 2: inter-node AlltoAll among same-local-index peers.  The
        # received blocks land in (source-node outer, source-local inner)
        # order -- exactly the direct algorithm's global-rank order.
        result: list[np.ndarray] = [np.empty(0)] * world
        for local in range(g):
            peers = [node * g + local for node in range(num_nodes)]
            exchanged = all_to_all([staged2[r] for r in peers], axis=0)
            for node, arr in enumerate(exchanged):
                result[node * g + local] = arr
        return result

    def dispatch(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Two-phase token -> expert exchange."""
        return self._exchange(buffers)

    def combine(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Two-phase expert -> token exchange."""
        return self._exchange(buffers)
