"""The MOELayer: gate + order + dispatch + experts + combine + hooks.

Functional (numpy) realization of the paper's Listing 2 object.  Single-
rank by default; pass a :class:`~repro.moe.interfaces.DispatchBase` plus
peer layers to run true expert parallelism over virtual ranks (see
:func:`expert_parallel_forward`).

The backward pass covers the differentiable paths of real MoE training:
expert weights, expert inputs, combine weights (through the gate's
``backward_weights``) and the layer input.  Top-k index selection is
non-differentiable, exactly as in GShard/Tutel.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ShapeError
from .hooks import HookContext, HookRunner
from .interfaces import Assignment, CallbackBase, ExpertBase, GateBase, OrderBase
from .ordering import TutelOrder


class MOELayer:
    """A sparsely-activated MoE feed-forward layer.

    Args:
        gate: routing function.
        experts: one :class:`ExpertBase` per expert; length fixes ``E``.
        order: layout transform (defaults to :class:`TutelOrder`).
        capacity_factor: the paper's ``f``; ``None`` sizes capacity for
            the worst case (no token ever dropped).
        callbacks: non-invasive hooks, applied in registration order.
        name: label used in hook contexts and errors.

    Raises:
        ShapeError: when the gate's expert count disagrees with
            ``len(experts)``.
    """

    def __init__(
        self,
        gate: GateBase,
        experts: list[ExpertBase],
        *,
        order: OrderBase | None = None,
        capacity_factor: float | None = 1.2,
        callbacks: tuple[CallbackBase, ...] = (),
        name: str = "moe",
    ) -> None:
        if gate.num_experts != len(experts):
            raise ShapeError(
                f"gate routes to {gate.num_experts} experts but "
                f"{len(experts)} expert modules were given"
            )
        self.gate = gate
        self.experts = experts
        self.order = order if order is not None else TutelOrder()
        self.capacity_factor = capacity_factor
        self.hooks = HookRunner(callbacks)
        self.name = name
        self._cache: dict[str, object] = {}

    # -- helpers -------------------------------------------------------------

    @property
    def num_experts(self) -> int:
        """Number of experts ``E``."""
        return len(self.experts)

    def capacity(self, num_tokens: int) -> int:
        """Slots per expert ``T = ceil(k * f * S / E)`` (paper §2.1)."""
        if self.capacity_factor is None:
            return num_tokens  # worst case: one expert takes everything
        return max(
            1,
            math.ceil(
                self.gate.top_k
                * self.capacity_factor
                * num_tokens
                / self.num_experts
            ),
        )

    def _flatten(self, x: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        if x.ndim == 3:
            b, l, m = x.shape
            return x.reshape(b * l, m), (b, l, m)
        if x.ndim == 2:
            return x, x.shape
        raise ShapeError(f"expected (B, L, M) or (S, M) input, got {x.shape}")

    # -- forward ---------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full gate -> order -> experts -> combine pipeline.

        Accepts (B, L, M) or (S, M); returns the same shape.  Dropped
        tokens yield zero (the transformer's residual connection carries
        them through unchanged, as in GShard).
        """
        flat, shape = self._flatten(x)
        ctx = HookContext(layer_name=self.name)
        flat = self.hooks.run("before_moe_start", flat, ctx)

        assignment = self.gate.assign(flat, self.capacity(flat.shape[0]))
        buffer = self.order.forward(flat, assignment)
        buffer = self.hooks.run("before_dispatch", buffer, ctx)
        # Single-rank execution: dispatch/combine are identity exchanges.
        buffer = self.hooks.run("after_dispatch", buffer, ctx)

        outputs = np.empty_like(buffer)
        for e, expert in enumerate(self.experts):
            outputs[e] = expert.forward(buffer[e])
        outputs = self.hooks.run("before_combine", outputs, ctx)
        outputs = self.hooks.run("after_combine", outputs, ctx)

        y = self.order.inverse(outputs, assignment, flat.shape[0])
        y = self.hooks.run("before_moe_end", y, ctx)

        self._cache = {
            "x": flat,
            "assignment": assignment,
            "buffer": buffer,
            "outputs": outputs,
            "shape": shape,
        }
        return y.reshape(shape)

    # -- backward ----------------------------------------------------------------

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward.

        Accumulates gradients into every expert's ``grads`` and the gate's
        ``grads``; returns the gradient w.r.t. the layer input, same shape
        as ``dy``.

        Raises:
            ShapeError: if called before :meth:`forward`.
        """
        if not self._cache:
            raise ShapeError("backward called before forward")
        flat_dy = dy.reshape(-1, dy.shape[-1])
        assignment: Assignment = self._cache["assignment"]  # type: ignore[assignment]
        buffer: np.ndarray = self._cache["buffer"]  # type: ignore[assignment]
        outputs: np.ndarray = self._cache["outputs"]  # type: ignore[assignment]
        x: np.ndarray = self._cache["x"]  # type: ignore[assignment]

        d_outputs, d_weights = self.order.backward_inverse(
            flat_dy, outputs, assignment
        )
        d_buffer = np.empty_like(buffer)
        for e, expert in enumerate(self.experts):
            d_buffer[e] = expert.backward(d_outputs[e])

        dx = self.order.backward_forward(d_buffer, assignment, x.shape[0])
        dx = dx + self.gate.backward_weights(x, assignment, d_weights)
        return dx.reshape(dy.shape)

    def zero_grad(self) -> None:
        """Reset all expert and gate gradients."""
        self.gate.zero_grad()
        for expert in self.experts:
            expert.zero_grad()

    @property
    def aux_loss(self) -> float:
        """Load-balancing loss of the last forward (0 before any call)."""
        if not self._cache:
            return 0.0
        assignment: Assignment = self._cache["assignment"]  # type: ignore[assignment]
        return assignment.aux_loss


def expert_parallel_forward(
    layers: list[MOELayer],
    inputs: list[np.ndarray],
    dispatcher,
) -> list[np.ndarray]:
    """Run one MoE layer per virtual rank with true EP dispatch/combine.

    Each rank routes its own tokens with its own gate, the dispatcher
    exchanges the (E, T, M) buffers so that rank ``i`` computes only its
    local experts' slice for *all* ranks' tokens, and the combine exchange
    returns the outputs.  The test suite checks this equals every rank
    running all experts locally.

    Args:
        layers: one :class:`MOELayer` per rank.  All ranks must host the
            same gate/expert shapes; rank ``i`` owns experts
            ``[i*E/W, (i+1)*E/W)`` and its local expert list must match.
        inputs: one (S, M) batch per rank.
        dispatcher: a :class:`~repro.moe.interfaces.DispatchBase` for the
            EP group.

    Returns:
        One (S, M) output per rank.

    Raises:
        ShapeError: on mismatched rank counts or uneven expert division.
    """
    world = len(layers)
    if len(inputs) != world:
        raise ShapeError(
            f"{world} layers but {len(inputs)} rank inputs were given"
        )
    num_experts = layers[0].num_experts
    if num_experts % world != 0:
        raise ShapeError(
            f"{num_experts} experts not divisible over {world} ranks"
        )
    local = num_experts // world

    assignments = []
    buffers = []
    for layer, x in zip(layers, inputs):
        assignment = layer.gate.assign(x, layer.capacity(x.shape[0]))
        assignments.append(assignment)
        buffers.append(layer.order.forward(x, assignment))

    received = dispatcher.dispatch(buffers)
    computed = []
    for rank, (layer, buf) in enumerate(zip(layers, received)):
        # buf rows are (world * local) expert slices: for each source rank,
        # this rank's local experts.
        out = np.empty_like(buf)
        slices = np.split(buf, world, axis=0)
        for src, chunk in enumerate(slices):
            for j in range(local):
                expert = layer.experts[rank * local + j]
                out[src * local + j] = expert.forward(chunk[j])
        computed.append(out)

    returned = dispatcher.combine(computed)
    outputs = []
    for layer, assignment, buf, x in zip(layers, assignments, returned, inputs):
        outputs.append(layer.order.inverse(buf, assignment, x.shape[0]))
    return outputs
