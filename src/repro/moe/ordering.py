"""The two pre-implemented ordering functions (paper §2.1 / §3.1).

Both transform a (S, M) token batch into the (E, T, M) dispatch layout and
back.  They are *algorithmically* different but *numerically* identical
(a property the test suite checks):

* :class:`GShardOrder` -- dense one-hot algebra (einsum + matmul), as in
  the original GShard implementation;
* :class:`TutelOrder` -- index-arithmetic gather/scatter, mirroring
  Tutel's SIMT-efficient sparse kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .functional import one_hot
from .interfaces import Assignment, OrderBase


def _check_buffer(buffer: np.ndarray, assignment: Assignment) -> None:
    e, t = assignment.token_ids.shape
    if buffer.ndim != 3 or buffer.shape[:2] != (e, t):
        raise ShapeError(
            f"buffer shape {buffer.shape} incompatible with assignment "
            f"({e}, {t}, M)"
        )


class GShardOrder(OrderBase):
    """Dense one-hot ordering (einsum formulation).

    Builds the (E, T, S) dispatch tensor explicitly; O(E*T*S) memory, so
    suited to validation-scale problems -- which is exactly how the
    original GShard lowering behaves before XLA fusion.
    """

    def _location_tensor(self, assignment: Assignment, seq_len: int) -> np.ndarray:
        """(E, T, S) one-hot: slot (e, t) holds token s."""
        return one_hot(assignment.token_ids, seq_len)

    def forward(self, x: np.ndarray, assignment: Assignment) -> np.ndarray:
        """Gather: ``buffer = einsum('ets,sm->etm', loc, x)``."""
        loc = self._location_tensor(assignment, x.shape[0])
        return np.einsum("ets,sm->etm", loc, x)

    def inverse(
        self, buffer: np.ndarray, assignment: Assignment, seq_len: int
    ) -> np.ndarray:
        """Weighted combine: ``y = einsum('ets,et,etm->sm', ...)``."""
        _check_buffer(buffer, assignment)
        loc = self._location_tensor(assignment, seq_len)
        return np.einsum("ets,et,etm->sm", loc, assignment.weights, buffer)

    def backward_forward(
        self, d_buffer: np.ndarray, assignment: Assignment, seq_len: int
    ) -> np.ndarray:
        """d(forward)/dx: transpose of the gather."""
        _check_buffer(d_buffer, assignment)
        loc = self._location_tensor(assignment, seq_len)
        return np.einsum("ets,etm->sm", loc, d_buffer)

    def backward_inverse(
        self, dy: np.ndarray, buffer: np.ndarray, assignment: Assignment
    ) -> tuple[np.ndarray, np.ndarray]:
        """d(inverse)/d(buffer, weights)."""
        _check_buffer(buffer, assignment)
        loc = self._location_tensor(assignment, dy.shape[0])
        d_buffer = np.einsum("ets,et,sm->etm", loc, assignment.weights, dy)
        d_weights = np.einsum("ets,etm,sm->et", loc, buffer, dy)
        return d_buffer, d_weights


class TutelOrder(OrderBase):
    """Sparse index-arithmetic ordering (Tutel's fast dispatch)."""

    def forward(self, x: np.ndarray, assignment: Assignment) -> np.ndarray:
        """Gather rows; empty slots (-1) stay zero."""
        e, t = assignment.token_ids.shape
        buffer = np.zeros((e, t, x.shape[1]), dtype=x.dtype)
        valid = assignment.token_ids >= 0
        buffer[valid] = x[assignment.token_ids[valid]]
        return buffer

    def inverse(
        self, buffer: np.ndarray, assignment: Assignment, seq_len: int
    ) -> np.ndarray:
        """Weighted scatter-add back to token rows."""
        _check_buffer(buffer, assignment)
        y = np.zeros((seq_len, buffer.shape[2]), dtype=buffer.dtype)
        valid = assignment.token_ids >= 0
        contributions = assignment.weights[valid][:, None] * buffer[valid]
        np.add.at(y, assignment.token_ids[valid], contributions)
        return y

    def backward_forward(
        self, d_buffer: np.ndarray, assignment: Assignment, seq_len: int
    ) -> np.ndarray:
        """Scatter-add slot gradients back to token gradients."""
        _check_buffer(d_buffer, assignment)
        dx = np.zeros((seq_len, d_buffer.shape[2]), dtype=d_buffer.dtype)
        valid = assignment.token_ids >= 0
        np.add.at(dx, assignment.token_ids[valid], d_buffer[valid])
        return dx

    def backward_inverse(
        self, dy: np.ndarray, buffer: np.ndarray, assignment: Assignment
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather output gradients into slot and weight gradients."""
        _check_buffer(buffer, assignment)
        e, t = assignment.token_ids.shape
        d_buffer = np.zeros_like(buffer)
        d_weights = np.zeros((e, t), dtype=buffer.dtype)
        valid = assignment.token_ids >= 0
        dy_rows = dy[assignment.token_ids[valid]]
        d_buffer[valid] = assignment.weights[valid][:, None] * dy_rows
        d_weights[valid] = np.sum(buffer[valid] * dy_rows, axis=-1)
        return d_buffer, d_weights
