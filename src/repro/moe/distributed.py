"""The paper's Fig. 2 dataflow, executed on data over virtual ranks.

One pipeline stage of the standard deployment: ``N`` nodes of ``g`` GPUs,
``N_MP = N_ESP = g``, ``N_EP = N_DP = N``.  Each node processes its own
mini-batch (DP); within a node the token dimension is split over the MP
ranks; experts live one-node-each (or ``E/N`` each) and are sharded over
the node's GPUs along the hidden dimension (ESP).

Execution per forward (all data movement through
:mod:`repro.runtime.virtual_cluster`):

1. MP ReduceScatter -- partial activations sum + token split;
2. gate + order on each rank's token shard;
3. EP AlltoAll dispatch across same-local-rank peers;
4. ESP AllGather within each node (every rank sees all tokens bound for
   the node's experts);
5. expert *shard* computation -- each rank applies its ``H/g`` slice of
   every local expert (elementwise activations make hidden-dimension
   sharding exact);
6. ESP ReduceScatter -- sum the partial outputs, split the tokens back;
7. EP AlltoAll combine;
8. weighted I-Order back to token shards;
9. MP AllGather -- every rank of the node holds the full output.

The test suite checks this **bit-for-bit** against a single-process
:class:`~repro.moe.layer.MOELayer` holding the same weights, which is the
strongest correctness statement the reproduction makes about the
parallelism semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..runtime.virtual_cluster import (
    all_gather,
    all_to_all,
    reduce_scatter,
)
from .experts import MixtralFFNExpert, SimpleFFNExpert
from .functional import relu, silu
from .gates import GShardGate
from .interfaces import ExpertBase, GateBase
from .ordering import TutelOrder


@dataclass(frozen=True)
class DistributedMoEConfig:
    """Geometry of one stage (standard layout).

    Attributes:
        num_nodes: ``N`` (EP/DP width).
        gpus_per_node: ``g`` (MP/ESP width).
        embed_dim: token embedding ``M``.
        hidden_dim: expert hidden size ``H`` (divisible by ``g``).
        num_experts: ``E`` (divisible by ``N``).
        top_k: experts per token.
        ffn_type: ``"simple"`` or ``"mixtral"``.
    """

    num_nodes: int
    gpus_per_node: int
    embed_dim: int
    hidden_dim: int
    num_experts: int
    top_k: int = 2
    ffn_type: str = "simple"

    def __post_init__(self) -> None:
        if self.num_experts % self.num_nodes != 0:
            raise ShapeError(
                f"num_experts ({self.num_experts}) not divisible by "
                f"num_nodes ({self.num_nodes})"
            )
        if self.hidden_dim % self.gpus_per_node != 0:
            raise ShapeError(
                f"hidden_dim ({self.hidden_dim}) not divisible by "
                f"gpus_per_node ({self.gpus_per_node})"
            )
        if self.ffn_type not in ("simple", "mixtral"):
            raise ShapeError(f"unknown ffn_type {self.ffn_type!r}")

    @property
    def experts_per_node(self) -> int:
        """Local experts hosted by each node."""
        return self.num_experts // self.num_nodes

    @property
    def hidden_shard(self) -> int:
        """Hidden width per ESP shard."""
        return self.hidden_dim // self.gpus_per_node


def _expert_shard_forward(
    expert: ExpertBase, x: np.ndarray, shard: int, width: int
) -> np.ndarray:
    """Partial expert output from one hidden-dimension shard.

    Elementwise activations make the hidden dimension embarrassingly
    shardable: summing the per-shard outputs reconstructs the full expert
    (biases are charged to shard 0).
    """
    lo, hi = shard * width, (shard + 1) * width
    if isinstance(expert, SimpleFFNExpert):
        pre = x @ expert.params["w1"][:, lo:hi] + expert.params["b1"][lo:hi]
        partial = relu(pre) @ expert.params["w2"][lo:hi, :]
        if shard == 0:
            partial = partial + expert.params["b2"]
        return partial
    if isinstance(expert, MixtralFFNExpert):
        gate_pre = x @ expert.params["w_gate"][:, lo:hi]
        up = x @ expert.params["w_up"][:, lo:hi]
        return (silu(gate_pre) * up) @ expert.params["w_down"][lo:hi, :]
    raise ShapeError(f"unsupported expert type {type(expert).__name__}")


class DistributedMoEStage:
    """Executable DP+MP+EP+ESP MoE stage over virtual ranks.

    Args:
        config: stage geometry.
        gate: routing function shared (replicated) by every rank.
        experts: the ``E`` full expert networks; node ``j`` hosts experts
            ``[j * E/N, (j+1) * E/N)`` and shards each over its ranks.
        capacity: dispatch slots per expert per rank shard.  Use an ample
            value (no drops) when comparing against a single-process
            reference -- capacity-order differs between sharded and
            unsharded execution.
    """

    def __init__(
        self,
        config: DistributedMoEConfig,
        gate: GateBase,
        experts: list[ExpertBase],
        capacity: int,
    ) -> None:
        if len(experts) != config.num_experts:
            raise ShapeError(
                f"expected {config.num_experts} experts, got {len(experts)}"
            )
        if gate.num_experts != config.num_experts:
            raise ShapeError(
                f"gate routes to {gate.num_experts} experts, config has "
                f"{config.num_experts}"
            )
        self.config = config
        self.gate = gate
        self.experts = experts
        self.capacity = capacity
        self.order = TutelOrder()

    # -- stages --------------------------------------------------------------

    def _mp_reduce_scatter(
        self, node_inputs: list[np.ndarray]
    ) -> list[list[np.ndarray]]:
        """Split each node's tokens over its MP ranks (Fig. 2 step 1).

        Models the post-attention ReduceScatter: each rank contributes a
        partial sum ``X_j / g``; the collective sums and token-splits.
        """
        g = self.config.gpus_per_node
        shards_per_node = []
        for x in node_inputs:
            partials = [x / g for _ in range(g)]
            shards_per_node.append(reduce_scatter(partials, axis=0))
        return shards_per_node

    def _route_and_order(
        self, shards_per_node: list[list[np.ndarray]]
    ) -> tuple[list[list], list[list[np.ndarray]]]:
        """Gate + order every rank's token shard."""
        assignments, buffers = [], []
        for node_shards in shards_per_node:
            node_assignments, node_buffers = [], []
            for shard in node_shards:
                assignment = self.gate.assign(shard, self.capacity)
                node_assignments.append(assignment)
                node_buffers.append(self.order.forward(shard, assignment))
            assignments.append(node_assignments)
            buffers.append(node_buffers)
        return assignments, buffers

    def _ep_exchange(
        self, buffers: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """AlltoAll across same-local-rank peers (Fig. 2 dispatch/combine)."""
        n, g = self.config.num_nodes, self.config.gpus_per_node
        out: list[list[np.ndarray]] = [
            [np.empty(0)] * g for _ in range(n)
        ]
        for local in range(g):
            exchanged = all_to_all(
                [buffers[node][local] for node in range(n)], axis=0
            )
            for node in range(n):
                out[node][local] = exchanged[node]
        return out

    def _esp_all_gather(
        self, received: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Within-node AllGather along the slot axis (Fig. 2 step 4)."""
        return [all_gather(node_buffers, axis=1) for node_buffers in received]

    def _expert_shards(
        self, gathered: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Each rank computes its H/g slice of every local expert."""
        cfg = self.config
        outputs: list[list[np.ndarray]] = []
        for node, node_buffers in enumerate(gathered):
            node_outputs = []
            for local, buf in enumerate(node_buffers):
                out = np.empty_like(buf)
                # rows: num_nodes blocks of experts_per_node local experts
                for src in range(cfg.num_nodes):
                    for j in range(cfg.experts_per_node):
                        row = src * cfg.experts_per_node + j
                        expert = self.experts[
                            node * cfg.experts_per_node + j
                        ]
                        out[row] = _expert_shard_forward(
                            expert, buf[row], local, cfg.hidden_shard
                        )
                node_outputs.append(out)
            outputs.append(node_outputs)
        return outputs

    def _esp_reduce_scatter(
        self, partials: list[list[np.ndarray]]
    ) -> list[list[np.ndarray]]:
        """Sum expert-shard partials, split tokens back (Fig. 2 step 6)."""
        return [
            reduce_scatter(node_partials, axis=1)
            for node_partials in partials
        ]

    def _combine_and_mp_gather(
        self,
        returned: list[list[np.ndarray]],
        assignments: list[list],
        token_counts: list[int],
    ) -> list[np.ndarray]:
        """I-Order each shard, then AllGather tokens across the node."""
        outputs = []
        g = self.config.gpus_per_node
        for node in range(self.config.num_nodes):
            shard_tokens = token_counts[node] // g
            shard_outputs = [
                self.order.inverse(
                    returned[node][local],
                    assignments[node][local],
                    shard_tokens,
                )
                for local in range(g)
            ]
            outputs.append(all_gather(shard_outputs, axis=0)[0])
        return outputs

    # -- public API -----------------------------------------------------------

    def forward(self, node_inputs: list[np.ndarray]) -> list[np.ndarray]:
        """Run one forward pass; one (S, M) batch per node in, same out.

        Raises:
            ShapeError: on wrong node count or token counts not divisible
                by the MP width.
        """
        cfg = self.config
        if len(node_inputs) != cfg.num_nodes:
            raise ShapeError(
                f"expected {cfg.num_nodes} node inputs, got "
                f"{len(node_inputs)}"
            )
        token_counts = []
        for x in node_inputs:
            if x.ndim != 2 or x.shape[1] != cfg.embed_dim:
                raise ShapeError(
                    f"expected (S, {cfg.embed_dim}) inputs, got {x.shape}"
                )
            if x.shape[0] % cfg.gpus_per_node != 0:
                raise ShapeError(
                    f"token count {x.shape[0]} not divisible by MP width "
                    f"{cfg.gpus_per_node}"
                )
            token_counts.append(x.shape[0])

        shards = self._mp_reduce_scatter(node_inputs)
        assignments, buffers = self._route_and_order(shards)
        received = self._ep_exchange(buffers)  # dispatch
        gathered = self._esp_all_gather(received)
        partials = self._expert_shards(gathered)
        reduced = self._esp_reduce_scatter(partials)
        returned = self._ep_exchange(reduced)  # combine
        return self._combine_and_mp_gather(
            returned, assignments, token_counts
        )


def build_reference_layers(
    config: DistributedMoEConfig, *, seed: int = 0
) -> tuple[DistributedMoEStage, list]:
    """A distributed stage plus per-node single-process reference layers.

    Both share the *same* gate and expert weight tensors, so their outputs
    must agree exactly (given ample capacity).  Returns the stage and one
    :class:`~repro.moe.layer.MOELayer` per node.
    """
    from .layer import MOELayer  # local import avoids a cycle at load time

    expert_cls = (
        SimpleFFNExpert if config.ffn_type == "simple" else MixtralFFNExpert
    )
    experts = [
        expert_cls(config.embed_dim, config.hidden_dim, seed=seed + 1 + e)
        for e in range(config.num_experts)
    ]
    gate = GShardGate(
        config.embed_dim, config.num_experts, config.top_k, seed=seed
    )
    capacity = 1 << 14  # ample: no token ever drops
    stage = DistributedMoEStage(config, gate, experts, capacity)
    references = [
        MOELayer(
            GShardGate(
                config.embed_dim, config.num_experts, config.top_k, seed=seed
            ),
            experts,
            capacity_factor=None,
        )
        for _ in range(config.num_nodes)
    ]
    return stage, references
