"""Abstract interfaces of the six MoE sub-modules and the hook base.

Mirrors the paper's Listing 1: users implement custom components by
inheriting these bases; the scheduler and :class:`~repro.moe.layer.MOELayer`
only ever talk to the interfaces.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


@dataclass(frozen=True)
class Assignment:
    """Expert-major routing decision produced by a gate.

    ``token_ids[e, t]`` is the source-token index filling slot ``t`` of
    expert ``e`` (or -1 for an empty slot); ``weights[e, t]`` the combine
    coefficient applied to that expert's output for that token.

    Attributes:
        token_ids: int array of shape (E, T).
        weights: float array of shape (E, T).
        scores: full (S, E) post-activation score matrix (for aux losses
            and tests).
        aux_loss: scalar load-balancing penalty (0 when undefined).
        dropped: bool mask of shape (S,) -- tokens that found no slot in
            any selected expert.
    """

    token_ids: np.ndarray
    weights: np.ndarray
    scores: np.ndarray
    aux_loss: float
    dropped: np.ndarray

    def __post_init__(self) -> None:
        if self.token_ids.shape != self.weights.shape:
            raise ShapeError(
                f"token_ids {self.token_ids.shape} and weights "
                f"{self.weights.shape} must match"
            )
        if self.token_ids.ndim != 2:
            raise ShapeError(
                f"expected (E, T) assignment, got shape {self.token_ids.shape}"
            )

    @property
    def num_experts(self) -> int:
        """Number of experts ``E``."""
        return self.token_ids.shape[0]

    @property
    def capacity(self) -> int:
        """Slots per expert ``T``."""
        return self.token_ids.shape[1]


class GateBase(abc.ABC):
    """Routing function: decides which tokens each expert processes.

    Concrete gates own their trainable parameters (numpy arrays in
    ``self.params``) and accumulate gradients in ``self.grads``.
    """

    def __init__(self, embed_dim: int, num_experts: int, top_k: int) -> None:
        if top_k > num_experts:
            raise ShapeError(
                f"top_k ({top_k}) cannot exceed num_experts ({num_experts})"
            )
        self.embed_dim = embed_dim
        self.num_experts = num_experts
        self.top_k = top_k
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def assign(self, x: np.ndarray, capacity: int) -> Assignment:
        """Route a (S, M) token batch into an expert-major assignment."""

    def backward_weights(
        self, x: np.ndarray, assignment: Assignment, d_weights: np.ndarray
    ) -> np.ndarray:
        """Backpropagate combine-weight gradients into gate parameters.

        Top-k index selection is non-differentiable (as in real MoE
        training); only the magnitude path of the selected weights carries
        gradient.  Gates without an implemented backward return a zero
        input-gradient, which keeps the layer usable for forward-only
        studies.

        Args:
            x: the (S, M) input the assignment was computed from.
            assignment: the forward routing decision.
            d_weights: (E, T) gradient of the loss w.r.t.
                ``assignment.weights``.

        Returns:
            (S, M) gradient contribution w.r.t. ``x`` through the gate.
        """
        del assignment, d_weights
        return np.zeros_like(x)

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)


class OrderBase(abc.ABC):
    """Data-layout transform: (S, M) tokens <-> (E, T, M) expert buffers."""

    @abc.abstractmethod
    def forward(self, x: np.ndarray, assignment: Assignment) -> np.ndarray:
        """Gather tokens into the (E, T, M) dispatch buffer."""

    @abc.abstractmethod
    def inverse(
        self, buffer: np.ndarray, assignment: Assignment, seq_len: int
    ) -> np.ndarray:
        """Weighted combine of the (E, T, M) buffer back to (S, M)."""

    @abc.abstractmethod
    def backward_forward(
        self, d_buffer: np.ndarray, assignment: Assignment, seq_len: int
    ) -> np.ndarray:
        """Gradient of :meth:`forward`: scatter d_buffer back to tokens."""

    @abc.abstractmethod
    def backward_inverse(
        self, dy: np.ndarray, buffer: np.ndarray, assignment: Assignment
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gradient of :meth:`inverse`.

        Returns:
            ``(d_buffer, d_weights)`` with shapes (E, T, M) and (E, T).
        """


class ExpertBase(abc.ABC):
    """One expert network mapping (T, M) -> (T, M)."""

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the expert output for a (T, M) slice."""

    @abc.abstractmethod
    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backprop through the last forward; accumulates weight grads.

        Returns:
            (T, M) gradient w.r.t. the expert input.
        """

    def zero_grad(self) -> None:
        """Reset accumulated parameter gradients."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def num_parameters(self) -> int:
        """Total trainable scalars in this expert."""
        return sum(p.size for p in self.params.values())


class DispatchBase(abc.ABC):
    """Collective exchange of (E, T, M) buffers across an EP group.

    The dispatcher sees the buffers of *all* ranks of the group (this is an
    in-process SPMD runtime) and returns the post-exchange buffers, rank by
    rank.  Combine is the inverse exchange.
    """

    @abc.abstractmethod
    def dispatch(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Token -> expert exchange (AlltoAll dispatch)."""

    @abc.abstractmethod
    def combine(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Expert -> token exchange (AlltoAll combine)."""


class HookPoint:
    """Names of the six non-invasive hook sites (paper §3.1)."""

    BEFORE_MOE_START = "before_moe_start"
    BEFORE_DISPATCH = "before_dispatch"
    AFTER_DISPATCH = "after_dispatch"
    BEFORE_COMBINE = "before_combine"
    AFTER_COMBINE = "after_combine"
    BEFORE_MOE_END = "before_moe_end"


class CallbackBase:
    """Base class for non-invasive modifications (paper Listing 1).

    Subclasses override any subset of the six hook methods; each receives
    the tensor flowing through that point plus a mutable
    :class:`~repro.moe.hooks.HookContext` and returns the (possibly
    replaced) tensor.  Examples: input reformatting for multimodal data at
    ``before_moe_start``/``before_moe_end``; compression at
    ``before_dispatch`` paired with decompression at ``after_dispatch``.
    """

    def before_moe_start_hook(self, x: np.ndarray, ctx) -> np.ndarray:
        """Called on the layer input before gating."""
        return x

    def before_dispatch_hook(self, x: np.ndarray, ctx) -> np.ndarray:
        """Called on the ordered buffer before the AlltoAll dispatch."""
        return x

    def after_dispatch_hook(self, x: np.ndarray, ctx) -> np.ndarray:
        """Called on the received buffer after the AlltoAll dispatch."""
        return x

    def before_combine_hook(self, x: np.ndarray, ctx) -> np.ndarray:
        """Called on the expert outputs before the AlltoAll combine."""
        return x

    def after_combine_hook(self, x: np.ndarray, ctx) -> np.ndarray:
        """Called on the buffer after the AlltoAll combine."""
        return x

    def before_moe_end_hook(self, x: np.ndarray, ctx) -> np.ndarray:
        """Called on the layer output before it is returned."""
        return x
