"""Hook plumbing for non-invasive MoE customization (paper §3.1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .interfaces import CallbackBase

#: hook sites in layer-execution order.
HOOK_ORDER = (
    "before_moe_start",
    "before_dispatch",
    "after_dispatch",
    "before_combine",
    "after_combine",
    "before_moe_end",
)


@dataclass
class HookContext:
    """Mutable scratch space shared by all hooks of one layer invocation.

    Attributes:
        layer_name: owning layer's label.
        phase: ``"forward"`` (hooks only run in forward).
        storage: free-form dict for hook pairs to communicate (e.g. a
            compressor stashing scale factors for its decompressor).
    """

    layer_name: str
    phase: str = "forward"
    storage: dict[str, Any] = field(default_factory=dict)


class HookRunner:
    """Applies every registered callback at a hook site, in order."""

    def __init__(self, callbacks: tuple[CallbackBase, ...]) -> None:
        self.callbacks = callbacks

    def run(self, site: str, x: np.ndarray, ctx: HookContext) -> np.ndarray:
        """Thread ``x`` through all callbacks' ``<site>_hook`` methods."""
        for callback in self.callbacks:
            hook = getattr(callback, f"{site}_hook")
            x = hook(x, ctx)
        return x
