"""SoftMoE routing (Puigcerver et al.), the paper's fourth gate family.

Unlike the hard top-k gates, SoftMoE computes *dense* convex mixtures:
every expert slot receives a softmax-weighted average of all tokens
(dispatch), and every token receives a softmax-weighted average of all
slot outputs (combine).  There is no token dropping and the whole layer
is differentiable, which is why the paper lists it among the gate
families a flexible system must host (§3.1).

Shapes: tokens ``X (S, M)``, per-expert slots ``p``, slot logits
``L = X @ Phi`` with ``Phi (M, E*p)``:

* dispatch weights ``D = softmax_S(L)``  (column-wise over tokens),
  slot inputs ``\tilde X = D^T X``                      -> (E*p, M)
* expert ``e`` processes its ``p`` slots;
* combine weights ``C = softmax_{E*p}(L)`` (row-wise over slots),
  outputs ``Y = C @ slot_outputs``                      -> (S, M)

The backward pass is exact (manual matrix calculus) and finite-difference
checked in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .functional import softmax, softmax_backward
from .interfaces import ExpertBase


class SoftMoELayer:
    """A fully-differentiable soft mixture-of-experts layer.

    Args:
        phi: slot-logit projection, shape (M, E * slots_per_expert).
        experts: one :class:`ExpertBase` per expert.
        slots_per_expert: ``p``; total slots = ``E * p``.

    Raises:
        ShapeError: when ``phi``'s width disagrees with the slot count.
    """

    def __init__(
        self,
        experts: list[ExpertBase],
        embed_dim: int,
        slots_per_expert: int = 1,
        *,
        seed: int = 0,
    ) -> None:
        if slots_per_expert <= 0:
            raise ShapeError(
                f"slots_per_expert must be positive, got {slots_per_expert}"
            )
        if not experts:
            raise ShapeError("SoftMoELayer needs at least one expert")
        rng = np.random.default_rng(seed)
        self.experts = experts
        self.embed_dim = embed_dim
        self.slots_per_expert = slots_per_expert
        total_slots = len(experts) * slots_per_expert
        self.params: dict[str, np.ndarray] = {
            "phi": rng.normal(0.0, embed_dim**-0.5, (embed_dim, total_slots))
        }
        self.grads: dict[str, np.ndarray] = {}
        self.zero_grad()
        self._cache: dict[str, np.ndarray] = {}

    @property
    def num_experts(self) -> int:
        """Number of experts ``E``."""
        return len(self.experts)

    @property
    def total_slots(self) -> int:
        """Total slot count ``E * p``."""
        return self.num_experts * self.slots_per_expert

    def zero_grad(self) -> None:
        """Reset phi and expert gradients."""
        self.grads["phi"] = np.zeros_like(self.params["phi"])
        for expert in self.experts:
            expert.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Soft-dispatch, expert-compute, soft-combine a (S, M) batch.

        Raises:
            ShapeError: on a non-(S, M) input.
        """
        if x.ndim != 2 or x.shape[1] != self.embed_dim:
            raise ShapeError(
                f"expected (S, {self.embed_dim}) input, got {x.shape}"
            )
        logits = x @ self.params["phi"]  # (S, slots)
        dispatch = softmax(logits, axis=0)  # over tokens, per slot
        combine = softmax(logits, axis=1)  # over slots, per token

        slot_inputs = dispatch.T @ x  # (slots, M)
        slot_outputs = np.empty_like(slot_inputs)
        p = self.slots_per_expert
        for e, expert in enumerate(self.experts):
            slot_outputs[e * p : (e + 1) * p] = expert.forward(
                slot_inputs[e * p : (e + 1) * p]
            )
        y = combine @ slot_outputs  # (S, M)

        self._cache = {
            "x": x,
            "logits": logits,
            "dispatch": dispatch,
            "combine": combine,
            "slot_inputs": slot_inputs,
            "slot_outputs": slot_outputs,
        }
        return y

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Exact backward pass; accumulates phi and expert gradients.

        Raises:
            ShapeError: if called before :meth:`forward`.
        """
        if not self._cache:
            raise ShapeError("backward called before forward")
        cache = self._cache
        x = cache["x"]
        dispatch = cache["dispatch"]
        combine = cache["combine"]
        slot_outputs = cache["slot_outputs"]

        # y = combine @ slot_outputs
        d_combine = dy @ slot_outputs.T  # (S, slots)
        d_slot_outputs = combine.T @ dy  # (slots, M)

        # experts (slot-block diagonal)
        p = self.slots_per_expert
        d_slot_inputs = np.empty_like(d_slot_outputs)
        for e, expert in enumerate(self.experts):
            d_slot_inputs[e * p : (e + 1) * p] = expert.backward(
                d_slot_outputs[e * p : (e + 1) * p]
            )

        # slot_inputs = dispatch^T @ x
        d_dispatch = x @ d_slot_inputs.T  # (S, slots)
        dx = dispatch @ d_slot_inputs  # (S, M)

        # softmaxes share the logits
        d_logits = softmax_backward(dispatch, d_dispatch, axis=0)
        d_logits += softmax_backward(combine, d_combine, axis=1)

        self.grads["phi"] += x.T @ d_logits
        dx += d_logits @ self.params["phi"].T
        return dx
