"""Expert networks with manual forward/backward (paper §3.1).

Two variants, matching the paper's ``ffn-type`` options:

* :class:`SimpleFFNExpert` -- the conventional two dense layers with ReLU
  (GPT feed-forward block): ``y = relu(x W1 + b1) W2 + b2``;
* :class:`MixtralFFNExpert` -- Mixtral's SwiGLU block with three weight
  matrices: ``y = (silu(x Wg) * (x Wu)) Wd``.

Backward passes are hand-derived and validated against finite differences
in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .functional import relu, relu_backward, silu, silu_backward
from .interfaces import ExpertBase


class SimpleFFNExpert(ExpertBase):
    """Two-layer feed-forward expert (GPT style)."""

    def __init__(self, embed_dim: int, hidden_dim: int, *, seed: int = 0) -> None:
        super().__init__()
        if embed_dim <= 0 or hidden_dim <= 0:
            raise ShapeError(
                f"dims must be positive, got M={embed_dim} H={hidden_dim}"
            )
        rng = np.random.default_rng(seed)
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.params["w1"] = rng.normal(0.0, np.sqrt(2.0 / embed_dim),
                                       (embed_dim, hidden_dim))
        self.params["b1"] = np.zeros(hidden_dim)
        self.params["w2"] = rng.normal(0.0, np.sqrt(2.0 / hidden_dim),
                                       (hidden_dim, embed_dim))
        self.params["b2"] = np.zeros(embed_dim)
        self.zero_grad()
        self._cache: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``relu(x W1 + b1) W2 + b2`` for a (T, M) slice."""
        if x.ndim != 2 or x.shape[1] != self.embed_dim:
            raise ShapeError(
                f"expected (T, {self.embed_dim}) input, got {x.shape}"
            )
        pre = x @ self.params["w1"] + self.params["b1"]
        hidden = relu(pre)
        self._cache = {"x": x, "pre": pre, "hidden": hidden}
        return hidden @ self.params["w2"] + self.params["b2"]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward; accumulates grads."""
        cache = self._cache
        if not cache:
            raise ShapeError("backward called before forward")
        self.grads["w2"] += cache["hidden"].T @ dy
        self.grads["b2"] += dy.sum(axis=0)
        d_hidden = dy @ self.params["w2"].T
        d_pre = d_hidden * relu_backward(cache["pre"])
        self.grads["w1"] += cache["x"].T @ d_pre
        self.grads["b1"] += d_pre.sum(axis=0)
        return d_pre @ self.params["w1"].T


class MixtralFFNExpert(ExpertBase):
    """SwiGLU expert with gate/up/down projections (Mixtral style)."""

    def __init__(self, embed_dim: int, hidden_dim: int, *, seed: int = 0) -> None:
        super().__init__()
        if embed_dim <= 0 or hidden_dim <= 0:
            raise ShapeError(
                f"dims must be positive, got M={embed_dim} H={hidden_dim}"
            )
        rng = np.random.default_rng(seed)
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        scale_in = np.sqrt(2.0 / embed_dim)
        self.params["w_gate"] = rng.normal(0.0, scale_in, (embed_dim, hidden_dim))
        self.params["w_up"] = rng.normal(0.0, scale_in, (embed_dim, hidden_dim))
        self.params["w_down"] = rng.normal(
            0.0, np.sqrt(2.0 / hidden_dim), (hidden_dim, embed_dim)
        )
        self.zero_grad()
        self._cache: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``(silu(x Wg) * (x Wu)) Wd`` for a (T, M) slice."""
        if x.ndim != 2 or x.shape[1] != self.embed_dim:
            raise ShapeError(
                f"expected (T, {self.embed_dim}) input, got {x.shape}"
            )
        gate_pre = x @ self.params["w_gate"]
        up = x @ self.params["w_up"]
        gated = silu(gate_pre) * up
        self._cache = {"x": x, "gate_pre": gate_pre, "up": up, "gated": gated}
        return gated @ self.params["w_down"]

    def backward(self, dy: np.ndarray) -> np.ndarray:
        """Backprop through the cached forward; accumulates grads."""
        cache = self._cache
        if not cache:
            raise ShapeError("backward called before forward")
        self.grads["w_down"] += cache["gated"].T @ dy
        d_gated = dy @ self.params["w_down"].T
        d_up = d_gated * silu(cache["gate_pre"])
        d_gate_pre = d_gated * cache["up"] * silu_backward(cache["gate_pre"])
        self.grads["w_up"] += cache["x"].T @ d_up
        self.grads["w_gate"] += cache["x"].T @ d_gate_pre
        return d_up @ self.params["w_up"].T + d_gate_pre @ self.params["w_gate"].T
