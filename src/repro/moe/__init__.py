"""Functional MoE layer with the paper's modular abstraction (§3.1).

The MoE layer decomposes into six swappable sub-modules -- Gate, Order,
I-Order, Dispatch, Combine, Expert -- plus non-invasive hooks.  All
implementations are numpy with manual backprop, so routing and dispatch
semantics are *executed*, not just timed.

Pre-implemented, as in the paper:

* gates (:mod:`~repro.moe.gates`): GShard noisy top-k, Sigmoid
  (BASE/StableMoE), X-MoE cosine routing, Expert-Choice;
* orderings (:mod:`~repro.moe.ordering`): GShard einsum-style (dense
  one-hot algebra) and Tutel scatter-style (index arithmetic);
* dispatchers (:mod:`~repro.moe.dispatch`): NCCL direct AlltoAll, Hetu's
  1DH, Tutel/DeepSpeed's 2DH -- identical data movement, different costs;
* experts (:mod:`~repro.moe.experts`): GPT feed-forward and Mixtral SwiGLU.
"""

from .interfaces import (
    Assignment,
    CallbackBase,
    DispatchBase,
    ExpertBase,
    GateBase,
    OrderBase,
)
from .gates import (
    GateKind,
    GShardGate,
    SigmoidGate,
    XMoEGate,
    ExpertChoiceGate,
    GATE_TIMING,
    build_gate,
)
from .ordering import GShardOrder, TutelOrder
from .experts import SimpleFFNExpert, MixtralFFNExpert
from .dispatch import NcclAllToAll, OneDHierarchicalAllToAll, TwoDHierarchicalAllToAll
from .layer import MOELayer
from .soft_moe import SoftMoELayer
from .distributed import (
    DistributedMoEConfig,
    DistributedMoEStage,
    build_reference_layers,
)
from .hooks import HookContext

__all__ = [
    "Assignment",
    "GateBase",
    "OrderBase",
    "DispatchBase",
    "ExpertBase",
    "CallbackBase",
    "GateKind",
    "GShardGate",
    "SigmoidGate",
    "XMoEGate",
    "ExpertChoiceGate",
    "GATE_TIMING",
    "build_gate",
    "GShardOrder",
    "TutelOrder",
    "SimpleFFNExpert",
    "MixtralFFNExpert",
    "NcclAllToAll",
    "OneDHierarchicalAllToAll",
    "TwoDHierarchicalAllToAll",
    "MOELayer",
    "SoftMoELayer",
    "DistributedMoEConfig",
    "DistributedMoEStage",
    "build_reference_layers",
    "HookContext",
]
