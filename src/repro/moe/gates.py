"""The four pre-implemented routing functions (paper §2.1 / §3.1, Table 6).

* :class:`GShardGate` -- noisy top-k softmax gating (GShard);
* :class:`SigmoidGate` -- sigmoid-scaled top-k (BASE / StableMoE);
* :class:`XMoEGate` -- low-rank projection + cosine routing with L2
  normalization (X-MoE);
* :class:`ExpertChoiceGate` -- experts pick their own top tokens (EC).

Token-choice gates share :func:`capacity_assign`, which converts per-token
top-k selections into the expert-major (E, T) layout while enforcing the
capacity ``T`` (overflow tokens are dropped, GShard-style).

``GATE_TIMING`` carries each gate's *timing profile* for the scheduling
side of the library (relative routing FLOPs and effective capacity), used
by the Table 6 reproduction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from .functional import (
    l2_normalize,
    sigmoid,
    softmax,
    softmax_backward,
    softplus,
    top_k,
)
from .interfaces import Assignment, GateBase


class GateKind(enum.Enum):
    """Identifier for the pre-implemented routing functions."""

    GSHARD = "gshard"
    SIGMOID = "sigmoid"
    XMOE = "xmoe"
    EXPERT_CHOICE = "expert_choice"


@dataclass(frozen=True)
class GateTimingProfile:
    """Scheduling-relevant cost profile of a gate implementation.

    Attributes:
        macs_multiplier: routing FLOPs relative to plain ``x @ W_g``
            (X-MoE adds a projection and two normalizations; EC adds the
            token-axis top-k).
        capacity_factor_override: effective capacity factor forced by the
            gate, or None to use the configured ``f``.  Expert choice fills
            every expert exactly to capacity, i.e. behaves like ``f = 1``.
        kernel_count: GPU kernels launched per routing pass.  At MoE gate
            sizes the launches dominate the arithmetic, so this is what
            separates the gates in Table 6: GShard (matmul, noise, top-k,
            softmax) ~4; Sigmoid adds the scaling pass; X-MoE adds the
            projection, two L2 normalizations and the cosine; EC adds the
            token-axis transpose + top-k.
    """

    macs_multiplier: float
    capacity_factor_override: float | None
    kernel_count: int


#: timing profiles per gate kind (consumed by the Table 6 benchmark).
GATE_TIMING: dict[GateKind, GateTimingProfile] = {
    GateKind.GSHARD: GateTimingProfile(1.0, None, 4),
    GateKind.SIGMOID: GateTimingProfile(1.05, None, 5),
    GateKind.XMOE: GateTimingProfile(1.6, None, 9),
    GateKind.EXPERT_CHOICE: GateTimingProfile(1.1, 1.0, 6),
}


def capacity_assign(
    indices: np.ndarray,
    weights: np.ndarray,
    num_experts: int,
    capacity: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Convert per-token (S, k) selections to the expert-major layout.

    Slots fill in token order (GShard semantics); selections beyond an
    expert's capacity are dropped.

    Args:
        indices: (S, k) selected expert per token and choice.
        weights: (S, k) combine weight per selection.
        num_experts: ``E``.
        capacity: slots per expert ``T``.

    Returns:
        ``(token_ids, slot_weights, dropped, slot_of)`` where ``token_ids``
        and ``slot_weights`` are (E, T); ``dropped`` is a (S,) bool mask of
        tokens with no surviving selection; ``slot_of`` is (S, k) holding
        the slot index of each selection (-1 if dropped), used by gate
        backward passes.
    """
    if indices.shape != weights.shape or indices.ndim != 2:
        raise ShapeError(
            f"indices {indices.shape} and weights {weights.shape} must be "
            f"matching (S, k) arrays"
        )
    s, k = indices.shape
    flat_e = indices.reshape(-1)

    # Position of each selection within its expert, in (token, choice) order.
    order = np.argsort(flat_e, kind="stable")
    sorted_e = flat_e[order]
    is_start = np.ones(len(sorted_e), dtype=bool)
    if len(sorted_e) > 1:
        is_start[1:] = sorted_e[1:] != sorted_e[:-1]
    start_of_group = np.maximum.accumulate(
        np.where(is_start, np.arange(len(sorted_e)), 0)
    )
    pos_sorted = np.arange(len(sorted_e)) - start_of_group
    position = np.empty(len(flat_e), dtype=np.int64)
    position[order] = pos_sorted

    kept = position < capacity
    token_ids = np.full((num_experts, capacity), -1, dtype=np.int64)
    slot_weights = np.zeros((num_experts, capacity))
    flat_tokens = np.repeat(np.arange(s), k)
    token_ids[flat_e[kept], position[kept]] = flat_tokens[kept]
    slot_weights[flat_e[kept], position[kept]] = weights.reshape(-1)[kept]

    slot_of = np.where(kept, position, -1).reshape(s, k)
    survived = kept.reshape(s, k)
    dropped = ~np.any(survived, axis=1)
    return token_ids, slot_weights, dropped, slot_of


class GShardGate(GateBase):
    """Noisy top-k softmax gate (GShard).

    ``H(x) = x W_g + N(0,1) * softplus(x W_noise)`` during training;
    scores are ``softmax(KeepTopK(H(x), k))`` and combine weights are the
    selected scores renormalized over the top-k.
    """

    def __init__(
        self,
        embed_dim: int,
        num_experts: int,
        top_k: int = 2,
        *,
        noisy: bool = False,
        seed: int = 0,
    ) -> None:
        super().__init__(embed_dim, num_experts, top_k)
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(embed_dim)
        self.params["w_gate"] = rng.normal(0.0, scale, (embed_dim, num_experts))
        self.params["w_noise"] = rng.normal(0.0, scale, (embed_dim, num_experts))
        self.noisy = noisy
        self._rng = rng
        self.zero_grad()
        self._cache: dict[str, np.ndarray] = {}

    def assign(self, x: np.ndarray, capacity: int) -> Assignment:
        """Route ``x`` (S, M); caches intermediates for backward."""
        logits = x @ self.params["w_gate"]
        if self.noisy:
            noise_scale = softplus(x @ self.params["w_noise"])
            logits = logits + self._rng.normal(size=logits.shape) * noise_scale
        top_vals, top_idx = top_k(logits, self.top_k)
        kept = np.full_like(logits, -np.inf)
        np.put_along_axis(kept, top_idx, top_vals, axis=-1)
        scores = softmax(kept, axis=-1)

        selected = np.take_along_axis(scores, top_idx, axis=-1)
        norm = np.maximum(np.sum(selected, axis=-1, keepdims=True), 1e-12)
        weights = selected / norm

        token_ids, slot_weights, dropped, slot_of = capacity_assign(
            top_idx, weights, self.num_experts, capacity
        )
        aux = load_balancing_loss(scores, top_idx, self.num_experts)
        self._cache = {
            "x": x,
            "top_idx": top_idx,
            "scores": scores,
            "selected": selected,
            "norm": norm,
            "slot_of": slot_of,
        }
        return Assignment(
            token_ids=token_ids,
            weights=slot_weights,
            scores=scores,
            aux_loss=aux,
            dropped=dropped,
        )

    def backward_weights(
        self, x: np.ndarray, assignment: Assignment, d_weights: np.ndarray
    ) -> np.ndarray:
        """Backprop combine-weight grads through renorm + softmax + W_g.

        The noise branch is treated as evaluation-mode (no gradient), as
        the paper's systems do when measuring throughput.
        """
        cache = self._cache
        top_idx = cache["top_idx"]
        slot_of = cache["slot_of"]
        s, k = top_idx.shape

        # (E, T) slot grads back to (S, k) selection grads.
        d_sel_w = np.zeros((s, k))
        valid = slot_of >= 0
        d_sel_w[valid] = d_weights[top_idx[valid], slot_of[valid]]

        # weights = selected / norm  (renormalization jacobian).
        selected = cache["selected"]
        norm = cache["norm"]
        d_selected = d_sel_w / norm - np.sum(
            d_sel_w * selected, axis=-1, keepdims=True
        ) / (norm**2)

        # scores = softmax(kept logits); only top-k entries are finite.
        d_scores = np.zeros_like(cache["scores"])
        np.put_along_axis(d_scores, top_idx, d_selected, axis=-1)
        d_kept = softmax_backward(cache["scores"], d_scores, axis=-1)
        # Gradient flows only through the kept (finite) logits.
        mask = np.zeros_like(d_kept)
        np.put_along_axis(mask, top_idx, 1.0, axis=-1)
        d_logits = d_kept * mask

        self.grads["w_gate"] += cache["x"].T @ d_logits
        return d_logits @ self.params["w_gate"].T


class SigmoidGate(GateBase):
    """Sigmoid gate of BASE / StableMoE: weight = sigmoid(x . w_e)."""

    def __init__(
        self, embed_dim: int, num_experts: int, top_k: int = 2, *, seed: int = 0
    ) -> None:
        super().__init__(embed_dim, num_experts, top_k)
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(embed_dim)
        self.params["w_gate"] = rng.normal(0.0, scale, (embed_dim, num_experts))
        self.zero_grad()
        self._cache: dict[str, np.ndarray] = {}

    def assign(self, x: np.ndarray, capacity: int) -> Assignment:
        """Route ``x`` (S, M) by raw logit rank, weight by sigmoid."""
        logits = x @ self.params["w_gate"]
        top_vals, top_idx = top_k(logits, self.top_k)
        weights = sigmoid(top_vals)
        token_ids, slot_weights, dropped, slot_of = capacity_assign(
            top_idx, weights, self.num_experts, capacity
        )
        scores = sigmoid(logits)
        self._cache = {"x": x, "top_idx": top_idx, "top_vals": top_vals,
                       "slot_of": slot_of}
        return Assignment(
            token_ids=token_ids,
            weights=slot_weights,
            scores=scores,
            aux_loss=load_balancing_loss(
                softmax(logits, axis=-1), top_idx, self.num_experts
            ),
            dropped=dropped,
        )

    def backward_weights(
        self, x: np.ndarray, assignment: Assignment, d_weights: np.ndarray
    ) -> np.ndarray:
        """d(sigmoid(logit)) for selected entries -> W_g and input grads."""
        cache = self._cache
        top_idx = cache["top_idx"]
        slot_of = cache["slot_of"]
        s, k = top_idx.shape
        d_sel_w = np.zeros((s, k))
        valid = slot_of >= 0
        d_sel_w[valid] = d_weights[top_idx[valid], slot_of[valid]]

        sig = sigmoid(cache["top_vals"])
        d_sel_logits = d_sel_w * sig * (1.0 - sig)
        d_logits = np.zeros((s, self.num_experts))
        np.put_along_axis(d_logits, top_idx, d_sel_logits, axis=-1)
        self.grads["w_gate"] += cache["x"].T @ d_logits
        return d_logits @ self.params["w_gate"].T


class XMoEGate(GateBase):
    """X-MoE cosine gate: low-rank projection, L2 norm, temperature.

    ``s_e = cos(W_proj x, w_e) / tau``; combine weights are the softmax of
    the selected scores.  Forward-only (the paper's throughput experiments
    never differentiate routing scores of X-MoE either).
    """

    def __init__(
        self,
        embed_dim: int,
        num_experts: int,
        top_k: int = 2,
        *,
        low_rank_dim: int = 64,
        temperature: float = 0.07,
        seed: int = 0,
    ) -> None:
        super().__init__(embed_dim, num_experts, top_k)
        if low_rank_dim <= 0:
            raise ShapeError(f"low_rank_dim must be positive, got {low_rank_dim}")
        rng = np.random.default_rng(seed)
        self.low_rank_dim = low_rank_dim
        self.temperature = temperature
        self.params["w_proj"] = rng.normal(
            0.0, 1.0 / np.sqrt(embed_dim), (embed_dim, low_rank_dim)
        )
        self.params["expert_emb"] = rng.normal(
            0.0, 1.0 / np.sqrt(low_rank_dim), (num_experts, low_rank_dim)
        )
        self.zero_grad()

    def assign(self, x: np.ndarray, capacity: int) -> Assignment:
        """Route ``x`` (S, M) by cosine similarity in the low-rank space."""
        proj = l2_normalize(x @ self.params["w_proj"], axis=-1)
        emb = l2_normalize(self.params["expert_emb"], axis=-1)
        logits = (proj @ emb.T) / self.temperature
        top_vals, top_idx = top_k(logits, self.top_k)
        weights = softmax(top_vals, axis=-1)
        token_ids, slot_weights, dropped, _ = capacity_assign(
            top_idx, weights, self.num_experts, capacity
        )
        scores = softmax(logits, axis=-1)
        return Assignment(
            token_ids=token_ids,
            weights=slot_weights,
            scores=scores,
            aux_loss=load_balancing_loss(scores, top_idx, self.num_experts),
            dropped=dropped,
        )


class ExpertChoiceGate(GateBase):
    """Expert-choice routing: every expert picks its own top tokens (EC).

    ``G = softmax(KeepTopK((x W_g)^T, capacity))`` -- the top-k runs along
    the *token* axis, so every expert is filled exactly to capacity and no
    load balancing loss is needed.  Tokens may be chosen by several experts
    or by none.
    """

    def __init__(
        self, embed_dim: int, num_experts: int, top_k: int = 2, *, seed: int = 0
    ) -> None:
        super().__init__(embed_dim, num_experts, top_k)
        rng = np.random.default_rng(seed)
        self.params["w_gate"] = rng.normal(
            0.0, 1.0 / np.sqrt(embed_dim), (embed_dim, num_experts)
        )
        self.zero_grad()

    def assign(self, x: np.ndarray, capacity: int) -> Assignment:
        """Each expert selects its ``capacity`` highest-scoring tokens."""
        s = x.shape[0]
        cap = min(capacity, s)
        logits = x @ self.params["w_gate"]  # (S, E)
        vals, idx = top_k(logits.T, cap)  # per expert along tokens
        weights = softmax(vals, axis=-1)

        token_ids = np.full((self.num_experts, capacity), -1, dtype=np.int64)
        slot_weights = np.zeros((self.num_experts, capacity))
        token_ids[:, :cap] = idx
        slot_weights[:, :cap] = weights

        chosen = np.zeros(s, dtype=bool)
        chosen[idx.reshape(-1)] = True
        scores = softmax(logits, axis=-1)
        return Assignment(
            token_ids=token_ids,
            weights=slot_weights,
            scores=scores,
            aux_loss=0.0,
            dropped=~chosen,
        )


def load_balancing_loss(
    scores: np.ndarray, top_idx: np.ndarray, num_experts: int
) -> float:
    """GShard auxiliary loss ``E * sum_e f_e * P_e``.

    ``f_e`` is the fraction of tokens whose *first* choice is expert ``e``
    and ``P_e`` the mean routing probability of ``e``.
    """
    s = scores.shape[0]
    if s == 0:
        return 0.0
    first = top_idx[:, 0]
    fractions = np.bincount(first, minlength=num_experts) / s
    mean_prob = scores.mean(axis=0)
    return float(num_experts * np.sum(fractions * mean_prob))


def build_gate(
    kind: GateKind,
    embed_dim: int,
    num_experts: int,
    top_k: int = 2,
    *,
    seed: int = 0,
) -> GateBase:
    """Factory mapping a :class:`GateKind` to a gate instance.

    Raises:
        ShapeError: for an unknown kind (should be unreachable).
    """
    if kind is GateKind.GSHARD:
        return GShardGate(embed_dim, num_experts, top_k, seed=seed)
    if kind is GateKind.SIGMOID:
        return SigmoidGate(embed_dim, num_experts, top_k, seed=seed)
    if kind is GateKind.XMOE:
        return XMoEGate(embed_dim, num_experts, top_k, seed=seed)
    if kind is GateKind.EXPERT_CHOICE:
        return ExpertChoiceGate(embed_dim, num_experts, top_k, seed=seed)
    raise ShapeError(f"unknown gate kind {kind!r}")
