"""Small numpy numerics shared by the functional MoE modules."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def softmax_backward(y: np.ndarray, dy: np.ndarray, axis: int = -1) -> np.ndarray:
    """Gradient of softmax given its output ``y`` and upstream ``dy``."""
    dot = np.sum(dy * y, axis=axis, keepdims=True)
    return y * (dy - dot)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Elementwise logistic function."""
    return np.where(x >= 0, 1.0 / (1.0 + np.exp(-x)), np.exp(x) / (1.0 + np.exp(x)))


def softplus(x: np.ndarray) -> np.ndarray:
    """Elementwise ``log(1 + exp(x))`` with overflow guard."""
    return np.logaddexp(0.0, x)


def silu(x: np.ndarray) -> np.ndarray:
    """SiLU / swish activation ``x * sigmoid(x)`` (Mixtral experts)."""
    return x * sigmoid(x)


def silu_backward(x: np.ndarray) -> np.ndarray:
    """d(silu)/dx evaluated at ``x``."""
    s = sigmoid(x)
    return s * (1.0 + x * (1.0 - s))


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectifier (GPT-style experts)."""
    return np.maximum(x, 0.0)


def relu_backward(x: np.ndarray) -> np.ndarray:
    """d(relu)/dx evaluated at ``x`` (0 at the kink)."""
    return (x > 0).astype(x.dtype)


def l2_normalize(x: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Rows scaled to unit L2 norm (X-MoE's representation scaling)."""
    norm = np.sqrt(np.sum(x * x, axis=axis, keepdims=True))
    return x / np.maximum(norm, eps)


def top_k(x: np.ndarray, k: int, axis: int = -1) -> tuple[np.ndarray, np.ndarray]:
    """Indices and values of the ``k`` largest entries, sorted descending.

    Raises:
        ShapeError: when ``k`` exceeds the axis length.
    """
    size = x.shape[axis]
    if k > size:
        raise ShapeError(f"top_k k={k} exceeds axis length {size}")
    part = np.argpartition(-x, k - 1, axis=axis)
    idx = np.take(part, np.arange(k), axis=axis)
    vals = np.take_along_axis(x, idx, axis=axis)
    order = np.argsort(-vals, axis=axis, kind="stable")
    idx = np.take_along_axis(idx, order, axis=axis)
    vals = np.take_along_axis(vals, order, axis=axis)
    return vals, idx


def one_hot(indices: np.ndarray, depth: int, dtype=np.float64) -> np.ndarray:
    """Dense one-hot encoding; negative indices encode "no class" (all 0).

    Raises:
        ShapeError: for indices >= depth.
    """
    if indices.size and int(indices.max()) >= depth:
        raise ShapeError(
            f"one_hot index {int(indices.max())} out of range [0, {depth})"
        )
    flat = indices.reshape(-1)
    out = np.zeros((flat.size, depth), dtype=dtype)
    valid = flat >= 0
    out[np.arange(flat.size)[valid], flat[valid]] = 1.0
    return out.reshape(indices.shape + (depth,))
