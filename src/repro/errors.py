"""Exception hierarchy for the repro package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value."""


class TopologyError(ReproError, ValueError):
    """A cluster topology that cannot support the requested layout."""


class ScheduleError(ReproError, RuntimeError):
    """A task graph that cannot be executed (cycle, unknown stream, ...)."""


class SolverError(ReproError, RuntimeError):
    """An optimization sub-problem failed to produce a usable solution."""


class ShapeError(ReproError, ValueError):
    """A tensor with an unexpected shape was passed to a functional module."""


class WorkspaceError(ReproError, RuntimeError):
    """A persistent workspace on disk cannot be used (version mismatch, ...)."""


class LockTimeout(ReproError, TimeoutError):
    """An inter-process file lock could not be acquired in time."""


class ServiceError(ReproError, RuntimeError):
    """A plan-serving request could not be accepted or completed."""


class QueueFullError(ServiceError):
    """The service's bounded request queue rejected a submission."""


class ServiceClosedError(ServiceError):
    """The service is shut down (or shutting down) and takes no requests."""


class ProtocolError(ServiceError):
    """A network peer violated (or rejected) the serving wire protocol.

    Raised by :class:`~repro.serve.NetClient` when the server refuses a
    frame for protocol reasons (bad schema, malformed request, unknown
    op) or answers with something that is not a response object --
    distinct from :class:`QueueFullError` (overload shed, retryable)
    and plain :class:`ServiceError` (transport exhausted or the plan
    itself failed).
    """


class RegistryError(ReproError, LookupError):
    """A string-keyed registry lookup failed (unknown system, model, ...).

    Derives from ``LookupError`` rather than ``KeyError``: the latter's
    ``__str__`` reprs its argument, which would wrap every error message
    in literal quotes.
    """
