"""repro: a reproduction of FSMoE (ASPLOS 2025) on a simulated GPU cluster.

FSMoE is a flexible and scalable training system for sparse
Mixture-of-Experts models.  This library rebuilds it end to end in Python:

* the modular MoE layer (gates / ordering / dispatch / experts / hooks),
  functional in numpy with manual backprop (:mod:`repro.moe`,
  :mod:`repro.runtime`);
* the scheduling core -- online profiling, the four-case pipeline-degree
  optimizer (Algorithm 1) and adaptive gradient partitioning
  (:mod:`repro.core`);
* a simulated multi-GPU cluster with analytical collective costs and a
  multi-stream discrete-event executor standing in for the paper's
  physical testbeds (:mod:`repro.parallel`, :mod:`repro.sim`);
* the compared training systems and the full benchmark harness
  (:mod:`repro.systems`, :mod:`repro.models`, :mod:`repro.bench`);
* disk-rooted experiment sessions and the concurrent plan-serving
  layer over them (:mod:`repro.api`, :mod:`repro.serve`).

Quickstart::

    from repro import (testbed_b, standard_layout, profile_cluster,
                       MoELayerSpec, profile_layer, FSMoE, Tutel)

    cluster = testbed_b()
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    models = profile_cluster(cluster, parallel).models
    spec = MoELayerSpec(embed_dim=2048, num_experts=parallel.n_ep)
    profile = profile_layer(spec, parallel, models)
    t_fsmoe = FSMoE().iteration_time_ms([profile] * 2, models)
    t_tutel = Tutel().iteration_time_ms([profile] * 2, models)
    print(f"speedup over Tutel: {t_tutel / t_fsmoe:.2f}x")
"""

from .config import (
    MoELayerSpec,
    ParallelSpec,
    standard_layout,
)
from .errors import (
    ConfigError,
    LockTimeout,
    ProtocolError,
    QueueFullError,
    RegistryError,
    ReproError,
    ScheduleError,
    ServiceClosedError,
    ServiceError,
    ShapeError,
    SolverError,
    TopologyError,
    WorkspaceError,
)
from .locking import FileLock
from .parallel import (
    ClusterSpec,
    TESTBEDS,
    compute_layer_volumes,
    testbed_a,
    testbed_b,
)
from .core import (
    DEGREE_SOLVERS,
    STEP2_IMPLS,
    STEP2_SOLVERS,
    GenericScheduler,
    LinearPerfModel,
    PerfModelSet,
    PipelineContext,
    ProfileResult,
    SolverStats,
    clear_solver_cache,
    find_optimal_pipeline_degree,
    plan_gradient_partition,
    set_default_degree_solver,
    solve_degrees_batch,
    solver_stats,
    profile_cluster,
)
from .models import (
    GPT2_XL,
    MIXTRAL_7B,
    MIXTRAL_22B,
    LayerProfile,
    available_model_presets,
    get_model_preset,
    layer_op_breakdown,
    profile_layer,
    register_model_preset,
)
from .moe import (
    ExpertChoiceGate,
    SoftMoELayer,
    GShardGate,
    GateKind,
    MOELayer,
    MixtralFFNExpert,
    SigmoidGate,
    SimpleFFNExpert,
    XMoEGate,
)
from .systems import (
    ALL_SYSTEM_KEYS,
    ALL_SYSTEMS,
    DeepSpeedMoE,
    FSMoE,
    FSMoENoIIO,
    PipeMoELina,
    Tutel,
    TutelImproved,
    available_systems,
    get_system,
    register_system,
)
from .planner import (
    IterationPlan,
    PlanCompiler,
    PlanPoint,
    ProfileStore,
    SweepResult,
    plan_many,
)
from .api import (
    ClusterRef,
    ExperimentResult,
    ExperimentSpec,
    StackSpec,
    Workspace,
    WorkspaceStats,
    available_clusters,
    get_cluster,
    register_cluster,
)
from .cache import (
    CacheServer,
    CacheStats,
    LRUCache,
    RemoteTier,
    TierStats,
)
from .serve import (
    Backoff,
    Client,
    NetClient,
    NetServer,
    NetStats,
    PlanRequest,
    PlanService,
    ServiceStats,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # config
    "MoELayerSpec",
    "ParallelSpec",
    "standard_layout",
    # errors
    "ReproError",
    "ConfigError",
    "TopologyError",
    "ScheduleError",
    "SolverError",
    "ShapeError",
    "WorkspaceError",
    "RegistryError",
    "LockTimeout",
    "ServiceError",
    "QueueFullError",
    "ServiceClosedError",
    "ProtocolError",
    # locking
    "FileLock",
    # cluster
    "ClusterSpec",
    "TESTBEDS",
    "testbed_a",
    "testbed_b",
    "compute_layer_volumes",
    # core
    "LinearPerfModel",
    "PerfModelSet",
    "PipelineContext",
    "ProfileResult",
    "GenericScheduler",
    "profile_cluster",
    "find_optimal_pipeline_degree",
    "solve_degrees_batch",
    "SolverStats",
    "solver_stats",
    "clear_solver_cache",
    "set_default_degree_solver",
    "DEGREE_SOLVERS",
    "plan_gradient_partition",
    # models
    "GPT2_XL",
    "MIXTRAL_7B",
    "MIXTRAL_22B",
    "LayerProfile",
    "profile_layer",
    "layer_op_breakdown",
    # moe
    "MOELayer",
    "GateKind",
    "GShardGate",
    "SigmoidGate",
    "XMoEGate",
    "ExpertChoiceGate",
    "SimpleFFNExpert",
    "MixtralFFNExpert",
    "SoftMoELayer",
    # systems
    "ALL_SYSTEMS",
    "DeepSpeedMoE",
    "Tutel",
    "TutelImproved",
    "PipeMoELina",
    "FSMoENoIIO",
    "FSMoE",
    # planner
    "ProfileStore",
    "PlanCompiler",
    "IterationPlan",
    "PlanPoint",
    "SweepResult",
    "plan_many",
    # registries
    "ALL_SYSTEM_KEYS",
    "available_systems",
    "get_system",
    "register_system",
    "available_model_presets",
    "get_model_preset",
    "register_model_preset",
    "available_clusters",
    "get_cluster",
    "register_cluster",
    "STEP2_SOLVERS",
    "STEP2_IMPLS",
    # experiment API
    "Workspace",
    "WorkspaceStats",
    "ExperimentSpec",
    "ExperimentResult",
    "StackSpec",
    "ClusterRef",
    # tiered cache
    "LRUCache",
    "TierStats",
    "CacheStats",
    "CacheServer",
    "RemoteTier",
    # serving
    "PlanService",
    "PlanRequest",
    "Client",
    "ServiceStats",
    "NetServer",
    "NetClient",
    "NetStats",
    "Backoff",
]
