"""Cluster topology specifications.

These objects stand in for the paper's physical testbeds (Table 3):

========  =======================  ==========================
..         Testbed A                Testbed B
========  =======================  ==========================
GPU        8x RTX A6000 per node    4x RTX 2080 Ti per node
Nodes      6 (48 GPUs total)        8 (32 GPUs total)
NVLink     112.5 GB/s (4x)          none (PCIe 3.0 x16)
Network    200 Gb/s InfiniBand      100 Gb/s InfiniBand
========  =======================  ==========================

The simulated link model is deliberately simple -- a startup latency plus a
linear per-byte term per link -- because that is exactly the model FSMoE's
own profiler fits (paper Eq. 1; Fig. 5 reports r-squared > 0.998 on the real
clusters, i.e. real collectives are already near-linear in message size).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TopologyError
from ..units import gbit_to_bytes_per_ms, gbps_to_bytes_per_ms


@dataclass(frozen=True)
class GPUSpec:
    """Compute capability of one GPU.

    Attributes:
        name: marketing name, e.g. ``"RTX A6000"``.
        macs_per_ms: sustained multiply-accumulates per millisecond for
            large dense GEMMs (fp32 tensor-core path).
        gemm_launch_ms: fixed kernel-launch plus tiling overhead charged
            once per GEMM (the alpha of the paper's GEMM model).
        memory_gib: device memory (informational; OOM is not simulated).
    """

    name: str
    macs_per_ms: float
    gemm_launch_ms: float
    memory_gib: float


@dataclass(frozen=True)
class LinkSpec:
    """A communication channel with an alpha-beta cost ``t = a + n * b``.

    Attributes:
        name: human-readable label, e.g. ``"NVLink"``.
        bandwidth_bytes_per_ms: saturated bandwidth of the channel.
        startup_ms: per-operation startup latency (NCCL launch, rendezvous).
    """

    name: str
    bandwidth_bytes_per_ms: float
    startup_ms: float

    def transfer_ms(self, nbytes: float) -> float:
        """Time to move ``nbytes`` across this link once."""
        if nbytes < 0:
            raise TopologyError(f"negative transfer size {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.startup_ms + nbytes / self.bandwidth_bytes_per_ms


@dataclass(frozen=True)
class NodeSpec:
    """One server: identical GPUs joined by an intra-node fabric."""

    gpu: GPUSpec
    gpus_per_node: int
    intra_link: LinkSpec

    def __post_init__(self) -> None:
        if self.gpus_per_node <= 0:
            raise TopologyError(
                f"gpus_per_node must be positive, got {self.gpus_per_node}"
            )


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: ``num_nodes`` identical nodes on one fabric.

    Attributes:
        name: label used in reports (e.g. ``"Testbed-A"``).
        node: per-node hardware description.
        num_nodes: number of servers.
        inter_link: the NIC fabric connecting nodes.
        a2a_efficiency: fraction of the per-GPU NIC share that AlltoAll
            sustains (NCCL AlltoAll uses many small peer-to-peer sends and
            reaches lower utilization than rings).
        allreduce_efficiency: same for ring AllReduce.
        a2a_per_peer_ms: additional latency per AlltoAll peer message.
            Direct NCCL AlltoAll sends N-1 separate messages; hierarchical
            algorithms aggregate them, which is their whole point (paper
            §3.1 pre-implements 1DH/2DH for exactly this trade).  The
            calibrated total startup at the training group size matches
            Fig. 5's fitted alpha.
    """

    name: str
    node: NodeSpec
    num_nodes: int
    inter_link: LinkSpec
    a2a_efficiency: float = 1.0
    allreduce_efficiency: float = 1.0
    a2a_per_peer_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise TopologyError(
                f"num_nodes must be positive, got {self.num_nodes}"
            )

    @property
    def total_gpus(self) -> int:
        """All GPUs in the cluster."""
        return self.num_nodes * self.node.gpus_per_node

    @property
    def gpus_per_node(self) -> int:
        """GPUs per server."""
        return self.node.gpus_per_node

    def scaled_to(self, total_gpus: int) -> "ClusterSpec":
        """Return a copy using only ``total_gpus`` GPUs (whole nodes).

        Used by the Fig. 7 experiment which varies P in {16, 32, 48}.

        Raises:
            TopologyError: if ``total_gpus`` is not a whole number of nodes
                or exceeds the cluster size.
        """
        if total_gpus % self.gpus_per_node != 0:
            raise TopologyError(
                f"{total_gpus} GPUs is not a whole number of "
                f"{self.gpus_per_node}-GPU nodes"
            )
        nodes = total_gpus // self.gpus_per_node
        if nodes > self.num_nodes:
            raise TopologyError(
                f"cluster {self.name} has {self.num_nodes} nodes, "
                f"requested {nodes}"
            )
        return ClusterSpec(
            name=f"{self.name}[P={total_gpus}]",
            node=self.node,
            num_nodes=nodes,
            inter_link=self.inter_link,
            a2a_efficiency=self.a2a_efficiency,
            allreduce_efficiency=self.allreduce_efficiency,
            a2a_per_peer_ms=self.a2a_per_peer_ms,
        )


# --- paper testbeds ---------------------------------------------------------
#
# Constants are *calibrated against the paper's own measurements*: the
# per-op times of Table 2 (GPT2-XL layer, B=4, L=1024) and the fitted
# alpha values of Fig. 5.  See EXPERIMENTS.md ("Calibration") for the
# derivation of every number.  Absolute accuracy is secondary -- the
# schedule comparisons only depend on the op-time *proportions*, which
# these constants match to Table 2.


def testbed_a() -> ClusterSpec:
    """Paper Testbed A: 6 nodes x 8 RTX A6000, NVLink pairs, 200 Gb/s IB."""
    gpu = GPUSpec(
        name="RTX A6000",
        # calibrated: Table 2-A experts 3.1 ms for 2.52e10 MACs.
        macs_per_ms=8.1e9,
        gemm_launch_ms=0.042,  # paper Fig. 5: alpha_gemm = 4.26e-2 ms
        memory_gib=48.0,
    )
    intra = LinkSpec(
        # A6000s pair over NVLink bridges; ring collectives across all 8
        # GPUs mostly traverse PCIe 4.0, so the effective fabric rate is
        # far below the 112.5 GB/s bridge peak.  Calibrated: Table 2-A
        # AllGather 4.6 ms.
        name="NVLink-pairs/PCIe4",
        bandwidth_bytes_per_ms=gbps_to_bytes_per_ms(17.0),
        startup_ms=0.035,
    )
    node = NodeSpec(gpu=gpu, gpus_per_node=8, intra_link=intra)
    inter = LinkSpec(
        name="InfiniBand-200Gb",
        # base startup such that base + 5 peers x 0.02 ms matches the
        # fitted alpha_a2a = 2.87e-1 ms of Fig. 5 at the 6-rank EP group.
        bandwidth_bytes_per_ms=gbit_to_bytes_per_ms(200.0),
        startup_ms=0.18,
    )
    return ClusterSpec(
        name="Testbed-A",
        node=node,
        num_nodes=6,
        inter_link=inter,
        a2a_efficiency=0.66,  # calibrated: Table 2-A AlltoAll 6.9 ms
        allreduce_efficiency=0.60,  # calibrated: Table 2-A AllReduce 5.26 ms
        a2a_per_peer_ms=0.02,
    )


def testbed_b() -> ClusterSpec:
    """Paper Testbed B: 8 nodes x 4 RTX 2080 Ti, PCIe 3.0, 100 Gb/s IB."""
    gpu = GPUSpec(
        name="RTX 2080 Ti",
        # calibrated: Table 2-B experts 6.7 ms for 5.05e10 MACs.
        macs_per_ms=7.5e9,
        gemm_launch_ms=0.092,  # paper Fig. 5: alpha_gemm = 9.24e-2 ms
        memory_gib=11.0,
    )
    intra = LinkSpec(
        # No peer-to-peer NVLink: ring collectives stage through host
        # memory over a shared PCIe 3.0 switch.  Calibrated: Table 2-B
        # AllGather 15.5 ms.
        name="PCIe-3.0-host-staged",
        bandwidth_bytes_per_ms=gbps_to_bytes_per_ms(4.35),
        startup_ms=0.032,
    )
    node = NodeSpec(gpu=gpu, gpus_per_node=4, intra_link=intra)
    inter = LinkSpec(
        name="InfiniBand-100Gb",
        # base startup such that base + 7 peers x 0.01 ms matches the
        # fitted alpha_a2a = 1.75e-1 ms of Fig. 5 at the 8-rank EP group.
        bandwidth_bytes_per_ms=gbit_to_bytes_per_ms(100.0),
        startup_ms=0.105,
    )
    return ClusterSpec(
        name="Testbed-B",
        node=node,
        num_nodes=8,
        inter_link=inter,
        a2a_efficiency=0.815,  # calibrated: Table 2-B AlltoAll 11.2 ms
        allreduce_efficiency=0.80,  # calibrated: Table 2-B AllReduce 7.3 ms
        a2a_per_peer_ms=0.01,
    )


#: named presets for CLI-ish entry points and benchmarks.
TESTBEDS = {
    "A": testbed_a,
    "B": testbed_b,
}
