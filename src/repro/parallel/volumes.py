"""Per-GPU message volumes and FLOP counts of a transformer-MoE layer.

This module turns a :class:`~repro.config.MoELayerSpec` plus a
:class:`~repro.config.ParallelSpec` into the ``n_*`` quantities of the
paper's performance models (Eq. 1): how many bytes each collective moves
and how many MACs each computation performs, per GPU, per layer, for the
*un-chunked* input.  Pipelining with degree ``r`` divides every token-
proportional quantity by ``r`` while the startup terms stay constant,
exactly as the paper models with ``t = alpha + (n / r) * beta``.

Dataflow being measured (paper Fig. 2)::

    attention -> MP-ReduceScatter -> gate -> order
        -> AlltoAll dispatch (inter-node)
        -> ESP-AllGather      (intra-node)
        -> experts            (compute)
        -> ESP-ReduceScatter  (intra-node)
        -> AlltoAll combine   (inter-node)
        -> MP-AllGather
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import (
    MoELayerSpec,
    ParallelSpec,
    experts_per_ep_rank,
    tokens_per_gpu,
)


def nodrop_capacity_factor(local_tokens: int, num_experts: int, top_k: int) -> float:
    """Effective capacity factor for the paper's ``f = *`` (no token drop).

    Without dropping, the dispatch buffer must be sized for the *most
    loaded* expert.  For a roughly uniform router the per-expert load is
    Multinomial(k*S, 1/E); the expected maximum of E such cells is
    approximately ``mu + sqrt(2 * mu * ln E)`` (normal approximation), so
    the effective over-provisioning factor is ``1 + sqrt(2 ln E / mu)``.
    A ``1/mu`` term guards tiny workloads where the approximation is loose.

    Args:
        local_tokens: tokens routed by one GPU (``S``).
        num_experts: number of experts (``E``).
        top_k: experts per token (``k``).

    Returns:
        A factor >= 1 to use in place of ``f``.
    """
    mean_per_expert = max(1.0, top_k * local_tokens / num_experts)
    if num_experts <= 1:
        return 1.0
    spread = math.sqrt(2.0 * math.log(num_experts) / mean_per_expert)
    return 1.0 + spread + 1.0 / mean_per_expert


def effective_capacity_factor(spec: MoELayerSpec, parallel: ParallelSpec) -> float:
    """Resolve the spec's capacity factor, expanding ``None`` (no-drop)."""
    if spec.capacity_factor is not None:
        return spec.capacity_factor
    return nodrop_capacity_factor(
        tokens_per_gpu(spec, parallel), spec.num_experts, spec.top_k
    )


@dataclass(frozen=True)
class LayerVolumes:
    """All per-GPU sizes of one transformer-MoE layer (forward direction).

    Sizes are bytes, compute is MACs; backward doubles compute volumes and
    reuses communication volumes (paper §4.4).

    Attributes:
        local_tokens: tokens entering the MoE block per GPU (``S``).
        capacity_per_expert: padded tokens per expert per source GPU
            (``T = k*f*S/E``, ceil'd).
        tokens_per_expert: tokens one expert processes after dispatch and
            ESP-AllGather (``N_EP * N_ESP * T``).
        a2a_bytes: local AlltoAll buffer per GPU (dispatch == combine).
        esp_shard_bytes: per-rank shard of the ESP AllGather/ReduceScatter.
        mp_shard_bytes: per-rank shard of the MP ReduceScatter/AllGather.
        expert_macs: expert GEMM MACs per GPU (forward).
        expert_num_gemms: number of GEMM kernels behind ``expert_macs``.
        attention_macs: attention-block MACs per GPU (forward).
        gate_macs: routing-function MACs per GPU.
        order_macs: data-layout (ordering) cost in MAC-equivalents.
        dense_grad_bytes: gradient bytes per GPU synchronized by the DP
            Gradient-AllReduce (attention + gate parameters).
    """

    local_tokens: int
    capacity_per_expert: int
    tokens_per_expert: int
    a2a_bytes: float
    esp_shard_bytes: float
    mp_shard_bytes: float
    expert_macs: float
    expert_num_gemms: int
    attention_macs: float
    gate_macs: float
    order_macs: float
    dense_grad_bytes: float


def compute_layer_volumes(
    spec: MoELayerSpec, parallel: ParallelSpec
) -> LayerVolumes:
    """Compute every per-GPU volume for ``spec`` laid out as ``parallel``.

    Raises:
        ConfigError: if experts cannot be evenly divided over EP ranks.
    """
    n_local_experts = experts_per_ep_rank(spec, parallel)
    tokens = tokens_per_gpu(spec, parallel)
    f = effective_capacity_factor(spec, parallel)
    elem = spec.dtype_bytes
    m = spec.embed_dim
    h = spec.hidden_dim

    capacity = max(1, math.ceil(spec.top_k * f * tokens / spec.num_experts))
    tokens_per_expert = parallel.n_ep * parallel.n_esp * capacity

    a2a_bytes = float(spec.num_experts * capacity * m * elem)
    # After dispatch each GPU holds (local experts x N_EP x T) tokens;
    # the ESP AllGather shares that shard with the node's other GPUs.
    esp_shard_bytes = float(n_local_experts * parallel.n_ep * capacity * m * elem)
    # MP ReduceScatter splits the node's (B*L, M) activations over N_MP.
    mp_shard_bytes = float(spec.tokens_per_worker * m * elem / max(1, parallel.n_mp))

    shard_hidden = h / max(1, parallel.n_esp)
    num_gemms = spec.num_gemms_per_expert
    expert_macs = float(
        n_local_experts * num_gemms * tokens_per_expert * m * shard_hidden
    )

    # Attention per GPU: QKV (3 M^2) + scores/context (2 L M) + output (M^2)
    # per token, sharded over MP.
    attention_macs = float(
        spec.tokens_per_worker
        * (4.0 * m * m + 2.0 * spec.seq_len * m)
        / max(1, parallel.n_mp)
    )

    gate_macs = float(tokens * m * spec.num_experts)
    # Ordering is a permutation/scatter of k rows per token; charge one
    # MAC-equivalent per moved element (it is memory bound and tiny --
    # Table 2 measures it at <1.5% of the layer).
    order_macs = float(tokens * spec.top_k * m)

    attn_params = 4.0 * m * m / max(1, parallel.n_mp)
    gate_params = float(m * spec.num_experts)
    norm_params = 4.0 * m  # two LayerNorms (scale + bias)
    dense_grad_bytes = (attn_params + gate_params + norm_params) * elem

    return LayerVolumes(
        local_tokens=tokens,
        capacity_per_expert=capacity,
        tokens_per_expert=tokens_per_expert,
        a2a_bytes=a2a_bytes,
        esp_shard_bytes=esp_shard_bytes,
        mp_shard_bytes=mp_shard_bytes,
        expert_macs=expert_macs,
        expert_num_gemms=n_local_experts * num_gemms,
        attention_macs=attention_macs,
        gate_macs=gate_macs,
        order_macs=order_macs,
        dense_grad_bytes=dense_grad_bytes,
    )
