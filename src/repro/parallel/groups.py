"""Process-group layout for DP + MP + EP + ESP (+ PP).

Reproduces the placement in the paper's Fig. 2 generalized to arbitrary
cluster sizes.  Global ranks are numbered node-major::

    rank = node_index * gpus_per_node + local_index

Within one pipeline stage:

* **MP group** and **ESP group** are the GPUs of one node (same set, two
  roles) -- their collectives are intra-node;
* **EP group** joins the GPUs with the same local index across the stage's
  nodes -- its AlltoAll is inter-node;
* **DP group** (for dense/attention parameters) joins the same-local-index
  GPUs across nodes as well: each node processes a distinct mini-batch,
  so dense weights are replicated across nodes and synchronized by the
  inter-node Gradient-AllReduce.  Expert weights are *not* replicated
  across EP positions (each node owns different experts), so they only
  need DP synchronization when ``expert_dp_degree > 1``.

Pipeline parallelism slices the cluster's nodes into ``n_pp`` contiguous
stages; every stage contains a full DP/MP/EP/ESP layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ParallelSpec
from ..errors import TopologyError
from .topology import ClusterSpec


@dataclass(frozen=True)
class GroupLayout:
    """Concrete rank assignment of every parallel group on a cluster.

    All group containers are tuples of tuples of global ranks.
    """

    cluster: ClusterSpec
    parallel: ParallelSpec
    mp_groups: tuple[tuple[int, ...], ...]
    esp_groups: tuple[tuple[int, ...], ...]
    ep_groups: tuple[tuple[int, ...], ...]
    dp_groups: tuple[tuple[int, ...], ...]
    pp_stages: tuple[tuple[int, ...], ...]

    @property
    def world_size(self) -> int:
        """Total ranks in the layout."""
        return self.parallel.world_size

    def groups_of_rank(self, rank: int) -> dict[str, tuple[int, ...]]:
        """Return the MP/ESP/EP/DP/PP groups containing ``rank``.

        Raises:
            TopologyError: if the rank does not appear in every group kind
                (malformed layout) or is out of range.
        """
        if not 0 <= rank < self.world_size:
            raise TopologyError(
                f"rank {rank} out of range [0, {self.world_size})"
            )
        found: dict[str, tuple[int, ...]] = {}
        for kind, groups in (
            ("mp", self.mp_groups),
            ("esp", self.esp_groups),
            ("ep", self.ep_groups),
            ("dp", self.dp_groups),
            ("pp", self.pp_stages),
        ):
            for group in groups:
                if rank in group:
                    found[kind] = group
                    break
            else:
                raise TopologyError(f"rank {rank} missing from {kind} groups")
        return found


def _check_divisibility(cluster: ClusterSpec, parallel: ParallelSpec) -> None:
    if parallel.n_mp != cluster.gpus_per_node:
        raise TopologyError(
            f"standard layout requires n_mp == gpus_per_node "
            f"({cluster.gpus_per_node}), got {parallel.n_mp}"
        )
    parallel.validate_standard_layout()
    if cluster.num_nodes % parallel.n_pp != 0:
        raise TopologyError(
            f"num_nodes ({cluster.num_nodes}) not divisible by n_pp "
            f"({parallel.n_pp})"
        )
    nodes_per_stage = cluster.num_nodes // parallel.n_pp
    if parallel.n_ep != nodes_per_stage:
        raise TopologyError(
            f"standard layout requires n_ep == nodes per stage "
            f"({nodes_per_stage}), got {parallel.n_ep}"
        )


def build_group_layout(
    cluster: ClusterSpec, parallel: ParallelSpec
) -> GroupLayout:
    """Materialize the standard layout of ``parallel`` on ``cluster``.

    Raises:
        TopologyError: if the layout does not match the paper's standard
            deployment (n_mp == n_esp == gpus/node, n_ep == n_dp ==
            nodes/stage) or does not divide the cluster evenly.
    """
    _check_divisibility(cluster, parallel)
    g = cluster.gpus_per_node
    nodes_per_stage = cluster.num_nodes // parallel.n_pp

    mp_groups: list[tuple[int, ...]] = []
    ep_groups: list[tuple[int, ...]] = []
    pp_stages: list[tuple[int, ...]] = []

    for stage in range(parallel.n_pp):
        first_node = stage * nodes_per_stage
        stage_ranks: list[int] = []
        for node in range(first_node, first_node + nodes_per_stage):
            node_ranks = tuple(node * g + local for local in range(g))
            mp_groups.append(node_ranks)
            stage_ranks.extend(node_ranks)
        pp_stages.append(tuple(stage_ranks))
        for local in range(g):
            ep_groups.append(
                tuple(
                    (first_node + node) * g + local
                    for node in range(nodes_per_stage)
                )
            )

    # ESP groups coincide with MP groups; DP groups coincide with EP groups
    # (dense weights replicate across a stage's nodes).  They are stored
    # separately because their collective roles and message volumes differ.
    return GroupLayout(
        cluster=cluster,
        parallel=parallel,
        mp_groups=tuple(mp_groups),
        esp_groups=tuple(mp_groups),
        ep_groups=tuple(ep_groups),
        dp_groups=tuple(ep_groups),
        pp_stages=tuple(pp_stages),
    )
