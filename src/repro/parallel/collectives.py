"""Analytical cost models for the collectives used by MoE training.

These are the *ground truth* of the simulated cluster: every operation the
discrete-event executor runs gets its duration from here.  FSMoE's online
profiler (:mod:`repro.core.profiler`) then re-measures these costs like
``nccl-tests`` would and fits the paper's linear models -- the scheduler
never reads this module directly.

Cost conventions (standard ring-algorithm accounting, all per operation):

* AllGather / ReduceScatter over N ranks, shard of ``n`` bytes per rank:
  ``t = a + (N-1) * n / BW``
* AllReduce over N ranks, buffer of ``n`` bytes: ``t = 2a + 2 n (N-1)/(N BW)``
* AlltoAll over N ranks, local buffer of ``n`` bytes:
  direct (NCCL): ``t = a + n (N-1)/(N BW)``; the hierarchical 1DH/2DH
  variants trade extra intra-node phases for fewer inter-node startups.

Inter-node bandwidth is shared: in the standard layout all ``g`` GPUs of a
node run their EP AlltoAll (or their DP Gradient-AllReduce) concurrently
through the node's single NIC, so each GPU sees ``BW_inter / g``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import TopologyError
from .topology import ClusterSpec, LinkSpec


class CollectiveKind(enum.Enum):
    """The five communication primitives of a DP+MP+EP+ESP MoE layer."""

    ALLTOALL = "alltoall"
    ALLGATHER = "allgather"
    REDUCESCATTER = "reducescatter"
    ALLREDUCE = "allreduce"


class A2AAlgorithm(enum.Enum):
    """AlltoAll algorithm choices pre-implemented by FSMoE (paper §3.1)."""

    NCCL = "nccl"  # direct pairwise exchange (NCCL default)
    HIER_1D = "1dh"  # Hetu's 1D hierarchical algorithm
    HIER_2D = "2dh"  # Tutel / DeepSpeed-MoE 2D hierarchical algorithm


def _ring_phase_ms(link: LinkSpec, moved_bytes: float) -> float:
    """One ring phase moving ``moved_bytes`` per rank over ``link``."""
    if moved_bytes <= 0:
        return 0.0
    return link.startup_ms + moved_bytes / link.bandwidth_bytes_per_ms


@dataclass(frozen=True)
class CollectiveCostModel:
    """Cost oracle for one cluster under the standard MoE layout.

    Attributes:
        cluster: hardware description.
        nic_concurrency: GPUs per node sharing the NIC simultaneously
            (defaults to all of them, matching the standard layout where
            every GPU participates in an inter-node collective at once).
    """

    cluster: ClusterSpec
    nic_concurrency: int | None = None

    def __post_init__(self) -> None:
        if self.nic_concurrency is not None and self.nic_concurrency <= 0:
            raise TopologyError(
                f"nic_concurrency must be positive, got {self.nic_concurrency}"
            )

    # -- effective links --------------------------------------------------

    @property
    def _nic_share(self) -> int:
        if self.nic_concurrency is not None:
            return self.nic_concurrency
        return self.cluster.gpus_per_node

    @property
    def inter_link(self) -> LinkSpec:
        """Per-GPU share of the node NIC."""
        raw = self.cluster.inter_link
        return LinkSpec(
            name=raw.name,
            bandwidth_bytes_per_ms=raw.bandwidth_bytes_per_ms / self._nic_share,
            startup_ms=raw.startup_ms,
        )

    @property
    def intra_link(self) -> LinkSpec:
        """Intra-node fabric (NVLink or PCIe)."""
        return self.cluster.node.intra_link

    # -- intra-node collectives (MP / ESP) ---------------------------------

    def allgather_ms(self, shard_bytes: float, group_size: int) -> float:
        """Intra-node ring AllGather of one ``shard_bytes`` shard per rank."""
        if group_size <= 1 or shard_bytes <= 0:
            return 0.0
        return _ring_phase_ms(self.intra_link, (group_size - 1) * shard_bytes)

    def reducescatter_ms(self, shard_bytes: float, group_size: int) -> float:
        """Intra-node ring ReduceScatter producing one shard per rank."""
        if group_size <= 1 or shard_bytes <= 0:
            return 0.0
        return _ring_phase_ms(self.intra_link, (group_size - 1) * shard_bytes)

    # -- inter-node collectives (EP / DP) -----------------------------------

    def allreduce_ms(self, buffer_bytes: float, group_size: int) -> float:
        """Inter-node ring AllReduce of ``buffer_bytes`` per rank."""
        if group_size <= 1 or buffer_bytes <= 0:
            return 0.0
        moved = 2.0 * buffer_bytes * (group_size - 1) / group_size
        link = self.inter_link
        bandwidth = (
            link.bandwidth_bytes_per_ms * self.cluster.allreduce_efficiency
        )
        return 2.0 * link.startup_ms + moved / bandwidth

    def alltoall_ms(
        self,
        buffer_bytes: float,
        group_size: int,
        algorithm: A2AAlgorithm = A2AAlgorithm.NCCL,
    ) -> float:
        """Inter-node AlltoAll of a ``buffer_bytes`` local buffer per rank.

        The EP group spans the nodes of a stage (one GPU per node), so every
        byte that changes rank crosses the NIC.

        Raises:
            TopologyError: for an unknown algorithm.
        """
        if group_size <= 1 or buffer_bytes <= 0:
            return 0.0
        cross = buffer_bytes * (group_size - 1) / group_size
        eff = self.cluster.a2a_efficiency
        raw = self.inter_link
        per_peer = self.cluster.a2a_per_peer_ms
        peers = group_size - 1
        g = self.cluster.gpus_per_node
        a2a_bandwidth = raw.bandwidth_bytes_per_ms * eff
        if algorithm is A2AAlgorithm.NCCL:
            # direct pairwise exchange: one message per peer.
            startup = raw.startup_ms + per_peer * peers
            return startup + cross / a2a_bandwidth
        if algorithm is A2AAlgorithm.HIER_1D:
            # Hetu 1DH: the node leader aggregates all g GPUs' traffic into
            # one message per peer node, dividing the per-peer latencies by
            # g, at the cost of the intra staging phase.  The leader owns
            # the whole NIC, so byte time matches the direct algorithm.
            intra = _ring_phase_ms(self.intra_link, buffer_bytes)
            startup = raw.startup_ms + per_peer * peers / g
            # ``raw`` is the per-GPU NIC share; the leader owns the full
            # NIC but must move the whole node's traffic (g buffers).
            leader_bandwidth = (
                raw.bandwidth_bytes_per_ms * self._nic_share * eff
            )
            return intra + startup + (cross * g) / leader_bandwidth
        if algorithm is A2AAlgorithm.HIER_2D:
            # Tutel/DeepSpeed 2DH: intra-node alignment phase + inter-node
            # exchange.  Its aggregation win applies to groups spanning
            # several GPUs per node (full-world AlltoAll); for one-GPU-per-
            # node EP groups it only pays the staging.
            intra = _ring_phase_ms(self.intra_link, buffer_bytes)
            startup = raw.startup_ms + per_peer * peers
            return intra + startup + cross / a2a_bandwidth
        raise TopologyError(f"unknown AlltoAll algorithm {algorithm!r}")

    # -- computation --------------------------------------------------------

    def gemm_ms(self, macs: float, num_gemms: int = 1) -> float:
        """Dense GEMM time: launch overhead per GEMM + MAC throughput term.

        ``macs`` is the total multiply-accumulate count over all
        ``num_gemms`` kernels (paper §4.1: alpha_exp and beta_exp scale
        with the number of identical GEMMs).
        """
        if macs < 0:
            raise TopologyError(f"negative MAC count {macs}")
        if macs == 0:
            return 0.0
        gpu = self.cluster.node.gpu
        return num_gemms * gpu.gemm_launch_ms + macs / gpu.macs_per_ms
