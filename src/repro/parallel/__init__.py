"""Simulated cluster substrate: topology, process groups, collective costs.

This package replaces the paper's physical testbeds (Table 3).  It provides

* :mod:`~repro.parallel.topology` -- GPU/node/cluster specifications with
  intra-node (NVLink/PCIe) and inter-node (InfiniBand) links, including
  presets for the paper's Testbed A and Testbed B;
* :mod:`~repro.parallel.groups` -- DP/MP/EP/ESP/PP process-group layout and
  rank mapping (paper Fig. 2);
* :mod:`~repro.parallel.collectives` -- analytical cost models for ring
  AllReduce/AllGather/ReduceScatter and three AlltoAll algorithms;
* :mod:`~repro.parallel.volumes` -- per-GPU message sizes and FLOP counts
  for every operation in a transformer-MoE layer.
"""

from .topology import (
    GPUSpec,
    LinkSpec,
    NodeSpec,
    ClusterSpec,
    testbed_a,
    testbed_b,
    TESTBEDS,
)
from .groups import GroupLayout, build_group_layout
from .collectives import (
    CollectiveKind,
    CollectiveCostModel,
    A2AAlgorithm,
)
from .volumes import LayerVolumes, compute_layer_volumes, nodrop_capacity_factor

__all__ = [
    "GPUSpec",
    "LinkSpec",
    "NodeSpec",
    "ClusterSpec",
    "testbed_a",
    "testbed_b",
    "TESTBEDS",
    "GroupLayout",
    "build_group_layout",
    "CollectiveKind",
    "CollectiveCostModel",
    "A2AAlgorithm",
    "LayerVolumes",
    "compute_layer_volumes",
    "nodrop_capacity_factor",
]
