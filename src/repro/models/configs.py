"""Real-world MoE model presets used in the paper's evaluation (§6.4).

The paper trains MoE variants of GPT-2 and Mixtral with ``B = 1``,
``k = 2``, ``f = 1.2``, experts equal to the node count, and layer counts
trimmed to fit the testbeds (7 layers for Mixtral-7B on Testbed B, 33 for
Mixtral-22B on Testbed A).  GPT2-XL's layer count is not stated; we use 12
(documented in EXPERIMENTS.md) -- speedup ratios are insensitive to the
layer count once > 2 because all layers are identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MoELayerSpec
from ..errors import ConfigError, RegistryError
from ..naming import canonical_name as _canon_model


@dataclass(frozen=True)
class ModelPreset:
    """Architecture constants of one evaluated model.

    Attributes:
        name: display name used in benchmark tables.
        embed_dim: token embedding size ``M``.
        hidden_scale: expert ``H / M`` ratio.
        num_heads: attention heads.
        ffn_type: ``"simple"`` or ``"mixtral"``.
        num_layers: transformer-MoE layers in the evaluated variant.
        top_k: experts per token (paper fixes ``k = 2``).
        capacity_factor: paper fixes ``f = 1.2`` for the e2e runs.
    """

    name: str
    embed_dim: int
    hidden_scale: float
    num_heads: int
    ffn_type: str
    num_layers: int
    top_k: int = 2
    capacity_factor: float = 1.2


#: GPT-2 XL backbone (1600 hidden, 25 heads) with MoE feed-forwards.
GPT2_XL = ModelPreset(
    name="GPT2-XL",
    embed_dim=1600,
    hidden_scale=4.0,
    num_heads=25,
    ffn_type="simple",
    num_layers=12,
)

#: Mixtral-8x7B geometry: 4096 hidden, 14336 ffn, 32 heads, SwiGLU experts.
MIXTRAL_7B = ModelPreset(
    name="Mixtral-7B",
    embed_dim=4096,
    hidden_scale=3.5,
    num_heads=32,
    ffn_type="mixtral",
    num_layers=7,
)

#: Mixtral-8x22B geometry: 6144 hidden, 16384 ffn, 48 heads; 33 layers fit
#: Testbed A in the paper.
MIXTRAL_22B = ModelPreset(
    name="Mixtral-22B",
    embed_dim=6144,
    hidden_scale=16384.0 / 6144.0,
    num_heads=48,
    ffn_type="mixtral",
    num_layers=33,
)

#: name -> preset registry for benchmarks and examples.
MODEL_PRESETS = {
    GPT2_XL.name: GPT2_XL,
    MIXTRAL_7B.name: MIXTRAL_7B,
    MIXTRAL_22B.name: MIXTRAL_22B,
}


# The preset registry deliberately does NOT use repro.naming.Registry:
# the public MODEL_PRESETS dict predates it and is the single source of
# truth (callers iterate and even mutate it directly), so lookups scan it
# live instead of maintaining a second store that could drift.


def register_model_preset(
    preset: ModelPreset, *, overwrite: bool = False
) -> None:
    """Add a preset to the registry under its display name.

    Raises:
        RegistryError: when a preset of that name exists and ``overwrite``
            is False.
    """
    key = _canon_model(preset.name)
    existing = {
        _canon_model(existing_name) for existing_name in MODEL_PRESETS
    }
    if key in existing and not overwrite:
        raise RegistryError(
            f"model preset {preset.name!r} is already registered"
        )
    stale = [
        existing_name
        for existing_name in MODEL_PRESETS
        if _canon_model(existing_name) == key
    ]
    for existing_name in stale:
        del MODEL_PRESETS[existing_name]
    MODEL_PRESETS[preset.name] = preset


def get_model_preset(name: str) -> ModelPreset:
    """Look a preset up by name (case- and punctuation-insensitive).

    Raises:
        RegistryError: for an unknown model name.
    """
    key = _canon_model(name)
    for preset in MODEL_PRESETS.values():
        if _canon_model(preset.name) == key:
            return preset
    raise RegistryError(
        f"unknown model preset {name!r}; available: "
        f"{', '.join(available_model_presets())}"
    )


def available_model_presets() -> tuple[str, ...]:
    """Display names of every registered preset, sorted."""
    return tuple(sorted(MODEL_PRESETS))


def layer_spec_for(
    preset: ModelPreset,
    *,
    batch_size: int,
    seq_len: int,
    num_experts: int,
    capacity_factor: float | None = None,
) -> MoELayerSpec:
    """Instantiate a preset's :class:`MoELayerSpec` for one deployment.

    The expert count is deployment-dependent in the paper ("the number of
    experts is the same as the number of nodes", §6.4), so it is a
    required argument.

    Raises:
        ConfigError: propagated from :class:`MoELayerSpec` validation.
    """
    if num_experts <= 0:
        raise ConfigError(f"num_experts must be positive, got {num_experts}")
    f = capacity_factor if capacity_factor is not None else preset.capacity_factor
    return MoELayerSpec(
        batch_size=batch_size,
        seq_len=seq_len,
        embed_dim=preset.embed_dim,
        hidden_scale=preset.hidden_scale,
        num_experts=num_experts,
        top_k=preset.top_k,
        capacity_factor=f,
        num_heads=preset.num_heads,
        ffn_type=preset.ffn_type,  # type: ignore[arg-type]
    )
