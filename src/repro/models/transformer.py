"""Per-layer timing profiles: the bridge from specs to schedules.

:func:`profile_layer` combines a :class:`~repro.config.MoELayerSpec`, a
:class:`~repro.config.ParallelSpec` and a fitted
:class:`~repro.core.perf_model.PerfModelSet` into everything the schedule
builders need: forward/backward pipeline contexts, dense ("Others")
durations, and the dense-gradient volume.  :func:`layer_op_breakdown`
produces the per-operation table of the paper's Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MoELayerSpec, ParallelSpec
from ..core.constraints import PipelineContext, context_from_volumes
from ..core.perf_model import PerfModelSet
from ..errors import ConfigError
from ..moe.gates import GATE_TIMING, GateKind
from ..parallel.volumes import LayerVolumes, compute_layer_volumes

#: attention sustains a lower fraction of GEMM throughput than the expert
#: FFNs (softmax, masking and layer norms are memory-bound).  Calibrated
#: against Table 2's attention rows on both testbeds.
ATTENTION_EFFICIENCY = 0.45


@dataclass(frozen=True)
class LayerProfile:
    """Timing profile of one generalized layer on one deployment.

    Attributes:
        spec: layer shape (post gate-capacity adjustment, if any).
        parallel: parallel layout.
        volumes: per-GPU message/FLOP volumes.
        ctx_fw: forward pipeline context (``t_gar = 0``).
        ctx_bw: backward pipeline context (``t_gar = 0``; the partition
            plan sets the final value).
        dense_fw_ms: forward non-MoE duration (attention + routing +
            ordering + MP collectives).
        dense_bw_ms: backward non-MoE duration (attention doubled).
        attention_fw_ms: forward attention time (for Table 2).
        gate_ms: routing-function time (forward; for Table 2).
        order_ms: ordering time (forward; for Table 2).
        mp_comm_ms: MP ReduceScatter + AllGather time per phase.
        grad_bytes: dense-parameter gradient bytes (Gradient-AllReduce).
    """

    spec: MoELayerSpec
    parallel: ParallelSpec
    volumes: LayerVolumes
    ctx_fw: PipelineContext
    ctx_bw: PipelineContext
    dense_fw_ms: float
    dense_bw_ms: float
    attention_fw_ms: float
    gate_ms: float
    order_ms: float
    mp_comm_ms: float
    grad_bytes: float


def profile_layer(
    spec: MoELayerSpec,
    parallel: ParallelSpec,
    models: PerfModelSet,
    *,
    gate_kind: GateKind = GateKind.GSHARD,
    routing_overhead: float = 1.0,
) -> LayerProfile:
    """Build a :class:`LayerProfile` for one layer on one deployment.

    Args:
        spec: layer shape.
        parallel: layout (standard deployment assumed by the schedules).
        models: fitted performance models (from the online profiler).
        gate_kind: routing function; its timing profile scales routing
            FLOPs and may override the effective capacity factor (expert
            choice fills experts exactly, Table 6).
        routing_overhead: extra multiplier on gate+order compute, used to
            model unoptimized routing implementations (DeepSpeed-MoE).

    Raises:
        ConfigError: for a non-positive routing overhead.
    """
    if routing_overhead <= 0:
        raise ConfigError(
            f"routing_overhead must be positive, got {routing_overhead}"
        )
    timing = GATE_TIMING[gate_kind]
    effective_spec = spec
    if timing.capacity_factor_override is not None:
        effective_spec = spec.with_(
            capacity_factor=timing.capacity_factor_override
        )
    volumes = compute_layer_volumes(effective_spec, parallel)

    ctx_fw = context_from_volumes(
        models,
        a2a_bytes=volumes.a2a_bytes,
        esp_shard_bytes=volumes.esp_shard_bytes,
        expert_macs=volumes.expert_macs,
        expert_num_gemms=volumes.expert_num_gemms,
        backward=False,
    )
    ctx_bw = context_from_volumes(
        models,
        a2a_bytes=volumes.a2a_bytes,
        esp_shard_bytes=volumes.esp_shard_bytes,
        expert_macs=volumes.expert_macs,
        expert_num_gemms=volumes.expert_num_gemms,
        backward=True,
    )

    attention_fw_ms = models.expert_model(4).time_ms(
        volumes.attention_macs / ATTENTION_EFFICIENCY
    )
    gate_ms = (
        models.expert_model(timing.kernel_count).time_ms(
            volumes.gate_macs * timing.macs_multiplier
        )
        * routing_overhead
    )
    order_ms = models.expert_model(1).time_ms(volumes.order_macs) * routing_overhead
    mp_comm_ms = models.reducescatter.time_ms(
        volumes.mp_shard_bytes
    ) + models.allgather.time_ms(volumes.mp_shard_bytes)

    dense_fw_ms = attention_fw_ms + gate_ms + order_ms + mp_comm_ms
    dense_bw_ms = 2.0 * attention_fw_ms + gate_ms + order_ms + mp_comm_ms

    return LayerProfile(
        spec=effective_spec,
        parallel=parallel,
        volumes=volumes,
        ctx_fw=ctx_fw,
        ctx_bw=ctx_bw,
        dense_fw_ms=dense_fw_ms,
        dense_bw_ms=dense_bw_ms,
        attention_fw_ms=attention_fw_ms,
        gate_ms=gate_ms,
        order_ms=order_ms,
        mp_comm_ms=mp_comm_ms,
        grad_bytes=volumes.dense_grad_bytes,
    )


#: row order of the paper's Table 2.
BREAKDOWN_OPS = (
    "AlltoAll",
    "AllReduce",
    "AllGather",
    "ReduceScatter",
    "Experts",
    "Routing",
    "Order",
    "Attention",
)


def layer_op_breakdown(
    profile: LayerProfile, models: PerfModelSet, phase: str
) -> dict[str, float]:
    """Un-pipelined per-operation times of one layer (Table 2 rows).

    ``AllGather``/``ReduceScatter`` sum the ESP and MP collectives (both
    intra-node, as in the paper's measurement).  ``AllReduce`` is the DP
    Gradient-AllReduce, present only in backward.

    Raises:
        ConfigError: for an unknown phase.
    """
    if phase not in ("forward", "backward"):
        raise ConfigError(f"phase must be forward/backward, got {phase!r}")
    backward = phase == "backward"
    ctx = profile.ctx_bw if backward else profile.ctx_fw
    esp_ag = ctx.t_ag(1.0)
    esp_rs = ctx.t_rs(1.0)
    mp_ag = models.allgather.time_ms(profile.volumes.mp_shard_bytes)
    mp_rs = models.reducescatter.time_ms(profile.volumes.mp_shard_bytes)
    return {
        "AlltoAll": 2.0 * ctx.t_a2a(1.0),
        "AllReduce": (
            models.allreduce.time_ms(profile.grad_bytes) if backward else 0.0
        ),
        "AllGather": esp_ag + mp_ag,
        "ReduceScatter": esp_rs + mp_rs,
        "Experts": ctx.t_exp(1.0),
        "Routing": profile.gate_ms,
        "Order": profile.order_ms,
        "Attention": (2.0 if backward else 1.0) * profile.attention_fw_ms,
    }
