"""Real-world model presets and iteration assembly.

* :mod:`~repro.models.configs` -- GPT2-XL-MoE, Mixtral-7B, Mixtral-22B
  presets (paper §6.4);
* :mod:`~repro.models.transformer` -- per-layer profiles (op durations,
  pipeline contexts, gradient sizes) and the Table 2 breakdown;
* :mod:`~repro.models.pipeline` -- GPipe pipeline parallelism (Fig. 8).
"""

from .configs import (
    ModelPreset,
    GPT2_XL,
    MIXTRAL_7B,
    MIXTRAL_22B,
    MODEL_PRESETS,
    available_model_presets,
    get_model_preset,
    layer_spec_for,
    register_model_preset,
)
from .transformer import (
    LayerProfile,
    profile_layer,
    layer_op_breakdown,
)
from .pipeline import gpipe_iteration_ms, microbatch_spec, split_stages
from .memory import MemoryFootprint, estimate_memory, max_layers_that_fit

__all__ = [
    "ModelPreset",
    "GPT2_XL",
    "MIXTRAL_7B",
    "MIXTRAL_22B",
    "MODEL_PRESETS",
    "available_model_presets",
    "get_model_preset",
    "register_model_preset",
    "layer_spec_for",
    "LayerProfile",
    "profile_layer",
    "layer_op_breakdown",
    "gpipe_iteration_ms",
    "microbatch_spec",
    "split_stages",
    "MemoryFootprint",
    "estimate_memory",
    "max_layers_that_fit",
]
