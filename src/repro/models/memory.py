"""Per-GPU memory footprint estimation (why the paper trims layer counts).

The paper sizes its end-to-end models by what fits: "Ensuring the models
to be held on Testbed-B (32x 2080Ti 11GB), we set the number of layers
for Mixtral-7B to 7" and "due to the memory limit, the number of layers
for Mixtral-22B is set to 33 on Testbed-A" (§6.4).  This module estimates
the per-GPU footprint under the standard layout so those choices can be
checked and new deployments planned.

Accounting (fp32 training, Adam):

* parameters: attention (sharded over MP) + local expert shards (over
  ESP) + gate, embedding excluded (tiny relative to the MoE stack);
* gradients: same size as parameters;
* optimizer state: 2x parameters (Adam moments);
* activations: per layer, the tensors a backward pass must keep --
  attention I/O, dispatch buffers, expert hidden states.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MoELayerSpec, ParallelSpec, experts_per_ep_rank, \
    tokens_per_gpu
from ..errors import ConfigError
from ..parallel.volumes import effective_capacity_factor
from ..units import GIB

#: Adam keeps two moments per parameter.
OPTIMIZER_STATE_FACTOR = 2.0
#: fraction of device memory usable by the framework (allocator slack,
#: CUDA context, NCCL buffers).
USABLE_MEMORY_FRACTION = 0.9


@dataclass(frozen=True)
class MemoryFootprint:
    """Per-GPU memory use of one model configuration, in bytes.

    Attributes:
        parameter_bytes: local parameter shards.
        gradient_bytes: gradients (== parameters).
        optimizer_bytes: Adam moments.
        activation_bytes: stashed activations for backward.
    """

    parameter_bytes: float
    gradient_bytes: float
    optimizer_bytes: float
    activation_bytes: float

    @property
    def total_bytes(self) -> float:
        """Everything resident at the backward pass's peak."""
        return (
            self.parameter_bytes
            + self.gradient_bytes
            + self.optimizer_bytes
            + self.activation_bytes
        )

    @property
    def total_gib(self) -> float:
        """Total in binary gigabytes (device-memory units)."""
        return self.total_bytes / GIB

    def fits(self, device_memory_gib: float) -> bool:
        """Whether the footprint fits a device of the given size."""
        return self.total_bytes <= (
            device_memory_gib * GIB * USABLE_MEMORY_FRACTION
        )


def layer_parameter_bytes(
    spec: MoELayerSpec, parallel: ParallelSpec
) -> float:
    """Local parameter bytes of one generalized layer."""
    m = spec.embed_dim
    h = spec.hidden_dim
    elem = spec.dtype_bytes
    attn = 4.0 * m * m / parallel.n_mp
    local_experts = experts_per_ep_rank(spec, parallel)
    expert = (
        local_experts * spec.num_gemms_per_expert * m * (h / parallel.n_esp)
    )
    gate = m * spec.num_experts
    norms = 4.0 * m
    return (attn + expert + gate + norms) * elem


def layer_activation_bytes(
    spec: MoELayerSpec, parallel: ParallelSpec
) -> float:
    """Stashed activation bytes of one layer (token-proportional)."""
    m = spec.embed_dim
    elem = spec.dtype_bytes
    tokens = tokens_per_gpu(spec, parallel)
    f = effective_capacity_factor(spec, parallel)
    # attention in/out + qkv (sharded), gate scores, dispatch buffer in/out,
    # expert hidden states (sharded over ESP).
    attention = 4.0 * tokens * m
    routed = spec.top_k * f * tokens
    dispatch = 2.0 * routed * m
    hidden = (
        spec.num_gemms_per_expert
        * routed
        * (spec.hidden_dim / parallel.n_esp)
    )
    return (attention + dispatch + hidden) * elem


def estimate_memory(
    spec: MoELayerSpec,
    parallel: ParallelSpec,
    num_layers: int,
) -> MemoryFootprint:
    """Per-GPU footprint of ``num_layers`` identical generalized layers.

    Raises:
        ConfigError: for a non-positive layer count.
    """
    if num_layers <= 0:
        raise ConfigError(f"num_layers must be positive, got {num_layers}")
    params = num_layers * layer_parameter_bytes(spec, parallel)
    activations = num_layers * layer_activation_bytes(spec, parallel)
    return MemoryFootprint(
        parameter_bytes=params,
        gradient_bytes=params,
        optimizer_bytes=OPTIMIZER_STATE_FACTOR * params,
        activation_bytes=activations,
    )


def max_layers_that_fit(
    spec: MoELayerSpec,
    parallel: ParallelSpec,
    device_memory_gib: float,
    *,
    upper_bound: int = 512,
) -> int:
    """Largest layer count whose footprint fits the device (0 if none)."""
    lo = 0
    for n in range(1, upper_bound + 1):
        if estimate_memory(spec, parallel, n).fits(device_memory_gib):
            lo = n
        else:
            break
    return lo
