"""GPipe-style pipeline parallelism (paper §6.4, Fig. 8).

The paper enables PP with ``N_PP = 2`` using GPipe: the model's layers
split into contiguous stages, the batch splits into micro-batches, all
micro-batches flow forward through the stages and then backward.  With
``m`` micro-batches and ``p`` stages the classic GPipe makespan is
``(m + p - 1) * (t_fw_stage + t_bw_stage)`` plus whatever gradient
synchronization remains exposed at the flush.

Each system's per-micro-batch stage times come from its own schedule
(simulated with the DES executor), so the systems' relative merits carry
into the PP setting; gradient work is charged once, on the last
micro-batch's backward (``bw_with_gar - bw_no_gar``).
"""

from __future__ import annotations

from typing import Sequence

from ..config import MoELayerSpec
from ..errors import ConfigError


def split_stages(num_layers: int, num_stages: int) -> tuple[int, ...]:
    """Split ``num_layers`` into ``num_stages`` contiguous stage sizes.

    Layers distribute as evenly as possible, earlier stages taking the
    remainder (7 layers over 2 stages -> ``(4, 3)``) -- the conventional
    contiguous GPipe partition.  Every stage gets at least one layer.

    Raises:
        ConfigError: when there are fewer layers than stages (or either
            count is non-positive).
    """
    if num_stages <= 0 or num_layers <= 0:
        raise ConfigError(
            f"layers and stages must be positive, got "
            f"{num_layers}/{num_stages}"
        )
    if num_layers < num_stages:
        raise ConfigError(
            f"cannot split {num_layers} layers into {num_stages} "
            f"non-empty stages"
        )
    base, remainder = divmod(num_layers, num_stages)
    return tuple(
        base + (1 if stage < remainder else 0)
        for stage in range(num_stages)
    )


def _per_stage(
    value: float | Sequence[float], num_stages: int, name: str
) -> tuple[float, ...]:
    """Broadcast a scalar stage time or validate a per-stage sequence."""
    if isinstance(value, (int, float)):
        return (float(value),) * num_stages
    times = tuple(float(v) for v in value)
    if len(times) != num_stages:
        raise ConfigError(
            f"{name} has {len(times)} entries for {num_stages} stages"
        )
    return times


def microbatch_spec(spec: MoELayerSpec, num_micro: int) -> MoELayerSpec:
    """Split one layer spec into a per-micro-batch spec.

    GPipe splits the batch; with the paper's ``B = 1`` we split the
    sequence dimension instead (token volumes are what all costs scale
    with).

    Raises:
        ConfigError: when the tokens cannot be split evenly.
    """
    if num_micro <= 0:
        raise ConfigError(f"num_micro must be positive, got {num_micro}")
    if spec.batch_size % num_micro == 0:
        return spec.with_(batch_size=spec.batch_size // num_micro)
    if spec.seq_len % num_micro == 0:
        return spec.with_(seq_len=spec.seq_len // num_micro)
    raise ConfigError(
        f"cannot split B={spec.batch_size}, L={spec.seq_len} into "
        f"{num_micro} micro-batches evenly"
    )


def gpipe_iteration_ms(
    fw_stage_ms: float | Sequence[float],
    bw_stage_no_gar_ms: float | Sequence[float],
    gar_exposed_ms: float | Sequence[float],
    num_stages: int,
    num_micro: int,
) -> float:
    """GPipe makespan for one iteration, homogeneous or heterogeneous.

    Each timing argument is either one scalar (all stages identical --
    the classic ``(m + p - 1) * (t_fw + t_bw)`` schedule) or a
    per-stage sequence of length ``num_stages``.  Heterogeneous stages
    arise whenever the layer count does not divide the stage count
    (:func:`split_stages`) or when the model's layers themselves differ;
    a micro-batch then drains through every stage once
    (``sum(t_fw) + sum(t_bw)``) while the remaining ``m - 1``
    micro-batches queue behind the slowest stage, which paces the
    pipeline in both directions (``(m - 1) * (max(t_fw) + max(t_bw))``).

    Args:
        fw_stage_ms: forward time of each stage for one micro-batch.
        bw_stage_no_gar_ms: backward time of each stage for one
            micro-batch with gradient synchronization excluded.
        gar_exposed_ms: extra time each stage's gradient-synchronization
            strategy adds on the flush (its backward-with-GAR minus
            backward-without-GAR, for the full per-stage gradient
            volume).  Stages reduce disjoint parameters over disjoint DP
            groups concurrently, so only the slowest stage's exposure
            extends the iteration.
        num_stages: ``p`` (the paper's ``N_PP``).
        num_micro: ``m``.

    Raises:
        ConfigError: for non-positive stage/micro counts or a per-stage
            sequence whose length disagrees with ``num_stages``.
    """
    if num_stages <= 0 or num_micro <= 0:
        raise ConfigError(
            f"stages and micro-batches must be positive, got "
            f"{num_stages}/{num_micro}"
        )
    fw = _per_stage(fw_stage_ms, num_stages, "fw_stage_ms")
    bw = _per_stage(bw_stage_no_gar_ms, num_stages, "bw_stage_no_gar_ms")
    gar = _per_stage(gar_exposed_ms, num_stages, "gar_exposed_ms")
    drain = sum(fw) + sum(bw)
    steady = (num_micro - 1) * (max(fw) + max(bw))
    return drain + steady + max(0.0, max(gar))
