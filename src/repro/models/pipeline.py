"""GPipe-style pipeline parallelism (paper §6.4, Fig. 8).

The paper enables PP with ``N_PP = 2`` using GPipe: the model's layers
split into contiguous stages, the batch splits into micro-batches, all
micro-batches flow forward through the stages and then backward.  With
``m`` micro-batches and ``p`` stages the classic GPipe makespan is
``(m + p - 1) * (t_fw_stage + t_bw_stage)`` plus whatever gradient
synchronization remains exposed at the flush.

Each system's per-micro-batch stage times come from its own schedule
(simulated with the DES executor), so the systems' relative merits carry
into the PP setting; gradient work is charged once, on the last
micro-batch's backward (``bw_with_gar - bw_no_gar``).
"""

from __future__ import annotations

from ..config import MoELayerSpec
from ..errors import ConfigError


def microbatch_spec(spec: MoELayerSpec, num_micro: int) -> MoELayerSpec:
    """Split one layer spec into a per-micro-batch spec.

    GPipe splits the batch; with the paper's ``B = 1`` we split the
    sequence dimension instead (token volumes are what all costs scale
    with).

    Raises:
        ConfigError: when the tokens cannot be split evenly.
    """
    if num_micro <= 0:
        raise ConfigError(f"num_micro must be positive, got {num_micro}")
    if spec.batch_size % num_micro == 0:
        return spec.with_(batch_size=spec.batch_size // num_micro)
    if spec.seq_len % num_micro == 0:
        return spec.with_(seq_len=spec.seq_len // num_micro)
    raise ConfigError(
        f"cannot split B={spec.batch_size}, L={spec.seq_len} into "
        f"{num_micro} micro-batches evenly"
    )


def gpipe_iteration_ms(
    fw_stage_ms: float,
    bw_stage_no_gar_ms: float,
    gar_exposed_ms: float,
    num_stages: int,
    num_micro: int,
) -> float:
    """GPipe makespan for one iteration.

    Args:
        fw_stage_ms: forward time of one stage for one micro-batch.
        bw_stage_no_gar_ms: backward time of one stage for one micro-batch
            with gradient synchronization excluded.
        gar_exposed_ms: extra time the system's gradient-synchronization
            strategy adds on the flush (its backward-with-GAR minus
            backward-without-GAR, for the full per-stage gradient volume).
        num_stages: ``p`` (the paper's ``N_PP``).
        num_micro: ``m``.

    Raises:
        ConfigError: for non-positive stage/micro counts.
    """
    if num_stages <= 0 or num_micro <= 0:
        raise ConfigError(
            f"stages and micro-batches must be positive, got "
            f"{num_stages}/{num_micro}"
        )
    bubbles = num_micro + num_stages - 1
    return bubbles * (fw_stage_ms + bw_stage_no_gar_ms) + max(0.0, gar_exposed_ms)
