"""In-process SPMD runtime: virtual ranks and data-moving collectives.

The timing side of this library never moves real data; this package is the
*correctness* substrate.  A :class:`VirtualGroup` holds one numpy array per
rank and implements the data semantics of the NCCL collectives
(AllReduce, AllGather, ReduceScatter, AlltoAll), so routing, dispatch and
expert-sharding logic can be executed and checked for real.
"""

from .virtual_cluster import (
    VirtualGroup,
    all_gather,
    all_reduce,
    all_to_all,
    reduce_scatter,
)

__all__ = [
    "VirtualGroup",
    "all_reduce",
    "all_gather",
    "reduce_scatter",
    "all_to_all",
]
