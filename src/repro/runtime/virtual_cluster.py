"""Numpy implementations of the data semantics of NCCL collectives.

All functions take and return *lists of arrays*, one entry per rank of the
participating group.  They satisfy the standard identities, which the test
suite checks property-based:

* ``all_gather`` then slicing returns each rank's input;
* ``reduce_scatter`` followed by ``all_gather`` equals ``all_reduce``;
* ``all_to_all`` applied twice is the identity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


def _check_group(buffers: list[np.ndarray]) -> int:
    if not buffers:
        raise ShapeError("collective needs at least one rank buffer")
    first_shape = buffers[0].shape
    for i, buf in enumerate(buffers):
        if buf.shape != first_shape:
            raise ShapeError(
                f"rank {i} buffer shape {buf.shape} != rank 0 shape "
                f"{first_shape}"
            )
    return len(buffers)


def all_reduce(buffers: list[np.ndarray]) -> list[np.ndarray]:
    """Sum-AllReduce: every rank receives the elementwise sum."""
    _check_group(buffers)
    total = np.sum(np.stack(buffers, axis=0), axis=0)
    return [total.copy() for _ in buffers]


def all_gather(buffers: list[np.ndarray], axis: int = 0) -> list[np.ndarray]:
    """AllGather: every rank receives the concatenation along ``axis``."""
    _check_group(buffers)
    gathered = np.concatenate(buffers, axis=axis)
    return [gathered.copy() for _ in buffers]


def reduce_scatter(buffers: list[np.ndarray], axis: int = 0) -> list[np.ndarray]:
    """ReduceScatter: sum across ranks, then split along ``axis``.

    Raises:
        ShapeError: if the axis length is not divisible by the group size.
    """
    n = _check_group(buffers)
    total = np.sum(np.stack(buffers, axis=0), axis=0)
    if total.shape[axis] % n != 0:
        raise ShapeError(
            f"axis {axis} length {total.shape[axis]} not divisible by "
            f"group size {n}"
        )
    return [part.copy() for part in np.split(total, n, axis=axis)]


def all_to_all(buffers: list[np.ndarray], axis: int = 0) -> list[np.ndarray]:
    """AlltoAll: rank ``i`` sends its ``j``-th slice along ``axis`` to ``j``.

    Raises:
        ShapeError: if the axis length is not divisible by the group size.
    """
    n = _check_group(buffers)
    if buffers[0].shape[axis] % n != 0:
        raise ShapeError(
            f"axis {axis} length {buffers[0].shape[axis]} not divisible "
            f"by group size {n}"
        )
    slices = [np.split(buf, n, axis=axis) for buf in buffers]
    return [
        np.concatenate([slices[src][dst] for src in range(n)], axis=axis)
        for dst in range(n)
    ]


@dataclass
class VirtualGroup:
    """A named communicator over ``world_size`` in-process ranks.

    Thin object wrapper over the module-level collectives; useful when code
    wants to carry group size and identity around (mirrors a NCCL
    communicator handle).
    """

    world_size: int
    name: str = "group"

    def __post_init__(self) -> None:
        if self.world_size <= 0:
            raise ShapeError(
                f"world_size must be positive, got {self.world_size}"
            )

    def _check_membership(self, buffers: list[np.ndarray]) -> None:
        if len(buffers) != self.world_size:
            raise ShapeError(
                f"group {self.name!r} expects {self.world_size} buffers, "
                f"got {len(buffers)}"
            )

    def all_reduce(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Sum-AllReduce across the group."""
        self._check_membership(buffers)
        return all_reduce(buffers)

    def all_gather(
        self, buffers: list[np.ndarray], axis: int = 0
    ) -> list[np.ndarray]:
        """AllGather along ``axis`` across the group."""
        self._check_membership(buffers)
        return all_gather(buffers, axis=axis)

    def reduce_scatter(
        self, buffers: list[np.ndarray], axis: int = 0
    ) -> list[np.ndarray]:
        """ReduceScatter along ``axis`` across the group."""
        self._check_membership(buffers)
        return reduce_scatter(buffers, axis=axis)

    def all_to_all(
        self, buffers: list[np.ndarray], axis: int = 0
    ) -> list[np.ndarray]:
        """AlltoAll along ``axis`` across the group."""
        self._check_membership(buffers)
        return all_to_all(buffers, axis=axis)
