"""Plain-text table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table (monospace, pipe-separated).

    Floats render with three decimals; everything else with ``str``.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
