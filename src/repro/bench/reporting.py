"""Plain-text and Markdown table rendering for benchmark output."""

from __future__ import annotations

from typing import Sequence


def _cell(value: object) -> str:
    """Render one table cell (floats with three decimals)."""
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a GitHub-flavored Markdown table (used by ``REPORT.md``).

    Cells follow the same conventions as :func:`format_table` (floats
    with three decimals, everything else ``str``); pipes inside cells
    are escaped so arbitrary text cannot break the row structure.
    """
    def cell(value: object) -> str:
        return _cell(value).replace("|", "\\|")

    out = ["| " + " | ".join(cell(h) for h in headers) + " |"]
    out.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        out.append("| " + " | ".join(cell(v) for v in row) + " |")
    return "\n".join(out)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned text table (monospace, pipe-separated).

    Floats render with three decimals; everything else with ``str``.
    """
    text_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)
