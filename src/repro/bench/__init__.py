"""Benchmark harness: workload grids, runners, and text reporting."""

from .workloads import TABLE4_GRID, configured_layer_grid, grid_size
from .runner import (
    CONFIGURED_LAYER_COUNT,
    ConfigResult,
    evaluate_config,
    evaluate_config_grid,
    evaluate_model,
    geometric_mean,
    speedups_over,
)
from .reporting import format_table

__all__ = [
    "TABLE4_GRID",
    "configured_layer_grid",
    "grid_size",
    "CONFIGURED_LAYER_COUNT",
    "ConfigResult",
    "evaluate_config",
    "evaluate_config_grid",
    "evaluate_model",
    "geometric_mean",
    "speedups_over",
    "format_table",
]
