"""Evaluation driver: run systems over workloads, compute speedups.

The paper's configured-layer experiments (Table 5) report *average
speedups over Tutel*; the end-to-end experiments (Fig. 6-8) report
speedups over DeepSpeed-MoE.  Averages over many configurations use the
geometric mean (the standard choice for ratios).

All evaluation flows through :mod:`repro.planner`: layer profiling is
deduplicated in a :class:`~repro.planner.store.ProfileStore` (shareable
across calls -- the benchmarks pass one store per session so repeated
configurations profile once), and grids fan out concurrently via
:func:`~repro.planner.batch.plan_many`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..core.perf_model import PerfModelSet
from ..errors import ConfigError
from ..models.configs import ModelPreset, layer_spec_for
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from ..planner.batch import plan_many
from ..planner.compiler import PlanCompiler
from ..planner.store import ProfileStore
from ..systems.base import TrainingSystem

#: layers used for a "configured layer" measurement.  At least two are
#: needed for the gradient-overlap machinery to engage (a layer's own
#: gradients only exist after its backward, so they can only hide in an
#: *earlier* layer's windows); four keeps the un-hideable first layer's
#: share realistic while staying cheap to simulate.
CONFIGURED_LAYER_COUNT = 4


@dataclass(frozen=True)
class ConfigResult:
    """Per-system iteration times for one workload configuration."""

    spec: MoELayerSpec
    parallel: ParallelSpec
    times_ms: dict[str, float]

    def speedup(self, system: str, baseline: str) -> float:
        """``baseline_time / system_time`` (>1 means ``system`` wins).

        Raises:
            ConfigError: for an unknown system name.
        """
        if system not in self.times_ms or baseline not in self.times_ms:
            raise ConfigError(
                f"unknown system in speedup({system!r}, {baseline!r}); "
                f"have {sorted(self.times_ms)}"
            )
        return self.times_ms[baseline] / self.times_ms[system]


def _fit_spec_to_cluster(
    spec: MoELayerSpec, parallel: ParallelSpec
) -> MoELayerSpec:
    """Override the expert count when it does not divide the EP width.

    The paper always deploys E == nodes for configured layers.
    """
    if spec.num_experts % parallel.n_ep != 0:
        return spec.with_(num_experts=parallel.n_ep)
    return spec


def evaluate_config(
    spec: MoELayerSpec,
    cluster: ClusterSpec,
    models: PerfModelSet,
    systems: Sequence[TrainingSystem],
    *,
    num_layers: int = CONFIGURED_LAYER_COUNT,
    gate_kind: GateKind = GateKind.GSHARD,
    store: ProfileStore | None = None,
) -> ConfigResult:
    """Simulate every system on ``num_layers`` copies of ``spec``.

    Args:
        store: optional shared profile cache; pass one across calls so
            a sweep profiles each distinct configuration only once.
    """
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    spec = _fit_spec_to_cluster(spec, parallel)
    compiler = PlanCompiler(cluster, parallel, store=store, models=models)
    stack = [spec] * num_layers
    times = {
        system.name: compiler.iteration_time_ms(
            stack, system, gate_kind=gate_kind
        )
        for system in systems
    }
    return ConfigResult(spec=spec, parallel=parallel, times_ms=times)


def evaluate_config_grid(
    specs: Sequence[MoELayerSpec],
    cluster: ClusterSpec,
    models: PerfModelSet,
    systems: Sequence[TrainingSystem],
    *,
    num_layers: int = CONFIGURED_LAYER_COUNT,
    gate_kind: GateKind = GateKind.GSHARD,
    store: ProfileStore | None = None,
    max_workers: int | None = None,
) -> list[ConfigResult]:
    """Evaluate a whole configuration grid through one batched sweep.

    Semantically ``[evaluate_config(s, ...) for s in specs]``, but fanned
    out with :func:`~repro.planner.batch.plan_many` and deduplicated
    through one shared :class:`~repro.planner.store.ProfileStore`.

    Returns:
        One :class:`ConfigResult` per input spec, in input order.
    """
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    fitted = [_fit_spec_to_cluster(spec, parallel) for spec in specs]
    sweep = plan_many(
        fitted,
        systems,
        [cluster],
        gate_kind=gate_kind,
        num_layers=num_layers,
        store=store,
        models_by_cluster={cluster: models},
        parallel_by_cluster={cluster: parallel},
        max_workers=max_workers,
    )
    grouped = sweep.times_by_config()
    return [
        ConfigResult(
            spec=spec,
            parallel=parallel,
            times_ms=dict(grouped[(cluster, (spec,) * num_layers)]),
        )
        for spec in fitted
    ]


def evaluate_model(
    preset: ModelPreset,
    cluster: ClusterSpec,
    models: PerfModelSet,
    systems: Sequence[TrainingSystem],
    *,
    batch_size: int = 1,
    seq_len: int = 1024,
    num_layers: int | None = None,
    gate_kind: GateKind = GateKind.GSHARD,
    routing_overhead_by_system: dict[str, float] | None = None,
    store: ProfileStore | None = None,
) -> ConfigResult:
    """Simulate every system training a real-world model end to end.

    Follows the paper's §6.4 deployment: ``E = number of nodes``,
    ``N_MP = N_ESP = gpus/node``, ``B = 1``, ``f`` from the preset.

    Args:
        routing_overhead_by_system: optional per-system multiplier on
            routing compute (used by the Table 6 experiment, where
            DeepSpeed-MoE runs its own unoptimized gate kernels).
        store: optional shared profile cache.
    """
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    spec = layer_spec_for(
        preset,
        batch_size=batch_size,
        seq_len=seq_len,
        num_experts=parallel.n_ep,
    )
    layers = num_layers if num_layers is not None else preset.num_layers
    compiler = PlanCompiler(cluster, parallel, store=store, models=models)
    stack = [spec] * layers
    times: dict[str, float] = {}
    for system in systems:
        overhead = 1.0
        if routing_overhead_by_system is not None:
            overhead = routing_overhead_by_system.get(system.name, 1.0)
        times[system.name] = compiler.simulate(
            stack, system, gate_kind=gate_kind, routing_overhead=overhead
        ).makespan_ms
    return ConfigResult(spec=spec, parallel=parallel, times_ms=times)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive ratios.

    Raises:
        ConfigError: on an empty sequence or non-positive entries.
    """
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups_over(
    results: Sequence[ConfigResult], baseline: str
) -> dict[str, float]:
    """Geometric-mean speedup of every system over ``baseline``.

    Raises:
        ConfigError: on an empty result list.
    """
    if not results:
        raise ConfigError("speedups_over needs at least one result")
    systems = list(results[0].times_ms)
    return {
        system: geometric_mean(
            [r.speedup(system, baseline) for r in results]
        )
        for system in systems
    }
