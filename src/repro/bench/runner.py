"""Evaluation driver: run systems over workloads, compute speedups.

The paper's configured-layer experiments (Table 5) report *average
speedups over Tutel*; the end-to-end experiments (Fig. 6-8) report
speedups over DeepSpeed-MoE.  Averages over many configurations use the
geometric mean (the standard choice for ratios).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..core.perf_model import PerfModelSet
from ..errors import ConfigError
from ..models.configs import ModelPreset, layer_spec_for
from ..models.transformer import profile_layer
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from ..systems.base import TrainingSystem

#: layers used for a "configured layer" measurement.  At least two are
#: needed for the gradient-overlap machinery to engage (a layer's own
#: gradients only exist after its backward, so they can only hide in an
#: *earlier* layer's windows); four keeps the un-hideable first layer's
#: share realistic while staying cheap to simulate.
CONFIGURED_LAYER_COUNT = 4


@dataclass(frozen=True)
class ConfigResult:
    """Per-system iteration times for one workload configuration."""

    spec: MoELayerSpec
    parallel: ParallelSpec
    times_ms: dict[str, float]

    def speedup(self, system: str, baseline: str) -> float:
        """``baseline_time / system_time`` (>1 means ``system`` wins).

        Raises:
            ConfigError: for an unknown system name.
        """
        if system not in self.times_ms or baseline not in self.times_ms:
            raise ConfigError(
                f"unknown system in speedup({system!r}, {baseline!r}); "
                f"have {sorted(self.times_ms)}"
            )
        return self.times_ms[baseline] / self.times_ms[system]


def evaluate_config(
    spec: MoELayerSpec,
    cluster: ClusterSpec,
    models: PerfModelSet,
    systems: Sequence[TrainingSystem],
    *,
    num_layers: int = CONFIGURED_LAYER_COUNT,
    gate_kind: GateKind = GateKind.GSHARD,
) -> ConfigResult:
    """Simulate every system on ``num_layers`` copies of ``spec``.

    The spec's expert count is overridden to the cluster's node count if
    it does not divide the EP width (the paper always deploys E == nodes
    for configured layers).
    """
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    if spec.num_experts % parallel.n_ep != 0:
        spec = spec.with_(num_experts=parallel.n_ep)
    profile = profile_layer(spec, parallel, models, gate_kind=gate_kind)
    profiles = [profile] * num_layers
    times = {
        system.name: system.iteration_time_ms(profiles, models)
        for system in systems
    }
    return ConfigResult(spec=spec, parallel=parallel, times_ms=times)


def evaluate_model(
    preset: ModelPreset,
    cluster: ClusterSpec,
    models: PerfModelSet,
    systems: Sequence[TrainingSystem],
    *,
    batch_size: int = 1,
    seq_len: int = 1024,
    num_layers: int | None = None,
    gate_kind: GateKind = GateKind.GSHARD,
    routing_overhead_by_system: dict[str, float] | None = None,
) -> ConfigResult:
    """Simulate every system training a real-world model end to end.

    Follows the paper's §6.4 deployment: ``E = number of nodes``,
    ``N_MP = N_ESP = gpus/node``, ``B = 1``, ``f`` from the preset.

    Args:
        routing_overhead_by_system: optional per-system multiplier on
            routing compute (used by the Table 6 experiment, where
            DeepSpeed-MoE runs its own unoptimized gate kernels).
    """
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    spec = layer_spec_for(
        preset,
        batch_size=batch_size,
        seq_len=seq_len,
        num_experts=parallel.n_ep,
    )
    layers = num_layers if num_layers is not None else preset.num_layers
    times: dict[str, float] = {}
    for system in systems:
        overhead = 1.0
        if routing_overhead_by_system is not None:
            overhead = routing_overhead_by_system.get(system.name, 1.0)
        profile = profile_layer(
            spec, parallel, models,
            gate_kind=gate_kind, routing_overhead=overhead,
        )
        times[system.name] = system.iteration_time_ms(
            [profile] * layers, models
        )
    return ConfigResult(spec=spec, parallel=parallel, times_ms=times)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive ratios.

    Raises:
        ConfigError: on an empty sequence or non-positive entries.
    """
    if not values:
        raise ConfigError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def speedups_over(
    results: Sequence[ConfigResult], baseline: str
) -> dict[str, float]:
    """Geometric-mean speedup of every system over ``baseline``.

    Raises:
        ConfigError: on an empty result list.
    """
    if not results:
        raise ConfigError("speedups_over needs at least one result")
    systems = list(results[0].times_ms)
    return {
        system: geometric_mean(
            [r.speedup(system, baseline) for r in results]
        )
        for system in systems
    }
