"""The paper's Table 4 configuration grid: 1458 MoE layer shapes.

``3 (B) x 3 (N_heads) x 3 (L) x 3 (M) x 3 (N_hscale) x 3 (f) x 2
(ffn-type) = 1458`` configurations.  ``L`` is testbed-dependent
({512, 1024, 2048} on A, {256, 512, 1024} on B, §6.1) and ``f = *``
(no dropping) is encoded as ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from ..config import MoELayerSpec
from ..errors import ConfigError


@dataclass(frozen=True)
class Table4Grid:
    """Candidate values of every swept dimension (paper Table 4)."""

    batch_sizes: tuple[int, ...] = (1, 2, 4)
    num_heads: tuple[int, ...] = (8, 16, 32)
    seq_lens_a: tuple[int, ...] = (512, 1024, 2048)
    seq_lens_b: tuple[int, ...] = (256, 512, 1024)
    embed_dims: tuple[int, ...] = (1024, 2048, 4096)
    hidden_scales: tuple[int, ...] = (2, 3, 4)
    capacity_factors: tuple[float | None, ...] = (1.2, 2.4, None)
    ffn_types: tuple[str, ...] = ("simple", "mixtral")

    def seq_lens(self, testbed: str) -> tuple[int, ...]:
        """L candidates for testbed ``"A"`` or ``"B"``.

        Raises:
            ConfigError: for an unknown testbed name.
        """
        if testbed.upper() == "A":
            return self.seq_lens_a
        if testbed.upper() == "B":
            return self.seq_lens_b
        raise ConfigError(f"unknown testbed {testbed!r}")


#: the grid exactly as published.
TABLE4_GRID = Table4Grid()


def grid_size(grid: Table4Grid = TABLE4_GRID) -> int:
    """Total number of configurations (1458 for the paper's grid)."""
    return (
        len(grid.batch_sizes)
        * len(grid.num_heads)
        * len(grid.seq_lens_a)
        * len(grid.embed_dims)
        * len(grid.hidden_scales)
        * len(grid.capacity_factors)
        * len(grid.ffn_types)
    )


def configured_layer_grid(
    testbed: str,
    num_experts: int,
    *,
    top_k: int = 2,
    grid: Table4Grid = TABLE4_GRID,
    stride: int = 1,
) -> list[MoELayerSpec]:
    """Materialize the Table 4 grid for one testbed.

    Args:
        testbed: ``"A"`` or ``"B"`` (selects the L range).
        num_experts: experts per layer -- deployment-dependent (nodes).
        top_k: experts per token.
        grid: the swept values (defaults to the paper's).
        stride: keep every ``stride``-th configuration -- lets benchmark
            runs trade coverage for wall-clock while preserving the grid's
            diversity (the full 1458 remain available with ``stride=1``).

    Raises:
        ConfigError: for a non-positive stride.
    """
    if stride <= 0:
        raise ConfigError(f"stride must be positive, got {stride}")
    specs: list[MoELayerSpec] = []
    combos = product(
        grid.batch_sizes,
        grid.num_heads,
        grid.seq_lens(testbed),
        grid.embed_dims,
        grid.hidden_scales,
        grid.capacity_factors,
        grid.ffn_types,
    )
    for index, (b, heads, l, m, hscale, f, ffn) in enumerate(combos):
        if index % stride != 0:
            continue
        specs.append(
            MoELayerSpec(
                batch_size=b,
                seq_len=l,
                embed_dim=m,
                hidden_scale=float(hscale),
                num_experts=num_experts,
                top_k=top_k,
                capacity_factor=f,
                num_heads=heads,
                ffn_type=ffn,  # type: ignore[arg-type]
            )
        )
    return specs
