"""Configuration dataclasses shared by the whole library.

Two specs describe one experiment:

* :class:`MoELayerSpec` -- the shape of one transformer-MoE layer
  (Table 1 / Table 4 of the paper).
* :class:`ParallelSpec` -- how the layer is laid out over the cluster
  (DP / MP / EP / ESP / PP, paper section 2.2).

Both are frozen dataclasses so they can be used as dict keys and shared
between threads without copying.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Literal

from .errors import ConfigError
from .units import DEFAULT_DTYPE, dtype_nbytes

FFNType = Literal["simple", "mixtral"]

#: number of GEMMs per expert forward pass, per ffn type. "simple" is the
#: conventional two dense layers (GPT-style); "mixtral" uses SwiGLU which is
#: three GEMMs (gate, up, down).
FFN_NUM_GEMMS = {"simple": 2, "mixtral": 3}


@dataclass(frozen=True)
class MoELayerSpec:
    """Shape of a single transformer layer with an MoE feed-forward block.

    Attributes:
        batch_size: samples per DP worker per iteration (paper ``B``).
        seq_len: tokens per sample (paper ``L``).
        embed_dim: token embedding size (paper ``M``).
        hidden_scale: expert hidden size as a multiple of ``embed_dim``
            (paper ``N_hscale = H / M``; Table 4 sweeps 2, 3, 4; Mixtral
            uses 3.5).
        num_experts: total experts in the layer (paper ``E``).
        top_k: experts activated per token (paper ``k``).
        capacity_factor: token-drop control factor (paper ``f``).  ``None``
            reproduces the paper's ``f = *`` (no dropping); timing then uses
            an analytic expected-max-load factor, see
            :func:`repro.parallel.volumes.nodrop_capacity_factor`.
        num_heads: attention heads (paper ``N_head``).
        ffn_type: ``"simple"`` (two dense layers) or ``"mixtral"`` (SwiGLU).
        dtype: training dtype name, resolves element size via units.
    """

    batch_size: int = 4
    seq_len: int = 1024
    embed_dim: int = 2048
    hidden_scale: float = 4.0
    num_experts: int = 8
    top_k: int = 2
    capacity_factor: float | None = 1.2
    num_heads: int = 16
    ffn_type: FFNType = "simple"
    dtype: str = DEFAULT_DTYPE

    def __post_init__(self) -> None:
        positive_fields = {
            "batch_size": self.batch_size,
            "seq_len": self.seq_len,
            "embed_dim": self.embed_dim,
            "hidden_scale": self.hidden_scale,
            "num_experts": self.num_experts,
            "top_k": self.top_k,
            "num_heads": self.num_heads,
        }
        for name, value in positive_fields.items():
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")
        if self.capacity_factor is not None and self.capacity_factor <= 0:
            raise ConfigError(
                f"capacity_factor must be positive or None, "
                f"got {self.capacity_factor}"
            )
        if self.top_k > self.num_experts:
            raise ConfigError(
                f"top_k ({self.top_k}) cannot exceed num_experts "
                f"({self.num_experts})"
            )
        if self.ffn_type not in FFN_NUM_GEMMS:
            raise ConfigError(f"unknown ffn_type {self.ffn_type!r}")
        if self.embed_dim % self.num_heads != 0:
            raise ConfigError(
                f"embed_dim ({self.embed_dim}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )
        dtype_nbytes(self.dtype)  # raises KeyError for unknown dtypes

    # -- derived quantities ---------------------------------------------

    @property
    def hidden_dim(self) -> int:
        """Expert hidden size ``H = round(N_hscale * M)``."""
        return int(round(self.hidden_scale * self.embed_dim))

    @property
    def tokens_per_worker(self) -> int:
        """Tokens a DP worker contributes each iteration (``B * L``)."""
        return self.batch_size * self.seq_len

    @property
    def dtype_bytes(self) -> int:
        """Bytes per element of the training dtype."""
        return dtype_nbytes(self.dtype)

    @property
    def num_gemms_per_expert(self) -> int:
        """GEMMs in one expert forward pass (2 for simple, 3 for mixtral)."""
        return FFN_NUM_GEMMS[self.ffn_type]

    @property
    def drops_tokens(self) -> bool:
        """True when a finite capacity factor may drop tokens."""
        return self.capacity_factor is not None

    def with_(self, **changes) -> "MoELayerSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


@dataclass(frozen=True)
class ParallelSpec:
    """Hybrid-parallel layout of an MoE model over a cluster (paper §2.2).

    The paper's standard deployment sets ``n_mp == n_esp == GPUs per node``
    so MP/ESP collectives are intra-node while EP AlltoAll and DP
    Gradient-AllReduce are inter-node; that is the scenario FSMoE's
    scheduler targets and the one our schedules assume.

    Attributes:
        n_dp: workers per data-parallel group.
        n_mp: workers per model(tensor)-parallel group.
        n_ep: workers per expert-parallel group (token exchange span).
        n_esp: workers per expert-sharding group.
        n_pp: pipeline-parallel stages.
    """

    n_dp: int = 1
    n_mp: int = 1
    n_ep: int = 1
    n_esp: int = 1
    n_pp: int = 1

    def __post_init__(self) -> None:
        for name in ("n_dp", "n_mp", "n_ep", "n_esp", "n_pp"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigError(f"{name} must be positive, got {value}")

    @property
    def gpus_per_stage(self) -> int:
        """GPUs in one pipeline stage.

        MP and ESP share the same intra-node GPUs (paper Fig. 2), and each
        DP replica spans one EP position, so a stage holds
        ``n_dp * n_mp`` == ``n_ep * n_esp`` GPUs in the standard layout.
        """
        return self.n_dp * self.n_mp

    @property
    def world_size(self) -> int:
        """Total GPUs used by this layout."""
        return self.gpus_per_stage * self.n_pp

    def validate_standard_layout(self) -> None:
        """Check the paper's standard deployment invariants.

        The common scenario optimized in section 4 requires:
        * MP and ESP groups are the same set of intra-node GPUs
          (``n_mp == n_esp``), and
        * EP groups pair same-MP-rank GPUs across the nodes of a stage
          (``n_ep == n_dp``).
        """
        if self.n_mp != self.n_esp:
            raise ConfigError(
                f"standard layout requires n_mp == n_esp, got "
                f"{self.n_mp} != {self.n_esp}"
            )
        if self.n_ep != self.n_dp:
            raise ConfigError(
                f"standard layout requires n_ep == n_dp, got "
                f"{self.n_ep} != {self.n_dp}"
            )

    def with_(self, **changes) -> "ParallelSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


def standard_layout(
    total_gpus: int, gpus_per_node: int, n_pp: int = 1
) -> ParallelSpec:
    """Build the paper's standard layout for a cluster.

    ``n_mp = n_esp = gpus_per_node`` and ``n_ep = n_dp = nodes per stage``
    (paper section 6.1: "N_MP and N_ESP are both set to 4 in Testbed-B ...
    8 in Testbed-A"; section 6.4: "the number of experts (N_EP) is the same
    as the number of nodes").

    Raises:
        ConfigError: when the GPU counts do not divide evenly.
    """
    if total_gpus % gpus_per_node != 0:
        raise ConfigError(
            f"total_gpus ({total_gpus}) not divisible by gpus_per_node "
            f"({gpus_per_node})"
        )
    num_nodes = total_gpus // gpus_per_node
    if num_nodes % n_pp != 0:
        raise ConfigError(
            f"num_nodes ({num_nodes}) not divisible by n_pp ({n_pp})"
        )
    nodes_per_stage = num_nodes // n_pp
    return ParallelSpec(
        n_dp=nodes_per_stage,
        n_mp=gpus_per_node,
        n_ep=nodes_per_stage,
        n_esp=gpus_per_node,
        n_pp=n_pp,
    )


def experts_per_ep_rank(spec: MoELayerSpec, parallel: ParallelSpec) -> int:
    """Experts hosted by each EP position (node) of a stage.

    Raises:
        ConfigError: if experts cannot be evenly distributed.
    """
    if spec.num_experts % parallel.n_ep != 0:
        raise ConfigError(
            f"num_experts ({spec.num_experts}) not divisible by n_ep "
            f"({parallel.n_ep})"
        )
    return spec.num_experts // parallel.n_ep


def tokens_per_gpu(spec: MoELayerSpec, parallel: ParallelSpec) -> int:
    """Tokens entering the MoE block per GPU (``S = B*L / N_MP``).

    The MP ReduceScatter before the gate splits the token dimension so each
    MP rank routes an equal share of the node's tokens (paper Fig. 2).
    """
    total = spec.tokens_per_worker
    return max(1, math.ceil(total / parallel.n_mp))
