"""The plan-serving wire protocol: framing, schema, errors, backoff.

One request object per line, one response object per line, UTF-8 JSON
over a plain TCP socket -- the same JSON-lines idiom the shared cache
tier (:mod:`repro.cache.remote`) and the ``repro serve --requests``
stream already speak.  This module is the single source of truth for
the frame shapes; :class:`~repro.serve.net.NetServer` and
:class:`~repro.serve.net.NetClient` both import it, and
``docs/SERVING.md`` documents the same tables.

Request envelope (client -> server)::

    {"op": "plan", "schema": 1, "id": 7, "priority": "interactive",
     "detail": "summary", "request": {...}}

``op`` is one of ``plan``, ``ping``, ``stats``, ``metrics``; ``id`` is
an arbitrary client-chosen JSON value echoed back verbatim (absent
echoes ``null``); ``priority`` selects the server lane (``interactive``
default, or ``batch``); ``detail`` selects the result shape
(``summary`` default, or ``plan`` for the full replayable document);
``digest`` (boolean) additionally asks for the plan's content address.
The ``request`` payload is exactly the ``repro serve --requests`` line
schema, parsed by :func:`parse_plan_payload`.

Response envelope (server -> client)::

    {"ok": true, "id": 7, "result": {...}}                      # success
    {"ok": false, "id": 7, "error": {"code": "shed",
     "message": "..."}, "retry_after_ms": 50.0}                 # refusal

Every refusal carries a stable machine-readable ``error.code`` from the
``E_*`` constants below; only the codes in :data:`RETRYABLE_CODES`
(``shed``, ``draining``) carry ``retry_after_ms`` and may be retried
verbatim -- everything else means the frame itself is wrong.

:class:`Backoff` is the one retry-delay policy shared by
:class:`~repro.serve.net.NetClient` and
:class:`~repro.cache.remote.RemoteTier`: capped exponential delays with
seeded jitter and an injectable sleeper, so retry behavior is testable
deterministically.
"""

from __future__ import annotations

import json
import random
import time
from typing import Callable, Sequence

from ..api.spec import ClusterRef, StackSpec
from ..config import standard_layout
from ..errors import ConfigError
from ..moe.gates import GateKind
from ..planner.plan import IterationPlan
from ..systems.registry import get_system
from .service import PlanRequest

#: on-wire schema version of the plan-serving protocol; a mismatch is
#: refused (``bad-schema``) on every frame, so a mixed-version fleet
#: fails loudly instead of misreading envelopes.
PROTOCOL_SCHEMA_VERSION = 1

#: refuse (and resync past) absurd single request lines instead of
#: buffering them; responses are unbounded (plan documents are large).
MAX_LINE_BYTES = 1 * 1024 * 1024

# -- stable error codes (the wire contract; see docs/SERVING.md) ----------

#: the line is not valid JSON.
E_BAD_JSON = "bad-json"
#: the line parsed, but is not a JSON object.
E_BAD_FRAME = "bad-frame"
#: the envelope's ``schema`` is missing or not this server's version.
E_BAD_SCHEMA = "bad-schema"
#: the envelope's ``op`` is not one this server speaks.
E_UNKNOWN_OP = "unknown-op"
#: the request line exceeded the server's line bound and was discarded.
E_OVERSIZED = "oversized-line"
#: the ``plan`` payload (or ``priority``/``detail``) is malformed.
E_BAD_REQUEST = "bad-request"
#: overload shed: the priority lane (or a per-client bound) is full.
E_SHED = "shed"
#: the server is draining for shutdown and takes no new work.
E_DRAINING = "draining"
#: the plan resolution itself failed (the request's own fault:
#: impossible topology, solver failure, ...).
E_PLAN_FAILED = "plan-failed"
#: a server defect (the 5xx class); never expected, always counted.
E_INTERNAL = "internal"

#: codes a client may retry verbatim, honoring ``retry_after_ms``.
RETRYABLE_CODES = frozenset({E_SHED, E_DRAINING})

#: the 5xx class: codes that indicate a server fault, not a bad request.
SERVER_FAULT_CODES = frozenset({E_INTERNAL})

#: keys a ``plan`` payload may carry (the CLI request-line schema).
PLAN_PAYLOAD_KEYS = frozenset({
    "cluster", "system", "stack", "gate", "solver", "r_max",
    "routing_overhead", "noise", "seed",
})


def encode_frame(obj: dict) -> bytes:
    """One protocol object as its on-wire line (UTF-8 JSON + newline)."""
    return json.dumps(obj, sort_keys=True).encode("utf-8") + b"\n"


def ok_response(request_id: object = None, **fields: object) -> dict:
    """A success envelope echoing ``request_id``, with ``fields`` merged."""
    response: dict = {"ok": True, "id": request_id}
    response.update(fields)
    return response


def error_response(
    code: str,
    message: str,
    *,
    request_id: object = None,
    retry_after_ms: float | None = None,
) -> dict:
    """A refusal envelope: stable ``code``, human ``message``.

    ``retry_after_ms`` is attached only for the retryable codes
    (:data:`RETRYABLE_CODES`), telling a well-behaved client how long
    to wait before resubmitting the identical frame.
    """
    response: dict = {
        "ok": False,
        "id": request_id,
        "error": {"code": code, "message": message},
    }
    if retry_after_ms is not None:
        response["retry_after_ms"] = round(float(retry_after_ms), 3)
    return response


def parse_plan_payload(data: dict) -> PlanRequest:
    """One ``plan`` request payload -> a :class:`PlanRequest`.

    The payload is exactly the ``repro serve --requests`` line schema:
    ``cluster`` (name or ``{"name", "total_gpus"}``), ``system``,
    ``stack`` (a :class:`~repro.api.spec.StackSpec` document), plus the
    optional ``gate``/``solver``/``r_max``/``routing_overhead``/
    ``noise``/``seed`` knobs.  Both the CLI's file path and the network
    server parse through here, so the two surfaces cannot drift.

    Raises:
        ConfigError: for a non-object payload, unknown keys, missing
            required keys, or any malformed component.
    """
    if not isinstance(data, dict):
        raise ConfigError(
            f"plan payload must be an object, got {type(data).__name__}"
        )
    unknown = set(data) - PLAN_PAYLOAD_KEYS
    if unknown:
        raise ConfigError(
            f"unknown keys {sorted(unknown)}; expected a subset of "
            f"{sorted(PLAN_PAYLOAD_KEYS)}"
        )
    for required in ("cluster", "system", "stack"):
        if required not in data:
            raise ConfigError(f"lacks {required!r}")
    cluster = ClusterRef.from_data(data["cluster"]).resolve()
    stack_spec = StackSpec.from_data(data["stack"])
    parallel = standard_layout(cluster.total_gpus, cluster.gpus_per_node)
    stack = stack_spec.resolve(parallel)
    try:
        gate = GateKind(data.get("gate", GateKind.GSHARD.value))
    except ValueError as exc:
        raise ConfigError(f"unknown gate {data.get('gate')!r}") from exc
    gates = stack_spec.resolve_gates(len(stack), gate)
    system = get_system(
        data["system"],
        r_max=data.get("r_max"),
        solver=data.get("solver", "de"),
    )
    try:
        routing_overhead = float(data.get("routing_overhead", 1.0))
        noise = float(data.get("noise", 0.0))
        seed = int(data.get("seed", 0))
    except (TypeError, ValueError) as exc:
        raise ConfigError(f"malformed numeric knob: {exc}") from exc
    return PlanRequest(
        stack=stack,
        system=system,
        cluster=cluster,
        gate_kind=gates,
        routing_overhead=routing_overhead,
        noise=noise,
        seed=seed,
    )


def plan_summary(plan: IterationPlan) -> dict:
    """The compact ``detail="summary"`` result body for one plan."""
    return {
        "system": plan.name,
        "num_layers": plan.num_layers,
        "degrees": list(plan.degrees),
        "makespan_ms": plan.makespan_ms(),
    }


class Backoff:
    """Capped exponential retry delays with seeded jitter.

    The one retry-delay policy of the networking layer, shared by
    :class:`~repro.serve.net.NetClient` (transport reconnects and
    ``retry_after_ms`` honoring) and
    :class:`~repro.cache.remote.RemoteTier` (its reconnect retry).
    Attempt ``k`` sleeps ``base_ms * factor**k`` capped at ``max_ms``,
    scaled by a jitter factor uniform in ``[1 - jitter, 1 + jitter]``,
    and never below the caller's ``floor_ms`` (a server's
    ``retry_after_ms`` directive).

    Both the random source and the sleeper are injectable, so tests pin
    the exact delay sequence with a seeded :class:`random.Random` and a
    recording fake sleeper instead of sleeping for real.

    Args:
        base_ms: first-attempt delay.
        factor: per-attempt growth (>= 1).
        max_ms: delay cap before jitter.
        jitter: relative jitter half-width in ``[0, 1)``; 0 disables.
        rng: random source for the jitter (default: a fresh
            process-seeded :class:`random.Random`).
        sleep: the sleeper, taking seconds (default: ``time.sleep``).

    Raises:
        ConfigError: for a non-positive ``base_ms``, ``factor < 1``,
            ``max_ms < base_ms``, or ``jitter`` outside ``[0, 1)``.
    """

    def __init__(
        self,
        *,
        base_ms: float = 25.0,
        factor: float = 2.0,
        max_ms: float = 2000.0,
        jitter: float = 0.25,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if base_ms <= 0:
            raise ConfigError(f"base_ms must be > 0, got {base_ms}")
        if factor < 1.0:
            raise ConfigError(f"factor must be >= 1, got {factor}")
        if max_ms < base_ms:
            raise ConfigError(
                f"max_ms must be >= base_ms, got {max_ms} < {base_ms}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {jitter}")
        self.base_ms = float(base_ms)
        self.factor = float(factor)
        self.max_ms = float(max_ms)
        self.jitter = float(jitter)
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep

    def delay_ms(self, attempt: int, *, floor_ms: float = 0.0) -> float:
        """The delay before retry number ``attempt`` (0-based), in ms."""
        delay = min(self.base_ms * self.factor ** attempt, self.max_ms)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return max(delay, float(floor_ms))

    def wait(self, attempt: int, *, floor_ms: float = 0.0) -> float:
        """Sleep for :meth:`delay_ms`; returns the delay actually slept."""
        delay = self.delay_ms(attempt, floor_ms=floor_ms)
        self._sleep(delay / 1000.0)
        return delay


def retry_priorities(
    total: int, *, batch_fraction: float = 0.25, seed: int = 0
) -> list[str]:
    """A deterministic mixed-priority assignment for ``total`` requests.

    The load drivers and the CI smoke both need "mixed-priority" to
    mean the same stream run to run: a seeded coin per request,
    ``batch`` with probability ``batch_fraction``.

    Raises:
        ConfigError: for a fraction outside ``[0, 1]``.
    """
    if not 0.0 <= batch_fraction <= 1.0:
        raise ConfigError(
            f"batch_fraction must be in [0, 1], got {batch_fraction}"
        )
    rng = random.Random(seed)
    return [
        "batch" if rng.random() < batch_fraction else "interactive"
        for _ in range(total)
    ]


#: names re-exported through :mod:`repro.serve`.
__all__: Sequence[str] = (
    "PROTOCOL_SCHEMA_VERSION",
    "MAX_LINE_BYTES",
    "E_BAD_JSON",
    "E_BAD_FRAME",
    "E_BAD_SCHEMA",
    "E_UNKNOWN_OP",
    "E_OVERSIZED",
    "E_BAD_REQUEST",
    "E_SHED",
    "E_DRAINING",
    "E_PLAN_FAILED",
    "E_INTERNAL",
    "RETRYABLE_CODES",
    "SERVER_FAULT_CODES",
    "Backoff",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_plan_payload",
    "plan_summary",
    "retry_priorities",
)
