"""Exact serving counters and latency percentiles for one PlanService.

Follows the library's counters-not-logs convention
(:class:`~repro.planner.store.StoreStats`,
:class:`~repro.core.fastsolve.SolverStats`): every number is exact, so
tests assert "this burst coalesced into one batch and deduplicated 199
of 200 requests" instead of eyeballing throughput.

Latency percentiles come from an exact bucketed
:class:`~repro.obs.metrics.Histogram` over fixed exponential bounds
(submission to resolution, wall clock): unlike the bounded sampling
reservoir it replaced, the histogram never discards an observation, its
snapshots merge exactly across services, and its quantiles are
deterministic functions of the buckets (the nearest-rank bucket upper
bound -- within one bucket's ~19% growth factor of the true sample
percentile).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from ..obs.metrics import EMPTY_LATENCY, Histogram, HistogramSnapshot

#: retained for windowing compatibility; the histogram has no window --
#: it is exact over the service's whole lifetime.
LATENCY_WINDOW = 8192


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``samples``.

    The reference implementation the bucketed histogram's
    :meth:`~repro.obs.metrics.HistogramSnapshot.quantile` is pinned
    against in tests (same rank convention; the histogram reports the
    bucket upper bound at that rank).  Returns 0.0 for an empty sample
    set -- serving stats are read continuously, including before the
    first request resolves.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * len(ordered)) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class ServiceStats:
    """Snapshot of one :class:`~repro.serve.PlanService`'s counters.

    Attributes:
        requests: submissions accepted into the queue.
        completed: requests resolved with a plan.
        failed: requests resolved with an exception.
        rejected: submissions refused (queue full or service closed).
        dedup_hits: requests answered by another request's computation
            (coalesced within a batch, or joined onto an in-flight
            digest).  ``dedup_hits + resolved == completed`` always.
        resolved: distinct plan resolutions performed (one
            ``Workspace.plan`` call each).
        batches: coalescer flushes that processed at least one request.
        max_batch: most requests drained in one flush.
        coalesced_requests: total requests across all batches (mean
            batch size is ``coalesced_requests / batches``).
        futures_evicted: completed resolutions dropped from the
            service's bounded in-session plan cache to stay within its
            entry bound (the cache answers repeat requests without
            touching the queue; an evicted entry just falls back to the
            workspace tiers).
        p50_latency_ms: median submission-to-resolution latency, from
            the exact latency buckets.
        p95_latency_ms: 95th-percentile latency from the same buckets.
        latency: the full exact latency histogram (every resolution's
            submission-to-resolution milliseconds, bucketed; exported
            as ``repro.serve.latency_ms``).
    """

    requests: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    dedup_hits: int = 0
    resolved: int = 0
    batches: int = 0
    max_batch: int = 0
    coalesced_requests: int = 0
    futures_evicted: int = 0
    p50_latency_ms: float = 0.0
    p95_latency_ms: float = 0.0
    latency: HistogramSnapshot = field(default=EMPTY_LATENCY)

    @property
    def dedup_rate(self) -> float:
        """Fraction of completed requests that shared another's work."""
        if self.completed == 0:
            return 0.0
        return self.dedup_hits / self.completed

    @property
    def mean_batch(self) -> float:
        """Average coalesced batch size."""
        if self.batches == 0:
            return 0.0
        return self.coalesced_requests / self.batches

    def __sub__(self, earlier: "ServiceStats") -> "ServiceStats":
        """The activity between two snapshots (``later - earlier``).

        Every counter is the plain delta; the latency percentiles are
        recomputed from the *delta histogram*, so a window's p50/p95
        describe only the resolutions inside it.  ``max_batch`` is the
        later snapshot's high-water mark (a maximum cannot be
        differenced).  The per-window invariants --
        ``dedup_hits + resolved == completed``, every counter
        non-negative -- hold for any pair of snapshots of one service
        taken in order, however concurrent the load between them.
        """
        latency = self.latency - earlier.latency
        return ServiceStats(
            requests=self.requests - earlier.requests,
            completed=self.completed - earlier.completed,
            failed=self.failed - earlier.failed,
            rejected=self.rejected - earlier.rejected,
            dedup_hits=self.dedup_hits - earlier.dedup_hits,
            resolved=self.resolved - earlier.resolved,
            batches=self.batches - earlier.batches,
            max_batch=self.max_batch,
            coalesced_requests=(
                self.coalesced_requests - earlier.coalesced_requests
            ),
            futures_evicted=self.futures_evicted - earlier.futures_evicted,
            p50_latency_ms=latency.quantile(50.0),
            p95_latency_ms=latency.quantile(95.0),
            latency=latency,
        )

    def since(self, earlier: "ServiceStats") -> "ServiceStats":
        """Alias of :meth:`__sub__`, mirroring ``WorkspaceStats.since``."""
        return self - earlier


class StatsAccumulator:
    """Thread-safe mutable counters behind :class:`ServiceStats`."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._dedup_hits = 0
        self._resolved = 0
        self._batches = 0
        self._max_batch = 0
        self._coalesced = 0
        self._latency = Histogram()

    def request(self) -> None:
        """Count one accepted submission."""
        with self._lock:
            self._requests += 1

    def reject(self) -> None:
        """Count one submission refused at the queue (backlog full)."""
        with self._lock:
            self._rejected += 1

    def batch(self, size: int) -> None:
        """Record one drained coalescer batch of ``size`` requests."""
        with self._lock:
            self._batches += 1
            self._coalesced += size
            self._max_batch = max(self._max_batch, size)

    def resolve(
        self,
        *,
        group_size: int,
        failed: bool,
        latencies_ms: list[float],
        cancelled: int = 0,
    ) -> None:
        """Record one resolved group: 1 computation, ``group_size`` answers.

        ``cancelled`` members (futures the caller cancelled before
        delivery) count as failed, never as completed, so the
        ``dedup_hits + resolved == completed`` invariant holds for the
        delivered remainder.
        """
        delivered = group_size - cancelled
        with self._lock:
            if failed:
                self._failed += group_size
            else:
                self._completed += delivered
                self._failed += cancelled
                if delivered > 0:
                    self._resolved += 1
                    self._dedup_hits += delivered - 1
        for latency_ms in latencies_ms:
            self._latency.observe(latency_ms)

    def resolve_cached(self, latency_ms: float = 0.0) -> None:
        """Record one request answered from the completed-plan cache.

        The answer reuses an earlier resolution's work, so it counts as
        a dedup hit (``dedup_hits + resolved == completed`` still holds:
        both sides grow by one).
        """
        with self._lock:
            self._completed += 1
            self._dedup_hits += 1
        self._latency.observe(latency_ms)

    def snapshot(self) -> ServiceStats:
        """A consistent :class:`ServiceStats` view of the counters."""
        latency = self._latency.snapshot()
        with self._lock:
            return ServiceStats(
                requests=self._requests,
                completed=self._completed,
                failed=self._failed,
                rejected=self._rejected,
                dedup_hits=self._dedup_hits,
                resolved=self._resolved,
                batches=self._batches,
                max_batch=self._max_batch,
                coalesced_requests=self._coalesced,
                p50_latency_ms=latency.quantile(50.0),
                p95_latency_ms=latency.quantile(95.0),
                latency=latency,
            )
