"""repro.serve: concurrent plan serving over a Workspace.

The serving layer between the planner and "heavy traffic": a
:class:`PlanService` coalesces concurrent plan requests into micro
batches, deduplicates identical requests onto single-flight
resolutions (in session, across batches, and -- through the workspace's
advisory file locks -- across processes), and answers each caller's
:class:`~concurrent.futures.Future` with the same content-addressed
plans ``Workspace.plan`` would return one at a time.

:class:`NetServer` puts that service on the network -- a JSON-lines
wire protocol (:mod:`repro.serve.protocol`) with priority lanes,
per-client fairness, shed-with-``retry_after_ms`` backpressure and
graceful drain -- and :class:`NetClient` is its persistent,
retry-with-backoff counterpart.

Quickstart (in-process)::

    from repro import Workspace
    from repro.serve import Client, PlanService

    service = PlanService(Workspace("~/.repro-ws"), flush_ms=2.0)
    client = Client(service)
    future = client.submit(stack, system, cluster)   # non-blocking
    plan = future.result()
    print(service.stats)                              # exact counters
    service.close()

Quickstart (over the wire)::

    from repro import Workspace
    from repro.serve import NetClient, NetServer

    with NetServer(Workspace("~/.repro-ws")) as server:
        client = NetClient(server.address)
        reply = client.plan({"cluster": "A", "system": "fsmoe",
                             "stack": {"model": "GPT2-XL"}})
        print(reply["result"]["makespan_ms"], server.stats)

``python -m repro serve`` exposes the same service from the shell
(JSON-lines requests in, JSON results out), ``repro serve --listen``
/ ``--connect`` run it over TCP, and ``repro serve --demo`` runs the
closed-loop load generator against it.
"""

from .client import Client
from .loadgen import (
    LoadResult,
    NetLoadResult,
    duplicate_heavy_requests,
    duplicate_heavy_wire_requests,
    run_net_closed_loop,
    run_net_open_loop,
    run_serial_per_request,
    run_serial_session,
    run_service,
)
from .net import (
    DEFAULT_LANE_CAPACITY,
    DEFAULT_SHED_RETRY_MS,
    LANE_WEIGHTS,
    LANES,
    LaneStats,
    NetClient,
    NetServer,
    NetStats,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_SCHEMA_VERSION,
    RETRYABLE_CODES,
    Backoff,
    encode_frame,
    error_response,
    ok_response,
    parse_plan_payload,
    plan_summary,
    retry_priorities,
)
from .service import (
    DEFAULT_CAPACITY,
    DEFAULT_COMPLETED_CACHE,
    DEFAULT_FLUSH_MS,
    PlanRequest,
    PlanService,
)
from .stats import ServiceStats

__all__ = [
    "Backoff",
    "Client",
    "DEFAULT_CAPACITY",
    "DEFAULT_COMPLETED_CACHE",
    "DEFAULT_FLUSH_MS",
    "DEFAULT_LANE_CAPACITY",
    "DEFAULT_SHED_RETRY_MS",
    "LANES",
    "LANE_WEIGHTS",
    "LaneStats",
    "LoadResult",
    "MAX_LINE_BYTES",
    "NetClient",
    "NetLoadResult",
    "NetServer",
    "NetStats",
    "PROTOCOL_SCHEMA_VERSION",
    "PlanRequest",
    "PlanService",
    "RETRYABLE_CODES",
    "ServiceStats",
    "duplicate_heavy_requests",
    "duplicate_heavy_wire_requests",
    "encode_frame",
    "error_response",
    "ok_response",
    "parse_plan_payload",
    "plan_summary",
    "retry_priorities",
    "run_net_closed_loop",
    "run_net_open_loop",
    "run_serial_per_request",
    "run_serial_session",
    "run_service",
]
