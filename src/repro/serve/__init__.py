"""repro.serve: concurrent plan serving over a Workspace.

The serving layer between the planner and "heavy traffic": a
:class:`PlanService` coalesces concurrent plan requests into micro
batches, deduplicates identical requests onto single-flight
resolutions (in session, across batches, and -- through the workspace's
advisory file locks -- across processes), and answers each caller's
:class:`~concurrent.futures.Future` with the same content-addressed
plans ``Workspace.plan`` would return one at a time.

Quickstart::

    from repro import Workspace
    from repro.serve import Client, PlanService

    service = PlanService(Workspace("~/.repro-ws"), flush_ms=2.0)
    client = Client(service)
    future = client.submit(stack, system, cluster)   # non-blocking
    plan = future.result()
    print(service.stats)                              # exact counters
    service.close()

``python -m repro serve`` exposes the same service from the shell
(JSON-lines requests in, JSON results out) and ``repro serve --demo``
runs the closed-loop load generator against it.
"""

from .client import Client
from .loadgen import (
    LoadResult,
    duplicate_heavy_requests,
    run_serial_per_request,
    run_serial_session,
    run_service,
)
from .service import (
    DEFAULT_CAPACITY,
    DEFAULT_COMPLETED_CACHE,
    DEFAULT_FLUSH_MS,
    PlanRequest,
    PlanService,
)
from .stats import ServiceStats

__all__ = [
    "Client",
    "DEFAULT_CAPACITY",
    "DEFAULT_COMPLETED_CACHE",
    "DEFAULT_FLUSH_MS",
    "LoadResult",
    "PlanRequest",
    "PlanService",
    "ServiceStats",
    "duplicate_heavy_requests",
    "run_serial_per_request",
    "run_serial_session",
    "run_service",
]
