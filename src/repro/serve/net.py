"""The network serving tier: an asyncio JSON-lines front on PlanService.

:class:`NetServer` puts the wire protocol of
:mod:`repro.serve.protocol` on one coalescing
:class:`~repro.serve.service.PlanService`:

* **framing** -- one JSON object per line, hand-buffered (not
  ``readline``) so an oversized or truncated line gets a structured
  ``oversized-line`` refusal and a clean resync instead of a dead
  connection;
* **backpressure that sheds, never raises** -- requests queue in
  bounded priority lanes; a full lane (or per-client bound) answers
  ``shed`` with ``retry_after_ms`` instead of surfacing
  :class:`~repro.errors.QueueFullError`, and a full service backlog
  pauses the dispatcher rather than dropping work;
* **priority lanes and per-client fairness** -- an ``interactive`` and
  a ``batch`` lane drained weighted round-robin, each lane round-robin
  across client connections, so one chatty client cannot starve the
  rest;
* **graceful drain** -- ``close(drain=True)`` stops accepting, answers
  everything already admitted, and refuses latecomers with
  ``draining`` + ``retry_after_ms``;
* **observability** -- a per-request span (started on the reader task,
  ended on the responder) when the workspace traces, and exact
  counters in a :class:`~repro.obs.metrics.MetricsRegistry` under
  ``repro.net.*`` (per-lane depth gauges and shed counters included),
  scrapeable over the wire via the ``metrics`` op.

Every behavior is an exact counter (:class:`NetStats`); the invariant
``requests == completed + failed + shed + drained`` holds at every
quiescent instant and the fault-injection suite asserts it exactly.

:class:`NetClient` is the sync counterpart: one persistent socket,
transport reconnects and overload retries through one shared
:class:`~repro.serve.protocol.Backoff`, honoring the server's
``retry_after_ms``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..cache import LRUCache
from ..cache.remote import parse_address
from ..errors import (
    ConfigError,
    ProtocolError,
    QueueFullError,
    ReproError,
    ServiceClosedError,
    ServiceError,
)
from ..obs.export import render_prometheus
from ..obs.metrics import MetricsRegistry
from .protocol import (
    E_BAD_FRAME,
    E_BAD_JSON,
    E_BAD_REQUEST,
    E_BAD_SCHEMA,
    E_DRAINING,
    E_INTERNAL,
    E_OVERSIZED,
    E_PLAN_FAILED,
    E_SHED,
    E_UNKNOWN_OP,
    MAX_LINE_BYTES,
    PROTOCOL_SCHEMA_VERSION,
    RETRYABLE_CODES,
    Backoff,
    encode_frame,
    error_response,
    ok_response,
    parse_plan_payload,
    plan_summary,
)
from .service import PlanService

#: the server's priority lanes, in declaration order.
LANES = ("interactive", "batch")

#: weighted round-robin drain ratio between the lanes.
LANE_WEIGHTS = {"interactive": 4, "batch": 1}

#: default bound on each lane's queued (admitted, undispatched) requests.
DEFAULT_LANE_CAPACITY = 1024

#: default ``retry_after_ms`` hint on an interactive-lane shed; the
#: batch lane scales it by its weight ratio (lower priority waits
#: longer before retrying).
DEFAULT_SHED_RETRY_MS = 50.0

#: dispatcher pause while the PlanService backlog is at capacity.
_BACKPRESSURE_PAUSE_S = 0.002


@dataclass(frozen=True)
class LaneStats:
    """Exact counters of one priority lane.

    Attributes:
        name: the lane (``interactive`` or ``batch``).
        admitted: requests accepted into the lane's queues.
        shed: requests refused because the lane (or the submitting
            client's per-client bound) was full.
        depth: currently queued requests (a gauge).
        peak_depth: high-water queue depth.
    """

    name: str
    admitted: int = 0
    shed: int = 0
    depth: int = 0
    peak_depth: int = 0


@dataclass(frozen=True)
class NetStats:
    """Exact counters of one :class:`NetServer`.

    Attributes:
        connections: client connections accepted, lifetime.
        open_connections: currently connected clients (a gauge).
        frames: request lines received (including refused ones).
        requests: well-formed ``plan`` requests received.
        completed: plan requests answered with a result (including
            answers whose delivery failed because the client had gone
            away -- see ``dropped``).
        failed: plan requests answered with a non-retryable error
            (malformed payload, failed resolution, or a server fault).
        internal_errors: the 5xx class -- unexpected server defects,
            also counted in ``failed``.
        shed: plan requests refused at a full lane with ``shed``.
        drained: plan requests refused with ``draining`` (shutdown).
        dropped: responses that could not be written because the client
            disconnected first (their requests still count by outcome).
        protocol_errors: refused frames and malformed plan payloads
            (``bad-json``/``bad-frame``/``bad-schema``/``unknown-op``/
            ``oversized-line``/``bad-request``).
        backpressure_waits: dispatcher pauses because the PlanService
            backlog was at capacity (held, not shed).
        lanes: per-lane counters, in :data:`LANES` order.

    The accounting invariant ``requests == completed + failed + shed +
    drained`` holds whenever no request is in flight.
    """

    connections: int = 0
    open_connections: int = 0
    frames: int = 0
    requests: int = 0
    completed: int = 0
    failed: int = 0
    internal_errors: int = 0
    shed: int = 0
    drained: int = 0
    dropped: int = 0
    protocol_errors: int = 0
    backpressure_waits: int = 0
    lanes: tuple[LaneStats, ...] = ()

    @property
    def accounted(self) -> int:
        """``completed + failed + shed + drained`` (== ``requests`` at rest)."""
        return self.completed + self.failed + self.shed + self.drained

    def to_dict(self) -> dict:
        """The ``stats`` op's JSON body (lanes keyed by name)."""
        body = {
            "connections": self.connections,
            "open_connections": self.open_connections,
            "frames": self.frames,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "internal_errors": self.internal_errors,
            "shed": self.shed,
            "drained": self.drained,
            "dropped": self.dropped,
            "protocol_errors": self.protocol_errors,
            "backpressure_waits": self.backpressure_waits,
            "lanes": {
                lane.name: {
                    "admitted": lane.admitted,
                    "shed": lane.shed,
                    "depth": lane.depth,
                    "peak_depth": lane.peak_depth,
                }
                for lane in self.lanes
            },
        }
        return body


@dataclass
class _Pending:
    """One admitted plan request awaiting dispatch/response."""

    client: int
    writer: asyncio.StreamWriter
    request_id: object
    request: object  # PlanRequest
    priority: str
    detail: str
    digest: bool
    span: object  # Span | None


class _Lane:
    """One bounded priority lane: per-client FIFOs, round-robin drain.

    Touched only from the server's event loop (push, push_front, pop);
    the counter fields are plain ints so cross-thread stats snapshots
    read them atomically.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        per_client: int,
        registry: MetricsRegistry,
    ) -> None:
        self.name = name
        self.capacity = capacity
        self.per_client = per_client
        self.queues: dict[int, deque] = {}  # only non-empty deques
        self.order: deque[int] = deque()
        self.depth = 0
        self.peak_depth = 0
        self.admitted = 0
        self.shed = 0
        self._depth_gauge = registry.gauge(
            f"repro.net.lane.{name}.depth", "queued requests in this lane"
        )
        self._admitted_counter = registry.counter(
            f"repro.net.lane.{name}.admitted", "requests admitted"
        )
        self._shed_counter = registry.counter(
            f"repro.net.lane.{name}.shed", "requests shed at a full lane"
        )

    def push(self, item: _Pending) -> bool:
        """Admit one request; False (a shed) when a bound is hit."""
        queue = self.queues.get(item.client)
        if self.depth >= self.capacity or (
            queue is not None and len(queue) >= self.per_client
        ):
            self.shed += 1
            self._shed_counter.inc()
            return False
        if queue is None:
            queue = deque()
            self.queues[item.client] = queue
            self.order.append(item.client)
        queue.append(item)
        self.depth += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        self.admitted += 1
        self._admitted_counter.inc()
        self._depth_gauge.set(self.depth)
        return True

    def push_front(self, item: _Pending) -> None:
        """Requeue a popped request at the front (backpressure hold)."""
        queue = self.queues.get(item.client)
        if queue is None:
            queue = deque()
            self.queues[item.client] = queue
            self.order.appendleft(item.client)
        queue.appendleft(item)
        self.depth += 1
        self.peak_depth = max(self.peak_depth, self.depth)
        self._depth_gauge.set(self.depth)

    def pop(self) -> _Pending | None:
        """The next request, round-robin across clients; None when empty."""
        while self.order:
            client = self.order.popleft()
            queue = self.queues.get(client)
            if not queue:
                self.queues.pop(client, None)
                continue
            item = queue.popleft()
            self.depth -= 1
            if queue:
                self.order.append(client)
            else:
                self.queues.pop(client, None)
            self._depth_gauge.set(self.depth)
            return item
        return None

    def stats(self) -> LaneStats:
        """This lane's exact counters."""
        return LaneStats(
            name=self.name,
            admitted=self.admitted,
            shed=self.shed,
            depth=self.depth,
            peak_depth=self.peak_depth,
        )


class _Counters:
    """Thread-safe server counters mirrored into the metrics registry."""

    FIELDS = (
        "connections", "frames", "requests", "completed", "failed",
        "internal_errors", "shed", "drained", "dropped",
        "protocol_errors", "backpressure_waits",
    )

    def __init__(self, registry: MetricsRegistry) -> None:
        self._lock = threading.Lock()
        self._values = {name: 0 for name in self.FIELDS}
        self._open = 0
        self._counters = {
            name: registry.counter(f"repro.net.{name}")
            for name in self.FIELDS
        }
        self._open_gauge = registry.gauge("repro.net.open_connections")

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._values[name] += amount
        self._counters[name].inc(amount)

    def get(self, name: str) -> int:
        with self._lock:
            return self._values[name]

    def adjust_open(self, delta: int) -> None:
        with self._lock:
            self._open += delta
            level = self._open
        self._open_gauge.set(level)

    def snapshot(self, lanes: tuple[LaneStats, ...]) -> NetStats:
        with self._lock:
            values = dict(self._values)
            open_connections = self._open
        return NetStats(
            open_connections=open_connections, lanes=lanes, **values
        )


class NetServer:
    """Serve the plan wire protocol from one PlanService.

    The server runs an asyncio event loop on a background thread
    (:meth:`start`), so it embeds in tests and synchronous programs the
    same way :class:`~repro.cache.remote.CacheServer` does;
    ``repro serve --listen`` starts one and blocks on :meth:`wait`.

    Args:
        workspace: when given, the server creates (and owns -- closes
            on :meth:`close`) a :class:`PlanService` over it, passing
            ``service_kw`` through (``flush_ms``, ``capacity``,
            ``workers``, ...).
        service: an existing service to front instead (the caller keeps
            ownership).  Exactly one of ``workspace``/``service``.
        host: bind address (default loopback).
        port: bind port (0 picks a free one; see :attr:`address`).
        lane_capacity: bound on each lane's queued requests; beyond it
            requests shed with ``retry_after_ms``.
        per_client: bound on one client's queued requests per lane
            (default: a quarter of the lane, at least 1), the fairness
            backstop against a single flooding connection.
        shed_retry_ms: base ``retry_after_ms`` hint for interactive
            sheds; the batch lane scales it by the lane weight ratio.
        max_line_bytes: request-line bound; longer lines are refused
            with ``oversized-line`` and skipped.
        registry: metrics registry to fill (default: a fresh one owned
            by the server, exposed as :attr:`registry`).

    Raises:
        ConfigError: for neither/both of ``workspace``/``service`` or a
            non-positive bound.
    """

    def __init__(
        self,
        workspace=None,
        *,
        service: PlanService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        lane_capacity: int = DEFAULT_LANE_CAPACITY,
        per_client: int | None = None,
        shed_retry_ms: float = DEFAULT_SHED_RETRY_MS,
        max_line_bytes: int = MAX_LINE_BYTES,
        registry: MetricsRegistry | None = None,
        **service_kw,
    ) -> None:
        if (workspace is None) == (service is None):
            raise ConfigError(
                "NetServer needs exactly one of workspace= and service="
            )
        if lane_capacity < 1:
            raise ConfigError(
                f"lane_capacity must be >= 1, got {lane_capacity}"
            )
        if per_client is None:
            per_client = max(1, lane_capacity // 4)
        if per_client < 1:
            raise ConfigError(f"per_client must be >= 1, got {per_client}")
        if shed_retry_ms <= 0:
            raise ConfigError(
                f"shed_retry_ms must be > 0, got {shed_retry_ms}"
            )
        if max_line_bytes < 2:
            raise ConfigError(
                f"max_line_bytes must be >= 2, got {max_line_bytes}"
            )
        if service is not None and service_kw:
            raise ConfigError(
                f"service_kw {sorted(service_kw)} only apply when the "
                f"server creates the service (workspace=...)"
            )
        self._owns_service = service is None
        self._service = (
            PlanService(workspace, **service_kw) if service is None
            else service
        )
        self._host = host
        self._port = port
        self._shed_retry_ms = float(shed_retry_ms)
        self._max_line_bytes = max_line_bytes
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = _Counters(self.registry)
        self._lanes = {
            name: _Lane(name, lane_capacity, per_client, self.registry)
            for name in LANES
        }
        max_weight = max(LANE_WEIGHTS.values())
        self._retry_ms = {
            name: self._shed_retry_ms * (max_weight / LANE_WEIGHTS[name])
            for name in LANES
        }
        self._lane_cycle = tuple(
            itertools.chain.from_iterable(
                (name,) * LANE_WEIGHTS[name] for name in LANES
            )
        )
        self._cycle_pos = 0
        self._parse_cache = LRUCache(1024, None)
        self._client_ids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._aserver: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._inflight: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._wake: asyncio.Event | None = None
        self._draining = False
        self._started = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: BaseException | None = None
        self._bound: tuple[str, int] | None = None
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    @property
    def service(self) -> PlanService:
        """The fronted (or owned) :class:`PlanService`."""
        return self._service

    @property
    def address(self) -> str:
        """The connectable ``host:port`` (with the bound port resolved)."""
        if self._bound is None:
            raise ServiceError("NetServer has not been started")
        host, port = self._bound
        return f"{host}:{port}"

    def start(self) -> str:
        """Serve on a background thread; returns the bound address."""
        if self._closed:
            raise ServiceClosedError("NetServer is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._thread_main,
                name="repro-net-server",
                daemon=True,
            )
            self._thread.start()
            self._started.wait()
            if self._startup_error is not None:
                self._thread.join()
                self._thread = None
                raise self._startup_error
        return self.address

    def _thread_main(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._startup())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        loop.run_forever()
        loop.run_until_complete(loop.shutdown_asyncgens())
        loop.close()

    async def _startup(self) -> None:
        self._wake = asyncio.Event()
        self._aserver = await asyncio.start_server(
            self._handle_conn, self._host, self._port
        )
        sock = self._aserver.sockets[0]
        self._bound = sock.getsockname()[:2]
        self._dispatcher = asyncio.get_running_loop().create_task(
            self._dispatch_loop()
        )

    def wait(self, timeout_s: float | None = None) -> bool:
        """Block until :meth:`close` finishes (the CLI's foreground mode)."""
        return self._stopped.wait(timeout_s)

    def close(self, *, drain: bool = True, timeout_s: float = 60.0) -> None:
        """Stop serving (idempotent).

        Args:
            drain: answer everything already admitted first; refused
                latecomers get ``draining`` either way.  With
                ``drain=False`` queued requests are answered
                ``draining`` immediately instead of being resolved.
            timeout_s: bound on the drain phase.

        An owned service (``workspace=`` construction) is closed too,
        with the same ``drain``.
        """
        if self._closed:
            return
        self._closed = True
        if self._thread is not None and self._loop is not None:
            future = asyncio.run_coroutine_threadsafe(
                self._shutdown(drain, timeout_s), self._loop
            )
            try:
                future.result(timeout=timeout_s + 5.0)
            finally:
                self._loop.call_soon_threadsafe(self._loop.stop)
                self._thread.join(timeout=10.0)
        if self._owns_service:
            self._service.close(drain=drain)
        self._stopped.set()

    async def _shutdown(self, drain: bool, timeout_s: float) -> None:
        self._draining = True
        if self._aserver is not None:
            self._aserver.close()
        deadline = time.monotonic() + timeout_s
        if drain:
            while (
                any(lane.depth for lane in self._lanes.values())
                or self._inflight
            ) and time.monotonic() < deadline:
                self._wake.set()
                await asyncio.sleep(0.005)
        else:
            for lane in self._lanes.values():
                while True:
                    item = lane.pop()
                    if item is None:
                        break
                    self._counters.inc("drained")
                    await self._respond(
                        item,
                        error_response(
                            E_DRAINING,
                            "server is shutting down",
                            request_id=item.request_id,
                            retry_after_ms=self._retry_ms[
                                item.priority
                            ],
                        ),
                        outcome="drained",
                    )
            if self._inflight:
                await asyncio.wait(
                    self._inflight,
                    timeout=max(0.0, deadline - time.monotonic()),
                )
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            await asyncio.gather(
                self._dispatcher, return_exceptions=True
            )
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        for writer in list(self._writers):
            try:
                writer.close()
            except OSError:  # pragma: no cover - close race
                pass
        if self._aserver is not None:
            await self._aserver.wait_closed()

    def __enter__(self) -> "NetServer":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # -- stats ---------------------------------------------------------------

    def stats_snapshot(self) -> NetStats:
        """Exact network-tier counters at this instant (thread-safe)."""
        lanes = tuple(self._lanes[name].stats() for name in LANES)
        return self._counters.snapshot(lanes)

    #: property alias mirroring ``PlanService.stats``.
    stats = property(stats_snapshot)

    def exposition(self) -> str:
        """The server's ``repro.net.*`` counters as Prometheus text."""
        return render_prometheus(self.registry.snapshot())

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        client = next(self._client_ids)
        self._counters.inc("connections")
        self._counters.adjust_open(1)
        self._writers.add(writer)
        buf = bytearray()
        discarding = False
        try:
            while True:
                newline = buf.find(b"\n")
                if newline < 0:
                    if discarding:
                        buf.clear()
                    elif len(buf) > self._max_line_bytes:
                        self._counters.inc("protocol_errors")
                        await self._send(
                            writer,
                            error_response(
                                E_OVERSIZED,
                                f"request line exceeds "
                                f"{self._max_line_bytes} bytes",
                            ),
                        )
                        discarding = True
                        buf.clear()
                    chunk = await reader.read(65536)
                    if not chunk:
                        return
                    buf += chunk
                    continue
                line = bytes(buf[:newline])
                del buf[: newline + 1]
                if discarding:
                    # the tail of an already-refused oversized line
                    discarding = False
                    continue
                if len(line) > self._max_line_bytes:
                    self._counters.inc("protocol_errors")
                    await self._send(
                        writer,
                        error_response(
                            E_OVERSIZED,
                            f"request line exceeds "
                            f"{self._max_line_bytes} bytes",
                        ),
                    )
                    continue
                if not line.strip():
                    continue
                try:
                    await self._handle_line(client, writer, line)
                except (ConnectionError, OSError, asyncio.CancelledError):
                    raise
                except Exception as exc:
                    # the last line of defense: a defect while handling
                    # one frame answers `internal`, never kills the
                    # connection (the fuzz suite's no-death guarantee).
                    self._counters.inc("internal_errors")
                    await self._send(
                        writer,
                        error_response(
                            E_INTERNAL,
                            f"{type(exc).__name__}: {exc}",
                        ),
                    )
        except (ConnectionError, OSError, asyncio.CancelledError):
            # a vanished client just ends its connection; queued work
            # for it resolves normally and its responses count as
            # dropped when the write fails.
            pass
        finally:
            self._writers.discard(writer)
            self._counters.adjust_open(-1)
            try:
                writer.close()
            except OSError:  # pragma: no cover - close race
                pass
            if task is not None:
                self._conn_tasks.discard(task)

    async def _send(
        self, writer: asyncio.StreamWriter, response: dict
    ) -> bool:
        """Write one response frame; False when the client is gone."""
        if writer.is_closing():
            return False
        try:
            writer.write(encode_frame(response))
            await writer.drain()
            return True
        except (ConnectionError, OSError, RuntimeError):
            return False

    async def _handle_line(
        self,
        client: int,
        writer: asyncio.StreamWriter,
        line: bytes,
    ) -> None:
        self._counters.inc("frames")
        try:
            data = json.loads(line)
        except ValueError:
            self._counters.inc("protocol_errors")
            await self._send(
                writer, error_response(E_BAD_JSON, "invalid JSON")
            )
            return
        if not isinstance(data, dict):
            self._counters.inc("protocol_errors")
            await self._send(
                writer,
                error_response(E_BAD_FRAME, "expected a JSON object"),
            )
            return
        request_id = data.get("id")
        if data.get("schema") != PROTOCOL_SCHEMA_VERSION:
            self._counters.inc("protocol_errors")
            await self._send(
                writer,
                error_response(
                    E_BAD_SCHEMA,
                    f"schema {data.get('schema')!r} refused; this "
                    f"server speaks schema {PROTOCOL_SCHEMA_VERSION}",
                    request_id=request_id,
                ),
            )
            return
        op = data.get("op")
        if op == "plan":
            await self._handle_plan(client, writer, request_id, data)
        elif op == "ping":
            await self._send(
                writer, ok_response(request_id, pong=True)
            )
        elif op == "stats":
            service = self._service.stats_snapshot()
            await self._send(
                writer,
                ok_response(
                    request_id,
                    net=self.stats_snapshot().to_dict(),
                    service={
                        "requests": service.requests,
                        "completed": service.completed,
                        "failed": service.failed,
                        "rejected": service.rejected,
                        "dedup_hits": service.dedup_hits,
                        "resolved": service.resolved,
                        "batches": service.batches,
                        "max_batch": service.max_batch,
                        "p50_latency_ms": service.p50_latency_ms,
                        "p95_latency_ms": service.p95_latency_ms,
                    },
                ),
            )
        elif op == "metrics":
            await self._send(
                writer,
                ok_response(request_id, exposition=self.exposition()),
            )
        else:
            self._counters.inc("protocol_errors")
            await self._send(
                writer,
                error_response(
                    E_UNKNOWN_OP,
                    f"unknown op {op!r}",
                    request_id=request_id,
                ),
            )

    def _parse_payload(self, payload: object):
        """Parse (with a small memo: wire streams repeat heavily)."""
        key = None
        if isinstance(payload, dict):
            try:
                key = json.dumps(payload, sort_keys=True)
            except (TypeError, ValueError):
                key = None
        if key is not None:
            cached = self._parse_cache.get(key)
            if cached is not None:
                return cached
        request = parse_plan_payload(payload)
        if key is not None:
            self._parse_cache.put(key, request)
        return request

    async def _handle_plan(
        self,
        client: int,
        writer: asyncio.StreamWriter,
        request_id: object,
        data: dict,
    ) -> None:
        self._counters.inc("requests")
        priority = data.get("priority", "interactive")
        if priority not in self._lanes:
            self._counters.inc("failed")
            self._counters.inc("protocol_errors")
            await self._send(
                writer,
                error_response(
                    E_BAD_REQUEST,
                    f"unknown priority {priority!r}; expected one of "
                    f"{list(LANES)}",
                    request_id=request_id,
                ),
            )
            return
        detail = data.get("detail", "summary")
        if detail not in ("summary", "plan"):
            self._counters.inc("failed")
            self._counters.inc("protocol_errors")
            await self._send(
                writer,
                error_response(
                    E_BAD_REQUEST,
                    f"unknown detail {detail!r}; expected 'summary' "
                    f"or 'plan'",
                    request_id=request_id,
                ),
            )
            return
        if self._draining:
            self._counters.inc("drained")
            await self._send(
                writer,
                error_response(
                    E_DRAINING,
                    "server is draining and takes no new requests",
                    request_id=request_id,
                    retry_after_ms=self._retry_ms[priority],
                ),
            )
            return
        try:
            request = self._parse_payload(data.get("request"))
        except ReproError as exc:
            # ConfigError for malformed shapes, RegistryError for
            # unknown system/cluster names, TopologyError for layouts
            # the cluster cannot host -- all the payload's own fault.
            self._counters.inc("failed")
            self._counters.inc("protocol_errors")
            await self._send(
                writer,
                error_response(
                    E_BAD_REQUEST, str(exc), request_id=request_id
                ),
            )
            return
        except Exception as exc:
            self._counters.inc("failed")
            self._counters.inc("internal_errors")
            await self._send(
                writer,
                error_response(
                    E_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    request_id=request_id,
                ),
            )
            return
        tracer = self._service.workspace.tracer
        span = (
            tracer.start_detached(
                "net.request",
                {"priority": priority, "client": client},
            )
            if tracer is not None
            else None
        )
        item = _Pending(
            client=client,
            writer=writer,
            request_id=request_id,
            request=request,
            priority=priority,
            detail=detail,
            digest=bool(data.get("digest", False)),
            span=span,
        )
        lane = self._lanes[priority]
        if not lane.push(item):
            self._counters.inc("shed")
            if span is not None:
                span.set(outcome="shed").end()
            await self._send(
                writer,
                error_response(
                    E_SHED,
                    f"{priority} lane is full; retry after the hint",
                    request_id=request_id,
                    retry_after_ms=self._retry_ms[priority],
                ),
            )
            return
        self._wake.set()

    # -- dispatch ------------------------------------------------------------

    def _next_pending(self) -> _Pending | None:
        """Weighted round-robin across lanes; None when all are empty."""
        cycle = self._lane_cycle
        for step in range(len(cycle)):
            index = (self._cycle_pos + step) % len(cycle)
            item = self._lanes[cycle[index]].pop()
            if item is not None:
                self._cycle_pos = (index + 1) % len(cycle)
                return item
        return None

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            item = self._next_pending()
            if item is None:
                self._wake.clear()
                await self._wake.wait()
                continue
            try:
                future = self._service.submit(item.request)
            except QueueFullError:
                # the service backlog is the hard bound; hold the
                # already-admitted request and retry after a pause
                # instead of shedding admitted work.
                self._counters.inc("backpressure_waits")
                self._lanes[item.priority].push_front(item)
                await asyncio.sleep(_BACKPRESSURE_PAUSE_S)
                continue
            except ServiceClosedError as exc:
                self._counters.inc("drained")
                await self._respond(
                    item,
                    error_response(
                        E_DRAINING,
                        str(exc),
                        request_id=item.request_id,
                        retry_after_ms=self._retry_ms[item.priority],
                    ),
                    outcome="drained",
                )
            except ConfigError as exc:
                self._counters.inc("failed")
                self._counters.inc("protocol_errors")
                await self._respond(
                    item,
                    error_response(
                        E_BAD_REQUEST, str(exc),
                        request_id=item.request_id,
                    ),
                    outcome="bad-request",
                )
            except Exception as exc:
                self._counters.inc("failed")
                self._counters.inc("internal_errors")
                await self._respond(
                    item,
                    error_response(
                        E_INTERNAL,
                        f"{type(exc).__name__}: {exc}",
                        request_id=item.request_id,
                    ),
                    outcome="internal",
                )
            else:
                task = loop.create_task(
                    self._deliver(item, asyncio.wrap_future(future))
                )
                self._inflight.add(task)
                task.add_done_callback(self._inflight.discard)

    async def _deliver(
        self, item: _Pending, afuture: asyncio.Future
    ) -> None:
        try:
            plan = await afuture
        except asyncio.CancelledError:
            raise
        except ServiceClosedError as exc:
            self._counters.inc("drained")
            await self._respond(
                item,
                error_response(
                    E_DRAINING, str(exc), request_id=item.request_id,
                    retry_after_ms=self._retry_ms[item.priority],
                ),
                outcome="drained",
            )
            return
        except ReproError as exc:
            self._counters.inc("failed")
            await self._respond(
                item,
                error_response(
                    E_PLAN_FAILED, str(exc), request_id=item.request_id
                ),
                outcome="plan-failed",
            )
            return
        except Exception as exc:
            self._counters.inc("failed")
            self._counters.inc("internal_errors")
            await self._respond(
                item,
                error_response(
                    E_INTERNAL,
                    f"{type(exc).__name__}: {exc}",
                    request_id=item.request_id,
                ),
                outcome="internal",
            )
            return
        self._counters.inc("completed")
        response = ok_response(item.request_id)
        if item.detail == "plan":
            response["plan"] = plan.to_dict()
        else:
            response["result"] = plan_summary(plan)
        if item.digest:
            request = item.request
            response["digest"] = self._service.workspace.plan_digest(
                request.stack, request.system, request.cluster,
                parallel=request.parallel, gate_kind=request.gate_kind,
                routing_overhead=request.routing_overhead,
                include_gar=request.include_gar,
                noise=request.noise, seed=request.seed,
            )
        await self._respond(item, response, outcome="completed")

    async def _respond(
        self, item: _Pending, response: dict, *, outcome: str
    ) -> None:
        delivered = await self._send(item.writer, response)
        if not delivered:
            self._counters.inc("dropped")
        if item.span is not None:
            item.span.set(outcome=outcome, delivered=delivered).end()


class NetClient:
    """Sync client on one :class:`NetServer`: persistent socket, retries.

    One connection guarded by a lock (thread-safe, one in-flight
    request at a time), lazily opened and re-opened with backoff after
    transport failures.  Overload refusals (``shed``/``draining``)
    retry through the same :class:`~repro.serve.protocol.Backoff`,
    never below the server's ``retry_after_ms`` hint; exhausted
    overload retries surface as :class:`~repro.errors.QueueFullError`,
    exhausted transport retries as plain
    :class:`~repro.errors.ServiceError`, and protocol refusals
    (bad schema/request/op) as :class:`~repro.errors.ProtocolError`.

    Args:
        address: the server's ``host:port``.
        schema: protocol schema stamped on every frame.
        timeout_s: per-operation socket timeout.
        retries: transport reconnect attempts *and* overload retry
            budget (each counted separately).
        backoff: the retry-delay policy (default: a fresh
            :class:`~repro.serve.protocol.Backoff`); inject a seeded
            one for deterministic tests.

    Raises:
        ConfigError: for a malformed address or negative ``retries``.
    """

    def __init__(
        self,
        address: str,
        *,
        schema: int = PROTOCOL_SCHEMA_VERSION,
        timeout_s: float = 30.0,
        retries: int = 5,
        backoff: Backoff | None = None,
    ) -> None:
        self.address = address
        self._host, self._port = parse_address(address)
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.schema = schema
        self.timeout_s = timeout_s
        self._retries = retries
        self._backoff = backoff if backoff is not None else Backoff()
        self._lock = threading.Lock()
        self._sock: socket.socket | None = None
        self._file = None

    def _connect(self) -> None:
        sock = socket.create_connection(
            (self._host, self._port), timeout=self.timeout_s
        )
        self._sock = sock
        self._file = sock.makefile("rb")

    def _drop(self) -> None:
        for resource in (self._file, self._sock):
            if resource is not None:
                try:
                    resource.close()
                except OSError:  # pragma: no cover - close race
                    pass
        self._sock = None
        self._file = None

    def _roundtrip(self, request: dict) -> dict:
        """One frame out, one response object back, transport-retrying.

        Raises:
            ServiceError: when every transport attempt failed.
        """
        payload = encode_frame(request)
        last: Exception | None = None
        with self._lock:
            for attempt in range(self._retries + 1):
                try:
                    if self._sock is None:
                        self._connect()
                    self._sock.sendall(payload)
                    line = self._file.readline()
                    if not line:
                        raise OSError("server closed the connection")
                    response = json.loads(line)
                    if not isinstance(response, dict):
                        raise ValueError("non-object response")
                    return response
                except (OSError, ValueError) as exc:
                    last = exc
                    self._drop()
                    if attempt < self._retries:
                        self._backoff.wait(attempt)
        raise ServiceError(
            f"plan server {self.address} unreachable after "
            f"{self._retries + 1} attempt(s): {last}"
        )

    def _checked(self, response: dict) -> dict:
        """Raise the mapped error for a refusal; pass a success through."""
        if response.get("ok"):
            return response
        error = response.get("error") or {}
        code = error.get("code")
        message = error.get("message", "")
        if code in RETRYABLE_CODES:
            raise QueueFullError(
                f"server shed the request ({code}): {message}"
            )
        if code == E_PLAN_FAILED:
            raise ServiceError(message or "plan resolution failed")
        raise ProtocolError(
            f"server refused the request ({code!r}): {message}"
        )

    def plan(
        self,
        payload: dict,
        *,
        priority: str = "interactive",
        detail: str = "summary",
        request_id: object = None,
        digest: bool = False,
    ) -> dict:
        """Submit one plan payload; returns the server's success envelope.

        ``payload`` is the ``repro serve --requests`` line schema
        (validated server-side).  Overload refusals retry with backoff,
        honoring the server's ``retry_after_ms``, up to the retry
        budget.

        Raises:
            QueueFullError: shed/draining persisted past the budget.
            ServiceError: transport exhausted, or the plan itself
                failed to resolve.
            ProtocolError: the server refused the frame (bad schema,
                malformed payload) -- retrying verbatim cannot help.
        """
        frame = {
            "op": "plan",
            "schema": self.schema,
            "id": request_id,
            "priority": priority,
            "detail": detail,
            "request": payload,
        }
        if digest:
            frame["digest"] = True
        attempt = 0
        while True:
            response = self._roundtrip(frame)
            if not response.get("ok"):
                error = response.get("error") or {}
                if (
                    error.get("code") in RETRYABLE_CODES
                    and attempt < self._retries
                ):
                    self._backoff.wait(
                        attempt,
                        floor_ms=float(
                            response.get("retry_after_ms") or 0.0
                        ),
                    )
                    attempt += 1
                    continue
            return self._checked(response)

    def ping(self) -> bool:
        """True when the server answers the ``ping`` op."""
        response = self._checked(
            self._roundtrip({"op": "ping", "schema": self.schema})
        )
        return bool(response.get("pong"))

    def stats(self) -> dict:
        """The server's ``stats`` body: ``{"net": ..., "service": ...}``."""
        response = self._checked(
            self._roundtrip({"op": "stats", "schema": self.schema})
        )
        return {
            "net": response.get("net", {}),
            "service": response.get("service", {}),
        }

    def metrics(self) -> str:
        """The server's Prometheus exposition (``repro.net.*``)."""
        response = self._checked(
            self._roundtrip({"op": "metrics", "schema": self.schema})
        )
        exposition = response.get("exposition")
        return exposition if isinstance(exposition, str) else ""

    def close(self) -> None:
        """Drop the connection (the client reconnects on next use)."""
        with self._lock:
            self._drop()

    def __enter__(self) -> "NetClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
