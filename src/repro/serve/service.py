"""The plan-serving core: a coalescing, single-flight PlanService.

``Workspace.plan`` is a one-caller-at-a-time library call; this module
turns it into a *service*.  A :class:`PlanService` owns one background
coalescer thread and a bounded request queue:

* **micro-batching** -- submissions buffer for one flush window
  (``flush_ms``) and drain as a batch, so a burst of requests is
  processed together instead of interleaving N independent call stacks;
* **request dedup** -- each batch groups requests by plan identity (the
  same normalized fields the workspace's content address hashes), so M
  copies of one request cost one resolution and M future completions;
* **single-flight across batches** -- a group joins an in-flight
  resolution of the same digest instead of starting a second one, and
  the workspace layer extends the same guarantee across *processes* via
  per-digest file locks;
* **batched solver funnel** -- before resolving a batch's distinct
  groups, their layer contexts are profiled through the shared store and
  pushed through one :func:`~repro.core.pipeline_degree.solve_degrees`
  call, so a cold batch hits the vectorized Algorithm-1 solver once
  instead of once per request.

Every behavior is counted exactly (:class:`~repro.serve.stats.ServiceStats`,
also surfaced through :attr:`Workspace.stats`): tests assert dedup and
coalescing, not hope for them.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Sequence

from ..cache import LRUCache
from ..config import MoELayerSpec, ParallelSpec
from ..core.pipeline_degree import solve_degrees
from ..errors import (
    ConfigError,
    QueueFullError,
    ServiceClosedError,
)
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from ..planner.plan import IterationPlan
from ..systems.base import TrainingSystem
from ..api.workspace import Workspace
from .stats import ServiceStats, StatsAccumulator

#: default flush window: long enough to coalesce a burst arriving over a
#: few scheduler quanta, short enough to stay invisible next to a compile.
DEFAULT_FLUSH_MS = 2.0

#: default bound on the undrained request backlog.
DEFAULT_CAPACITY = 4096

#: default entry bound of the in-session completed-plan cache.
DEFAULT_COMPLETED_CACHE = 1024


@dataclass(frozen=True)
class PlanRequest:
    """One plan request, exactly the :meth:`Workspace.plan` surface.

    Attributes mirror the workspace call; ``system`` is identified by
    its :meth:`~repro.systems.base.TrainingSystem.fingerprint` for
    deduplication, so two equal-configured instances coalesce.
    """

    stack: MoELayerSpec | Sequence[MoELayerSpec]
    system: TrainingSystem
    cluster: ClusterSpec
    parallel: ParallelSpec | None = None
    gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD
    routing_overhead: float = 1.0
    include_gar: bool = True
    noise: float = 0.0
    seed: int = 0


@dataclass
class _Entry:
    """One accepted submission awaiting resolution."""

    request: PlanRequest
    key: tuple
    future: Future
    submitted: float  # time.monotonic()


@dataclass
class _Group:
    """All entries sharing one plan identity, resolved once."""

    key: tuple
    leader: PlanRequest
    members: list[_Entry] = field(default_factory=list)
    done: bool = False
    digest: str | None = None


class PlanService:
    """Serve concurrent plan requests from one workspace at batch speed.

    Args:
        workspace: the session whose caches and plan cache back every
            resolution.  The service binds its stats into
            ``workspace.stats.service``.
        flush_ms: coalescer flush window -- how long the first request
            of a batch waits for company before the batch drains.
        capacity: bound on the undrained backlog; submissions beyond it
            raise :class:`~repro.errors.QueueFullError`.
        max_batch: largest batch one flush drains (None = no limit
            below ``capacity``).
        workers: thread-pool width for resolving a batch's distinct
            groups (1 = resolve serially on the coalescer thread).
        prewarm: push a cold batch's layer contexts through one batched
            Algorithm-1 solve before resolving its groups.
        completed_cache: entry bound of the in-session completed-plan
            map.  A repeat of an already-resolved request is answered
            at submit time without touching the queue; entries beyond
            the bound are evicted in LRU order (counted as
            ``futures_evicted``, the evictee falling back to the
            workspace tiers).  ``0`` disables the cache.

    Raises:
        ConfigError: for a non-positive window, capacity or batch size,
            or a negative cache bound.
    """

    def __init__(
        self,
        workspace: Workspace,
        *,
        flush_ms: float = DEFAULT_FLUSH_MS,
        capacity: int = DEFAULT_CAPACITY,
        max_batch: int | None = None,
        workers: int = 1,
        prewarm: bool = True,
        completed_cache: int = DEFAULT_COMPLETED_CACHE,
    ) -> None:
        if flush_ms < 0:
            raise ConfigError(f"flush_ms must be >= 0, got {flush_ms}")
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if max_batch is not None and max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {max_batch}")
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if completed_cache < 0:
            raise ConfigError(
                f"completed_cache must be >= 0, got {completed_cache}"
            )
        self.workspace = workspace
        self._flush_s = flush_ms / 1000.0
        self._capacity = capacity
        self._max_batch = max_batch if max_batch is not None else capacity
        self._prewarm_enabled = prewarm
        self._cv = threading.Condition()
        self._pending: list[_Entry] = []
        self._inflight: dict[tuple, _Group] = {}
        self._outstanding = 0  # accepted, future not yet settled
        self._closed = False
        self._completed_cache: LRUCache | None = (
            LRUCache(completed_cache, None) if completed_cache > 0 else None
        )
        self._stats = StatsAccumulator()
        self._pool = (
            ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-serve-worker"
            )
            if workers > 1
            else None
        )
        workspace.bind_service(self.stats_snapshot)
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-coalescer", daemon=True
        )
        self._thread.start()

    # -- client surface ------------------------------------------------------

    def submit(self, request: PlanRequest) -> Future:
        """Enqueue one request; the returned future resolves to its plan.

        Validation (stack/gate shape) happens here, in the caller's
        thread, so malformed requests fail fast instead of poisoning a
        batch.

        Raises:
            ConfigError: for a malformed request.
            ServiceClosedError: after :meth:`close`.
            QueueFullError: when the backlog is at capacity.
        """
        stack, parallel, gates = Workspace.normalize_request(
            request.stack, request.cluster, request.parallel,
            request.gate_kind,
        )
        normalized = PlanRequest(
            stack=stack,
            system=request.system,
            cluster=request.cluster,
            parallel=parallel,
            gate_kind=gates,
            routing_overhead=float(request.routing_overhead),
            include_gar=bool(request.include_gar),
            noise=float(request.noise),
            seed=int(request.seed),
        )
        key = (
            stack,
            request.cluster,
            parallel,
            gates,
            tuple(request.system.fingerprint()),
            normalized.routing_overhead,
            normalized.include_gar,
            normalized.noise,
            normalized.seed,
        )
        entry = _Entry(
            request=normalized,
            key=key,
            future=Future(),
            submitted=time.monotonic(),
        )
        with self._cv:
            if self._closed:
                self._stats.reject()
                raise ServiceClosedError(
                    "PlanService is closed and takes no new requests"
                )
            if self._completed_cache is not None:
                cached = self._completed_cache.get(key)
                if cached is not None:
                    # A repeat of an already-resolved request: answer at
                    # submit time, consuming no queue capacity and no
                    # coalescer work.
                    self._stats.request()
                    self._stats.resolve_cached()
                    entry.future.set_result(cached)
                    return entry.future
            if len(self._pending) >= self._capacity:
                self._stats.reject()
                raise QueueFullError(
                    f"request backlog is at capacity "
                    f"({self._capacity}); retry after the next flush"
                )
            self._pending.append(entry)
            self._outstanding += 1
            self._stats.request()
            self._cv.notify()
        return entry.future

    def plan(self, request: PlanRequest) -> IterationPlan:
        """Submit and block for the answer (convenience wrapper)."""
        return self.submit(request).result()

    def stats_snapshot(self) -> ServiceStats:
        """Exact serving counters at this instant."""
        snapshot = self._stats.snapshot()
        if self._completed_cache is not None:
            snapshot = replace(
                snapshot,
                futures_evicted=self._completed_cache.stats.evictions,
            )
        return snapshot

    #: property alias mirroring ``Workspace.stats``.
    stats = property(stats_snapshot)

    def join(self, timeout_s: float | None = None) -> bool:
        """Block until every accepted request's future has been settled.

        Quiescence is an exact counter (accepted minus settled), not a
        queue inspection, so there is no window where the backlog looks
        empty while a drained batch is still resolving.

        Returns:
            True on quiescence, False if ``timeout_s`` expired first.
        """
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        while True:
            with self._cv:
                if self._outstanding == 0:
                    return True
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(0.001)

    def close(self, *, drain: bool = True) -> None:
        """Shut down: stop accepting requests, then stop the threads.

        Args:
            drain: resolve the outstanding backlog first.  With
                ``drain=False`` every undrained request fails with
                :class:`~repro.errors.ServiceClosedError` instead.
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            dropped: list[_Entry] = []
            if not drain:
                dropped = self._pending[:]
                self._pending.clear()
            self._cv.notify_all()
        for entry in dropped:
            self._settle(
                entry,
                error=ServiceClosedError(
                    "PlanService closed before resolution"
                ),
            )
            self._stats.resolve(
                group_size=1, failed=True, latencies_ms=[]
            )
        self._thread.join()
        if self._pool is not None:
            self._pool.shutdown(wait=True)

    def __enter__(self) -> "PlanService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=True)

    # -- coalescer -----------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._cv:
                while not self._pending and not self._closed:
                    self._cv.wait()
                if not self._pending:
                    return  # closed and drained
                # Micro-batch: let the burst accumulate for one flush
                # window from its first arrival (skipped when closing).
                deadline = self._pending[0].submitted + self._flush_s
                while not self._closed and len(self._pending) < self._max_batch:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cv.wait(timeout=remaining)
                batch = self._pending[: self._max_batch]
                del self._pending[: len(batch)]
            try:
                self._process(batch)
            except BaseException as exc:
                # A defect anywhere in batch handling must fail that
                # batch's callers, not silently kill the coalescer and
                # hang every future request.
                self._fail_batch(batch, exc)

    def _settle(
        self,
        entry: _Entry,
        *,
        plan: IterationPlan | None = None,
        error: BaseException | None = None,
    ) -> bool:
        """Deliver one entry's outcome, tolerating caller cancellation.

        Futures are never marked running until this point, so a caller
        may have cancelled while the entry waited; in that case nothing
        is delivered.  Always decrements the quiescence counter.

        Returns:
            True when the outcome was delivered, False when the caller
            had already cancelled.
        """
        delivered = entry.future.set_running_or_notify_cancel()
        if delivered:
            if error is not None:
                entry.future.set_exception(error)
            else:
                entry.future.set_result(plan)
        with self._cv:
            self._outstanding -= 1
        return delivered

    def _fail_batch(
        self, batch: list[_Entry], error: BaseException
    ) -> None:
        for entry in batch:
            if entry.future.done():
                continue  # already settled through its group
            with self._cv:
                self._inflight.pop(entry.key, None)
            self._settle(entry, error=error)
            self._stats.resolve(
                group_size=1, failed=True, latencies_ms=[]
            )

    def _process(self, batch: list[_Entry]) -> None:
        tracer = self.workspace.tracer
        drained = time.monotonic()
        span = (
            tracer.start("flush", {"batch": len(batch)})
            if tracer is not None
            else None
        )
        try:
            self._stats.batch(len(batch))
            new_groups: list[_Group] = []
            with self._cv:
                for entry in batch:
                    group = self._inflight.get(entry.key)
                    if group is None:
                        group = _Group(key=entry.key, leader=entry.request)
                        self._inflight[entry.key] = group
                        new_groups.append(group)
                    group.members.append(entry)
            if span is not None:
                # Queue-wait vs resolve-time split: how long the batch
                # sat in the queue (submission to drain) vs how long
                # resolving it took (the `resolve_ms` attr below).
                span.set(
                    groups=len(new_groups),
                    queue_wait_ms=round(
                        max(
                            (drained - entry.submitted) * 1000.0
                            for entry in batch
                        ),
                        3,
                    ),
                )
            if new_groups:
                self._prewarm(new_groups)
            resolve_started = time.monotonic()
            if self._pool is not None and len(new_groups) > 1:
                # Pool threads don't inherit this context's current
                # span; parent the per-group spans explicitly.
                list(
                    self._pool.map(
                        lambda group: self._resolve_group(
                            group, parent=span
                        ),
                        new_groups,
                    )
                )
            else:
                for group in new_groups:
                    self._resolve_group(group, parent=span)
            if span is not None:
                span.set(
                    resolve_ms=round(
                        (time.monotonic() - resolve_started) * 1000.0, 3
                    )
                )
        finally:
            if span is not None:
                span.end()

    def _prewarm(self, groups: list[_Group]) -> None:
        """One batched Algorithm-1 pass over a cold batch's contexts.

        Also stamps each group's content digest (used for the
        single-flight bookkeeping and skipping disk-cached groups).
        Best-effort throughout: any failure here is swallowed so it
        surfaces -- once, per group, through that group's futures -- in
        the resolve step instead of poisoning the whole batch.
        """
        for group in groups:
            req = group.leader
            try:
                group.digest = self.workspace.plan_digest(
                    req.stack, req.system, req.cluster,
                    parallel=req.parallel, gate_kind=req.gate_kind,
                    routing_overhead=req.routing_overhead,
                    include_gar=req.include_gar,
                    noise=req.noise, seed=req.seed,
                )
            except Exception:
                group.digest = None
        if not self._prewarm_enabled or len(groups) < 2:
            return
        by_rmax: dict[int, list] = {}
        for group in groups:
            req = group.leader
            if (
                group.digest is not None
                and (
                    self.workspace.plans_dir / f"{group.digest}.json"
                ).exists()
            ):
                continue  # already on disk: nothing to solve
            try:
                compiler = self.workspace.compiler(
                    req.cluster, req.parallel,
                    noise=req.noise, seed=req.seed,
                    r_max=req.system.r_max,
                )
                profiles = compiler.resolve_stack(
                    req.stack,
                    gate_kind=req.gate_kind,
                    routing_overhead=req.routing_overhead,
                )
                contexts = req.system.schedule_contexts(profiles)
            except Exception:
                continue  # the group's resolve step will surface it
            if contexts:
                by_rmax.setdefault(req.system.r_max, []).extend(contexts)
        for r_max, contexts in by_rmax.items():
            try:
                solve_degrees(contexts, r_max)
            except Exception:
                pass  # per-group resolves retry their own contexts

    def _resolve_group(self, group: _Group, parent=None) -> None:
        req = group.leader
        tracer = self.workspace.tracer
        span = (
            tracer.start(
                "resolve",
                {"members": len(group.members)},
                parent=parent,
            )
            if tracer is not None
            else None
        )
        error: BaseException | None = None
        plan = None
        try:
            plan = self.workspace.plan(
                req.stack, req.system, req.cluster,
                parallel=req.parallel, gate_kind=req.gate_kind,
                routing_overhead=req.routing_overhead,
                include_gar=req.include_gar,
                noise=req.noise, seed=req.seed,
            )
        except BaseException as exc:  # surfaced through every future
            error = exc
        finally:
            if span is not None:
                span.set(failed=error is not None).end()
        if error is None and self._completed_cache is not None:
            self._completed_cache.put(group.key, plan)
        with self._cv:
            group.done = True
            self._inflight.pop(group.key, None)
            members = group.members[:]
        now = time.monotonic()
        cancelled = 0
        for entry in members:
            if not self._settle(entry, plan=plan, error=error):
                cancelled += 1
        self._stats.resolve(
            group_size=len(members),
            failed=error is not None,
            cancelled=cancelled,
            latencies_ms=[
                (now - entry.submitted) * 1000.0 for entry in members
            ],
        )
