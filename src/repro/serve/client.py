"""In-process client for a :class:`~repro.serve.service.PlanService`.

A :class:`Client` gives callers the familiar :meth:`Workspace.plan`
signature over a running service: ``submit`` returns a future, ``plan``
blocks for the answer, ``plan_many`` fans a whole request list into one
coalescer window and gathers the results in order.  Many clients --
typically one per application thread -- share one service.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Sequence

from ..config import MoELayerSpec, ParallelSpec
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from ..planner.plan import IterationPlan
from ..systems.base import TrainingSystem
from .service import PlanRequest, PlanService


class Client:
    """A caller's handle on one :class:`PlanService`."""

    def __init__(self, service: PlanService) -> None:
        self.service = service

    def submit(
        self,
        stack: MoELayerSpec | Sequence[MoELayerSpec],
        system: TrainingSystem,
        cluster: ClusterSpec,
        *,
        parallel: ParallelSpec | None = None,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        include_gar: bool = True,
        noise: float = 0.0,
        seed: int = 0,
    ) -> Future:
        """Enqueue one request (the :meth:`Workspace.plan` signature).

        Raises:
            ConfigError: for a malformed request.
            ServiceClosedError: when the service is shut down.
            QueueFullError: when the backlog is at capacity.
        """
        return self.service.submit(
            PlanRequest(
                stack=stack,
                system=system,
                cluster=cluster,
                parallel=parallel,
                gate_kind=gate_kind,
                routing_overhead=routing_overhead,
                include_gar=include_gar,
                noise=noise,
                seed=seed,
            )
        )

    def plan(self, *args, **kwargs) -> IterationPlan:
        """Submit one request and block for its plan."""
        return self.submit(*args, **kwargs).result()

    def plan_many(
        self, requests: Sequence[PlanRequest]
    ) -> list[IterationPlan]:
        """Submit a request list and gather the plans in request order.

        All submissions land before the first result is awaited, so the
        whole list is eligible for one coalescer window.
        """
        futures = [self.service.submit(request) for request in requests]
        return [future.result() for future in futures]
