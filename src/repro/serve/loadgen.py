"""Closed-loop load generation for the plan-serving layer.

One deterministic duplicate-heavy workload, three ways to run it:

* :func:`run_serial_session` -- the best a caller can do *without* the
  serving layer in one long-lived process: a single
  :class:`~repro.api.workspace.Workspace` and one ``plan()`` call per
  request, in order.
* :func:`run_serial_per_request` -- what independent one-shot callers
  (CLI invocations, stateless handlers) sharing a root actually do: a
  fresh ``Workspace(root)`` per request.
* :func:`run_service` -- the same stream through a
  :class:`~repro.serve.service.PlanService`: every request submitted
  up front (a closed loop of concurrent callers), then gathered.

All three return the resolved plans in request order so callers can
assert bit-identical results; the benchmark
(``benchmarks/test_perf_serve.py``) and ``repro serve --demo`` both
drive these helpers.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from ..api.registry import get_cluster
from ..api.workspace import Workspace
from ..config import MoELayerSpec
from ..errors import ConfigError
from ..planner.plan import IterationPlan
from ..systems.registry import get_system
from .service import PlanRequest, PlanService
from .stats import ServiceStats


def duplicate_heavy_requests(
    total: int,
    distinct: int,
    *,
    seed: int = 0,
    depth: int = 12,
    cluster: str = "A",
    total_gpus: int = 16,
) -> list[PlanRequest]:
    """A deterministic duplicate-heavy request stream.

    ``distinct`` unique requests -- alternating systems over layer specs
    of varied sequence length -- repeated and shuffled to ``total``
    entries with a seeded RNG.  Every distinct request appears at least
    once.

    Raises:
        ConfigError: when ``total < distinct`` or either is < 1.
    """
    if distinct < 1 or total < distinct:
        raise ConfigError(
            f"need total >= distinct >= 1, got total={total} "
            f"distinct={distinct}"
        )
    spec_cluster = get_cluster(cluster, total_gpus=total_gpus)
    systems = ("tutel", "dsmoe", "fsmoe-no-iio", "fsmoe")
    base: list[PlanRequest] = []
    for i in range(distinct):
        layer = MoELayerSpec(
            batch_size=1,
            seq_len=256 + 64 * (i // len(systems)),
            embed_dim=1024,
            num_experts=spec_cluster.num_nodes,
            num_heads=8,
        )
        system = get_system(systems[i % len(systems)], solver="slsqp")
        base.append(
            PlanRequest(
                stack=(layer,) * depth,
                system=system,
                cluster=spec_cluster,
            )
        )
    rng = random.Random(seed)
    stream = base + [
        base[rng.randrange(distinct)] for _ in range(total - distinct)
    ]
    rng.shuffle(stream)
    return stream


@dataclass(frozen=True)
class LoadResult:
    """One driver run over a request stream.

    Attributes:
        wall_s: end-to-end wall time for the whole stream.
        plans: resolved plans, request order.
        requests: stream length.
        stats: serving counters (service runs only).
    """

    wall_s: float
    plans: tuple[IterationPlan, ...]
    requests: int
    stats: ServiceStats | None = None

    @property
    def throughput_rps(self) -> float:
        """Requests resolved per second of wall time."""
        if self.wall_s <= 0:
            return float("inf")
        return self.requests / self.wall_s


def run_serial_session(
    requests: list[PlanRequest], root, **workspace_kw
) -> LoadResult:
    """One long-lived workspace, one blocking ``plan()`` per request."""
    workspace = Workspace(root, **workspace_kw)
    start = time.perf_counter()
    plans = tuple(
        workspace.plan(
            req.stack, req.system, req.cluster,
            parallel=req.parallel, gate_kind=req.gate_kind,
            routing_overhead=req.routing_overhead,
            include_gar=req.include_gar, noise=req.noise, seed=req.seed,
        )
        for req in requests
    )
    wall = time.perf_counter() - start
    return LoadResult(wall_s=wall, plans=plans, requests=len(requests))


def run_serial_per_request(
    requests: list[PlanRequest], root, **workspace_kw
) -> LoadResult:
    """A fresh ``Workspace(root)`` per request (one-shot callers)."""
    start = time.perf_counter()
    plans = tuple(
        Workspace(root, **workspace_kw).plan(
            req.stack, req.system, req.cluster,
            parallel=req.parallel, gate_kind=req.gate_kind,
            routing_overhead=req.routing_overhead,
            include_gar=req.include_gar, noise=req.noise, seed=req.seed,
        )
        for req in requests
    )
    wall = time.perf_counter() - start
    return LoadResult(wall_s=wall, plans=plans, requests=len(requests))


def run_service(
    requests: list[PlanRequest],
    root,
    *,
    workspace_kw: dict | None = None,
    **service_kw,
) -> LoadResult:
    """The whole stream through one PlanService, closed-loop.

    Every request is submitted before the first result is awaited (the
    concurrent-clients shape), then the plans are gathered in order and
    the service is drained and closed.  Unless the caller sets one, the
    queue capacity is sized to the stream so submitting everything up
    front cannot trip the backlog bound.
    """
    workspace = Workspace(root, **(workspace_kw or {}))
    service_kw.setdefault("capacity", max(len(requests), 1))
    start = time.perf_counter()
    with PlanService(workspace, **service_kw) as service:
        futures = [service.submit(req) for req in requests]
        plans = tuple(future.result() for future in futures)
        stats = service.stats_snapshot()
    wall = time.perf_counter() - start
    return LoadResult(
        wall_s=wall, plans=plans, requests=len(requests), stats=stats
    )
