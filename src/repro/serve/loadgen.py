"""Load generation for the plan-serving layer, in-process and networked.

One deterministic duplicate-heavy workload, five ways to run it:

* :func:`run_serial_session` -- the best a caller can do *without* the
  serving layer in one long-lived process: a single
  :class:`~repro.api.workspace.Workspace` and one ``plan()`` call per
  request, in order.
* :func:`run_serial_per_request` -- what independent one-shot callers
  (CLI invocations, stateless handlers) sharing a root actually do: a
  fresh ``Workspace(root)`` per request.
* :func:`run_service` -- the same stream through a
  :class:`~repro.serve.service.PlanService`: every request submitted
  up front (a closed loop of concurrent callers), then gathered.
* :func:`run_net_closed_loop` -- the stream over the wire against a
  :class:`~repro.serve.net.NetServer`: K client threads, each with its
  own persistent :class:`~repro.serve.net.NetClient`, each sending its
  share back-to-back (latency includes queueing behind one's own
  connection).
* :func:`run_net_open_loop` -- the honest load test: requests are
  *scheduled* at a fixed arrival rate and latency is measured from the
  scheduled arrival, so a slow server accrues queueing delay instead
  of silently throttling the generator (late sends are counted, not
  hidden).

The in-process drivers return resolved plans in request order so
callers can assert bit-identical results; the network drivers return a
:class:`NetLoadResult` of exact outcome counters and the full latency
sample.  ``benchmarks/test_perf_serve.py``,
``benchmarks/test_perf_netserve.py`` and ``repro serve --demo`` all
drive these helpers.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from ..api.registry import get_cluster
from ..api.workspace import Workspace
from ..config import MoELayerSpec
from ..errors import ConfigError, QueueFullError, ServiceError
from ..planner.plan import IterationPlan
from ..systems.registry import get_system
from .service import PlanRequest, PlanService
from .stats import ServiceStats, percentile


def duplicate_heavy_requests(
    total: int,
    distinct: int,
    *,
    seed: int = 0,
    depth: int = 12,
    cluster: str = "A",
    total_gpus: int = 16,
) -> list[PlanRequest]:
    """A deterministic duplicate-heavy request stream.

    ``distinct`` unique requests -- alternating systems over layer specs
    of varied sequence length -- repeated and shuffled to ``total``
    entries with a seeded RNG.  Every distinct request appears at least
    once.

    Raises:
        ConfigError: when ``total < distinct`` or either is < 1.
    """
    if distinct < 1 or total < distinct:
        raise ConfigError(
            f"need total >= distinct >= 1, got total={total} "
            f"distinct={distinct}"
        )
    spec_cluster = get_cluster(cluster, total_gpus=total_gpus)
    systems = ("tutel", "dsmoe", "fsmoe-no-iio", "fsmoe")
    base: list[PlanRequest] = []
    for i in range(distinct):
        layer = MoELayerSpec(
            batch_size=1,
            seq_len=256 + 64 * (i // len(systems)),
            embed_dim=1024,
            num_experts=spec_cluster.num_nodes,
            num_heads=8,
        )
        system = get_system(systems[i % len(systems)], solver="slsqp")
        base.append(
            PlanRequest(
                stack=(layer,) * depth,
                system=system,
                cluster=spec_cluster,
            )
        )
    rng = random.Random(seed)
    stream = base + [
        base[rng.randrange(distinct)] for _ in range(total - distinct)
    ]
    rng.shuffle(stream)
    return stream


@dataclass(frozen=True)
class LoadResult:
    """One driver run over a request stream.

    Attributes:
        wall_s: end-to-end wall time for the whole stream.
        plans: resolved plans, request order.
        requests: stream length.
        stats: serving counters (service runs only).
    """

    wall_s: float
    plans: tuple[IterationPlan, ...]
    requests: int
    stats: ServiceStats | None = None

    @property
    def throughput_rps(self) -> float:
        """Requests resolved per second of wall time."""
        if self.wall_s <= 0:
            return float("inf")
        return self.requests / self.wall_s


def run_serial_session(
    requests: list[PlanRequest], root, **workspace_kw
) -> LoadResult:
    """One long-lived workspace, one blocking ``plan()`` per request."""
    workspace = Workspace(root, **workspace_kw)
    start = time.perf_counter()
    plans = tuple(
        workspace.plan(
            req.stack, req.system, req.cluster,
            parallel=req.parallel, gate_kind=req.gate_kind,
            routing_overhead=req.routing_overhead,
            include_gar=req.include_gar, noise=req.noise, seed=req.seed,
        )
        for req in requests
    )
    wall = time.perf_counter() - start
    return LoadResult(wall_s=wall, plans=plans, requests=len(requests))


def run_serial_per_request(
    requests: list[PlanRequest], root, **workspace_kw
) -> LoadResult:
    """A fresh ``Workspace(root)`` per request (one-shot callers)."""
    start = time.perf_counter()
    plans = tuple(
        Workspace(root, **workspace_kw).plan(
            req.stack, req.system, req.cluster,
            parallel=req.parallel, gate_kind=req.gate_kind,
            routing_overhead=req.routing_overhead,
            include_gar=req.include_gar, noise=req.noise, seed=req.seed,
        )
        for req in requests
    )
    wall = time.perf_counter() - start
    return LoadResult(wall_s=wall, plans=plans, requests=len(requests))


def run_service(
    requests: list[PlanRequest],
    root,
    *,
    workspace_kw: dict | None = None,
    **service_kw,
) -> LoadResult:
    """The whole stream through one PlanService, closed-loop.

    Every request is submitted before the first result is awaited (the
    concurrent-clients shape), then the plans are gathered in order and
    the service is drained and closed.  Unless the caller sets one, the
    queue capacity is sized to the stream so submitting everything up
    front cannot trip the backlog bound.
    """
    workspace = Workspace(root, **(workspace_kw or {}))
    service_kw.setdefault("capacity", max(len(requests), 1))
    start = time.perf_counter()
    with PlanService(workspace, **service_kw) as service:
        futures = [service.submit(req) for req in requests]
        plans = tuple(future.result() for future in futures)
        stats = service.stats_snapshot()
    wall = time.perf_counter() - start
    return LoadResult(
        wall_s=wall, plans=plans, requests=len(requests), stats=stats
    )


def duplicate_heavy_wire_requests(
    total: int,
    distinct: int,
    *,
    seed: int = 0,
    depth: int = 12,
    cluster: str = "A",
    total_gpus: int = 16,
) -> list[dict]:
    """:func:`duplicate_heavy_requests` as wire ``plan`` payloads.

    The same deterministic stream (same systems, layers, repeats and
    shuffle for a given seed), but each entry is the JSON payload a
    :class:`~repro.serve.net.NetClient` sends -- so a wire run hits the
    server-side coalescer with exactly the dedup profile of the
    in-process drivers.

    Raises:
        ConfigError: when ``total < distinct`` or either is < 1.
    """
    if distinct < 1 or total < distinct:
        raise ConfigError(
            f"need total >= distinct >= 1, got total={total} "
            f"distinct={distinct}"
        )
    spec_cluster = get_cluster(cluster, total_gpus=total_gpus)
    systems = ("tutel", "dsmoe", "fsmoe-no-iio", "fsmoe")
    base: list[dict] = []
    for i in range(distinct):
        base.append(
            {
                "cluster": {"name": cluster, "total_gpus": total_gpus},
                "system": systems[i % len(systems)],
                "solver": "slsqp",
                "stack": {
                    "layers": [
                        {
                            "batch_size": 1,
                            "seq_len": 256 + 64 * (i // len(systems)),
                            "embed_dim": 1024,
                            "num_experts": spec_cluster.num_nodes,
                            "num_heads": 8,
                        }
                    ],
                    "num_layers": depth,
                },
            }
        )
    rng = random.Random(seed)
    stream = base + [
        base[rng.randrange(distinct)] for _ in range(total - distinct)
    ]
    rng.shuffle(stream)
    return stream


@dataclass(frozen=True)
class NetLoadResult:
    """One network driver run: exact outcomes plus the latency sample.

    Attributes:
        wall_s: end-to-end wall time for the whole stream.
        requests: payloads sent (or scheduled).
        completed: requests answered with a plan result.
        shed_gave_up: requests still shed after the client's whole
            retry budget (closed loop) -- the server said try later and
            the driver ran out of patience.
        failed: requests refused for any other reason (transport
            exhausted, protocol refusal, plan failure).
        late_sends: open-loop sends that left after their scheduled
            arrival instant (generator fell behind the target rate; 0
            for closed-loop runs).
        latencies_ms: one latency per completed request -- send-to-answer
            for the closed loop, *scheduled-arrival*-to-answer for the
            open loop (queueing delay included).
    """

    wall_s: float
    requests: int
    completed: int
    shed_gave_up: int
    failed: int
    late_sends: int
    latencies_ms: tuple[float, ...]

    @property
    def throughput_rps(self) -> float:
        """Completed requests per second of wall time."""
        if self.wall_s <= 0:
            return float("inf")
        return self.completed / self.wall_s

    @property
    def p50_ms(self) -> float:
        """Median latency over the completed requests."""
        return percentile(list(self.latencies_ms), 50.0)

    @property
    def p95_ms(self) -> float:
        """95th-percentile latency over the completed requests."""
        return percentile(list(self.latencies_ms), 95.0)


def _net_worker(
    make_client,
    jobs: list[tuple[int, float | None, dict, str]],
    out: dict,
    stop: threading.Event,
) -> None:
    """One driver thread: its own client, its share of the stream.

    ``jobs`` rows are ``(index, scheduled_at_or_None, payload,
    priority)``; a scheduled time makes this an open-loop worker that
    sleeps until each arrival instant and measures latency from it.
    """
    completed = failed = shed = late = 0
    latencies: list[float] = []
    client = make_client()
    try:
        for _, scheduled, payload, priority in jobs:
            if stop.is_set():
                break
            if scheduled is not None:
                now = time.perf_counter()
                if now < scheduled:
                    time.sleep(scheduled - now)
                else:
                    late += 1
                origin = scheduled
            else:
                origin = time.perf_counter()
            try:
                client.plan(payload, priority=priority)
            except QueueFullError:
                shed += 1
                continue
            except ServiceError:
                failed += 1
                continue
            completed += 1
            latencies.append((time.perf_counter() - origin) * 1000.0)
    finally:
        client.close()
    out["completed"] = completed
    out["failed"] = failed
    out["shed"] = shed
    out["late"] = late
    out["latencies"] = latencies


def _run_net(
    address: str,
    jobs: list[tuple[int, float | None, dict, str]],
    *,
    clients: int,
    client_kw: dict | None,
) -> NetLoadResult:
    """Fan ``jobs`` over ``clients`` worker threads and merge outcomes."""
    from .net import NetClient  # here to keep module import light

    if clients < 1:
        raise ConfigError(f"clients must be >= 1, got {clients}")
    kw = dict(client_kw or {})

    def make_client() -> NetClient:
        return NetClient(address, **kw)

    shares = [jobs[k::clients] for k in range(clients)]
    outs: list[dict] = [{} for _ in shares]
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=_net_worker,
            args=(make_client, share, out, stop),
            name=f"repro-loadgen-{k}",
            daemon=True,
        )
        for k, (share, out) in enumerate(zip(shares, outs))
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    latencies: list[float] = []
    for out in outs:
        latencies.extend(out.get("latencies", ()))
    return NetLoadResult(
        wall_s=wall,
        requests=len(jobs),
        completed=sum(out.get("completed", 0) for out in outs),
        shed_gave_up=sum(out.get("shed", 0) for out in outs),
        failed=sum(out.get("failed", 0) for out in outs),
        late_sends=sum(out.get("late", 0) for out in outs),
        latencies_ms=tuple(latencies),
    )


def run_net_closed_loop(
    address: str,
    payloads: list[dict],
    *,
    clients: int = 4,
    priorities: list[str] | None = None,
    client_kw: dict | None = None,
) -> NetLoadResult:
    """The stream over the wire, K concurrent back-to-back clients.

    Each of ``clients`` threads owns a persistent
    :class:`~repro.serve.net.NetClient` and sends its round-robin share
    of ``payloads`` as fast as the server answers.  ``priorities``
    (parallel to ``payloads``; default all ``interactive``) steers each
    request's lane -- pair with
    :func:`~repro.serve.protocol.retry_priorities` for a mixed-lane
    stream.

    Raises:
        ConfigError: for ``clients < 1`` or a priorities length
            mismatch.
    """
    if priorities is not None and len(priorities) != len(payloads):
        raise ConfigError(
            f"priorities length {len(priorities)} != payloads length "
            f"{len(payloads)}"
        )
    jobs = [
        (
            i,
            None,
            payload,
            priorities[i] if priorities is not None else "interactive",
        )
        for i, payload in enumerate(payloads)
    ]
    return _run_net(address, jobs, clients=clients, client_kw=client_kw)


def run_net_open_loop(
    address: str,
    payloads: list[dict],
    *,
    rate_rps: float,
    clients: int = 8,
    priorities: list[str] | None = None,
    client_kw: dict | None = None,
) -> NetLoadResult:
    """The stream at a fixed arrival rate, latency from scheduled time.

    Request ``i`` is scheduled at ``i / rate_rps`` seconds after the
    run starts and its latency is measured from that instant, whether
    the send actually left on time or not -- so server slowdowns show
    up as latency (and ``late_sends``), never as a quietly reduced
    offered load.  The stream is dealt round-robin to ``clients``
    workers; each worker's share stays in scheduled order.

    Raises:
        ConfigError: for a non-positive rate, ``clients < 1``, or a
            priorities length mismatch.
    """
    if rate_rps <= 0:
        raise ConfigError(f"rate_rps must be > 0, got {rate_rps}")
    if priorities is not None and len(priorities) != len(payloads):
        raise ConfigError(
            f"priorities length {len(priorities)} != payloads length "
            f"{len(payloads)}"
        )
    base = time.perf_counter() + 0.05  # let every worker reach the line
    jobs = [
        (
            i,
            base + i / rate_rps,
            payload,
            priorities[i] if priorities is not None else "interactive",
        )
        for i, payload in enumerate(payloads)
    ]
    return _run_net(address, jobs, clients=clients, client_kw=client_kw)
