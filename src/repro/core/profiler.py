"""Online profiling of cluster primitives (paper §3.2 front-end, §6.2).

The paper measures collective latencies with ``nccl-tests`` (float counts
from 2^18 to 24*2^18, step 2^18) and GEMM times with ``torch.matmul``
(2^19 to 12*2^19, step 2^19), averages five runs, and fits Eq. 1 by least
squares.  This module performs the same sweep against the simulated
cluster's ground-truth cost oracle, optionally perturbed with
multiplicative Gaussian noise to emulate measurement jitter, then fits
:class:`~repro.core.perf_model.PerfModelSet`.

The scheduler only ever sees the fitted models -- exactly as on real
hardware -- so profiling error propagates into scheduling decisions the
same way it would in the paper's system.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ParallelSpec
from ..parallel.collectives import A2AAlgorithm, CollectiveCostModel
from ..parallel.topology import ClusterSpec
from .perf_model import LinearPerfModel, PerfModelSet, fit_linear_model

#: paper §6.2 communication sweep: 2^18 .. 24 * 2^18 float32 elements.
DEFAULT_COMM_ELEMENTS = tuple((i + 1) * 2**18 for i in range(24))
#: GEMM sweep in MACs.  The paper picks "2^19 .. 12 * 2^19" *matrix
#: elements*; Fig. 5's x-axis shows the resulting workloads reach ~3e10
#: units, so we sweep MAC counts on that scale (2^19 * 4096 per step).
DEFAULT_GEMM_UNITS = tuple((i + 1) * 2**19 * 4096 for i in range(12))
FLOAT_BYTES = 4


@dataclass(frozen=True)
class ProfileResult:
    """Fitted models plus fit diagnostics and raw samples.

    Attributes:
        models: the fitted :class:`PerfModelSet` consumed by schedulers.
        r_squared: per-operation coefficient of determination (Fig. 5
            reports >= 0.998 for every op on real hardware).
        samples: per-operation (sizes, mean measured times) used for the
            fit; kept for the Fig. 5 reproduction.
    """

    models: PerfModelSet
    r_squared: dict[str, float]
    samples: dict[str, tuple[tuple[float, ...], tuple[float, ...]]]


def _measure(
    truth_ms: float, rng: np.random.Generator, noise: float, repeats: int
) -> float:
    """Average of ``repeats`` noisy observations of ``truth_ms``."""
    if noise <= 0:
        return truth_ms
    jitter = rng.normal(loc=1.0, scale=noise, size=repeats)
    jitter = np.clip(jitter, 0.5, 1.5)
    return float(truth_ms * np.mean(jitter))


def profile_cluster(
    cluster: ClusterSpec,
    parallel: ParallelSpec,
    *,
    a2a_algorithm: A2AAlgorithm = A2AAlgorithm.NCCL,
    noise: float = 0.0,
    repeats: int = 5,
    seed: int = 0,
    comm_elements: tuple[int, ...] = DEFAULT_COMM_ELEMENTS,
    gemm_units: tuple[int, ...] = DEFAULT_GEMM_UNITS,
) -> ProfileResult:
    """Microbenchmark ``cluster`` under ``parallel`` and fit Eq. 1 models.

    Args:
        cluster: simulated hardware to profile.
        parallel: layout fixing the group size of each collective
            (a2a over ``n_ep``, AG/RS over ``n_esp``, AllReduce over
            ``n_dp``), as the real profiler would run at training scale.
        a2a_algorithm: which AlltoAll implementation to profile.
        noise: relative std-dev of measurement jitter (0 = exact).
        repeats: observations averaged per point (paper uses 5).
        seed: RNG seed for the jitter.
        comm_elements: float counts for the communication sweep.
        gemm_units: MAC counts for the GEMM sweep.

    Returns:
        A :class:`ProfileResult` with fitted models, r-squared per op and
        the raw samples.
    """
    oracle = CollectiveCostModel(cluster)
    rng = np.random.default_rng(seed)

    comm_bytes = [float(n * FLOAT_BYTES) for n in comm_elements]
    truth_fns = {
        "a2a": lambda b: oracle.alltoall_ms(b, parallel.n_ep, a2a_algorithm),
        "allgather": lambda b: oracle.allgather_ms(b, parallel.n_esp),
        "reducescatter": lambda b: oracle.reducescatter_ms(b, parallel.n_esp),
        "allreduce": lambda b: oracle.allreduce_ms(b, parallel.n_dp),
    }

    fitted: dict[str, LinearPerfModel] = {}
    r_squared: dict[str, float] = {}
    samples: dict[str, tuple[tuple[float, ...], tuple[float, ...]]] = {}

    for name, fn in truth_fns.items():
        times = [
            _measure(fn(nbytes), rng, noise, repeats) for nbytes in comm_bytes
        ]
        model, r2 = fit_linear_model(comm_bytes, times)
        fitted[name] = model
        r_squared[name] = r2
        samples[name] = (tuple(comm_bytes), tuple(times))

    gemm_sizes = [float(n) for n in gemm_units]
    gemm_times = [
        _measure(oracle.gemm_ms(macs), rng, noise, repeats)
        for macs in gemm_sizes
    ]
    gemm_model, gemm_r2 = fit_linear_model(gemm_sizes, gemm_times)
    r_squared["gemm"] = gemm_r2
    samples["gemm"] = (tuple(gemm_sizes), tuple(gemm_times))

    models = PerfModelSet(
        a2a=fitted["a2a"],
        allgather=fitted["allgather"],
        reducescatter=fitted["reducescatter"],
        allreduce=fitted["allreduce"],
        gemm=gemm_model,
    )
    return ProfileResult(models=models, r_squared=r_squared, samples=samples)
