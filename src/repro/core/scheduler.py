"""The generic scheduler facade (paper §3.2): front-end + back-end.

The paper splits scheduling into a *front-end* (profile the cluster and
the user's MoE sub-modules, fit performance models) and a *back-end*
(choose pipeline degrees, partition gradients, emit the task schedule)
that never needs the sub-modules' implementations.  This module packages
that workflow behind one object so downstream code -- and the examples --
can go from a cluster description to a scheduled iteration in three
calls.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..errors import ConfigError
from ..models.transformer import LayerProfile, profile_layer
from ..moe.gates import GateKind
from ..parallel.collectives import A2AAlgorithm, CollectiveCostModel
from ..parallel.topology import ClusterSpec
from ..parallel.volumes import compute_layer_volumes
from ..sim.engine import simulate
from ..sim.timeline import Timeline
from .cases import overlappable_time
from .perf_model import PerfModelSet
from .pipeline_degree import (
    DEFAULT_MAX_DEGREE,
    DegreeSolution,
    find_optimal_pipeline_degree,
)
from .profiler import ProfileResult, profile_cluster
from .schedules import build_iteration_graph


@dataclass(frozen=True)
class LayerScheduleReport:
    """Everything the back-end decided about one layer.

    Attributes:
        profile: the layer's timing profile.
        forward: Algorithm-1 solution for the forward phase.
        backward: Algorithm-1 solution for the backward phase
            (``t_gar = 0``; the per-model plan may stretch it).
        forward_window_ms: inter-node idle time inside the forward
            pipeline (how much AllReduce could hide there).
        backward_window_ms: same for backward.
    """

    profile: LayerProfile
    forward: DegreeSolution
    backward: DegreeSolution
    forward_window_ms: float
    backward_window_ms: float

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        return (
            f"forward: r={self.forward.degree} "
            f"({self.forward.case.name}, {self.forward.time_ms:.2f} ms, "
            f"window {self.forward_window_ms:.2f} ms); "
            f"backward: r={self.backward.degree} "
            f"({self.backward.case.name}, {self.backward.time_ms:.2f} ms, "
            f"window {self.backward_window_ms:.2f} ms)"
        )


class GenericScheduler:
    """Profile once, schedule anything (paper §3.2).

    Args:
        cluster: the target (simulated) cluster.
        parallel: layout; defaults to the paper's standard deployment.
        noise: profiling measurement noise (0 = exact oracle readings).
        seed: profiling RNG seed.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None = None,
        *,
        noise: float = 0.0,
        seed: int = 0,
        r_max: int = DEFAULT_MAX_DEGREE,
    ) -> None:
        if parallel is None:
            parallel = standard_layout(
                cluster.total_gpus, cluster.gpus_per_node
            )
        self.cluster = cluster
        self.parallel = parallel
        self.r_max = r_max
        self._profile: ProfileResult = profile_cluster(
            cluster, parallel, noise=noise, seed=seed
        )

    @property
    def models(self) -> PerfModelSet:
        """The fitted performance models (the back-end's only input)."""
        return self._profile.models

    @property
    def fit_quality(self) -> dict[str, float]:
        """r-squared of each fitted model."""
        return dict(self._profile.r_squared)

    def profile(
        self,
        spec: MoELayerSpec,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
    ) -> LayerProfile:
        """Front-end: profile one layer spec on this cluster."""
        return profile_layer(
            spec, self.parallel, self.models, gate_kind=gate_kind
        )

    def best_a2a_algorithm(
        self, spec: MoELayerSpec
    ) -> tuple[A2AAlgorithm, dict[A2AAlgorithm, float]]:
        """Pick the cheapest AlltoAll algorithm for this layer's messages.

        The paper pre-implements three dispatch algorithms (NCCL direct,
        Hetu's 1DH, Tutel/DeepSpeed's 2DH) precisely so the system can
        choose per deployment (§3.1).  This compares their predicted cost
        at the layer's actual message size.

        Returns:
            The winning algorithm and the per-algorithm cost table (ms).
        """
        volumes = compute_layer_volumes(spec, self.parallel)
        oracle = CollectiveCostModel(self.cluster)
        costs = {
            algo: oracle.alltoall_ms(
                volumes.a2a_bytes, self.parallel.n_ep, algo
            )
            for algo in A2AAlgorithm
        }
        best = min(costs, key=costs.get)
        return best, costs

    def schedule_layer(
        self,
        spec: MoELayerSpec,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
    ) -> LayerScheduleReport:
        """Back-end: run Algorithm 1 per phase and report the decisions."""
        profile = self.profile(spec, gate_kind=gate_kind)
        fw = find_optimal_pipeline_degree(profile.ctx_fw, r_max=self.r_max)
        bw = find_optimal_pipeline_degree(profile.ctx_bw, r_max=self.r_max)
        return LayerScheduleReport(
            profile=profile,
            forward=fw,
            backward=bw,
            forward_window_ms=overlappable_time(
                profile.ctx_fw, float(fw.degree)
            ),
            backward_window_ms=overlappable_time(
                profile.ctx_bw, float(bw.degree)
            ),
        )

    def simulate_iteration(
        self,
        spec: MoELayerSpec,
        num_layers: int,
        system,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
        phase: str = "both",
    ) -> Timeline:
        """Schedule and execute a full iteration under ``system``.

        Args:
            spec: layer shape (replicated ``num_layers`` times).
            num_layers: generalized layers in the model.
            system: a :class:`~repro.systems.base.TrainingSystem` instance.
            gate_kind: routing function for the timing profile.
            phase: ``"both"``, ``"forward"`` or ``"backward"``.

        Raises:
            ConfigError: for a non-positive layer count.
        """
        if num_layers <= 0:
            raise ConfigError(
                f"num_layers must be positive, got {num_layers}"
            )
        profile = self.profile(spec, gate_kind=gate_kind)
        iteration = system.build_iteration_spec(
            [profile] * num_layers, self.models
        )
        return simulate(build_iteration_graph(iteration, phase=phase))
