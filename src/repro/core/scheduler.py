"""The generic scheduler facade (paper §3.2): front-end + back-end.

The paper splits scheduling into a *front-end* (profile the cluster and
the user's MoE sub-modules, fit performance models) and a *back-end*
(choose pipeline degrees, partition gradients, emit the task schedule)
that never needs the sub-modules' implementations.  This module packages
that workflow behind one object so downstream code -- and the examples --
can go from a cluster description to a scheduled iteration in three
calls.

Since the introduction of :mod:`repro.planner`, this facade is a thin
compatibility shim over :class:`~repro.planner.compiler.PlanCompiler`:
all profiling flows through a (shareable) content-addressed
:class:`~repro.planner.store.ProfileStore`, and iterations may stack
*heterogeneous* layer specs.  New code should use the planner directly;
this class keeps the seed-era three-call API working.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..config import MoELayerSpec, ParallelSpec
from ..errors import ConfigError
from ..models.transformer import LayerProfile
from ..moe.gates import GateKind
from ..parallel.collectives import A2AAlgorithm
from ..parallel.topology import ClusterSpec
from ..sim.timeline import Timeline
from .cases import overlappable_time
from .perf_model import PerfModelSet
from .pipeline_degree import (
    DEFAULT_MAX_DEGREE,
    DegreeSolution,
    solve_degrees,
)


@dataclass(frozen=True)
class LayerScheduleReport:
    """Everything the back-end decided about one layer.

    Attributes:
        profile: the layer's timing profile.
        forward: Algorithm-1 solution for the forward phase.
        backward: Algorithm-1 solution for the backward phase
            (``t_gar = 0``; the per-model plan may stretch it).
        forward_window_ms: inter-node idle time inside the forward
            pipeline (how much AllReduce could hide there).
        backward_window_ms: same for backward.
    """

    profile: LayerProfile
    forward: DegreeSolution
    backward: DegreeSolution
    forward_window_ms: float
    backward_window_ms: float

    def summary(self) -> str:
        """One-paragraph human-readable report."""
        return (
            f"forward: r={self.forward.degree} "
            f"({self.forward.case.name}, {self.forward.time_ms:.2f} ms, "
            f"window {self.forward_window_ms:.2f} ms); "
            f"backward: r={self.backward.degree} "
            f"({self.backward.case.name}, {self.backward.time_ms:.2f} ms, "
            f"window {self.backward_window_ms:.2f} ms)"
        )


class GenericScheduler:
    """Profile once, schedule anything (paper §3.2).

    Args:
        cluster: the target (simulated) cluster.
        parallel: layout; defaults to the paper's standard deployment.
        noise: profiling measurement noise (0 = exact oracle readings).
        seed: profiling RNG seed.
        r_max: cap on pipeline degrees.
        store: optional shared :class:`~repro.planner.store.ProfileStore`;
            pass one to share profiling work with other schedulers,
            compilers, or ``plan_many`` sweeps.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None = None,
        *,
        noise: float = 0.0,
        seed: int = 0,
        r_max: int = DEFAULT_MAX_DEGREE,
        store=None,
    ) -> None:
        # Imported here, not at module top: the planner sits a layer above
        # the scheduling core and importing it eagerly would be circular.
        from ..planner.compiler import PlanCompiler

        self._compiler = PlanCompiler(
            cluster,
            parallel,
            store=store,
            noise=noise,
            seed=seed,
            r_max=r_max,
        )

    @property
    def cluster(self) -> ClusterSpec:
        """The profiled cluster."""
        return self._compiler.cluster

    @property
    def parallel(self) -> ParallelSpec:
        """The deployment layout."""
        return self._compiler.parallel

    @property
    def r_max(self) -> int:
        """Cap on pipeline degrees considered by Algorithm 1."""
        return self._compiler.r_max

    @property
    def compiler(self):
        """The underlying :class:`~repro.planner.compiler.PlanCompiler`."""
        return self._compiler

    @property
    def models(self) -> PerfModelSet:
        """The fitted performance models (the back-end's only input)."""
        return self._compiler.models

    @property
    def fit_quality(self) -> dict[str, float]:
        """r-squared of each fitted model."""
        return self._compiler.fit_quality

    def profile(
        self,
        spec: MoELayerSpec,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
    ) -> LayerProfile:
        """Front-end: profile one layer spec on this cluster (cached)."""
        return self._compiler.layer_profile(spec, gate_kind=gate_kind)

    def best_a2a_algorithm(
        self, spec: MoELayerSpec
    ) -> tuple[A2AAlgorithm, dict[A2AAlgorithm, float]]:
        """Pick the cheapest AlltoAll algorithm for this layer's messages.

        Delegates to :meth:`PlanCompiler.best_a2a_algorithm`, which caches
        the cost table per (message size, EP width).

        Returns:
            The winning algorithm and the per-algorithm cost table (ms).
        """
        return self._compiler.best_a2a_algorithm(spec)

    def schedule_layer(
        self,
        spec: MoELayerSpec,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
    ) -> LayerScheduleReport:
        """Back-end: run Algorithm 1 per phase and report the decisions."""
        profile = self.profile(spec, gate_kind=gate_kind)
        fw, bw = solve_degrees(
            (profile.ctx_fw, profile.ctx_bw), self.r_max
        )
        return LayerScheduleReport(
            profile=profile,
            forward=fw,
            backward=bw,
            forward_window_ms=overlappable_time(
                profile.ctx_fw, float(fw.degree)
            ),
            backward_window_ms=overlappable_time(
                profile.ctx_bw, float(bw.degree)
            ),
        )

    def simulate_iteration(
        self,
        spec: MoELayerSpec | Sequence[MoELayerSpec],
        num_layers: int | None = None,
        system=None,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
        phase: str = "both",
    ) -> Timeline:
        """Schedule and execute a full iteration under ``system``.

        Args:
            spec: one layer shape (replicated ``num_layers`` times) or an
                explicit -- possibly heterogeneous -- stack of shapes
                (then ``num_layers`` must be omitted or None).
            num_layers: generalized layers in the model (single-spec
                form only).
            system: a :class:`~repro.systems.base.TrainingSystem` instance.
            gate_kind: routing function for the timing profile.
            phase: ``"both"``, ``"forward"`` or ``"backward"``.

        Raises:
            ConfigError: for a non-positive layer count, a layer count
                passed alongside an explicit stack, or a missing system.
        """
        if system is None:
            raise ConfigError("simulate_iteration requires a system")
        if isinstance(spec, MoELayerSpec):
            if num_layers is None or num_layers <= 0:
                raise ConfigError(
                    f"num_layers must be positive, got {num_layers}"
                )
            stack: Sequence[MoELayerSpec] = [spec] * num_layers
        else:
            if num_layers is not None:
                raise ConfigError(
                    "num_layers must be None when an explicit stack is given"
                )
            stack = spec
        return self._compiler.simulate(
            stack, system, gate_kind=gate_kind, phase=phase
        )
