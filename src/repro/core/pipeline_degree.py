"""Algorithm 1: ``FindOptimalPipelineDegree`` (paper §4.3).

Two interchangeable solvers produce the integer pipeline degree:

* ``"batch"`` (default) -- the vectorized exact sweep of
  :mod:`repro.core.fastsolve`: every integer degree of every context is
  evaluated with the closed-form decision-tree time in one array pass.
  Exact (identical to :func:`oracle_integer_degree`) and ~4 orders of
  magnitude cheaper per context than SLSQP.
* ``"slsqp"`` -- the paper's continuous relaxation, kept for
  cross-checking: each of the four case objectives is minimized over
  ``r`` with SLSQP, subject to the case's region constraints (a case
  region is a union of conjunctions of Q1-Q7 predicates; each
  conjunction becomes a separate smooth sub-problem), and the best
  feasible candidate is rounded to its best neighbouring integer degree
  under the exact decision-tree time.

The process-wide default is ``"batch"``; override per call with the
``solver=`` argument, per process with :func:`set_default_degree_solver`
or the ``REPRO_DEGREE_SOLVER`` environment variable (how the cold-plan
benchmark measures the SLSQP path end-to-end).
"""

from __future__ import annotations

import functools
import math
import os
import warnings
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import minimize

from ..errors import SolverError
from ..obs.trace import maybe_span
from .cases import CASE_BRANCHES, Case, analytic_time, case_time, classify
from .constraints import PipelineContext

#: default cap on the pipeline degree; Tutel exposes degrees up to 8-16 and
#: chunk counts beyond this give diminishing returns while multiplying
#: startup costs.
DEFAULT_MAX_DEGREE = 16

#: accepted values of the ``solver=`` argument / process default.
DEGREE_SOLVERS = ("batch", "slsqp")

_CONSTRAINT_TOL = 1e-7

_default_solver = os.environ.get("REPRO_DEGREE_SOLVER", "batch")


def set_default_degree_solver(solver: str) -> str:
    """Set the process-wide Algorithm-1 solver; returns the previous one.

    Raises:
        SolverError: for an unknown solver name.
    """
    global _default_solver
    if solver not in DEGREE_SOLVERS:
        raise SolverError(
            f"unknown degree solver {solver!r}; choose from {DEGREE_SOLVERS}"
        )
    previous = _default_solver
    _default_solver = solver
    return previous


def get_default_degree_solver() -> str:
    """The process-wide Algorithm-1 solver currently in effect.

    Raises:
        SolverError: when ``REPRO_DEGREE_SOLVER`` named an unknown solver.
    """
    if _default_solver not in DEGREE_SOLVERS:
        raise SolverError(
            f"REPRO_DEGREE_SOLVER={_default_solver!r} is not a known "
            f"degree solver; choose from {DEGREE_SOLVERS}"
        )
    return _default_solver


@dataclass(frozen=True)
class DegreeSolution:
    """Result of Algorithm 1 for one layer/phase.

    Attributes:
        degree: chosen integer pipeline degree ``r``.
        time_ms: exact analytic MoE time at ``degree``.
        case: dominating case at ``degree``.
        continuous_degree: the unrounded SLSQP optimum that led to
            ``degree`` (useful for diagnostics).
        per_case_time_ms: best feasible objective value found per case
            (``inf`` when a case region is empty for this context).
    """

    degree: int
    time_ms: float
    case: Case
    continuous_degree: float
    per_case_time_ms: dict[Case, float]


def _margin_fn(ctx: PipelineContext, name: str, wanted: bool):
    margin = getattr(ctx, f"{name}_margin")
    if wanted:
        return lambda x: margin(float(x[0]))
    return lambda x: -margin(float(x[0]))


def _solve_branch(
    ctx: PipelineContext,
    case: Case,
    branch: tuple[tuple[str, bool], ...],
    r_max: float,
) -> tuple[float, float] | None:
    """SLSQP-minimize one case objective within one conjunction region.

    Returns:
        ``(r, t)`` for the best feasible point found, or None if every
        start fails or lands infeasible.
    """
    constraints = [
        {"type": "ineq", "fun": _margin_fn(ctx, name, wanted)}
        for name, wanted in branch
    ]
    objective = lambda x: case_time(ctx, float(x[0]), case)  # noqa: E731
    best: tuple[float, float] | None = None
    starts = sorted({1.0, 2.0, 4.0, min(8.0, r_max), r_max})
    for r0 in starts:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = minimize(
                objective,
                x0=np.array([r0]),
                method="SLSQP",
                bounds=[(1.0, r_max)],
                constraints=constraints,
                options={"maxiter": 80, "ftol": 1e-10},
            )
        if not np.isfinite(result.fun):
            continue
        r = float(np.clip(result.x[0], 1.0, r_max))
        feasible = all(
            constraint["fun"]([r]) >= -_CONSTRAINT_TOL
            for constraint in constraints
        )
        if not feasible:
            continue
        t = float(case_time(ctx, r, case))
        if best is None or t < best[1]:
            best = (r, t)
    return best


def find_optimal_pipeline_degree(
    ctx: PipelineContext,
    r_max: int = DEFAULT_MAX_DEGREE,
    *,
    solver: str | None = None,
) -> DegreeSolution:
    """Run Algorithm 1 and return the best integer pipeline degree.

    Results are memoized: contexts are frozen value objects and the
    algorithm is pure, so repeated calls for identical layers (the common
    case -- every layer of a model shares one context) cost one solve.

    Args:
        ctx: layer/phase performance context (``t_gar`` already set: zero
            in forward, partition-plan value in backward).
        r_max: inclusive upper bound on the degree (must be >= 1).
        solver: ``"batch"`` (vectorized exact sweep) or ``"slsqp"`` (the
            paper's continuous relaxation); None uses the process default.

    Raises:
        SolverError: if ``r_max < 1`` or the solver is unknown.
    """
    return solve_degrees((ctx,), r_max, solver=solver)[0]


def solve_degrees(
    ctxs: Sequence[PipelineContext],
    r_max: int = DEFAULT_MAX_DEGREE,
    *,
    solver: str | None = None,
) -> tuple[DegreeSolution, ...]:
    """Algorithm-1 solutions for many contexts, batched when possible.

    The ``"batch"`` solver evaluates the whole batch in one array pass
    (:func:`~repro.core.fastsolve.solve_degrees_batch`); ``"slsqp"``
    falls back to per-context solves through the memoized SLSQP path.
    This is the single dispatch point every scheduling caller uses, so
    flipping the process default really flips the whole pipeline.

    Raises:
        SolverError: if ``r_max < 1`` or the solver is unknown.
    """
    if r_max < 1:
        raise SolverError(f"r_max must be >= 1, got {r_max}")
    if solver is None:
        solver = get_default_degree_solver()
    span = maybe_span("solve_degrees")
    if span is not None:
        span.set(contexts=len(ctxs), solver=solver, r_max=int(r_max))
    try:
        if solver == "batch":
            # Imported lazily: fastsolve consumes DegreeSolution from this
            # module, so a top-level import would be circular.
            from .fastsolve import solve_degrees_batch

            return solve_degrees_batch(ctxs, r_max)
        if solver == "slsqp":
            return tuple(_find_optimal_cached(ctx, r_max) for ctx in ctxs)
        raise SolverError(
            f"unknown degree solver {solver!r}; choose from "
            f"{DEGREE_SOLVERS}"
        )
    finally:
        if span is not None:
            span.end()


@functools.lru_cache(maxsize=65536)
def _find_optimal_cached(
    ctx: PipelineContext, r_max: int
) -> DegreeSolution:

    per_case: dict[Case, float] = {}
    candidates: list[float] = [1.0]
    best_continuous: tuple[float, float] | None = None
    for case, branches in CASE_BRANCHES.items():
        case_best: tuple[float, float] | None = None
        for branch in branches:
            solved = _solve_branch(ctx, case, branch, float(r_max))
            if solved is not None and (
                case_best is None or solved[1] < case_best[1]
            ):
                case_best = solved
        per_case[case] = case_best[1] if case_best else float("inf")
        if case_best is not None:
            candidates.append(case_best[0])
            if best_continuous is None or case_best[1] < best_continuous[1]:
                best_continuous = case_best

    # Round every continuous candidate to its integer neighbours and judge
    # them all with the exact decision-tree time.
    integer_candidates: set[int] = set()
    for r in candidates:
        integer_candidates.add(int(np.clip(math.floor(r), 1, r_max)))
        integer_candidates.add(int(np.clip(math.ceil(r), 1, r_max)))

    best_r = 1
    best_t = float("inf")
    for r in sorted(integer_candidates):
        t = analytic_time(ctx, float(r))
        if t < best_t - 1e-12:
            best_t = t
            best_r = r

    continuous = best_continuous[0] if best_continuous else float(best_r)
    return DegreeSolution(
        degree=best_r,
        time_ms=best_t,
        case=classify(ctx, float(best_r)),
        continuous_degree=continuous,
        per_case_time_ms=per_case,
    )


def oracle_integer_degree(
    ctx: PipelineContext, r_max: int = DEFAULT_MAX_DEGREE
) -> DegreeSolution:
    """Exhaustive integer sweep of the exact analytic time (test oracle).

    Used to validate that Algorithm 1's SLSQP answer matches a brute-force
    search (ablation E10 in DESIGN.md), and by baselines granted oracle
    tuning.
    """
    if r_max < 1:
        raise SolverError(f"r_max must be >= 1, got {r_max}")
    best_r, best_t = 1, float("inf")
    for r in range(1, r_max + 1):
        t = analytic_time(ctx, float(r))
        if t < best_t - 1e-12:
            best_t = t
            best_r = r
    return DegreeSolution(
        degree=best_r,
        time_ms=best_t,
        case=classify(ctx, float(best_r)),
        continuous_degree=float(best_r),
        per_case_time_ms={},
    )
