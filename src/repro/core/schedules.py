"""Task-graph builders for every schedule in the paper's Fig. 3.

A training iteration over ``n_l`` *generalized layers* (attention + MoE)
becomes a :class:`~repro.sim.events.TaskGraph`:

* forward:  ``dense_fw(l) -> [D(i) -> AG(i) -> E(i) -> RS(i) -> C(i)] x r``
* backward: mirrored, expert chunks doubled in cost, plus the
  Gradient-AllReduce placement that distinguishes the systems.

Streams encode contention: ops mapped to the same stream serialize.  The
four placements of Gradient-AllReduce (``GarMode``) reproduce:

* ``END``            -- plain Tutel / DeepSpeed-MoE: exposed after backward;
* ``DENSE_OVERLAP``  -- Tutel-Improved: one AllReduce per layer released
  after that layer's dense backward, running at background priority
  (overlaps non-MoE work, may head-of-line block later AlltoAlls);
* ``FIXED_CHUNKS``   -- PipeMoE+Lina: same, but sliced into fixed 30 MB
  chunks (paper §6.4), limiting the blocking;
* ``ADAPTIVE``       -- FSMoE: slices from the
  :class:`~repro.core.gradient_partition.GradientPartitionPlan`, with the
  in-MoE slice scheduled right after the last AlltoAll dispatch of the
  layer's pipeline (Fig. 3d).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ScheduleError
from ..sim.events import TaskGraph, TaskKind
from ..units import MB
from .constraints import PipelineContext
from .gradient_partition import GarPlacement, GradientPartitionPlan
from .perf_model import LinearPerfModel

#: priority band for background (gap-filling) AllReduce work; anything in
#: this band loses to every foreground task that is ready.
BACKGROUND_PRIORITY = 1_000_000_000

#: Lina's fixed gradient chunk size (paper §6.4: "e.g., 30MB").
LINA_CHUNK_BYTES = 30 * MB

#: priority stride between consecutive blocks; must exceed the task count
#: of any single block.
_BLOCK_STRIDE = 10_000


@dataclass(frozen=True)
class StreamMap:
    """Which stream each resource class runs on."""

    compute: str
    intra: str
    inter: str

    @property
    def is_single(self) -> bool:
        """True when everything serializes on one stream (DS-MoE)."""
        return self.compute == self.intra == self.inter

    @property
    def merges_comm(self) -> bool:
        """True when intra- and inter-node comm share a stream (no IIO)."""
        return self.intra == self.inter


#: DS-MoE / the paper's "default schedule" (Fig. 3a).
SINGLE_STREAM = StreamMap("default", "default", "default")
#: Tutel / PipeMoE / FSMoE-No-IIO (Fig. 3b): one comm + one compute stream.
TWO_STREAM = StreamMap("compute", "comm", "comm")
#: FSMoE (Fig. 3c/d): inter-node and intra-node comm overlap.
THREE_STREAM = StreamMap("compute", "intra", "inter")


class GarMode(enum.Enum):
    """Gradient-AllReduce placement strategy."""

    END = "end"
    DENSE_OVERLAP = "dense_overlap"
    FIXED_CHUNKS = "fixed_chunks"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class LayerPhaseSchedule:
    """One generalized layer in one phase (forward or backward).

    Attributes:
        ctx: pipeline context supplying per-chunk op durations.
        degree: pipeline degree ``r`` used for this layer/phase.
        dense_ms: non-MoE duration (attention, gate, order, MP comm).
    """

    ctx: PipelineContext
    degree: int
    dense_ms: float

    def __post_init__(self) -> None:
        if self.degree < 1:
            raise ScheduleError(f"degree must be >= 1, got {self.degree}")
        if self.dense_ms < 0:
            raise ScheduleError(f"dense_ms must be >= 0, got {self.dense_ms}")


@dataclass(frozen=True)
class IterationSpec:
    """Everything needed to build one training iteration's task graph.

    Layers are indexed in forward order; ``forward[l]`` and ``backward[l]``
    describe the same layer in the two phases.  The per-layer schedules
    may all differ: heterogeneous stacks (distinct hidden sizes, expert
    counts, top-k per layer) are first-class.

    Attributes:
        name: system label (for task names and reports).
        forward: per-layer forward schedules.
        backward: per-layer backward schedules.
        grad_bytes: dense-gradient bytes produced per layer.
        ar_model: fitted Gradient-AllReduce model.
        streams: stream mapping (contention model).
        gar_mode: Gradient-AllReduce placement strategy.
        gar_chunk_bytes: chunk size for ``FIXED_CHUNKS``.
        plan: gradient placement, required for ``ADAPTIVE``.  Either a
            full :class:`GradientPartitionPlan` (fresh from the solver) or
            a bare :class:`GarPlacement` (replayed from a persisted plan).
    """

    name: str
    forward: tuple[LayerPhaseSchedule, ...]
    backward: tuple[LayerPhaseSchedule, ...]
    grad_bytes: tuple[float, ...]
    ar_model: LinearPerfModel
    streams: StreamMap
    gar_mode: GarMode
    gar_chunk_bytes: float = LINA_CHUNK_BYTES
    plan: GradientPartitionPlan | GarPlacement | None = None

    def __post_init__(self) -> None:
        n = len(self.forward)
        if len(self.backward) != n or len(self.grad_bytes) != n:
            raise ScheduleError(
                "forward, backward and grad_bytes must have equal length"
            )
        if n == 0:
            raise ScheduleError("need at least one layer")
        if self.gar_mode is GarMode.ADAPTIVE and self.plan is None:
            raise ScheduleError("ADAPTIVE gar_mode requires a partition plan")
        if self.gar_mode is GarMode.FIXED_CHUNKS and self.gar_chunk_bytes <= 0:
            raise ScheduleError("gar_chunk_bytes must be positive")


@dataclass(frozen=True)
class MoEBlockHandle:
    """Ids of interest after adding one MoE block to a graph."""

    dispatch_ids: tuple[int, ...]
    combine_ids: tuple[int, ...]
    last_dispatch_id: int


def add_moe_block(
    graph: TaskGraph,
    ctx: PipelineContext,
    degree: int,
    streams: StreamMap,
    entry_deps: tuple[int, ...],
    priority_base: int,
    label: str,
    gar_slice_ms: float = 0.0,
    gar_extra_deps: tuple[int, ...] = (),
    gar_background: bool = False,
) -> MoEBlockHandle:
    """Append one pipelined MoE block (dispatch .. combine) to ``graph``.

    Chunk ``i`` contributes ``D(i) -> AG(i) -> E(i) -> RS(i) -> C(i)``.
    Priorities order the inter stream as ``D(0..r-1)``, then the optional
    in-pipeline Gradient-AllReduce slice, then ``C(0..r-1)`` (Fig. 3d);
    the intra stream alternates ``AG(i)`` / ``RS(i)`` by chunk.

    Args:
        graph: graph being built.
        ctx: durations source (per-chunk times at ``degree``).
        degree: pipeline degree ``r``.
        streams: stream mapping.
        entry_deps: tasks every dispatch must wait for.
        priority_base: base priority; the block uses
            ``[priority_base, priority_base + 6r + 1]``.
        label: prefix for task names.
        gar_slice_ms: duration of the AllReduce slice injected after the
            last dispatch (0 = no slice).
        gar_extra_deps: availability dependencies of that slice.
        gar_background: demote the slice to the background priority band
            (used on merged comm streams, where a mid-pipeline slice would
            otherwise block the combines it is meant to hide behind).

    Returns:
        Handle with dispatch/combine task ids.
    """
    r = degree
    t_a2a = ctx.t_a2a(r)
    t_ag = ctx.t_ag(r)
    t_rs = ctx.t_rs(r)
    t_exp = ctx.t_exp(r)

    dispatch_ids: list[int] = []
    rs_ids: list[int] = []
    for i in range(r):
        d_id = graph.add(
            name=f"{label} D({i})",
            kind=TaskKind.A2A_DISPATCH,
            stream=streams.inter,
            duration_ms=t_a2a,
            deps=entry_deps,
            priority=priority_base + i,
        )
        ag_id = graph.add(
            name=f"{label} AG({i})",
            kind=TaskKind.ESP_ALLGATHER,
            stream=streams.intra,
            duration_ms=t_ag,
            deps=(d_id,),
            priority=priority_base + 2 * r + 2 * i,
        )
        e_id = graph.add(
            name=f"{label} E({i})",
            kind=TaskKind.EXPERT,
            stream=streams.compute,
            duration_ms=t_exp,
            deps=(ag_id,),
            priority=priority_base + i,
        )
        rs_id = graph.add(
            name=f"{label} RS({i})",
            kind=TaskKind.ESP_REDUCESCATTER,
            stream=streams.intra,
            duration_ms=t_rs,
            deps=(e_id,),
            priority=priority_base + 2 * r + 2 * i + 1,
        )
        dispatch_ids.append(d_id)
        rs_ids.append(rs_id)

    gar_deps: tuple[int, ...] = ()
    if gar_slice_ms > 0:
        gar_id = graph.add(
            name=f"{label} GAR(pipe)",
            kind=TaskKind.GRAD_ALLREDUCE,
            stream=streams.inter,
            duration_ms=gar_slice_ms,
            deps=(dispatch_ids[-1],) + tuple(gar_extra_deps),
            priority=(
                BACKGROUND_PRIORITY + priority_base
                if gar_background
                else priority_base + r
            ),
        )
        if not gar_background:
            gar_deps = (gar_id,)

    combine_ids: list[int] = []
    for i in range(r):
        c_id = graph.add(
            name=f"{label} C({i})",
            kind=TaskKind.A2A_COMBINE,
            stream=streams.inter,
            duration_ms=t_a2a,
            deps=(rs_ids[i],) + gar_deps,
            priority=priority_base + r + 1 + i,
        )
        combine_ids.append(c_id)

    return MoEBlockHandle(
        dispatch_ids=tuple(dispatch_ids),
        combine_ids=tuple(combine_ids),
        last_dispatch_id=dispatch_ids[-1],
    )


def _add_background_ar(
    graph: TaskGraph,
    ar_model: LinearPerfModel,
    nbytes: float,
    stream: str,
    deps: tuple[int, ...],
    seq: int,
    label: str,
) -> int | None:
    if nbytes <= 0:
        return None
    return graph.add(
        name=label,
        kind=TaskKind.GRAD_ALLREDUCE,
        stream=stream,
        duration_ms=ar_model.time_ms(nbytes),
        deps=deps,
        priority=BACKGROUND_PRIORITY + seq,
    )


def build_iteration_graph(spec: IterationSpec, phase: str = "both") -> TaskGraph:
    """Build the task graph for one iteration (or one of its phases).

    The graph is ready for :func:`repro.sim.engine.simulate`; its makespan
    is the iteration time of system ``spec.name`` on this workload.

    Args:
        spec: the iteration description.
        phase: ``"both"`` (default), ``"forward"`` (no backward, no
            Gradient-AllReduce) or ``"backward"`` -- the split phases feed
            the GPipe pipeline-parallel model.

    Raises:
        ScheduleError: for an unknown phase name.
    """
    if phase not in ("both", "forward", "backward"):
        raise ScheduleError(f"unknown phase {phase!r}")
    graph = TaskGraph()
    n_l = len(spec.forward)
    block_seq = 0

    # ---- forward ----------------------------------------------------------
    prev: tuple[int, ...] = ()
    for l in range(n_l) if phase in ("both", "forward") else ():
        layer = spec.forward[l]
        dense_id = graph.add(
            name=f"fw L{l} dense",
            kind=TaskKind.OTHERS,
            stream=spec.streams.compute,
            duration_ms=layer.dense_ms,
            deps=prev,
            priority=block_seq * _BLOCK_STRIDE,
        )
        handle = add_moe_block(
            graph,
            ctx=layer.ctx,
            degree=layer.degree,
            streams=spec.streams,
            entry_deps=(dense_id,),
            priority_base=block_seq * _BLOCK_STRIDE + 1,
            label=f"fw L{l}",
        )
        prev = handle.combine_ids
        block_seq += 1

    if phase == "forward":
        return graph
    if phase == "backward":
        prev = ()

    # ---- backward ---------------------------------------------------------
    dense_bw_ids: dict[int, int] = {}
    gar_seq = 0
    for l in reversed(range(n_l)):
        layer = spec.backward[l]
        gar_slice_ms = 0.0
        gar_extra: tuple[int, ...] = ()
        if spec.gar_mode is GarMode.ADAPTIVE:
            assert spec.plan is not None  # validated in IterationSpec
            if spec.plan.moe_ar_bytes[l] > 0:
                gar_slice_ms = spec.plan.t_gar_ms[l]
                if l + 1 in dense_bw_ids:
                    gar_extra = (dense_bw_ids[l + 1],)
        handle = add_moe_block(
            graph,
            ctx=layer.ctx,
            degree=layer.degree,
            streams=spec.streams,
            entry_deps=prev,
            priority_base=block_seq * _BLOCK_STRIDE + 1,
            label=f"bw L{l}",
            gar_slice_ms=gar_slice_ms,
            gar_extra_deps=gar_extra,
            gar_background=spec.streams.merges_comm,
        )
        dense_id = graph.add(
            name=f"bw L{l} dense",
            kind=TaskKind.OTHERS,
            stream=spec.streams.compute,
            duration_ms=layer.dense_ms,
            deps=handle.combine_ids,
            priority=block_seq * _BLOCK_STRIDE,
        )
        dense_bw_ids[l] = dense_id
        prev = (dense_id,)
        block_seq += 1

        if spec.gar_mode is GarMode.DENSE_OVERLAP:
            _add_background_ar(
                graph,
                spec.ar_model,
                spec.grad_bytes[l],
                spec.streams.inter,
                deps=(dense_id,),
                seq=gar_seq,
                label=f"GAR L{l}",
            )
            gar_seq += 1
        elif spec.gar_mode is GarMode.FIXED_CHUNKS:
            remaining = spec.grad_bytes[l]
            chunk_idx = 0
            while remaining > 0:
                chunk = min(remaining, spec.gar_chunk_bytes)
                remaining -= chunk
                _add_background_ar(
                    graph,
                    spec.ar_model,
                    chunk,
                    spec.streams.inter,
                    deps=(dense_id,),
                    seq=gar_seq,
                    label=f"GAR L{l}#{chunk_idx}",
                )
                gar_seq += 1
                chunk_idx += 1
        elif spec.gar_mode is GarMode.ADAPTIVE:
            assert spec.plan is not None
            _add_background_ar(
                graph,
                spec.ar_model,
                spec.plan.dense_window_bytes[l],
                spec.streams.inter,
                deps=handle.combine_ids,
                seq=gar_seq,
                label=f"GAR L{l}(dense)",
            )
            gar_seq += 1

    # ---- iteration tail ----------------------------------------------------
    if spec.gar_mode is GarMode.END:
        tail_deps = prev
        for l in range(n_l):
            if spec.grad_bytes[l] <= 0:
                continue
            ar_id = graph.add(
                name=f"GAR L{l}(end)",
                kind=TaskKind.GRAD_ALLREDUCE,
                stream=spec.streams.inter,
                duration_ms=spec.ar_model.time_ms(spec.grad_bytes[l]),
                deps=tail_deps,
                priority=block_seq * _BLOCK_STRIDE + l,
            )
            tail_deps = (ar_id,)
    elif spec.gar_mode is GarMode.ADAPTIVE:
        assert spec.plan is not None
        _add_background_ar(
            graph,
            spec.ar_model,
            spec.plan.tail_bytes,
            spec.streams.inter,
            deps=prev,
            seq=gar_seq,
            label="GAR tail",
        )

    return graph


def chunk_gradient(total_bytes: float, chunk_bytes: float) -> list[float]:
    """Split ``total_bytes`` into Lina-style fixed chunks (last one short).

    Raises:
        ScheduleError: for non-positive ``chunk_bytes``.
    """
    if chunk_bytes <= 0:
        raise ScheduleError(f"chunk_bytes must be positive, got {chunk_bytes}")
    if total_bytes <= 0:
        return []
    full = math.floor(total_bytes / chunk_bytes)
    chunks = [chunk_bytes] * full
    rest = total_bytes - full * chunk_bytes
    if rest > 0:
        chunks.append(rest)
    return chunks
