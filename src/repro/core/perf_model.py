"""Linear alpha-beta performance models (paper Eq. 1 and §5.1).

Every time-consuming operation is modelled as ``t(n) = alpha + n * beta``
where ``n`` is the message size in bytes (communication) or the MAC count
(GEMM), ``alpha`` is the startup cost and ``beta`` the per-unit cost.
Chunking an input into ``r`` pieces costs ``t = alpha + (n / r) * beta``
per piece: the startup is paid again for every chunk, which is exactly the
tension Algorithm 1 optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SolverError


@dataclass(frozen=True)
class LinearPerfModel:
    """``t(n) = alpha + n * beta`` with ``t(0) = 0``.

    Attributes:
        alpha: startup time, ms.
        beta: marginal time per unit of work, ms/unit.
    """

    alpha: float
    beta: float

    def time_ms(self, n: float) -> float:
        """Predicted time for an operation of size ``n``."""
        if n <= 0:
            return 0.0
        return self.alpha + n * self.beta

    def chunk_time_ms(self, n: float, r: float) -> float:
        """Predicted time of one chunk when ``n`` is split ``r`` ways."""
        if n <= 0:
            return 0.0
        return self.alpha + (n / r) * self.beta

    def inverse(self, t_ms: float) -> float:
        """Largest ``n`` whose operation fits within ``t_ms``.

        This is the paper's ``g_inv(t) = (t - alpha) / beta`` (§5.1),
        clamped at zero for windows smaller than the startup cost.
        """
        if self.beta <= 0:
            return 0.0 if t_ms <= self.alpha else float("inf")
        return max(0.0, (t_ms - self.alpha) / self.beta)

    def time_ms_array(self, n: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`time_ms` -- bit-identical per entry.

        ``np.where`` mirrors the scalar ``n <= 0`` branch and the
        arithmetic is the same two IEEE ops in the same order, so each
        entry equals ``time_ms(n[i])`` exactly.
        """
        n = np.asarray(n, dtype=float)
        return np.where(n <= 0, 0.0, self.alpha + n * self.beta)

    def inverse_array(self, t_ms: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`inverse` -- bit-identical per entry."""
        t_ms = np.asarray(t_ms, dtype=float)
        if self.beta <= 0:
            return np.where(t_ms <= self.alpha, 0.0, float("inf"))
        return np.maximum(0.0, (t_ms - self.alpha) / self.beta)

    def scaled(self, alpha_factor: float = 1.0, beta_factor: float = 1.0) -> "LinearPerfModel":
        """Return a copy with scaled coefficients (e.g. 2x for backward)."""
        return LinearPerfModel(
            alpha=self.alpha * alpha_factor, beta=self.beta * beta_factor
        )


def fit_linear_model(
    sizes: Sequence[float], times_ms: Sequence[float]
) -> tuple[LinearPerfModel, float]:
    """Least-squares fit of a :class:`LinearPerfModel`, plus r-squared.

    Mirrors the paper's §6.2 procedure ("fitting through the least squares
    method takes under 10 ms").  Negative fitted alphas are clamped to zero
    (a fitted negative startup is measurement noise, and a negative alpha
    would make ``inverse`` produce phantom capacity).

    Raises:
        SolverError: on fewer than two samples or mismatched lengths.
    """
    if len(sizes) != len(times_ms):
        raise SolverError(
            f"sizes ({len(sizes)}) and times ({len(times_ms)}) differ in length"
        )
    if len(sizes) < 2:
        raise SolverError("need at least two samples to fit a line")
    x = np.asarray(sizes, dtype=float)
    y = np.asarray(times_ms, dtype=float)
    beta, alpha = np.polyfit(x, y, deg=1)
    alpha = max(0.0, float(alpha))
    beta = max(0.0, float(beta))
    predicted = alpha + beta * x
    ss_res = float(np.sum((y - predicted) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearPerfModel(alpha=alpha, beta=beta), r_squared


@dataclass(frozen=True)
class PerfModelSet:
    """The five fitted models the FSMoE scheduler consumes.

    Communication models map bytes -> ms at the fixed group sizes of the
    deployment (the paper likewise fits per-cluster models with nccl-tests
    at the training world size).  ``gemm`` maps MACs -> ms *per kernel*;
    expert blocks with ``num_gemms`` kernels multiply alpha accordingly
    (paper §4.1).

    Attributes:
        a2a: inter-node AlltoAll (EP dispatch/combine).
        allgather: intra-node ESP/MP AllGather (per-rank shard bytes).
        reducescatter: intra-node ESP/MP ReduceScatter (per-rank shard bytes).
        allreduce: inter-node Gradient-AllReduce (buffer bytes).
        gemm: dense GEMM (MACs, per kernel).
    """

    a2a: LinearPerfModel
    allgather: LinearPerfModel
    reducescatter: LinearPerfModel
    allreduce: LinearPerfModel
    gemm: LinearPerfModel

    def expert_model(self, num_gemms: int) -> LinearPerfModel:
        """Expert-computation model for a block of ``num_gemms`` kernels.

        ``alpha_exp = num_gemms * alpha_gemm`` and ``beta_exp = beta_gemm``
        (the paper multiplies alpha and beta by the kernel count; beta here
        is per-MAC so the total MAC count already carries the kernel count).
        """
        if num_gemms <= 0:
            raise SolverError(f"num_gemms must be positive, got {num_gemms}")
        return LinearPerfModel(
            alpha=self.gemm.alpha * num_gemms, beta=self.gemm.beta
        )

    def as_dict(self) -> dict[str, LinearPerfModel]:
        """Name -> model mapping, for reports and serialization."""
        return {
            "a2a": self.a2a,
            "allgather": self.allgather,
            "reducescatter": self.reducescatter,
            "allreduce": self.allreduce,
            "gemm": self.gemm,
        }
