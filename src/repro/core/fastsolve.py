"""Batched Algorithm-1 solver: every (context, degree) pair in one pass.

The SLSQP implementation of Algorithm 1 (:mod:`repro.core.pipeline_degree`)
solves up to 4 cases x several conjunction branches x 5 starts per
context -- ~0.5 s each -- and cold planning multiplies that by every
distinct layer context and every point of the Step-2 interpolator grid.
But the decision variable is a bounded integer (``r`` in ``[1, r_max]``,
16 by default), so the *exact* optimum is a cheap exhaustive sweep when
the sweep is vectorized: :func:`solve_degrees_batch` packs all contexts
into ``(n_ctx, 1)`` coefficient columns (:class:`ContextArrays`),
evaluates the decision-tree time for every integer degree of every
context in one ``(n_ctx, n_r)`` array pass, and reduces with the oracle's
own tie-breaking.  The result per context is identical to
:func:`~repro.core.pipeline_degree.oracle_integer_degree` -- same degree,
bit-identical ``time_ms`` -- at roughly four orders of magnitude less
cost per context.

Solutions are memoized process-wide in a bounded LRU keyed on
``(context, r_max)``; :func:`solver_stats` exposes exact counters
(contexts solved, cache hits, batch calls and sizes) so sessions can
assert "this sweep solved N contexts in one batch" the same way the
planner's profile caches do.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SolverError
from .cases import Case, analytic_time_batch, classify_batch
from .constraints import ContextArrays, PipelineContext
# Safe non-lazy import: pipeline_degree only imports this module inside
# function bodies, so there is no import cycle at module level.
from .pipeline_degree import DEFAULT_MAX_DEGREE, DegreeSolution

#: same tie-break tolerance as the scalar oracle: a later degree must
#: beat the incumbent by more than this to win.
_TIE_TOL = 1e-12

#: bound on the process-wide memo (matches the seed lru_cache budget).
CACHE_MAXSIZE = 65536


@dataclass(frozen=True)
class SolverStats:
    """Exact counters of the batched Algorithm-1 solver (process-wide).

    Attributes:
        solves: distinct (context, r_max) keys actually evaluated.
        cache_hits: requests served from the memo instead.
        batch_calls: :func:`solve_degrees_batch` invocations that did
            array work (fully-cached calls don't count).
        max_batch_size: largest number of contexts evaluated in one
            array pass.
        evictions: memoized solutions dropped by the LRU bound.
    """

    solves: int = 0
    cache_hits: int = 0
    batch_calls: int = 0
    max_batch_size: int = 0
    evictions: int = 0

    def __sub__(self, other: "SolverStats") -> "SolverStats":
        """Counter delta between two snapshots (``after - before``).

        ``max_batch_size`` is not a counter and cannot be windowed from
        two snapshots; the delta carries the later snapshot's value.
        Use ``clear_solver_cache(reset_stats=True)`` before a measured
        window when the true per-window maximum matters.
        """
        return SolverStats(
            solves=self.solves - other.solves,
            cache_hits=self.cache_hits - other.cache_hits,
            batch_calls=self.batch_calls - other.batch_calls,
            max_batch_size=self.max_batch_size,
            evictions=self.evictions - other.evictions,
        )


_lock = threading.Lock()
_cache: OrderedDict[tuple[PipelineContext, int], "object"] = OrderedDict()
_solves = 0
_cache_hits = 0
_batch_calls = 0
_max_batch_size = 0
_evictions = 0


def solver_stats() -> SolverStats:
    """Snapshot of the process-wide solver counters."""
    with _lock:
        return SolverStats(
            solves=_solves,
            cache_hits=_cache_hits,
            batch_calls=_batch_calls,
            max_batch_size=_max_batch_size,
            evictions=_evictions,
        )


def clear_solver_cache(*, reset_stats: bool = False) -> None:
    """Drop every memoized solution (cold-start benchmarks use this).

    Args:
        reset_stats: also zero the counters.
    """
    global _solves, _cache_hits, _batch_calls, _max_batch_size, _evictions
    with _lock:
        _cache.clear()
        if reset_stats:
            _solves = 0
            _cache_hits = 0
            _batch_calls = 0
            _max_batch_size = 0
            _evictions = 0


def _evaluate_batch(ctxs: Sequence[PipelineContext], r_max: int):
    """Solve a batch of *distinct, uncached* contexts in one array pass.

    Returns one :class:`~repro.core.pipeline_degree.DegreeSolution` per
    context, in order.
    """
    arrays = ContextArrays.pack(ctxs)
    degrees = np.arange(1, r_max + 1, dtype=float).reshape(1, -1)
    cases = classify_batch(arrays, degrees)
    times = analytic_time_batch(arrays, degrees, cases=cases)

    # The oracle's sequential tie-break, vectorized across contexts: a
    # later degree only displaces the incumbent by beating it by > tol.
    n = len(ctxs)
    best_t = np.full(n, np.inf)
    best_idx = np.zeros(n, dtype=int)
    for j in range(r_max):
        better = times[:, j] < best_t - _TIE_TOL
        best_t = np.where(better, times[:, j], best_t)
        best_idx = np.where(better, j, best_idx)

    rows = np.arange(n)
    best_cases = cases[rows, best_idx]

    # Diagnostic per-case minima over the *integer* degrees where each
    # case's region applies (inf when a case never occurs for a context).
    per_case: dict[Case, np.ndarray] = {}
    for case in Case:
        masked = np.where(cases == case.value, times, np.inf)
        per_case[case] = masked.min(axis=1)

    return tuple(
        DegreeSolution(
            degree=int(best_idx[i]) + 1,
            time_ms=float(best_t[i]),
            case=Case(int(best_cases[i])),
            continuous_degree=float(int(best_idx[i]) + 1),
            per_case_time_ms={
                case: float(per_case[case][i]) for case in Case
            },
        )
        for i in range(n)
    )


def solve_degrees_batch(
    ctxs: Sequence[PipelineContext], r_max: int = DEFAULT_MAX_DEGREE
) -> tuple[DegreeSolution, ...]:
    """Exact Algorithm-1 solutions for a whole batch of contexts.

    Duplicated contexts are deduplicated before evaluation and every
    solution is memoized process-wide, so repeated layers (the common
    case: every layer of a model shares one context) cost one solve
    across the entire session.

    Args:
        ctxs: pipeline contexts, any length, duplicates welcome.
        r_max: inclusive upper bound on the degree (must be >= 1).

    Returns:
        One :class:`~repro.core.pipeline_degree.DegreeSolution` per input
        context, in input order -- each identical (degree, bit-identical
        time) to :func:`~repro.core.pipeline_degree.oracle_integer_degree`.

    Raises:
        SolverError: if ``r_max < 1``.
    """
    global _solves, _cache_hits, _batch_calls, _max_batch_size, _evictions
    if r_max < 1:
        raise SolverError(f"r_max must be >= 1, got {r_max}")
    ctxs = list(ctxs)
    if not ctxs:
        return ()

    resolved: dict[tuple[PipelineContext, int], object] = {}
    missing: list[PipelineContext] = []
    with _lock:
        for ctx in ctxs:
            key = (ctx, r_max)
            if key in resolved:
                continue
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
                resolved[key] = cached
            else:
                resolved[key] = None  # placeholder: dedupes within the call
                missing.append(ctx)

    if missing:
        solutions = _evaluate_batch(missing, r_max)
        with _lock:
            _batch_calls += 1
            _max_batch_size = max(_max_batch_size, len(missing))
            for ctx, solution in zip(missing, solutions):
                key = (ctx, r_max)
                if key not in _cache:
                    _cache[key] = solution
                    _solves += 1
                    while len(_cache) > CACHE_MAXSIZE:
                        _cache.popitem(last=False)
                        _evictions += 1
                resolved[key] = _cache[key]

    return tuple(resolved[(ctx, r_max)] for ctx in ctxs)


def solve_degree(
    ctx: PipelineContext, r_max: int = DEFAULT_MAX_DEGREE
) -> DegreeSolution:
    """Single-context convenience wrapper over :func:`solve_degrees_batch`."""
    return solve_degrees_batch((ctx,), r_max)[0]
