"""Batched Algorithm-1 solver: every (context, degree) pair in one pass.

The SLSQP implementation of Algorithm 1 (:mod:`repro.core.pipeline_degree`)
solves up to 4 cases x several conjunction branches x 5 starts per
context -- ~0.5 s each -- and cold planning multiplies that by every
distinct layer context and every point of the Step-2 interpolator grid.
But the decision variable is a bounded integer (``r`` in ``[1, r_max]``,
16 by default), so the *exact* optimum is a cheap exhaustive sweep when
the sweep is vectorized: :func:`solve_degrees_batch` packs all contexts
into ``(n_ctx, 1)`` coefficient columns (:class:`ContextArrays`),
evaluates the decision-tree time for every integer degree of every
context in one ``(n_ctx, n_r)`` array pass, and reduces with the oracle's
own tie-breaking.  The result per context is identical to
:func:`~repro.core.pipeline_degree.oracle_integer_degree` -- same degree,
bit-identical ``time_ms`` -- at roughly four orders of magnitude less
cost per context.

Solutions are memoized process-wide in a bounded LRU keyed on
``(context, r_max)``; :func:`solver_stats` exposes exact counters
(contexts solved, cache hits, batch calls and sizes) so sessions can
assert "this sweep solved N contexts in one batch" the same way the
planner's profile caches do.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import SolverError
from .cases import Case, analytic_time_batch, classify_batch
from .constraints import ContextArrays, PipelineContext
# Safe non-lazy import: pipeline_degree only imports this module inside
# function bodies, so there is no import cycle at module level.
from .pipeline_degree import DEFAULT_MAX_DEGREE, DegreeSolution

#: same tie-break tolerance as the scalar oracle: a later degree must
#: beat the incumbent by more than this to win.
_TIE_TOL = 1e-12

#: bound on the process-wide memo (matches the seed lru_cache budget).
CACHE_MAXSIZE = 65536


@dataclass(frozen=True)
class SolverStats:
    """Exact counters of the batched Algorithm-1 solver (process-wide).

    Attributes:
        solves: distinct (context, r_max) keys actually evaluated.
        cache_hits: requests served from the memo instead.
        batch_calls: :func:`solve_degrees_batch` invocations that did
            array work (fully-cached calls don't count).
        max_batch_size: largest number of contexts evaluated in one
            array pass.
        evictions: memoized solutions dropped by the LRU bound.
        step2_objective_calls: Step-2 gradient-partition objective
            evaluations (one per array pass in the batched
            implementation, one per candidate in the scalar one).
        step2_candidates: total Step-2 candidate assignments evaluated
            across those calls -- ``candidates / calls`` is the mean
            population batched into one pass.
    """

    solves: int = 0
    cache_hits: int = 0
    batch_calls: int = 0
    max_batch_size: int = 0
    evictions: int = 0
    step2_objective_calls: int = 0
    step2_candidates: int = 0

    def __sub__(self, other: "SolverStats") -> "SolverStats":
        """Counter delta between two snapshots (``after - before``).

        ``max_batch_size`` is not a counter and cannot be windowed from
        two snapshots; the delta carries the later snapshot's value.
        Use ``clear_solver_cache(reset_stats=True)`` before a measured
        window when the true per-window maximum matters.
        """
        return SolverStats(
            solves=self.solves - other.solves,
            cache_hits=self.cache_hits - other.cache_hits,
            batch_calls=self.batch_calls - other.batch_calls,
            max_batch_size=self.max_batch_size,
            evictions=self.evictions - other.evictions,
            step2_objective_calls=(
                self.step2_objective_calls - other.step2_objective_calls
            ),
            step2_candidates=self.step2_candidates - other.step2_candidates,
        )


_lock = threading.Lock()
_cache: OrderedDict[tuple[PipelineContext, int], "object"] = OrderedDict()
_solves = 0
_cache_hits = 0
_batch_calls = 0
_max_batch_size = 0
_evictions = 0
_step2_objective_calls = 0
_step2_candidates = 0


def solver_stats() -> SolverStats:
    """Snapshot of the process-wide solver counters."""
    with _lock:
        return SolverStats(
            solves=_solves,
            cache_hits=_cache_hits,
            batch_calls=_batch_calls,
            max_batch_size=_max_batch_size,
            evictions=_evictions,
            step2_objective_calls=_step2_objective_calls,
            step2_candidates=_step2_candidates,
        )


def clear_solver_cache(*, reset_stats: bool = False) -> None:
    """Drop every memoized solution (cold-start benchmarks use this).

    Args:
        reset_stats: also zero the counters.
    """
    global _solves, _cache_hits, _batch_calls, _max_batch_size, _evictions
    global _step2_objective_calls, _step2_candidates
    with _lock:
        _cache.clear()
        if reset_stats:
            _solves = 0
            _cache_hits = 0
            _batch_calls = 0
            _max_batch_size = 0
            _evictions = 0
            _step2_objective_calls = 0
            _step2_candidates = 0


def record_step2_objective(candidates: int) -> None:
    """Count one Step-2 objective evaluation covering ``candidates`` points.

    The gradient-partition solver calls this once per objective pass: the
    batched implementation evaluates a whole DE population per pass, the
    scalar one a single candidate, so ``step2_candidates /
    step2_objective_calls`` measures the achieved batching.
    """
    global _step2_objective_calls, _step2_candidates
    with _lock:
        _step2_objective_calls += 1
        _step2_candidates += candidates


def _evaluate_batch(ctxs: Sequence[PipelineContext], r_max: int):
    """Solve a batch of *distinct, uncached* contexts in one array pass.

    Returns one :class:`~repro.core.pipeline_degree.DegreeSolution` per
    context, in order.
    """
    arrays = ContextArrays.pack(ctxs)
    degrees = np.arange(1, r_max + 1, dtype=float).reshape(1, -1)
    cases = classify_batch(arrays, degrees)
    times = analytic_time_batch(arrays, degrees, cases=cases)

    # The oracle's sequential tie-break, vectorized across contexts: a
    # later degree only displaces the incumbent by beating it by > tol.
    n = len(ctxs)
    best_t = np.full(n, np.inf)
    best_idx = np.zeros(n, dtype=int)
    for j in range(r_max):
        better = times[:, j] < best_t - _TIE_TOL
        best_t = np.where(better, times[:, j], best_t)
        best_idx = np.where(better, j, best_idx)

    rows = np.arange(n)
    best_cases = cases[rows, best_idx]

    # Diagnostic per-case minima over the *integer* degrees where each
    # case's region applies (inf when a case never occurs for a context).
    per_case: dict[Case, np.ndarray] = {}
    for case in Case:
        masked = np.where(cases == case.value, times, np.inf)
        per_case[case] = masked.min(axis=1)

    return tuple(
        DegreeSolution(
            degree=int(best_idx[i]) + 1,
            time_ms=float(best_t[i]),
            case=Case(int(best_cases[i])),
            continuous_degree=float(int(best_idx[i]) + 1),
            per_case_time_ms={
                case: float(per_case[case][i]) for case in Case
            },
        )
        for i in range(n)
    )


def solve_degrees_batch(
    ctxs: Sequence[PipelineContext], r_max: int = DEFAULT_MAX_DEGREE
) -> tuple[DegreeSolution, ...]:
    """Exact Algorithm-1 solutions for a whole batch of contexts.

    Duplicated contexts are deduplicated before evaluation and every
    solution is memoized process-wide, so repeated layers (the common
    case: every layer of a model shares one context) cost one solve
    across the entire session.

    Args:
        ctxs: pipeline contexts, any length, duplicates welcome.
        r_max: inclusive upper bound on the degree (must be >= 1).

    Returns:
        One :class:`~repro.core.pipeline_degree.DegreeSolution` per input
        context, in input order -- each identical (degree, bit-identical
        time) to :func:`~repro.core.pipeline_degree.oracle_integer_degree`.

    Raises:
        SolverError: if ``r_max < 1``.
    """
    global _solves, _cache_hits, _batch_calls, _max_batch_size, _evictions
    if r_max < 1:
        raise SolverError(f"r_max must be >= 1, got {r_max}")
    ctxs = list(ctxs)
    if not ctxs:
        return ()

    resolved: dict[tuple[PipelineContext, int], object] = {}
    missing: list[PipelineContext] = []
    with _lock:
        for ctx in ctxs:
            key = (ctx, r_max)
            if key in resolved:
                continue
            cached = _cache.get(key)
            if cached is not None:
                _cache.move_to_end(key)
                _cache_hits += 1
                resolved[key] = cached
            else:
                resolved[key] = None  # placeholder: dedupes within the call
                missing.append(ctx)

    if missing:
        solutions = _evaluate_batch(missing, r_max)
        with _lock:
            _batch_calls += 1
            _max_batch_size = max(_max_batch_size, len(missing))
            for ctx, solution in zip(missing, solutions):
                key = (ctx, r_max)
                if key not in _cache:
                    _cache[key] = solution
                    _solves += 1
                    while len(_cache) > CACHE_MAXSIZE:
                        _cache.popitem(last=False)
                        _evictions += 1
                resolved[key] = _cache[key]

    return tuple(resolved[(ctx, r_max)] for ctx in ctxs)


def solve_degree(
    ctx: PipelineContext, r_max: int = DEFAULT_MAX_DEGREE
) -> DegreeSolution:
    """Single-context convenience wrapper over :func:`solve_degrees_batch`."""
    return solve_degrees_batch((ctx,), r_max)[0]


# -- merged-comm (No-IIO) sweep ----------------------------------------------
#
# Algorithm 1's closed forms assume a dedicated inter-node stream; the
# FSMoE-No-IIO ablation serializes intra- with inter-node communication on
# one stream, so its per-phase degree comes from sweeping its *own*
# schedule's makespan.  The sweep used to build and event-simulate one
# task graph per candidate degree; the functions below replace that with
# a closed recurrence over the merged comm stream, evaluated for every
# degree at once, bit-identical to the discrete-event engine.
#
# Why a recurrence is exact: on the merged stream the engine's priorities
# enforce a fixed structure per MoE block.  All r dispatches run first
# (priority base..base+r-1 beats everything), then the stream alternates
# AllGathers with fused ReduceScatter+Combine pairs -- a combine always
# follows its reduce-scatter back-to-back because C(i) outranks every
# remaining AG/RS the moment RS(i) completes.  The only dynamic choice
# left is "next AllGather or next fused pair", and the engine resolves it
# by readiness (is E(f) finished when the stream frees?) plus one
# event-order tie: when E(f) ends exactly as the stream frees, RS(f) is
# already in the ready heap *unless* the op that freed the stream is
# AG(f) itself (inserted before E(f), so its completion pops first).
# Layer blocks never overlap (each dense op depends on every combine of
# the previous block), so a phase is the sequential composition of
# per-block recurrences -- with absolute times carried through so every
# float add and max happens in the engine's order.


def merged_phase_times(
    ctxs: Sequence[PipelineContext],
    dense_ms: Sequence[float],
    r_max: int = DEFAULT_MAX_DEGREE,
    *,
    dense_first: bool = True,
    start: np.ndarray | None = None,
) -> np.ndarray:
    """Makespans of one merged-comm phase at every degree ``1..r_max``.

    Evaluates the 2-stream (merged comm) schedule of a whole stack --
    ``ctxs``/``dense_ms`` in *execution* order -- for all integer pipeline
    degrees in one vectorized recurrence.  Entry ``j`` of the result is
    bit-identical to ``simulate(build_iteration_graph(spec, phase)).
    makespan_ms`` at degree ``j + 1``.

    Args:
        ctxs: per-layer pipeline contexts, execution order (reverse the
            stack for a backward phase).
        dense_ms: per-layer non-MoE durations, same order.
        r_max: inclusive upper bound on the degree (must be >= 1).
        dense_first: True for a forward phase (dense precedes each MoE
            block), False for backward (dense follows it).
        start: per-degree entry times, for composing phases into a full
            iteration (None = the phase starts at 0).

    Returns:
        ``(r_max,)`` array of phase makespans in ms.

    Raises:
        SolverError: if ``r_max < 1`` or the lengths disagree.
    """
    if r_max < 1:
        raise SolverError(f"r_max must be >= 1, got {r_max}")
    ctxs = list(ctxs)
    dense_ms = list(dense_ms)
    if len(ctxs) != len(dense_ms):
        raise SolverError(
            f"{len(ctxs)} contexts but {len(dense_ms)} dense durations"
        )
    degrees = np.arange(1, r_max + 1, dtype=float)
    r_col = np.arange(1, r_max + 1)
    rows = np.arange(r_max)
    prev = np.zeros(r_max) if start is None else np.asarray(start, float)
    for ctx, dense in zip(ctxs, dense_ms):
        # Per-chunk op times at every degree (LinearPerfModel.chunk_time_ms,
        # expression-for-expression).
        t_d = np.where(
            ctx.n_a2a > 0,
            ctx.a2a.alpha + (ctx.n_a2a / degrees) * ctx.a2a.beta,
            0.0,
        )
        t_g = np.where(
            ctx.n_ag > 0,
            ctx.ag.alpha + (ctx.n_ag / degrees) * ctx.ag.beta,
            0.0,
        )
        t_s = np.where(
            ctx.n_rs > 0,
            ctx.rs.alpha + (ctx.n_rs / degrees) * ctx.rs.beta,
            0.0,
        )
        t_e = np.where(
            ctx.n_exp > 0,
            ctx.exp.alpha + (ctx.n_exp / degrees) * ctx.exp.beta,
            0.0,
        )
        entry = prev + dense if dense_first else prev
        compute_free = entry
        # Dispatch prologue: D(0..r-1) back to back on the comm stream.
        t = entry.copy()
        for i in range(r_max):
            t = np.where(i < r_col, t + t_d, t)
        # AG / fused RS+C slots.  TE[j, i] = end of E(i) at degree j + 1.
        TE = np.zeros((r_max, r_max))
        a = np.zeros(r_max, dtype=int)  # next AllGather index
        f = np.zeros(r_max, dtype=int)  # next fused RS+C index
        last_was_ag = np.zeros(r_max, dtype=bool)
        for _ in range(2 * r_max):
            active = f < r_col
            if not active.any():
                break
            te_f = TE[rows, np.minimum(f, r_max - 1)]
            # Exact-tie event order: E(f)'s completion pops before the
            # op that freed the stream unless that op is AG(f) itself.
            ag_f_tie = last_was_ag & (a == f + 1)
            can_f = active & (f < a) & (
                (te_f < t) | ((te_f == t) & ~ag_f_tie)
            )
            must_f = active & (a >= r_col)
            run_f = can_f | must_f
            run_ag = active & ~run_f
            # AllGather slot: also settles E(a)'s completion time.
            end_ag = t + t_g
            te_prev = np.where(
                a > 0, TE[rows, np.maximum(a - 1, 0)], compute_free
            )
            te_new = np.maximum(end_ag, te_prev) + t_e
            a_idx = np.minimum(a, r_max - 1)
            TE[rows[run_ag], a_idx[run_ag]] = te_new[run_ag]
            t = np.where(run_ag, end_ag, t)
            a = a + run_ag
            # Fused slot: RS(f) then C(f) back to back.
            end_f = (np.maximum(t, te_f) + t_s) + t_d
            t = np.where(run_f, end_f, t)
            f = f + run_f
            last_was_ag = run_ag | (last_was_ag & ~run_f)
        prev = t if dense_first else t + dense
    return prev


def merged_iteration_times(
    ctxs_fw: Sequence[PipelineContext],
    dense_fw_ms: Sequence[float],
    ctxs_bw: Sequence[PipelineContext],
    dense_bw_ms: Sequence[float],
    gar_tail_ms: Sequence[float] = (),
    r_max: int = DEFAULT_MAX_DEGREE,
) -> np.ndarray:
    """Full-iteration merged-comm makespans at every degree ``1..r_max``.

    A whole training iteration on the 2-stream schedule with end-exposed
    gradient synchronization (the Tutel/PipeMoE shape, ``GarMode.END``):
    the forward phase, the backward phase entered at the forward's
    finish, then the serial Gradient-AllReduce tail.  The tail is
    degree-independent -- each AllReduce depends on its predecessor and
    starts at the last dense op's finish -- so it composes as plain
    sequential adds, in layer order, exactly like the task graph's.

    Args (all in *forward* stack order; the backward reversal happens
    here):
        ctxs_fw / dense_fw_ms: forward contexts and dense durations.
        ctxs_bw / dense_bw_ms: backward contexts and dense durations.
        gar_tail_ms: per-layer end-of-iteration AllReduce durations
            (entries <= 0 are skipped, like the graph builder does).
        r_max: inclusive upper bound on the degree.

    Returns:
        ``(r_max,)`` array of iteration makespans, bit-identical to the
        event-simulated ``phase="both"`` graph at each degree.
    """
    forward_end = merged_phase_times(
        ctxs_fw, dense_fw_ms, r_max, dense_first=True
    )
    times = merged_phase_times(
        list(reversed(list(ctxs_bw))),
        list(reversed(list(dense_bw_ms))),
        r_max,
        dense_first=False,
        start=forward_end,
    )
    for tail in gar_tail_ms:
        if tail > 0:
            times = times + tail
    return times


def best_swept_degree(times: Sequence[float]) -> tuple[int, float]:
    """The oracle's ascending tie-break over per-degree times.

    ``times[j]`` is the objective at degree ``j + 1``; a later degree
    only displaces the incumbent by beating it by more than the shared
    tolerance -- the single definition every swept-degree caller (the
    merged-comm pickers here, Tutel's oracle) reduces with.

    Returns:
        ``(degree, time)`` of the winner.
    """
    best_r, best_t = 1, float("inf")
    for j, t in enumerate(times):
        if t < best_t - _TIE_TOL:
            best_t = float(t)
            best_r = j + 1
    return best_r, best_t


def solve_merged_phase_degree(
    ctxs: Sequence[PipelineContext],
    dense_ms: Sequence[float],
    r_max: int = DEFAULT_MAX_DEGREE,
    *,
    dense_first: bool = True,
) -> tuple[int, float]:
    """Best shared degree for one merged-comm phase of a whole stack.

    Sweeps :func:`merged_phase_times` and reduces with
    :func:`best_swept_degree`, so the result matches the
    simulate-per-degree sweep exactly.

    Returns:
        ``(degree, phase_makespan_ms)`` at the chosen degree.
    """
    times = merged_phase_times(
        ctxs, dense_ms, r_max, dense_first=dense_first
    )
    return best_swept_degree(times)
