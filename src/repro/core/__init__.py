"""FSMoE's primary contribution: profiling-driven task scheduling.

* :mod:`~repro.core.perf_model` -- the linear alpha-beta performance models
  of paper Eq. 1 and §5.1, with least-squares fitting and r-squared;
* :mod:`~repro.core.profiler` -- the online microbenchmark pass (paper §3.2,
  Fig. 5) producing a fitted :class:`PerfModelSet`;
* :mod:`~repro.core.constraints` -- the seven feasibility predicates Q1-Q7
  of §4.2;
* :mod:`~repro.core.cases` -- the four schedule cases, their closed-form
  time objectives and the overlappable-time formulas of §5.2;
* :mod:`~repro.core.pipeline_degree` -- Algorithm 1
  (``FindOptimalPipelineDegree``): solver dispatch between the batched
  exact sweep and the paper's SLSQP relaxation;
* :mod:`~repro.core.fastsolve` -- the vectorized batched Algorithm-1
  solver (every integer degree of every context in one array pass),
  with a bounded process-wide memo and exact counters;
* :mod:`~repro.core.gradient_partition` -- the two-step adaptive gradient
  partitioning of §5 (greedy fill + differential evolution);
* :mod:`~repro.core.schedules` -- task-graph builders for every schedule in
  Fig. 3 (default/DS-MoE, Tutel/PipeMoE, Tutel-Improved, PipeMoE+Lina,
  FSMoE-No-IIO, FSMoE);
* :mod:`~repro.core.scheduler` -- the front-end/back-end generic scheduler
  tying profiling to schedule construction (§3.2).
"""

from .perf_model import LinearPerfModel, PerfModelSet, fit_linear_model
from .profiler import ProfileResult, profile_cluster
from .constraints import ContextArrays, PipelineContext
from .cases import (
    Case,
    analytic_time,
    analytic_time_batch,
    classify,
    classify_batch,
    overlappable_time,
)
from .pipeline_degree import (
    DEGREE_SOLVERS,
    DegreeSolution,
    find_optimal_pipeline_degree,
    get_default_degree_solver,
    oracle_integer_degree,
    set_default_degree_solver,
    solve_degrees,
)
from .fastsolve import (
    SolverStats,
    best_swept_degree,
    clear_solver_cache,
    merged_iteration_times,
    merged_phase_times,
    solve_degree,
    solve_degrees_batch,
    solve_merged_phase_degree,
    solver_stats,
)
from .gradient_partition import (
    STEP2_IMPLS,
    STEP2_SOLVERS,
    GarPlacement,
    GeneralizedLayer,
    GradientPartitionPlan,
    plan_gradient_partition,
    resolve_step2_impl,
)
from .scheduler import GenericScheduler, LayerScheduleReport

__all__ = [
    "LinearPerfModel",
    "PerfModelSet",
    "fit_linear_model",
    "ProfileResult",
    "profile_cluster",
    "PipelineContext",
    "ContextArrays",
    "Case",
    "classify",
    "classify_batch",
    "analytic_time",
    "analytic_time_batch",
    "overlappable_time",
    "DegreeSolution",
    "DEGREE_SOLVERS",
    "find_optimal_pipeline_degree",
    "get_default_degree_solver",
    "set_default_degree_solver",
    "solve_degrees",
    "solve_degree",
    "solve_degrees_batch",
    "merged_phase_times",
    "merged_iteration_times",
    "solve_merged_phase_degree",
    "best_swept_degree",
    "SolverStats",
    "solver_stats",
    "clear_solver_cache",
    "oracle_integer_degree",
    "GarPlacement",
    "GeneralizedLayer",
    "GradientPartitionPlan",
    "plan_gradient_partition",
    "resolve_step2_impl",
    "STEP2_SOLVERS",
    "STEP2_IMPLS",
    "GenericScheduler",
    "LayerScheduleReport",
]
