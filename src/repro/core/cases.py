"""The four schedule cases of paper §4.2 (Fig. 4) and their objectives.

The Q1-Q7 predicates induce a complete decision tree, so every ``(context,
r)`` pair belongs to exactly one case:

====== ============================================== =========================
Case   dominating resource                            closed-form time
====== ============================================== =========================
CASE1  inter-node comm (AlltoAll + Gradient-AllReduce) ``2 r t_a2a + t_gar``
CASE2  expert computation                              ``2 t_a2a + t_ag + t_rs + r t_exp``
CASE3  AlltoAll alone                                  ``2 r t_a2a + t_ag + t_rs``
CASE4  intra-node comm (AllGather + ReduceScatter)     ``2 t_a2a + r (t_ag + t_rs)``
====== ============================================== =========================

Also provides the overlappable-time formulas ``t_olp_moe`` of §5.2 used by
the gradient-partitioning step (evaluated at ``t_gar = 0``, where only
cases 2-4 can occur).
"""

from __future__ import annotations

import enum

import numpy as np

from ..errors import SolverError
from .constraints import ContextArrays, PipelineContext


class Case(enum.Enum):
    """Which resource dominates the pipelined MoE layer (paper Fig. 4)."""

    CASE1 = 1
    CASE2 = 2
    CASE3 = 3
    CASE4 = 4


def classify(ctx: PipelineContext, r: float) -> Case:
    """Decide the case of ``ctx`` at pipeline degree ``r``.

    Implements the complete decision tree of §4.2: Q1 branches over
    Q2/Q3, whose leaves branch over Q4/Q5/Q6/Q7 into CASE1 or the
    corresponding bubble-dominated case.
    """
    if ctx.q1(r):
        if ctx.q2(r):
            return Case.CASE1 if ctx.q5(r) else Case.CASE2
        return Case.CASE1 if ctx.q4(r) else Case.CASE3
    if ctx.q3(r):
        return Case.CASE1 if ctx.q7(r) else Case.CASE2
    return Case.CASE1 if ctx.q6(r) else Case.CASE4


def case_time(ctx: PipelineContext, r: float, case: Case) -> float:
    """Closed-form MoE-layer time under ``case`` at degree ``r``.

    Raises:
        SolverError: for an unknown case value.
    """
    t_a2a = ctx.t_a2a(r)
    t_ag = ctx.t_ag(r)
    t_rs = ctx.t_rs(r)
    t_exp = ctx.t_exp(r)
    if case is Case.CASE1:
        return 2.0 * r * t_a2a + ctx.t_gar
    if case is Case.CASE2:
        return 2.0 * t_a2a + t_ag + t_rs + r * t_exp
    if case is Case.CASE3:
        return 2.0 * r * t_a2a + t_ag + t_rs
    if case is Case.CASE4:
        return 2.0 * t_a2a + r * (t_ag + t_rs)
    raise SolverError(f"unknown case {case!r}")


def analytic_time(ctx: PipelineContext, r: float) -> float:
    """MoE-layer time at degree ``r`` using the applicable case formula."""
    return case_time(ctx, r, classify(ctx, r))


def classify_batch(arrays: ContextArrays, r: np.ndarray) -> np.ndarray:
    """Vectorized :func:`classify`: case *values* for every (context, r).

    Args:
        arrays: column-packed contexts.
        r: degrees, broadcast-compatible with the ``(n_ctx, 1)`` columns
            (typically a ``(1, n_r)`` row).

    Returns:
        An integer array of :class:`Case` values (1-4) with the broadcast
        shape ``(n_ctx, n_r)``.  Each element follows the same decision
        tree as the scalar path, on bit-identical margins.
    """
    q1 = arrays.q1_margin(r) > 0
    q2 = arrays.q2_margin(r) > 0
    q3 = arrays.q3_margin(r) > 0
    q4 = arrays.q4_margin(r) > 0
    q5 = arrays.q5_margin(r) > 0
    q6 = arrays.q6_margin(r) > 0
    q7 = arrays.q7_margin(r) > 0
    return np.where(
        q1,
        np.where(
            q2,
            np.where(q5, Case.CASE1.value, Case.CASE2.value),
            np.where(q4, Case.CASE1.value, Case.CASE3.value),
        ),
        np.where(
            q3,
            np.where(q7, Case.CASE1.value, Case.CASE2.value),
            np.where(q6, Case.CASE1.value, Case.CASE4.value),
        ),
    )


def case_times_batch(
    arrays: ContextArrays, r: np.ndarray
) -> dict[Case, np.ndarray]:
    """All four closed-form case times for every (context, r) pair.

    The expressions mirror :func:`case_time` term-for-term, so each
    element equals the scalar result bit-for-bit.
    """
    t_a2a = arrays.t_a2a(r)
    t_ag = arrays.t_ag(r)
    t_rs = arrays.t_rs(r)
    t_exp = arrays.t_exp(r)
    return {
        Case.CASE1: 2.0 * r * t_a2a + arrays.t_gar,
        Case.CASE2: 2.0 * t_a2a + t_ag + t_rs + r * t_exp,
        Case.CASE3: 2.0 * r * t_a2a + t_ag + t_rs,
        Case.CASE4: 2.0 * t_a2a + r * (t_ag + t_rs),
    }


def analytic_time_batch(
    arrays: ContextArrays, r: np.ndarray, *, cases: np.ndarray | None = None
) -> np.ndarray:
    """Vectorized :func:`analytic_time` over every (context, degree) pair.

    Args:
        arrays: column-packed contexts.
        r: degrees (broadcast-compatible, typically a ``(1, n_r)`` row).
        cases: optional precomputed :func:`classify_batch` result, to
            avoid classifying twice when the caller needs both.
    """
    if cases is None:
        cases = classify_batch(arrays, r)
    times = case_times_batch(arrays, r)
    out = times[Case.CASE1]
    for case in (Case.CASE2, Case.CASE3, Case.CASE4):
        out = np.where(cases == case.value, times[case], out)
    return out


def overlappable_time(ctx: PipelineContext, r: float) -> float:
    """Inter-node-stream idle time inside the MoE span (``t_olp_moe``, §5.2).

    Evaluated with ``t_gar = 0`` the schedule falls into cases 2-4; the
    formulas below give how much Gradient-AllReduce can ride inside the
    layer's own bubbles without stretching it:

    * Case 2 (experts dominate):
      ``r t_exp + t_ag + t_rs - 2 (r-1) t_a2a``
    * Case 3 (AlltoAll dominates): ``t_ag + t_rs``
    * Case 4 (intra dominates):
      ``r (t_ag + t_rs) - 2 (r-1) t_a2a``

    A context already carrying ``t_gar > 0`` is evaluated at ``t_gar = 0``
    first (the window is a property of the un-stretched schedule).
    """
    zero_gar = ctx.with_t_gar(0.0) if ctx.t_gar != 0.0 else ctx
    case = classify(zero_gar, r)
    t_a2a = zero_gar.t_a2a(r)
    t_ag = zero_gar.t_ag(r)
    t_rs = zero_gar.t_rs(r)
    t_exp = zero_gar.t_exp(r)
    if case is Case.CASE2:
        window = r * t_exp + t_ag + t_rs - 2.0 * (r - 1.0) * t_a2a
    elif case is Case.CASE3:
        window = t_ag + t_rs
    elif case is Case.CASE4:
        window = r * (t_ag + t_rs) - 2.0 * (r - 1.0) * t_a2a
    else:
        # With t_gar = 0 every Q4-Q7 margin is non-positive, so CASE1 can
        # only be reached on boundary ties; its window is empty.
        window = 0.0
    return max(0.0, window)


def overlappable_time_merged_comm(ctx: PipelineContext, r: float) -> float:
    """Idle time of a *merged* comm stream inside the MoE span (No-IIO).

    When intra- and inter-node communication share one stream (Tutel's
    two-stream layout, FSMoE-No-IIO), the stream only idles while experts
    compute and no chunk has communication pending:
    ``r * t_exp - (r-1) * (2 t_a2a + t_ag + t_rs)`` clamped at zero.
    """
    zero_gar = ctx.with_t_gar(0.0) if ctx.t_gar != 0.0 else ctx
    window = r * zero_gar.t_exp(r) - (r - 1.0) * (
        2.0 * zero_gar.t_a2a(r) + zero_gar.t_ag(r) + zero_gar.t_rs(r)
    )
    return max(0.0, window)


#: conjunction branches defining each case region, as (predicate name,
#: wanted truth value) lists -- consumed by the SLSQP solver to turn the
#: union-of-conjunctions regions into separate smooth sub-problems.
CASE_BRANCHES: dict[Case, tuple[tuple[tuple[str, bool], ...], ...]] = {
    Case.CASE1: (
        (("q1", True), ("q2", False), ("q4", True)),
        (("q1", True), ("q2", True), ("q5", True)),
        (("q1", False), ("q3", False), ("q6", True)),
        (("q1", False), ("q3", True), ("q7", True)),
    ),
    Case.CASE2: (
        (("q1", True), ("q2", True), ("q5", False)),
        (("q1", False), ("q3", True), ("q7", False)),
    ),
    Case.CASE3: ((("q1", True), ("q2", False), ("q4", False)),),
    Case.CASE4: ((("q1", False), ("q3", False), ("q6", False)),),
}
