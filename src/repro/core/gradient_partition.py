"""Adaptive gradient partitioning for backpropagation (paper §5).

Backward through a stack of *generalized layers* (an MoE layer plus the
dense work before the next one) produces a stream of dense-parameter
gradients that must be AllReduced across DP workers.  Because both
Gradient-AllReduce and AlltoAll are inter-node, the AllReduce cannot simply
run concurrently with the MoE layer; FSMoE instead:

* **Step 1** (paper Eq. 3/4): slices gradients greedily into the
  *overlappable windows* of later-processed layers -- the idle inter-node
  stream time inside each MoE span (``t_olp_moe``, computed from the
  case formulas at ``t_gar = 0``) plus the dense backward time
  (``t_olp_dense``).  These slices ride for free.
* **Step 2** (paper Eq. 5): assigns the residual gradients to the MoE
  layers' ``t_gar`` slots, where they stretch the pipeline according to
  Algorithm 1's ``f_moe(t_gar)``, minimizing total stretched time plus the
  exposed tail AllReduce.  Solved with differential evolution, as in the
  paper.

The Step-2 objective is evaluated for a **whole DE population in one
NumPy pass** (``vectorized=True``): the availability repair runs as a
per-layer recurrence over ``(candidates,)`` columns, every layer's
``f_moe`` curve is interpolated for all candidates at once, and the
AllReduce model is applied array-wise.  A scalar per-candidate path is
kept behind ``REPRO_STEP2_IMPL=scalar`` for cross-checking; both paths
execute the same IEEE operation sequence per candidate, so the same seed
yields bit-identical plans (pinned in the tests).

Layers are indexed in *forward* order; backward processes index
``n_l - 1`` first.  A layer's own gradients only become available after
its backward finishes, so they can only ride in layers processed later
(paper constraint in Eq. 5); the plan enforces this availability by
construction.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import differential_evolution, minimize

from ..errors import SolverError
from .cases import overlappable_time, overlappable_time_merged_comm
from .constraints import PipelineContext
from .fastsolve import record_step2_objective
from .perf_model import LinearPerfModel
from .pipeline_degree import (
    DEFAULT_MAX_DEGREE,
    DegreeSolution,
    solve_degrees,
)

#: Step-2 solver choices accepted by :func:`plan_gradient_partition`.
#: ``"de"`` is the paper's differential evolution (global, slower),
#: ``"slsqp"`` a local gradient-based solve (order-of-magnitude faster,
#: near-identical placements on the Table-4 grid), ``"none"`` skips
#: Step 2 entirely (all residual gradients go to the tail).
STEP2_SOLVERS = ("de", "slsqp", "none")

#: Step-2 objective implementations.  ``"batch"`` (the default) evaluates
#: a whole DE population per NumPy pass; ``"scalar"`` is the one
#: candidate-at-a-time reference kept for cross-checking.  Selected via
#: the ``REPRO_STEP2_IMPL`` environment variable or the ``step2_impl``
#: argument of :func:`plan_gradient_partition`.
STEP2_IMPLS = ("batch", "scalar")


def resolve_step2_impl(step2_impl: str | None = None) -> str:
    """Resolve the Step-2 objective implementation to use.

    Precedence: an explicit ``step2_impl`` argument, then the
    ``REPRO_STEP2_IMPL`` environment variable, then ``"batch"``.

    Raises:
        SolverError: for a value outside :data:`STEP2_IMPLS`.
    """
    impl = step2_impl or os.environ.get("REPRO_STEP2_IMPL") or "batch"
    if impl not in STEP2_IMPLS:
        raise SolverError(
            f"unknown Step-2 implementation {impl!r}; "
            f"choose from {STEP2_IMPLS}"
        )
    return impl


@dataclass(frozen=True)
class GeneralizedLayer:
    """One MoE layer plus its surrounding dense work, in the backward phase.

    Attributes:
        ctx: backward-phase pipeline context (``t_gar = 0``).
        dense_overlappable_ms: non-MoE backward time during which an
            AllReduce can run without contention (attention backward etc.;
            measurable before training, paper §5.2).
        grad_bytes: dense-parameter gradient bytes this layer produces.
    """

    ctx: PipelineContext
    dense_overlappable_ms: float
    grad_bytes: float

    def __post_init__(self) -> None:
        if self.dense_overlappable_ms < 0:
            raise SolverError(
                f"dense_overlappable_ms must be >= 0, "
                f"got {self.dense_overlappable_ms}"
            )
        if self.grad_bytes < 0:
            raise SolverError(f"grad_bytes must be >= 0, got {self.grad_bytes}")


@dataclass(frozen=True)
class GarPlacement:
    """Where every gradient byte is reduced (indices in forward order).

    Plain numbers only -- this is the part of a partition plan the
    task-graph builder consumes and the part
    :class:`~repro.planner.plan.IterationPlan` serializes, so persisted
    plans replay without re-running the partitioner.

    Attributes:
        moe_window_bytes: Step-1 bytes hidden in each layer's MoE bubbles.
        dense_window_bytes: Step-1 bytes hidden in each layer's dense
            backward.
        extra_bytes: Step-2 bytes assigned to each layer's ``t_gar`` slot.
        tail_bytes: residual reduced after the whole backward pass.
        t_gar_ms: AllReduce time injected into each layer's Algorithm-1
            call (covers window + extra bytes; the window part is absorbed
            for free by the case formulas).
    """

    moe_window_bytes: tuple[float, ...]
    dense_window_bytes: tuple[float, ...]
    extra_bytes: tuple[float, ...]
    tail_bytes: float
    t_gar_ms: tuple[float, ...]

    def __post_init__(self) -> None:
        n = len(self.moe_window_bytes)
        if not (
            len(self.dense_window_bytes)
            == len(self.extra_bytes)
            == len(self.t_gar_ms)
            == n
        ):
            raise SolverError(
                "GarPlacement per-layer tuples must have equal length"
            )

    @property
    def moe_ar_bytes(self) -> tuple[float, ...]:
        """Total AllReduce bytes placed inside each layer's MoE span."""
        return tuple(
            window + extra
            for window, extra in zip(self.moe_window_bytes, self.extra_bytes)
        )


@dataclass(frozen=True)
class GradientPartitionPlan:
    """A byte placement plus the solver state that produced it.

    The placement fields are exposed as read-through properties, so the
    plan reads exactly like its :class:`GarPlacement` with Algorithm-1
    solutions attached.

    Attributes:
        placement: where every gradient byte is reduced.
        solutions: per-layer Algorithm-1 results at the final ``t_gar``.
        tail_ms: exposed tail AllReduce time.
    """

    placement: GarPlacement
    solutions: tuple[DegreeSolution, ...]
    tail_ms: float

    @property
    def moe_window_bytes(self) -> tuple[float, ...]:
        """Step-1 bytes hidden in each layer's MoE bubbles."""
        return self.placement.moe_window_bytes

    @property
    def dense_window_bytes(self) -> tuple[float, ...]:
        """Step-1 bytes hidden in each layer's dense backward."""
        return self.placement.dense_window_bytes

    @property
    def extra_bytes(self) -> tuple[float, ...]:
        """Step-2 bytes assigned to each layer's ``t_gar`` slot."""
        return self.placement.extra_bytes

    @property
    def tail_bytes(self) -> float:
        """Residual reduced after the whole backward pass."""
        return self.placement.tail_bytes

    @property
    def t_gar_ms(self) -> tuple[float, ...]:
        """AllReduce time injected into each layer's Algorithm-1 call."""
        return self.placement.t_gar_ms

    @property
    def moe_ar_bytes(self) -> tuple[float, ...]:
        """Total AllReduce bytes placed inside each layer's MoE span."""
        return self.placement.moe_ar_bytes

    def total_estimated_backward_ms(self) -> float:
        """Analytic backward time: stretched MoE spans + exposed tail.

        Dense backward time is not included (it is common to every plan).
        """
        return sum(s.time_ms for s in self.solutions) + self.tail_ms


def _moe_windows_ms(
    layers: tuple[GeneralizedLayer, ...], r_max: int, merged_comm: bool
) -> tuple[float, ...]:
    """Overlappable inter-node idle time per layer at its t_gar=0 degree.

    All layers' zero-GAR Algorithm-1 solves go through one batched call.
    """
    zero_ctxs = [layer.ctx.with_t_gar(0.0) for layer in layers]
    solutions = solve_degrees(zero_ctxs, r_max)
    window = (
        overlappable_time_merged_comm if merged_comm else overlappable_time
    )
    return tuple(
        window(layer.ctx, float(solution.degree))
        for layer, solution in zip(layers, solutions)
    )


def _step1_fill(
    layers: tuple[GeneralizedLayer, ...],
    ar_model: LinearPerfModel,
    moe_windows_ms: tuple[float, ...],
) -> tuple[list[float], list[float], list[float]]:
    """Greedy window fill in backward order (paper Eq. 3/4).

    Every window inversion (the paper's ``g_inv``) happens in one array
    pass up front; only the data-dependent pending-byte recurrence walks
    the layers.  The recurrence itself has a reversed-cumsum closed form
    (``p = D + running-max(g - D)``) but re-associating the adds is not
    IEEE-bit-identical to the sequential fill, and committed plans pin the
    sequential bytes -- so the per-layer min/subtract steps stay ordered
    and the tests pin this function against the plain-Python reference.

    Returns:
        ``(moe_window_bytes, dense_window_bytes, residual_before)`` where
        ``residual_before[i]`` is the pending gradient volume when layer
        ``i``'s backward starts, after window absorption -- the
        availability bound for Step 2.
    """
    n = len(layers)
    moe_caps = ar_model.inverse_array(np.asarray(moe_windows_ms, dtype=float))
    dense_caps = ar_model.inverse_array(
        np.asarray(
            [layer.dense_overlappable_ms for layer in layers], dtype=float
        )
    )
    moe_bytes = [0.0] * n
    dense_bytes = [0.0] * n
    residual_before = [0.0] * n
    pending = 0.0
    for i in reversed(range(n)):
        take_moe = min(pending, float(moe_caps[i]))
        pending -= take_moe
        moe_bytes[i] = take_moe
        take_dense = min(pending, float(dense_caps[i]))
        pending -= take_dense
        dense_bytes[i] = take_dense
        residual_before[i] = pending
        pending += layers[i].grad_bytes
    return moe_bytes, dense_bytes, residual_before


class _MoETimeInterpolator:
    """Cached ``t_gar -> f_moe`` curves, one per distinct context.

    ``f_moe`` (Algorithm 1's optimal layer time as a function of injected
    AllReduce time) is continuous and non-decreasing; a 33-point grid per
    context keeps the differential-evolution objective cheap even for
    33-layer models where every layer shares one context.  All curves of
    a solve are prebuilt with :meth:`prepare` -- every distinct layer
    context x grid point lands in one batched Algorithm-1 call, so the
    DE/SLSQP objective only ever interpolates: scalars through
    :meth:`time_ms`, whole populations through :meth:`times_matrix`.
    """

    GRID_POINTS = 33

    def __init__(self, r_max: int, t_gar_max: float) -> None:
        self._r_max = r_max
        self._t_max = max(t_gar_max, 1e-9)
        self._grid = np.linspace(0.0, self._t_max, self.GRID_POINTS)
        self._curves: dict[PipelineContext, np.ndarray] = {}

    def prepare(self, ctxs: Sequence[PipelineContext]) -> None:
        """Build the curves of every distinct uncached context at once."""
        pending = [
            ctx for ctx in dict.fromkeys(ctxs) if ctx not in self._curves
        ]
        if not pending:
            return
        batched = [
            ctx.with_t_gar(float(t)) for ctx in pending for t in self._grid
        ]
        solutions = solve_degrees(batched, self._r_max)
        times = np.array([s.time_ms for s in solutions]).reshape(
            len(pending), self.GRID_POINTS
        )
        for i, ctx in enumerate(pending):
            self._curves[ctx] = times[i]

    def time_ms(self, ctx: PipelineContext, t_gar: float) -> float:
        """Interpolated optimal layer time at ``t_gar``."""
        times = self._curves.get(ctx)
        if times is None:
            self.prepare((ctx,))
            times = self._curves[ctx]
        return float(np.interp(t_gar, self._grid, times))

    def times_matrix(
        self,
        ctxs: Sequence[PipelineContext],
        t_gar_matrix: np.ndarray,
    ) -> np.ndarray:
        """Interpolate all layers x candidates in one pass per layer.

        ``t_gar_matrix[:, i]`` holds every candidate's ``t_gar`` for
        ``ctxs[i]``; the result has the same shape, each entry
        bit-identical to the corresponding scalar :meth:`time_ms` call
        (``np.interp`` applies the same lerp per element either way).
        """
        self.prepare(ctxs)
        out = np.empty_like(t_gar_matrix, dtype=float)
        for i, ctx in enumerate(ctxs):
            out[:, i] = np.interp(
                t_gar_matrix[:, i], self._grid, self._curves[ctx]
            )
        return out


def _repair(
    proposal: np.ndarray, residual_before: list[float]
) -> np.ndarray:
    """Clip a Step-2 proposal to the availability prefix constraints.

    Processing order is backward (high index first); cumulative assignment
    up to layer ``i`` may not exceed the gradients already produced and
    still pending there.
    """
    n = len(residual_before)
    repaired = np.zeros(n)
    consumed = 0.0
    for i in reversed(range(n)):
        available = max(0.0, residual_before[i] - consumed)
        repaired[i] = min(max(0.0, proposal[i]), available)
        consumed += repaired[i]
    return repaired


def _repair_matrix(
    proposals: np.ndarray, residual_before: list[float]
) -> np.ndarray:
    """:func:`_repair` for a whole ``(candidates, n_layers)`` population.

    The consumed-bytes recurrence is data-dependent along the layer axis,
    so the loop walks layers (short) while every candidate's clip runs as
    one array op (wide) -- each row bit-identical to :func:`_repair` on
    that candidate, since ``np.minimum``/``np.maximum`` and the ordered
    adds mirror the scalar ``min``/``max`` exactly.
    """
    n = len(residual_before)
    repaired = np.zeros_like(proposals, dtype=float)
    consumed = np.zeros(proposals.shape[0])
    for i in reversed(range(n)):
        available = np.maximum(0.0, residual_before[i] - consumed)
        repaired[:, i] = np.minimum(
            np.maximum(0.0, proposals[:, i]), available
        )
        consumed = consumed + repaired[:, i]
    return repaired


def plan_gradient_partition(
    layers: list[GeneralizedLayer] | tuple[GeneralizedLayer, ...],
    ar_model: LinearPerfModel,
    *,
    r_max: int = DEFAULT_MAX_DEGREE,
    merged_comm: bool = False,
    solver: str | None = None,
    use_differential_evolution: bool = True,
    de_maxiter: int = 40,
    de_popsize: int = 12,
    seed: int = 0,
    step2_impl: str | None = None,
) -> GradientPartitionPlan:
    """Produce the full two-step partitioning plan for one backward pass.

    Args:
        layers: generalized layers in forward order.
        ar_model: fitted Gradient-AllReduce model (bytes -> ms).
        r_max: pipeline-degree cap forwarded to Algorithm 1.
        merged_comm: size the MoE windows for a merged comm stream
            (FSMoE-No-IIO) instead of a dedicated inter-node stream.
        solver: Step-2 solver, one of :data:`STEP2_SOLVERS`, or ``None``
            to defer to the legacy flag.  ``"de"`` reproduces the paper
            (§5.3); ``"slsqp"`` trades the global search for a much
            cheaper local solve; ``"none"`` skips Step 2 (all residual
            gradients go to the tail).
        use_differential_evolution: legacy ablation switch.  Precedence
            with ``solver``: when ``solver`` is ``None`` (the default),
            ``False`` selects ``"none"`` and ``True`` selects ``"de"``;
            when ``solver="de"`` is passed explicitly, ``False`` still
            downgrades it to ``"none"`` (the historical behavior, which
            ablation callers rely on); an explicit ``"slsqp"`` or
            ``"none"`` is always honored as written.
        de_maxiter / de_popsize / seed: differential-evolution knobs
            (paper §5.3 uses DE since this runs once before training).
        step2_impl: Step-2 objective implementation, one of
            :data:`STEP2_IMPLS`, or ``None`` to defer to the
            ``REPRO_STEP2_IMPL`` environment variable (default
            ``"batch"``).  Both implementations produce bit-identical
            plans for the same seed; ``"scalar"`` exists for
            cross-checking and timing.

    Raises:
        SolverError: for an empty layer list, unknown solver, or unknown
            implementation.
    """
    if not layers:
        raise SolverError("plan_gradient_partition needs at least one layer")
    if solver is not None and solver not in STEP2_SOLVERS:
        raise SolverError(
            f"unknown Step-2 solver {solver!r}; choose from {STEP2_SOLVERS}"
        )
    impl = resolve_step2_impl(step2_impl)
    if solver is None:
        solver = "de" if use_differential_evolution else "none"
    elif solver == "de" and not use_differential_evolution:
        solver = "none"
    layer_tuple = tuple(layers)
    n = len(layer_tuple)

    moe_windows_ms = _moe_windows_ms(layer_tuple, r_max, merged_comm)
    moe_window_bytes, dense_window_bytes, residual_before = _step1_fill(
        layer_tuple, ar_model, moe_windows_ms
    )
    total_residual = residual_before[0] + layer_tuple[0].grad_bytes
    # residual_before[0] excludes layer 0's own grads, which are produced
    # last and can never ride anywhere: they always reach the tail.

    extra = np.zeros(n)
    if solver != "none" and total_residual > 0 and n > 0:
        residual_cap = max(residual_before) if residual_before else 0.0
        if residual_cap > 0:
            t_gar_max = ar_model.time_ms(
                max(moe_window_bytes) + residual_cap
            )
            interp = _MoETimeInterpolator(r_max, t_gar_max)
            ctxs = [layer.ctx for layer in layer_tuple]
            interp.prepare(ctxs)
            window_bytes = np.asarray(moe_window_bytes, dtype=float)

            def objective_bytes(proposal: np.ndarray) -> float:
                # One candidate.  Left-to-right accumulation, mirrored
                # op-for-op by the batched pass below so both paths yield
                # the same IEEE result per candidate.
                record_step2_objective(1)
                assigned = 0.0
                total = 0.0
                for i, layer in enumerate(layer_tuple):
                    assigned += float(proposal[i])
                    t_gar = ar_model.time_ms(
                        moe_window_bytes[i] + float(proposal[i])
                    )
                    total += interp.time_ms(layer.ctx, t_gar)
                tail = total_residual - assigned
                total += ar_model.time_ms(tail)
                return total

            def objective_bytes_batch(proposals: np.ndarray) -> np.ndarray:
                # A whole (candidates, n_layers) population in one pass.
                record_step2_objective(proposals.shape[0])
                t_gar = ar_model.time_ms_array(
                    window_bytes[None, :] + proposals
                )
                times = interp.times_matrix(ctxs, t_gar)
                assigned = np.zeros(proposals.shape[0])
                total = np.zeros(proposals.shape[0])
                for i in range(n):
                    assigned = assigned + proposals[:, i]
                    total = total + times[:, i]
                tail = total_residual - assigned
                return total + ar_model.time_ms_array(tail)

            if solver == "de":
                if impl == "batch":

                    def objective(u: np.ndarray) -> np.ndarray:
                        # scipy sends (n_params, candidates); a lone
                        # candidate may arrive 1-D.
                        arr = np.asarray(u, dtype=float)
                        if arr.ndim == 1:
                            arr = arr[:, None]
                        proposals = _repair_matrix(
                            arr.T * residual_cap, residual_before
                        )
                        return objective_bytes_batch(proposals)

                else:

                    def objective(u: np.ndarray) -> float:
                        return objective_bytes(
                            _repair(u * residual_cap, residual_before)
                        )

                result = differential_evolution(
                    objective,
                    bounds=[(0.0, 1.0)] * n,
                    maxiter=de_maxiter,
                    popsize=de_popsize,
                    seed=seed,
                    tol=1e-6,
                    polish=False,
                    updating="deferred",
                    vectorized=(impl == "batch"),
                )
                extra = _repair(result.x * residual_cap, residual_before)
            else:  # slsqp
                # Local solve over raw byte assignments.  Feasibility (the
                # availability prefix constraints _repair enforces) maps to
                # linear inequalities: gradients assigned to layers i..n-1
                # must already be pending when layer i's backward starts.
                constraints = [
                    {
                        "type": "ineq",
                        "fun": (
                            lambda x, i=i: residual_before[i]
                            - float(np.sum(x[i:]))
                        ),
                    }
                    for i in range(n)
                ]
                x0 = _repair(
                    np.full(n, total_residual / n), residual_before
                )
                result = minimize(
                    lambda x: objective_bytes(np.clip(x, 0.0, None)),
                    x0,
                    method="SLSQP",
                    bounds=[(0.0, residual_cap)] * n,
                    constraints=constraints,
                    options={"maxiter": 60, "ftol": 1e-6},
                )
                extra = _repair(result.x, residual_before)

    assigned = float(np.sum(extra))
    tail_bytes = max(0.0, total_residual - assigned)

    t_gar_ms = tuple(
        ar_model.time_ms(moe_window_bytes[i] + float(extra[i]))
        for i in range(n)
    )
    solutions = solve_degrees(
        [
            layer_tuple[i].ctx.with_t_gar(t_gar_ms[i])
            for i in range(n)
        ],
        r_max,
    )
    return GradientPartitionPlan(
        placement=GarPlacement(
            moe_window_bytes=tuple(moe_window_bytes),
            dense_window_bytes=tuple(dense_window_bytes),
            extra_bytes=tuple(float(x) for x in extra),
            tail_bytes=tail_bytes,
            t_gar_ms=t_gar_ms,
        ),
        solutions=solutions,
        tail_ms=ar_model.time_ms(tail_bytes),
    )
