"""The seven scheduling constraints Q1-Q7 of paper §4.2.

Each predicate compares chunked operation times at pipeline degree ``r``
and decides which resource dominates the schedule.  They are exposed both
as booleans (for case classification) and as signed margins (for use as
smooth SLSQP inequality constraints: ``margin >= 0`` iff the predicate
holds).

:class:`ContextArrays` is the vectorized counterpart: a batch of
contexts packed into ``(n_ctx, 1)`` coefficient columns whose op times
and margins broadcast against a ``(1, n_r)`` row of degrees, giving the
batched solver (:mod:`repro.core.fastsolve`) every ``(context, degree)``
combination in one array pass.  The array formulas are written
expression-for-expression like the scalar ones, so each element is the
bit-identical IEEE result of the scalar path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from .perf_model import LinearPerfModel, PerfModelSet


@dataclass(frozen=True)
class PipelineContext:
    """Everything Algorithm 1 needs about one MoE layer in one phase.

    Attributes:
        a2a: AlltoAll model; ``n_a2a`` its un-chunked message bytes.
        ag: ESP-AllGather model; ``n_ag`` its per-rank shard bytes.
        rs: ESP-ReduceScatter model; ``n_rs`` its per-rank shard bytes.
        exp: expert-computation model (alpha already multiplied by the
            number of GEMM kernels); ``n_exp`` the un-chunked MAC count.
        t_gar: Gradient-AllReduce time injected into this layer's pipeline
            (0 in forward; set by the partitioning plan in backward).
    """

    a2a: LinearPerfModel
    n_a2a: float
    ag: LinearPerfModel
    n_ag: float
    rs: LinearPerfModel
    n_rs: float
    exp: LinearPerfModel
    n_exp: float
    t_gar: float = 0.0

    # -- chunked op times (paper Eq. 1) -------------------------------------

    def t_a2a(self, r: float) -> float:
        """Per-chunk AlltoAll time at degree ``r``."""
        return self.a2a.chunk_time_ms(self.n_a2a, r)

    def t_ag(self, r: float) -> float:
        """Per-chunk ESP-AllGather time at degree ``r``."""
        return self.ag.chunk_time_ms(self.n_ag, r)

    def t_rs(self, r: float) -> float:
        """Per-chunk ESP-ReduceScatter time at degree ``r``."""
        return self.rs.chunk_time_ms(self.n_rs, r)

    def t_exp(self, r: float) -> float:
        """Per-chunk expert-computation time at degree ``r``."""
        return self.exp.chunk_time_ms(self.n_exp, r)

    def with_t_gar(self, t_gar: float) -> "PipelineContext":
        """Copy with a different injected Gradient-AllReduce time."""
        return replace(self, t_gar=t_gar)

    # -- constraint margins --------------------------------------------------
    # Each ``qN_margin(r) >= 0`` exactly when the paper's QN holds.

    def q1_margin(self, r: float) -> float:
        """Q1: AlltoAll slower than AllGather on a chunk."""
        return self.t_a2a(r) - self.t_ag(r)

    def q2_margin(self, r: float) -> float:
        """Q2: expert computation exceeds interior AlltoAll communication."""
        return r * self.t_exp(r) - 2.0 * (r - 1.0) * self.t_a2a(r)

    def q3_margin(self, r: float) -> float:
        """Q3: expert computation exceeds interior intra-node communication."""
        return r * self.t_exp(r) - (r - 1.0) * (self.t_ag(r) + self.t_rs(r))

    def q4_margin(self, r: float) -> float:
        """Q4: Gradient-AllReduce exceeds one AG + RS chunk pair."""
        return self.t_gar - (self.t_ag(r) + self.t_rs(r))

    def q5_margin(self, r: float) -> float:
        """Q5: Gradient-AllReduce fills the expert-dominated bubble."""
        return self.t_gar - (
            r * self.t_exp(r)
            - 2.0 * (r - 1.0) * self.t_a2a(r)
            + self.t_ag(r)
            + self.t_rs(r)
        )

    def q6_margin(self, r: float) -> float:
        """Q6: Gradient-AllReduce fills the intra-dominated bubble."""
        return self.t_gar - (
            r * self.t_ag(r)
            + r * self.t_rs(r)
            - 2.0 * (r - 1.0) * self.t_a2a(r)
        )

    def q7_margin(self, r: float) -> float:
        """Q7: Gradient-AllReduce fills the mixed bubble (not-Q1, Q3)."""
        return self.t_gar - (
            self.t_ag(r)
            + self.t_rs(r)
            + r * self.t_exp(r)
            - 2.0 * (r - 1.0) * self.t_a2a(r)
        )

    # -- boolean views --------------------------------------------------------

    def q1(self, r: float) -> bool:
        """Boolean Q1 at degree ``r``."""
        return self.q1_margin(r) > 0

    def q2(self, r: float) -> bool:
        """Boolean Q2 at degree ``r``."""
        return self.q2_margin(r) > 0

    def q3(self, r: float) -> bool:
        """Boolean Q3 at degree ``r``."""
        return self.q3_margin(r) > 0

    def q4(self, r: float) -> bool:
        """Boolean Q4 at degree ``r``."""
        return self.q4_margin(r) > 0

    def q5(self, r: float) -> bool:
        """Boolean Q5 at degree ``r``."""
        return self.q5_margin(r) > 0

    def q6(self, r: float) -> bool:
        """Boolean Q6 at degree ``r``."""
        return self.q6_margin(r) > 0

    def q7(self, r: float) -> bool:
        """Boolean Q7 at degree ``r``."""
        return self.q7_margin(r) > 0


def _column(values: Sequence[float]) -> np.ndarray:
    """Pack per-context scalars into an ``(n_ctx, 1)`` float column."""
    return np.asarray(values, dtype=float).reshape(-1, 1)


@dataclass(frozen=True)
class ContextArrays:
    """A batch of :class:`PipelineContext` packed for array evaluation.

    Every field is an ``(n_ctx, 1)`` column; methods take degrees ``r``
    as a ``(1, n_r)`` row (or any broadcast-compatible array) and return
    ``(n_ctx, n_r)`` matrices.  Build one with :meth:`pack`.
    """

    a2a_alpha: np.ndarray
    a2a_beta: np.ndarray
    n_a2a: np.ndarray
    ag_alpha: np.ndarray
    ag_beta: np.ndarray
    n_ag: np.ndarray
    rs_alpha: np.ndarray
    rs_beta: np.ndarray
    n_rs: np.ndarray
    exp_alpha: np.ndarray
    exp_beta: np.ndarray
    n_exp: np.ndarray
    t_gar: np.ndarray

    @classmethod
    def pack(cls, ctxs: Sequence[PipelineContext]) -> "ContextArrays":
        """Column-pack a sequence of contexts (one row per context)."""
        return cls(
            a2a_alpha=_column([c.a2a.alpha for c in ctxs]),
            a2a_beta=_column([c.a2a.beta for c in ctxs]),
            n_a2a=_column([c.n_a2a for c in ctxs]),
            ag_alpha=_column([c.ag.alpha for c in ctxs]),
            ag_beta=_column([c.ag.beta for c in ctxs]),
            n_ag=_column([c.n_ag for c in ctxs]),
            rs_alpha=_column([c.rs.alpha for c in ctxs]),
            rs_beta=_column([c.rs.beta for c in ctxs]),
            n_rs=_column([c.n_rs for c in ctxs]),
            exp_alpha=_column([c.exp.alpha for c in ctxs]),
            exp_beta=_column([c.exp.beta for c in ctxs]),
            n_exp=_column([c.n_exp for c in ctxs]),
            t_gar=_column([c.t_gar for c in ctxs]),
        )

    def __len__(self) -> int:
        return self.n_a2a.shape[0]

    # -- chunked op times (vectorized Eq. 1) ---------------------------------
    # Zero-size operations cost nothing, exactly like
    # LinearPerfModel.chunk_time_ms.

    def t_a2a(self, r: np.ndarray) -> np.ndarray:
        """Per-chunk AlltoAll times at degrees ``r``."""
        return np.where(
            self.n_a2a > 0,
            self.a2a_alpha + (self.n_a2a / r) * self.a2a_beta,
            0.0,
        )

    def t_ag(self, r: np.ndarray) -> np.ndarray:
        """Per-chunk ESP-AllGather times at degrees ``r``."""
        return np.where(
            self.n_ag > 0,
            self.ag_alpha + (self.n_ag / r) * self.ag_beta,
            0.0,
        )

    def t_rs(self, r: np.ndarray) -> np.ndarray:
        """Per-chunk ESP-ReduceScatter times at degrees ``r``."""
        return np.where(
            self.n_rs > 0,
            self.rs_alpha + (self.n_rs / r) * self.rs_beta,
            0.0,
        )

    def t_exp(self, r: np.ndarray) -> np.ndarray:
        """Per-chunk expert-computation times at degrees ``r``."""
        return np.where(
            self.n_exp > 0,
            self.exp_alpha + (self.n_exp / r) * self.exp_beta,
            0.0,
        )

    # -- constraint margins ---------------------------------------------------
    # Formula-for-formula copies of the scalar margins above.

    def q1_margin(self, r: np.ndarray) -> np.ndarray:
        """Q1: AlltoAll slower than AllGather on a chunk."""
        return self.t_a2a(r) - self.t_ag(r)

    def q2_margin(self, r: np.ndarray) -> np.ndarray:
        """Q2: expert computation exceeds interior AlltoAll communication."""
        return r * self.t_exp(r) - 2.0 * (r - 1.0) * self.t_a2a(r)

    def q3_margin(self, r: np.ndarray) -> np.ndarray:
        """Q3: expert computation exceeds interior intra-node communication."""
        return r * self.t_exp(r) - (r - 1.0) * (self.t_ag(r) + self.t_rs(r))

    def q4_margin(self, r: np.ndarray) -> np.ndarray:
        """Q4: Gradient-AllReduce exceeds one AG + RS chunk pair."""
        return self.t_gar - (self.t_ag(r) + self.t_rs(r))

    def q5_margin(self, r: np.ndarray) -> np.ndarray:
        """Q5: Gradient-AllReduce fills the expert-dominated bubble."""
        return self.t_gar - (
            r * self.t_exp(r)
            - 2.0 * (r - 1.0) * self.t_a2a(r)
            + self.t_ag(r)
            + self.t_rs(r)
        )

    def q6_margin(self, r: np.ndarray) -> np.ndarray:
        """Q6: Gradient-AllReduce fills the intra-dominated bubble."""
        return self.t_gar - (
            r * self.t_ag(r)
            + r * self.t_rs(r)
            - 2.0 * (r - 1.0) * self.t_a2a(r)
        )

    def q7_margin(self, r: np.ndarray) -> np.ndarray:
        """Q7: Gradient-AllReduce fills the mixed bubble (not-Q1, Q3)."""
        return self.t_gar - (
            self.t_ag(r)
            + self.t_rs(r)
            + r * self.t_exp(r)
            - 2.0 * (r - 1.0) * self.t_a2a(r)
        )


def context_from_volumes(
    models: PerfModelSet,
    *,
    a2a_bytes: float,
    esp_shard_bytes: float,
    expert_macs: float,
    expert_num_gemms: int,
    backward: bool = False,
    t_gar: float = 0.0,
) -> PipelineContext:
    """Build a :class:`PipelineContext` from fitted models and volumes.

    In backward, expert computation doubles (gradients w.r.t. both weights
    and inputs -- paper §4.4: "alpha_exp, beta_exp and n_exp in the backward
    phase are twice those in the forward phase") while communication
    volumes are unchanged.
    """
    num_gemms = expert_num_gemms * (2 if backward else 1)
    n_exp = expert_macs * (2.0 if backward else 1.0)
    return PipelineContext(
        a2a=models.a2a,
        n_a2a=a2a_bytes,
        ag=models.allgather,
        n_ag=esp_shard_bytes,
        rs=models.reducescatter,
        n_rs=esp_shard_bytes,
        exp=models.expert_model(num_gemms),
        n_exp=n_exp,
        t_gar=t_gar,
    )
