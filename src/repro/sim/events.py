"""Tasks and task graphs consumed by the discrete-event engine."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import ScheduleError


class TaskKind(enum.Enum):
    """Operation categories, matching the paper's Fig. 3 legend."""

    ESP_ALLGATHER = "esp_allgather"  # legend 0
    ESP_REDUCESCATTER = "esp_reducescatter"  # legend 1
    A2A_DISPATCH = "a2a_dispatch"  # legend 2
    A2A_COMBINE = "a2a_combine"  # legend 3
    EXPERT = "expert"  # legend 4
    OTHERS = "others"  # legend 5 (attention, gate, order, MP comm)
    GRAD_ALLREDUCE = "grad_allreduce"  # legend 6

    @property
    def glyph(self) -> str:
        """Single character used by the ASCII Gantt renderer."""
        return {
            TaskKind.ESP_ALLGATHER: "G",
            TaskKind.ESP_REDUCESCATTER: "S",
            TaskKind.A2A_DISPATCH: "D",
            TaskKind.A2A_COMBINE: "C",
            TaskKind.EXPERT: "E",
            TaskKind.OTHERS: "o",
            TaskKind.GRAD_ALLREDUCE: "R",
        }[self]


#: canonical stream names used by the schedule builders.
STREAM_COMPUTE = "compute"
STREAM_INTRA = "intra"
STREAM_INTER = "inter"
STREAM_DEFAULT = "default"


@dataclass(frozen=True)
class Task:
    """One unit of work bound to a stream.

    Attributes:
        task_id: unique id within its graph (assigned by the graph).
        name: human-readable label, e.g. ``"bw L3 D(2)"``.
        kind: operation category (drives Gantt glyphs and per-kind stats).
        stream: resource this task occupies while running.
        duration_ms: execution time.
        deps: ids of tasks that must finish before this one starts.
        priority: within-stream tie-break; lower runs first.
    """

    task_id: int
    name: str
    kind: TaskKind
    stream: str
    duration_ms: float
    deps: tuple[int, ...] = ()
    priority: int = 0


@dataclass
class TaskGraph:
    """A dependency graph of :class:`Task` objects.

    Build with :meth:`add`, which assigns ids and validates dependencies
    eagerly (referenced tasks must already exist, so graphs are acyclic by
    construction).
    """

    tasks: list[Task] = field(default_factory=list)

    def add(
        self,
        name: str,
        kind: TaskKind,
        stream: str,
        duration_ms: float,
        deps: tuple[int, ...] | list[int] = (),
        priority: int = 0,
    ) -> int:
        """Append a task and return its id.

        Raises:
            ScheduleError: on negative duration or a forward/unknown
                dependency reference.
        """
        if duration_ms < 0:
            raise ScheduleError(
                f"task {name!r} has negative duration {duration_ms}"
            )
        task_id = len(self.tasks)
        dep_tuple = tuple(deps)
        for dep in dep_tuple:
            if not 0 <= dep < task_id:
                raise ScheduleError(
                    f"task {name!r} depends on unknown/future task id {dep}"
                )
        self.tasks.append(
            Task(
                task_id=task_id,
                name=name,
                kind=kind,
                stream=stream,
                duration_ms=duration_ms,
                deps=dep_tuple,
                priority=priority,
            )
        )
        return task_id

    def merge(self, other: "TaskGraph", deps: tuple[int, ...] = ()) -> dict[int, int]:
        """Append all tasks of ``other``, offsetting ids.

        Every root of ``other`` (task without dependencies) additionally
        gains ``deps`` from this graph, which chains sub-graphs in time.

        Returns:
            Mapping from ``other``'s task ids to the new ids.
        """
        mapping: dict[int, int] = {}
        for task in other.tasks:
            new_deps = tuple(mapping[d] for d in task.deps)
            if not new_deps:
                new_deps = deps
            mapping[task.task_id] = self.add(
                name=task.name,
                kind=task.kind,
                stream=task.stream,
                duration_ms=task.duration_ms,
                deps=new_deps,
                priority=task.priority,
            )
        return mapping

    @property
    def streams(self) -> tuple[str, ...]:
        """All stream names referenced by tasks, in first-use order."""
        seen: dict[str, None] = {}
        for task in self.tasks:
            seen.setdefault(task.stream, None)
        return tuple(seen)

    def total_work_ms(self) -> float:
        """Sum of all task durations (a lower bound on 1-stream makespan)."""
        return sum(task.duration_ms for task in self.tasks)

    def sinks(self) -> tuple[int, ...]:
        """Ids of tasks that nothing depends on."""
        depended: set[int] = set()
        for task in self.tasks:
            depended.update(task.deps)
        return tuple(
            task.task_id for task in self.tasks if task.task_id not in depended
        )
