"""Discrete-event execution substrate.

Replaces CUDA streams + NCCL concurrency semantics for the reproduction:
tasks assigned to the same *stream* (resource) serialize, tasks on
different streams overlap, and a task starts only after all its
dependencies have finished.  This matches how the paper reasons about its
schedules (Fig. 3/4: "Stream a/b/c").

* :mod:`~repro.sim.events`   -- :class:`Task`, :class:`TaskKind`,
  :class:`TaskGraph`;
* :mod:`~repro.sim.engine`   -- the list-scheduling event loop;
* :mod:`~repro.sim.timeline` -- execution traces, utilization stats and
  ASCII Gantt rendering.
"""

from .events import Task, TaskKind, TaskGraph
from .engine import simulate
from .timeline import Timeline, TaskRecord

__all__ = [
    "Task",
    "TaskKind",
    "TaskGraph",
    "simulate",
    "Timeline",
    "TaskRecord",
]
