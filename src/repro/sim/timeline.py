"""Execution traces: makespan, per-kind/per-stream stats, exports."""

from __future__ import annotations

import json
from dataclasses import dataclass

from .events import Task, TaskKind


@dataclass(frozen=True)
class TaskRecord:
    """One executed task with its realized start/end times."""

    task: Task
    start_ms: float
    end_ms: float

    @property
    def duration_ms(self) -> float:
        """Realized duration (equals the task's declared duration)."""
        return self.end_ms - self.start_ms


@dataclass(frozen=True)
class Timeline:
    """Immutable result of simulating a :class:`~repro.sim.events.TaskGraph`."""

    records: tuple[TaskRecord, ...]
    streams: tuple[str, ...]

    @property
    def makespan_ms(self) -> float:
        """End time of the last task (0 for an empty graph)."""
        if not self.records:
            return 0.0
        return max(record.end_ms for record in self.records)

    def busy_ms(self, stream: str) -> float:
        """Total busy time of ``stream``."""
        return sum(
            record.duration_ms
            for record in self.records
            if record.task.stream == stream
        )

    def utilization(self, stream: str) -> float:
        """Busy fraction of ``stream`` over the makespan (0 when empty)."""
        span = self.makespan_ms
        if span <= 0:
            return 0.0
        return self.busy_ms(stream) / span

    def kind_ms(self, kind: TaskKind) -> float:
        """Total time spent in tasks of ``kind``."""
        return sum(
            record.duration_ms
            for record in self.records
            if record.task.kind is kind
        )

    def records_on(self, stream: str) -> tuple[TaskRecord, ...]:
        """Records executed on ``stream``, in start order."""
        return tuple(
            record for record in self.records if record.task.stream == stream
        )

    def end_of(self, task_id: int) -> float:
        """Finish time of a specific task.

        Raises:
            KeyError: if the task never ran.
        """
        for record in self.records:
            if record.task.task_id == task_id:
                return record.end_ms
        raise KeyError(f"task id {task_id} not in timeline")

    # -- rendering -----------------------------------------------------------

    def gantt_ascii(self, width: int = 100) -> str:
        """Render one text row per stream; glyphs follow Fig. 3's legend.

        ``G`` ESP-AllGather, ``S`` ESP-ReduceScatter, ``D`` AlltoAll
        dispatch, ``C`` AlltoAll combine, ``E`` experts, ``o`` others,
        ``R`` Gradient-AllReduce, ``.`` idle.
        """
        span = self.makespan_ms
        if span <= 0 or width <= 0:
            return "(empty timeline)"
        scale = width / span
        lines = []
        label_width = max((len(s) for s in self.streams), default=0)
        for stream in self.streams:
            row = ["."] * width
            for record in self.records_on(stream):
                lo = int(record.start_ms * scale)
                hi = max(lo + 1, int(record.end_ms * scale))
                for col in range(lo, min(hi, width)):
                    row[col] = record.task.kind.glyph
            lines.append(f"{stream:<{label_width}} |{''.join(row)}|")
        lines.append(
            f"{'':<{label_width}} 0{'-' * (width - 2)}> {span:.3f} ms"
        )
        return "\n".join(lines)

    def summary(self) -> str:
        """Multi-line per-stream utilization summary."""
        lines = [f"makespan: {self.makespan_ms:.3f} ms"]
        for stream in self.streams:
            lines.append(
                f"  {stream}: busy {self.busy_ms(stream):.3f} ms "
                f"({100.0 * self.utilization(stream):.1f}%)"
            )
        return "\n".join(lines)

    # -- exports ---------------------------------------------------------------

    def to_rows(self) -> list[dict[str, object]]:
        """Flat dict rows (name, kind, stream, start/end/duration in ms).

        Convenient for pandas/CSV post-processing in notebooks.
        """
        return [
            {
                "task_id": record.task.task_id,
                "name": record.task.name,
                "kind": record.task.kind.value,
                "stream": record.task.stream,
                "start_ms": record.start_ms,
                "end_ms": record.end_ms,
                "duration_ms": record.duration_ms,
            }
            for record in self.records
        ]

    def to_json(self, *, indent: int | None = None) -> str:
        """Lossless JSON serialization of the executed timeline.

        Unlike :meth:`to_rows` (a flat convenience view) this keeps every
        task field -- kind, deps, priority -- so
        :meth:`from_json` reconstructs an equal :class:`Timeline`.
        Persisted plans and their replayed timelines can therefore be
        compared bit-for-bit across processes.
        """
        return json.dumps(
            {
                "version": 1,
                "streams": list(self.streams),
                "records": [
                    {
                        "task_id": record.task.task_id,
                        "name": record.task.name,
                        "kind": record.task.kind.value,
                        "stream": record.task.stream,
                        "duration_ms": record.task.duration_ms,
                        "deps": list(record.task.deps),
                        "priority": record.task.priority,
                        "start_ms": record.start_ms,
                        "end_ms": record.end_ms,
                    }
                    for record in self.records
                ],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        """Parse a timeline serialized with :meth:`to_json`.

        Raises:
            ValueError: for an unknown serialization version.
        """
        data = json.loads(text)
        version = data.get("version")
        if version != 1:
            raise ValueError(
                f"unsupported timeline serialization version {version!r}"
            )
        records = tuple(
            TaskRecord(
                task=Task(
                    task_id=entry["task_id"],
                    name=entry["name"],
                    kind=TaskKind(entry["kind"]),
                    stream=entry["stream"],
                    duration_ms=entry["duration_ms"],
                    deps=tuple(entry["deps"]),
                    priority=entry["priority"],
                ),
                start_ms=entry["start_ms"],
                end_ms=entry["end_ms"],
            )
            for entry in data["records"]
        )
        return cls(records=records, streams=tuple(data["streams"]))

    def to_chrome_trace(self) -> str:
        """Chrome ``about://tracing`` / Perfetto JSON for the timeline.

        Streams map to thread ids; durations are complete ("X") events in
        microseconds, so a schedule can be inspected interactively.
        """
        tid_of = {stream: i for i, stream in enumerate(self.streams)}
        events = [
            {
                "name": stream,
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "cat": "__metadata",
                "args": {"name": stream},
            }
            for stream, tid in tid_of.items()
        ]
        for record in self.records:
            events.append(
                {
                    "name": record.task.name,
                    "cat": record.task.kind.value,
                    "ph": "X",
                    "pid": 0,
                    "tid": tid_of[record.task.stream],
                    "ts": record.start_ms * 1000.0,
                    "dur": record.duration_ms * 1000.0,
                }
            )
        return json.dumps({"traceEvents": events})
