"""List-scheduling discrete-event engine.

Semantics (mirroring CUDA stream execution):

* each stream runs at most one task at a time, in (priority, insertion)
  order among the tasks that are *ready* (all dependencies finished);
* a ready task starts as soon as its stream is free (work-conserving;
  streams never idle while ready work exists);
* tasks on different streams run concurrently.

The engine is deterministic: ties break on task id.
"""

from __future__ import annotations

import heapq

from ..errors import ScheduleError
from .events import TaskGraph
from .timeline import TaskRecord, Timeline


def simulate(graph: TaskGraph) -> Timeline:
    """Execute ``graph`` and return its :class:`~repro.sim.timeline.Timeline`.

    Raises:
        ScheduleError: if execution stalls with unfinished tasks (only
            possible for graphs built outside :class:`TaskGraph.add`'s
            validation, e.g. after manual mutation).
    """
    tasks = graph.tasks
    if not tasks:
        return Timeline(records=(), streams=())

    indegree = [len(task.deps) for task in tasks]
    successors: list[list[int]] = [[] for _ in tasks]
    for task in tasks:
        for dep in task.deps:
            successors[dep].append(task.task_id)

    # Per-stream ready heaps of (priority, task_id).
    ready: dict[str, list[tuple[int, int]]] = {s: [] for s in graph.streams}
    for task in tasks:
        if indegree[task.task_id] == 0:
            heapq.heappush(ready[task.stream], (task.priority, task.task_id))

    stream_free: dict[str, float] = {s: 0.0 for s in graph.streams}
    running: list[tuple[float, int]] = []  # (end_time, task_id)
    records: list[TaskRecord] = []
    finished = 0
    now = 0.0

    def start_ready_tasks() -> None:
        for stream, heap in ready.items():
            if heap and stream_free[stream] <= now:
                _, task_id = heapq.heappop(heap)
                task = tasks[task_id]
                start = now
                end = start + task.duration_ms
                stream_free[stream] = end
                records.append(TaskRecord(task=task, start_ms=start, end_ms=end))
                heapq.heappush(running, (end, task_id))

    start_ready_tasks()
    while finished < len(tasks):
        if not running:
            unfinished = [t.name for t in tasks if indegree[t.task_id] >= 0]
            raise ScheduleError(
                f"simulation stalled with {len(tasks) - finished} unfinished "
                f"tasks (first few: {unfinished[:5]})"
            )
        now, done_id = heapq.heappop(running)
        finished += 1
        indegree[done_id] = -1  # mark complete
        for succ in successors[done_id]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                task = tasks[succ]
                heapq.heappush(ready[task.stream], (task.priority, succ))
        # A completion both frees a stream and may unblock tasks on others.
        start_ready_tasks()

    records.sort(key=lambda r: (r.start_ms, r.task.task_id))
    return Timeline(records=tuple(records), streams=graph.streams)
