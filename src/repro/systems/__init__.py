"""The MoE training systems compared in the paper's evaluation.

=================  =========================================================
System             Schedule
=================  =========================================================
DeepSpeedMoE       sequential default schedule (Fig. 3a), r = 1
Tutel              PipeMoE adaptive pipelining, 2 streams, GAR exposed
TutelImproved      Tutel + GAR overlapped with non-MoE backward (Fig. 3b)
PipeMoELina        Tutel + Lina's fixed 30 MB gradient chunks
FSMoENoIIO         FSMoE without inter/intra-node comm overlap (2 streams)
FSMoE              full system (Fig. 3d): 3 streams, per-phase Algorithm 1
                   degrees, adaptive gradient partitioning
=================  =========================================================
"""

from .base import TrainingSystem
from .dsmoe import DeepSpeedMoE
from .tutel import Tutel, TutelImproved
from .lina import PipeMoELina
from .fsmoe import FSMoE, FSMoENoIIO
from .registry import available_systems, get_system, register_system

#: every system, in the order the paper's figures list them.
ALL_SYSTEMS = (DeepSpeedMoE, Tutel, TutelImproved, PipeMoELina, FSMoENoIIO, FSMoE)

#: registry keys in the same paper order (for specs and the CLI).
ALL_SYSTEM_KEYS = (
    "dsmoe",
    "tutel",
    "tutel-improved",
    "pipemoe-lina",
    "fsmoe-no-iio",
    "fsmoe",
)

__all__ = [
    "TrainingSystem",
    "DeepSpeedMoE",
    "Tutel",
    "TutelImproved",
    "PipeMoELina",
    "FSMoENoIIO",
    "FSMoE",
    "ALL_SYSTEMS",
    "ALL_SYSTEM_KEYS",
    "available_systems",
    "get_system",
    "register_system",
]
