"""DeepSpeed-MoE baseline: the paper's "default schedule" (Fig. 3a).

Every operation runs synchronously on the default CUDA stream -- no
pipelining (r = 1), no communication/computation overlap, gradient
AllReduce exposed after backward.  Its routing/ordering implementations
are also less optimized than FSMoE's fused ones (paper §1 and Table 6),
modelled as a constant multiplier on the (small) gate + order compute.
"""

from __future__ import annotations

from typing import Sequence

from ..core.perf_model import PerfModelSet
from ..core.schedules import (
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    SINGLE_STREAM,
)
from ..models.transformer import LayerProfile
from .base import TrainingSystem

#: slowdown of DeepSpeed-MoE's un-fused routing/ordering kernels relative
#: to FSMoE's implementations.  The affected ops are <1.5% of a layer
#: (Table 2), so this contributes only a few percent end-to-end.
ROUTING_OVERHEAD = 3.0


class DeepSpeedMoE(TrainingSystem):
    """Sequential single-stream schedule with r = 1."""

    name = "DS-MoE"

    def build_iteration_spec(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        include_gar: bool = True,
    ) -> IterationSpec:
        """All ops on one stream; gradient AllReduce at the very end.

        ``profiles`` may be heterogeneous; with ``r = 1`` everywhere each
        layer simply contributes its own unchunked op times.
        """
        extra = (ROUTING_OVERHEAD - 1.0)
        forward = tuple(
            LayerPhaseSchedule(
                ctx=p.ctx_fw,
                degree=1,
                dense_ms=p.dense_fw_ms + extra * (p.gate_ms + p.order_ms),
            )
            for p in profiles
        )
        backward = tuple(
            LayerPhaseSchedule(
                ctx=p.ctx_bw,
                degree=1,
                dense_ms=p.dense_bw_ms + extra * (p.gate_ms + p.order_ms),
            )
            for p in profiles
        )
        grad_bytes = tuple(
            p.grad_bytes if include_gar else 0.0 for p in profiles
        )
        return IterationSpec(
            name=self.name,
            forward=forward,
            backward=backward,
            grad_bytes=grad_bytes,
            ar_model=models.allreduce,
            streams=SINGLE_STREAM,
            gar_mode=GarMode.END,
        )
