"""Common interface of all training systems."""

from __future__ import annotations

import abc
from typing import Sequence

from ..core.perf_model import PerfModelSet
from ..core.pipeline_degree import DEFAULT_MAX_DEGREE
from ..core.schedules import IterationSpec, build_iteration_graph
from ..models.transformer import LayerProfile
from ..sim.engine import simulate
from ..sim.timeline import Timeline


class TrainingSystem(abc.ABC):
    """A scheduling strategy for training a stack of MoE layers.

    Concrete systems translate layer profiles into an
    :class:`~repro.core.schedules.IterationSpec`; everything else
    (simulation, phase splitting for pipeline parallelism, plan
    compilation) is shared.

    Stacks may be *heterogeneous*: ``profiles`` is one profile per
    generalized layer and the entries are free to describe different
    layer shapes (hidden size, expert count, top-k, routing function).
    """

    #: display name used in benchmark tables.
    name: str = "system"

    def __init__(self, r_max: int = DEFAULT_MAX_DEGREE) -> None:
        self.r_max = r_max

    def schedule_contexts(self, profiles: Sequence[LayerProfile]) -> tuple:
        """Pipeline contexts this system will hand to Algorithm 1.

        The plan compiler batch-solves these in one vectorized pass
        before :meth:`build_iteration_spec` runs, so a heterogeneous
        stack costs one array evaluation instead of one solve per layer.
        Systems that never consult Algorithm 1 (the fixed-degree
        baselines) return the default empty tuple.
        """
        return ()

    def fingerprint(self) -> tuple:
        """Plain-data identity of this system *configuration*.

        Two instances with equal fingerprints compile identical plans from
        identical inputs, so the fingerprint is what content-addressed
        plan caches (:class:`~repro.api.workspace.Workspace`) key on.
        Subclasses with extra scheduling knobs must extend the tuple.
        """
        return (type(self).__name__, self.name, self.r_max)

    @abc.abstractmethod
    def build_iteration_spec(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        include_gar: bool = True,
    ) -> IterationSpec:
        """Assemble the iteration description for this system.

        Args:
            profiles: one profile per generalized layer, forward order;
                entries need not be identical (heterogeneous stacks).
            models: fitted performance models of the target cluster.
            include_gar: set False to exclude gradient synchronization
                (used by the pipeline-parallel model to charge it once).
        """

    def compile_plan(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        *,
        include_gar: bool = True,
    ):
        """Compile a persistable :class:`~repro.planner.plan.IterationPlan`.

        The plan serializes to JSON and replays bit-identically without
        re-running profiling or the scheduling solvers; see
        :mod:`repro.planner`.
        """
        # Imported here, not at module top: the planner sits a layer
        # above the systems and importing it eagerly would be circular.
        from ..planner.plan import IterationPlan

        return IterationPlan.from_spec(
            self.build_iteration_spec(profiles, models, include_gar)
        )

    def iteration_time_ms(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        *,
        phase: str = "both",
        include_gar: bool = True,
    ) -> float:
        """Simulated makespan of one iteration (or one phase)."""
        spec = self.build_iteration_spec(profiles, models, include_gar)
        return simulate(build_iteration_graph(spec, phase=phase)).makespan_ms

    def timeline(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        *,
        phase: str = "both",
        include_gar: bool = True,
    ) -> Timeline:
        """Full execution trace (for Gantt rendering and inspection)."""
        spec = self.build_iteration_spec(profiles, models, include_gar)
        return simulate(build_iteration_graph(spec, phase=phase))

    def phase_times_ms(
        self, profiles: Sequence[LayerProfile], models: PerfModelSet
    ) -> tuple[float, float, float]:
        """(forward, backward-without-GAR, backward-with-GAR) makespans.

        The pipeline-parallel model consumes these to build the GPipe
        schedule with gradient work charged once at the flush.
        """
        fw = self.iteration_time_ms(
            profiles, models, phase="forward", include_gar=False
        )
        bw_no_gar = self.iteration_time_ms(
            profiles, models, phase="backward", include_gar=False
        )
        bw_gar = self.iteration_time_ms(
            profiles, models, phase="backward", include_gar=True
        )
        return fw, bw_no_gar, bw_gar
