"""PipeMoE + Lina: fixed-size gradient chunking (paper §6.4).

Lina partitions the gradient into fixed chunks (30 MB) and overlaps the
chunked aggregation with expert computation and non-MoE backward work,
giving AlltoAll priority on the network.  The fixed size is its weakness
("its performance is hit or miss", §6.4): too-large chunks head-of-line
block AlltoAll, too-small chunks waste startup latency -- which is exactly
what FSMoE's adaptive partitioning fixes.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from ..core.perf_model import PerfModelSet
from ..core.schedules import GarMode, IterationSpec, LINA_CHUNK_BYTES
from ..models.transformer import LayerProfile
from .tutel import Tutel, _oracle_degree, _pipemoe_spec


class PipeMoELina(Tutel):
    """PipeMoE pipelining + Lina's fixed 30 MB gradient chunks."""

    name = "PipeMoE+Lina"

    def __init__(self, r_max: int = 16, chunk_bytes: float = LINA_CHUNK_BYTES):
        super().__init__(r_max)
        self.chunk_bytes = chunk_bytes

    def fingerprint(self) -> tuple:
        """Cache identity: the base fingerprint plus the chunk size."""
        return super().fingerprint() + ("chunk_bytes", self.chunk_bytes)

    def build_iteration_spec(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        include_gar: bool = True,
    ) -> IterationSpec:
        """PipeMoE schedule with background 30 MB AllReduce chunks.

        ``profiles`` may be heterogeneous; the oracle sweep then picks
        the single degree that minimizes the whole stack's makespan.
        """
        key = tuple(profiles)
        degree = _oracle_degree(key, models, self.r_max, include_gar)
        spec = _pipemoe_spec(
            key, models, degree, GarMode.FIXED_CHUNKS, include_gar, self.name
        )
        return replace(spec, gar_chunk_bytes=self.chunk_bytes)
