"""Tutel with PipeMoE's adaptive pipelining, and its improved variant.

Tutel overlaps AlltoAll with expert computation on two streams (one comm,
one compute -- Fig. 3b) using a single pipeline degree for both phases.
We grant the baseline an *oracle* degree: an exhaustive integer sweep of
its own schedule's simulated makespan, which upper-bounds what PipeMoE's
analytic model can pick and therefore makes FSMoE's measured gains
conservative (see DESIGN.md, "Honest baselines").

``TutelImproved`` additionally releases each layer's Gradient-AllReduce
right after that layer's dense backward so it can hide under non-MoE work
(the paper's "Tutel-Improved").
"""

from __future__ import annotations

import functools
from typing import Sequence

from ..core.fastsolve import best_swept_degree, merged_iteration_times
from ..core.perf_model import PerfModelSet
from ..core.schedules import (
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    TWO_STREAM,
    build_iteration_graph,
)
from ..models.transformer import LayerProfile
from ..sim.engine import simulate
from .base import TrainingSystem


@functools.lru_cache(maxsize=4096)
def _oracle_degree(
    profiles: tuple[LayerProfile, ...],
    models: PerfModelSet,
    r_max: int,
    include_gar: bool,
) -> int:
    """Integer sweep of the PipeMoE schedule's iteration time.

    Vectorized: all degrees of the full fw+bw+GAR-tail iteration in one
    :func:`~repro.core.fastsolve.merged_iteration_times` pass,
    bit-identical to building and event-simulating one task graph per
    degree (kept as :func:`_oracle_degree_sim`, pinned in the tests).
    """
    times = merged_iteration_times(
        [p.ctx_fw for p in profiles],
        [p.dense_fw_ms for p in profiles],
        [p.ctx_bw for p in profiles],
        [p.dense_bw_ms for p in profiles],
        [
            models.allreduce.time_ms(p.grad_bytes) if include_gar else 0.0
            for p in profiles
        ],
        r_max,
    )
    return best_swept_degree(times)[0]


def _oracle_degree_sim(
    profiles: tuple[LayerProfile, ...],
    models: PerfModelSet,
    r_max: int,
    include_gar: bool,
) -> int:
    """Simulate-per-degree reference for :func:`_oracle_degree`."""
    best_r, best_t = 1, float("inf")
    for r in range(1, r_max + 1):
        spec = _pipemoe_spec(
            profiles, models, r, GarMode.END, include_gar, name="sweep"
        )
        t = simulate(build_iteration_graph(spec)).makespan_ms
        if t < best_t - 1e-12:
            best_t = t
            best_r = r
    return best_r


def _pipemoe_spec(
    profiles: tuple[LayerProfile, ...],
    models: PerfModelSet,
    degree: int,
    gar_mode: GarMode,
    include_gar: bool,
    name: str,
) -> IterationSpec:
    forward = tuple(
        LayerPhaseSchedule(ctx=p.ctx_fw, degree=degree, dense_ms=p.dense_fw_ms)
        for p in profiles
    )
    backward = tuple(
        LayerPhaseSchedule(ctx=p.ctx_bw, degree=degree, dense_ms=p.dense_bw_ms)
        for p in profiles
    )
    grad_bytes = tuple(p.grad_bytes if include_gar else 0.0 for p in profiles)
    return IterationSpec(
        name=name,
        forward=forward,
        backward=backward,
        grad_bytes=grad_bytes,
        ar_model=models.allreduce,
        streams=TWO_STREAM,
        gar_mode=gar_mode,
    )


class Tutel(TrainingSystem):
    """Tutel + PipeMoE: two-stream pipelining, GAR exposed at the end."""

    name = "Tutel"
    _gar_mode = GarMode.END

    def build_iteration_spec(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        include_gar: bool = True,
    ) -> IterationSpec:
        """Oracle-swept single degree, shared by forward and backward.

        ``profiles`` may be heterogeneous; Tutel still uses one global
        degree (its real-world limitation), swept against the whole
        stack's simulated makespan.
        """
        key = tuple(profiles)
        degree = _oracle_degree(key, models, self.r_max, include_gar)
        return _pipemoe_spec(
            key, models, degree, self._gar_mode, include_gar, self.name
        )


class TutelImproved(Tutel):
    """Tutel with Gradient-AllReduce overlapped with non-MoE backward."""

    name = "Tutel-Improved"
    _gar_mode = GarMode.DENSE_OVERLAP
