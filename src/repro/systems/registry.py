"""String-keyed registry of training systems.

Declarative front-ends (:class:`~repro.api.spec.ExperimentSpec`, the
``python -m repro`` CLI) name systems by string instead of importing
classes.  Lookup is canonicalized (case-insensitive; spaces,
underscores, ``+`` and ``/`` collapse to ``-``) and accepts both the
short keys (``"fsmoe"``, ``"tutel-improved"``) and the display names the
paper's tables use (``"DS-MoE"``, ``"PipeMoE+Lina"``).

Third parties register their own :class:`~repro.systems.base.TrainingSystem`
subclasses with :func:`register_system`; construction keyword arguments
that a system does not accept (e.g. ``solver`` on non-FSMoE systems) are
silently dropped so one :class:`ExperimentSpec` can sweep heterogeneous
system sets.
"""

from __future__ import annotations

import inspect
from typing import Callable, Iterable

from ..naming import Registry
from .base import TrainingSystem
from .dsmoe import DeepSpeedMoE
from .fsmoe import FSMoE, FSMoENoIIO
from .lina import PipeMoELina
from .tutel import Tutel, TutelImproved

_REGISTRY: Registry[TrainingSystem] = Registry("system")


def register_system(
    key: str,
    factory: Callable[..., TrainingSystem],
    *,
    aliases: Iterable[str] = (),
    overwrite: bool = False,
) -> None:
    """Register a training-system factory under a string key.

    Args:
        key: canonical name (will be normalized, e.g. ``"My System"`` ->
            ``"my-system"``).
        factory: class or callable returning a
            :class:`~repro.systems.base.TrainingSystem`.
        aliases: additional lookup names mapping to the same factory.
        overwrite: allow replacing an existing registration.

    Raises:
        RegistryError: when the key or an alias is already taken and
            ``overwrite`` is False.
    """
    _REGISTRY.register(key, factory, aliases=aliases, overwrite=overwrite)


def available_systems() -> tuple[str, ...]:
    """Canonical keys of every registered system, sorted."""
    return _REGISTRY.available()


def get_system(name: str, **kwargs) -> TrainingSystem:
    """Instantiate a registered system by name.

    Keyword arguments are forwarded to the factory; arguments the factory
    does not accept are dropped (so e.g. ``solver="slsqp"`` configures the
    FSMoE variants and is a no-op for Tutel), as are ``None`` values
    (meaning "use the system's default").

    Raises:
        RegistryError: for an unknown name.
    """
    factory = _REGISTRY.lookup(name)
    accepted = inspect.signature(factory).parameters
    takes_kwargs = any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in accepted.values()
    )
    passed = {
        k: v
        for k, v in kwargs.items()
        if v is not None and (takes_kwargs or k in accepted)
    }
    return factory(**passed)


register_system("dsmoe", DeepSpeedMoE, aliases=("ds-moe", "deepspeed-moe"))
register_system("tutel", Tutel)
register_system("tutel-improved", TutelImproved)
register_system(
    "pipemoe-lina", PipeMoELina, aliases=("lina", "pipemoe+lina")
)
register_system("fsmoe-no-iio", FSMoENoIIO, aliases=("fsmoe-noiio",))
register_system("fsmoe", FSMoE)
