"""FSMoE: the paper's full system, and its No-IIO ablation.

* per-phase pipeline degrees from Algorithm 1 (the batched exact sweep
  of :mod:`repro.core.fastsolve`; SLSQP kept for cross-checking) --
  forward with ``t_gar = 0``, backward with the AllReduce time the
  partition plan injects;
* adaptive gradient partitioning (§5): window fill + differential
  evolution over the residual;
* three streams (compute / intra-node / inter-node) so ESP collectives
  overlap AlltoAll (Fig. 3d).

``FSMoENoIIO`` keeps the degrees and the partitioning but serializes
intra- with inter-node communication on one stream (the paper's
"FSMoE-No-IIO" ablation, Table 5 and Fig. 6).
"""

from __future__ import annotations

import functools
from typing import Sequence

from ..core.gradient_partition import (
    STEP2_SOLVERS,
    GeneralizedLayer,
    GradientPartitionPlan,
    plan_gradient_partition,
    resolve_step2_impl,
)
from ..core.fastsolve import solve_merged_phase_degree
from ..core.perf_model import PerfModelSet
from ..core.pipeline_degree import DEFAULT_MAX_DEGREE, solve_degrees
from ..core.schedules import (
    GarMode,
    IterationSpec,
    LayerPhaseSchedule,
    StreamMap,
    THREE_STREAM,
    TWO_STREAM,
    build_iteration_graph,
)
from ..errors import SolverError
from ..models.transformer import LayerProfile
from ..sim.engine import simulate
from .base import TrainingSystem


@functools.lru_cache(maxsize=1024)
def _partition_plan(
    profiles: tuple[LayerProfile, ...],
    models: PerfModelSet,
    r_max: int,
    merged_comm: bool,
    solver: str,
    step2_impl: str,
) -> GradientPartitionPlan:
    # step2_impl is resolved by the caller (not read from the environment
    # here) so flipping REPRO_STEP2_IMPL mid-process can never serve a
    # plan memoized under the other implementation.
    layers = [
        GeneralizedLayer(
            ctx=p.ctx_bw,
            dense_overlappable_ms=p.dense_bw_ms,
            grad_bytes=p.grad_bytes,
        )
        for p in profiles
    ]
    return plan_gradient_partition(
        layers,
        models.allreduce,
        r_max=r_max,
        merged_comm=merged_comm,
        solver=solver,
        step2_impl=step2_impl,
    )


class FSMoE(TrainingSystem):
    """The full FSMoE schedule (Fig. 3d).

    Args:
        r_max: cap on the pipeline degrees Algorithm 1 considers.
        solver: Step-2 gradient-partition solver -- ``"de"`` (the paper's
            differential evolution), ``"slsqp"`` (a much cheaper local
            solve with near-identical placements) or ``"none"`` (skip
            Step 2).  See
            :func:`~repro.core.gradient_partition.plan_gradient_partition`.
    """

    name = "FSMoE"
    _streams: StreamMap = THREE_STREAM
    _merged_comm = False

    def __init__(
        self, r_max: int = DEFAULT_MAX_DEGREE, solver: str = "de"
    ) -> None:
        super().__init__(r_max)
        if solver not in STEP2_SOLVERS:
            raise SolverError(
                f"unknown Step-2 solver {solver!r}; "
                f"choose from {STEP2_SOLVERS}"
            )
        self.solver = solver

    def fingerprint(self) -> tuple:
        """Cache identity: the base fingerprint plus the Step-2 solver."""
        return super().fingerprint() + ("solver", self.solver)

    def schedule_contexts(self, profiles: Sequence[LayerProfile]) -> tuple:
        """Both phases of every layer feed Algorithm 1."""
        return tuple(p.ctx_fw for p in profiles) + tuple(
            p.ctx_bw for p in profiles
        )

    def _phase_degrees(
        self,
        profiles: tuple[LayerProfile, ...],
        models: PerfModelSet,
        plan: GradientPartitionPlan | None,
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-layer (forward, backward) degrees from Algorithm 1.

        A heterogeneous stack is one batched solve: every layer's
        contexts (forward, and backward when no partition plan supplies
        them) go through a single :func:`solve_degrees` call; the
        solver's memo deduplicates repeated layers.
        """
        contexts = [p.ctx_fw for p in profiles]
        if plan is None:
            contexts += [p.ctx_bw for p in profiles]
        solutions = solve_degrees(contexts, self.r_max)
        n = len(profiles)
        fw = tuple(s.degree for s in solutions[:n])
        if plan is not None:
            bw = tuple(s.degree for s in plan.solutions)
        else:
            bw = tuple(s.degree for s in solutions[n:])
        return fw, bw

    def build_iteration_spec(
        self,
        profiles: Sequence[LayerProfile],
        models: PerfModelSet,
        include_gar: bool = True,
    ) -> IterationSpec:
        """Per-phase Algorithm-1 degrees + adaptive gradient partitioning.

        ``profiles`` may be heterogeneous: every layer gets its own
        Algorithm-1 degrees and its own slice of the gradient partition
        (the paper's per-layer flexibility, Table 5).
        """
        key = tuple(profiles)
        plan = (
            _partition_plan(
                key,
                models,
                self.r_max,
                self._merged_comm,
                self.solver,
                resolve_step2_impl(),
            )
            if include_gar
            else None
        )
        fw_degrees, bw_degrees = self._phase_degrees(key, models, plan)
        forward = tuple(
            LayerPhaseSchedule(
                ctx=p.ctx_fw, degree=fw_degrees[i], dense_ms=p.dense_fw_ms
            )
            for i, p in enumerate(key)
        )
        if plan is not None:
            backward = tuple(
                LayerPhaseSchedule(
                    ctx=p.ctx_bw.with_t_gar(plan.t_gar_ms[i]),
                    degree=bw_degrees[i],
                    dense_ms=p.dense_bw_ms,
                )
                for i, p in enumerate(key)
            )
            grad_bytes = tuple(p.grad_bytes for p in key)
            gar_mode = GarMode.ADAPTIVE
        else:
            backward = tuple(
                LayerPhaseSchedule(
                    ctx=p.ctx_bw, degree=bw_degrees[i], dense_ms=p.dense_bw_ms
                )
                for i, p in enumerate(key)
            )
            grad_bytes = tuple(0.0 for _ in key)
            gar_mode = GarMode.END
        return IterationSpec(
            name=self.name,
            forward=forward,
            backward=backward,
            grad_bytes=grad_bytes,
            ar_model=models.allreduce,
            streams=self._streams,
            gar_mode=gar_mode,
            plan=plan,
        )


@functools.lru_cache(maxsize=4096)
def _merged_phase_degree(
    profiles: tuple[LayerProfile, ...],
    models: PerfModelSet,
    r_max: int,
    phase: str,
) -> int:
    """Best degree for one phase of the merged-comm (2-stream) schedule.

    Algorithm 1's closed forms assume a dedicated inter-node stream; on a
    merged comm stream they overestimate the benefit of chunking.  The
    No-IIO ablation therefore picks its per-phase degree by sweeping its
    *own* schedule's makespan -- still adaptive and per-phase, just
    against the correct stream model.

    The sweep is the vectorized recurrence of
    :func:`~repro.core.fastsolve.merged_phase_times`: every integer
    degree of the whole stack in one array pass, bit-identical (degree
    and makespan) to building and event-simulating one task graph per
    degree (kept as :func:`_merged_phase_degree_sim` and pinned equal in
    the tests).
    """
    if phase == "forward":
        ctxs = [p.ctx_fw for p in profiles]
        dense = [p.dense_fw_ms for p in profiles]
        dense_first = True
    else:
        # Backward executes the stack in reverse, dense after each block.
        ctxs = [p.ctx_bw for p in reversed(profiles)]
        dense = [p.dense_bw_ms for p in reversed(profiles)]
        dense_first = False
    degree, _ = solve_merged_phase_degree(
        ctxs, dense, r_max, dense_first=dense_first
    )
    return degree


def _merged_phase_degree_sim(
    profiles: tuple[LayerProfile, ...],
    models: PerfModelSet,
    r_max: int,
    phase: str,
) -> int:
    """Simulate-per-degree reference for :func:`_merged_phase_degree`.

    The pre-vectorization implementation, kept as the pinned oracle: it
    builds one 2-stream task graph per candidate degree and takes the
    event-simulated makespan.  Tests assert the vectorized sweep matches
    it exactly.
    """
    best_r, best_t = 1, float("inf")
    for r in range(1, r_max + 1):
        layers = tuple(
            LayerPhaseSchedule(
                ctx=p.ctx_fw if phase == "forward" else p.ctx_bw,
                degree=r,
                dense_ms=(
                    p.dense_fw_ms if phase == "forward" else p.dense_bw_ms
                ),
            )
            for p in profiles
        )
        spec = IterationSpec(
            name="noiio-sweep",
            forward=layers,
            backward=layers,
            grad_bytes=tuple(0.0 for _ in profiles),
            ar_model=models.allreduce,
            streams=TWO_STREAM,
            gar_mode=GarMode.END,
        )
        t = simulate(build_iteration_graph(spec, phase=phase)).makespan_ms
        if t < best_t - 1e-12:
            best_t = t
            best_r = r
    return best_r


class FSMoENoIIO(FSMoE):
    """FSMoE without the inter/intra-node communication overlap.

    Keeps the adaptive per-phase degrees and the gradient partitioning but
    serializes all communication on one stream.  Its degrees come from a
    per-phase sweep of the merged-comm schedule, its windows are sized
    with the merged-comm formula, and its in-pipeline AllReduce slices run
    at background priority (they fill the comm stream's expert-compute
    gaps instead of delaying combines).
    """

    name = "FSMoE-No-IIO"
    _streams = TWO_STREAM
    _merged_comm = True

    def _phase_degrees(
        self,
        profiles: tuple[LayerProfile, ...],
        models: PerfModelSet,
        plan: GradientPartitionPlan | None,
    ) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Per-phase degrees swept on the 2-stream schedule itself."""
        fw = _merged_phase_degree(profiles, models, self.r_max, "forward")
        bw = _merged_phase_degree(profiles, models, self.r_max, "backward")
        n = len(profiles)
        return (fw,) * n, (bw,) * n
