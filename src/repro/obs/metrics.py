"""Metrics registry: Counter/Gauge/Histogram in one named namespace.

The library already counts everything exactly -- four separate stats
families (:class:`~repro.core.fastsolve.SolverStats`,
:class:`~repro.serve.stats.ServiceStats`,
:class:`~repro.cache.stats.CacheStats`,
:class:`~repro.api.workspace.WorkspaceStats`) with their own field
names and windowing.  This module gives them one export surface: a
:class:`MetricsRegistry` of named instruments under the ``repro.*``
namespace (``repro.solver.solves``, ``repro.cache.l1.hits``,
``repro.serve.requests``, ``repro.workspace.plan_misses``, ...), built
from any :class:`WorkspaceStats` snapshot by
:func:`workspace_metrics` -- every value carried over *exactly*, never
resampled.

:class:`Histogram` replaces the ad-hoc latency percentile reservoirs:
fixed exponential bucket bounds (:func:`exponential_bounds`), so a
snapshot is an exact description of every observation's bucket, two
snapshots from different processes merge losslessly
(:meth:`HistogramSnapshot.merge`), and quantiles are deterministic
functions of the buckets (the bucket upper bound at the nearest rank --
an overestimate by at most one bucket's growth factor, never a sample
of a sample).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping

from ..errors import ConfigError

if TYPE_CHECKING:  # duck-typed at runtime: obs stays import-light
    from ..api.workspace import WorkspaceStats


def exponential_bounds(
    lo: float, hi: float, growth: float
) -> tuple[float, ...]:
    """Fixed exponential bucket upper bounds from ``lo`` up past ``hi``.

    Bounds are ``lo * growth**k`` for ``k = 0, 1, ...`` until ``hi`` is
    covered -- a pure function of its arguments, so every process
    derives the *same* bounds and snapshots merge exactly.

    Raises:
        ConfigError: for non-positive ``lo``/``hi``, ``hi < lo`` or
            ``growth <= 1``.
    """
    if lo <= 0 or hi <= 0 or hi < lo:
        raise ConfigError(
            f"need 0 < lo <= hi, got lo={lo!r} hi={hi!r}"
        )
    if growth <= 1.0:
        raise ConfigError(f"growth must be > 1, got {growth!r}")
    bounds = [lo]
    while bounds[-1] < hi:
        bounds.append(bounds[-1] * growth)
    return tuple(bounds)


#: per-bucket growth factor of the default latency bounds (~19% wide
#: buckets: quantiles from them overestimate by < 19%).
LATENCY_GROWTH = 2.0 ** 0.25

#: default bucket bounds for latencies in milliseconds: 1 us to 100 s.
DEFAULT_LATENCY_BOUNDS_MS = exponential_bounds(
    0.001, 100_000.0, LATENCY_GROWTH
)


@dataclass(frozen=True)
class HistogramSnapshot:
    """Exact, mergeable state of one histogram.

    Attributes:
        bounds: the bucket upper bounds (``value <= bounds[i]`` lands
            in bucket ``i``); fixed at construction.
        counts: per-bucket observation counts, one longer than
            ``bounds`` -- the final bucket is the ``+Inf`` overflow.
        sum: exact sum of every observed value.
        count: total observations.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    sum: float = 0.0
    count: int = 0

    def quantile(self, q: float) -> float:
        """The ``q``-th percentile (``q`` in [0, 100]) from the buckets.

        Uses the same nearest-rank convention the old sampling
        reservoir used, then reports the *upper bound* of the bucket
        holding that rank -- deterministic, and an overestimate of the
        true sample by at most one bucket's growth factor.  Overflow
        observations report the last finite bound.  Returns 0.0 when
        empty (metrics are read continuously, including before the
        first observation).
        """
        if self.count == 0:
            return 0.0
        rank = max(
            0,
            min(self.count - 1, round(q / 100.0 * self.count) - 1),
        )
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            seen += bucket_count
            if rank < seen:
                return self.bounds[min(index, len(self.bounds) - 1)]
        return self.bounds[-1]  # pragma: no cover - counts sum to count

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Exact union of two snapshots (bucket-wise sum).

        Raises:
            ConfigError: when the bucket bounds differ -- merging
                differently-shaped histograms would silently misbin.
        """
        if self.bounds != other.bounds:
            raise ConfigError(
                "cannot merge histograms with different bucket bounds"
            )
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a + b for a, b in zip(self.counts, other.counts)
            ),
            sum=self.sum + other.sum,
            count=self.count + other.count,
        )

    def __sub__(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """Bucket-wise counter delta (``after - before``) for windowing.

        Raises:
            ConfigError: when the bucket bounds differ.
        """
        if self.bounds != other.bounds:
            raise ConfigError(
                "cannot subtract histograms with different bucket bounds"
            )
        return HistogramSnapshot(
            bounds=self.bounds,
            counts=tuple(
                a - b for a, b in zip(self.counts, other.counts)
            ),
            sum=self.sum - other.sum,
            count=self.count - other.count,
        )


def empty_snapshot(
    bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_MS,
) -> HistogramSnapshot:
    """A zero-observation snapshot over ``bounds``."""
    return HistogramSnapshot(
        bounds=bounds, counts=(0,) * (len(bounds) + 1)
    )


#: the shared all-zero default-latency snapshot (dataclass default).
EMPTY_LATENCY = empty_snapshot()


class Counter:
    """A monotonically increasing value (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0: counters only go up).

        Raises:
            ConfigError: for a negative increment.
        """
        if amount < 0:
            raise ConfigError(
                f"counters are monotonic; cannot inc by {amount!r}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """A value that may go up or down (thread-safe)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current level."""
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        """Shift the current level by ``amount`` (either sign)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """The current level."""
        with self._lock:
            return self._value


class Histogram:
    """Bucketed observations over fixed exponential bounds (thread-safe).

    Args:
        bounds: bucket upper bounds, strictly increasing (use
            :func:`exponential_bounds`); defaults to the latency-in-ms
            bounds shared by the serving layer.

    Raises:
        ConfigError: for empty or non-increasing bounds.
    """

    __slots__ = ("bounds", "_lock", "_counts", "_sum", "_count")

    def __init__(
        self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_MS
    ) -> None:
        bounds = tuple(bounds)
        if not bounds or any(
            b <= a for a, b in zip(bounds, bounds[1:])
        ):
            raise ConfigError(
                "histogram bounds must be non-empty and strictly "
                "increasing"
            )
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        index = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    def snapshot(self) -> HistogramSnapshot:
        """A consistent frozen view of the buckets."""
        with self._lock:
            return HistogramSnapshot(
                bounds=self.bounds,
                counts=tuple(self._counts),
                sum=self._sum,
                count=self._count,
            )

    def quantile(self, q: float) -> float:
        """Shortcut for ``snapshot().quantile(q)``."""
        return self.snapshot().quantile(q)

    @property
    def count(self) -> int:
        """Total observations so far."""
        with self._lock:
            return self._count


@dataclass(frozen=True)
class MetricSample:
    """One named metric at one instant (what a snapshot yields).

    Attributes:
        name: dotted registry name (``repro.cache.l1.hits``).
        kind: ``"counter"``, ``"gauge"`` or ``"histogram"``.
        value: the scalar level/count, or a
            :class:`HistogramSnapshot` for histograms.
        help: one-line description (rendered into the exposition).
    """

    name: str
    kind: str
    value: float | HistogramSnapshot
    help: str = ""


class MetricsRegistry:
    """A named, ordered collection of metric instruments.

    Instruments are created idempotently by name -- asking twice for
    ``counter("repro.x")`` returns the same :class:`Counter` -- and a
    name registered as one kind cannot be re-registered as another.
    ``snapshot()`` freezes every instrument into
    :class:`MetricSample` rows, in registration order, which the
    exporters (:mod:`repro.obs.export`) render.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> (kind, help, instrument); dict order = registration.
        self._metrics: dict[str, tuple[str, str, object]] = {}

    def _instrument(
        self, name: str, kind: str, help: str, factory
    ) -> object:
        if not name:
            raise ConfigError("metric name must be non-empty")
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing[0] != kind:
                    raise ConfigError(
                        f"metric {name!r} is a {existing[0]}, not a "
                        f"{kind}"
                    )
                return existing[2]
            instrument = factory()
            self._metrics[name] = (kind, help, instrument)
            return instrument

    def counter(self, name: str, help: str = "") -> Counter:
        """The named counter, created on first use.

        Raises:
            ConfigError: when ``name`` exists as a different kind.
        """
        return self._instrument(name, "counter", help, Counter)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """The named gauge, created on first use.

        Raises:
            ConfigError: when ``name`` exists as a different kind.
        """
        return self._instrument(name, "gauge", help, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS_MS,
    ) -> Histogram:
        """The named histogram, created on first use over ``bounds``.

        Raises:
            ConfigError: when ``name`` exists as a different kind.
        """
        return self._instrument(
            name, "histogram", help, lambda: Histogram(bounds)
        )

    def set_histogram(
        self, name: str, snapshot: HistogramSnapshot, help: str = ""
    ) -> None:
        """Load an existing snapshot into the named histogram slot.

        The adapter path: the serving layer already *has* an exact
        snapshot; re-observing its buckets one by one would be both
        slow and lossy for ``sum``.

        Raises:
            ConfigError: when ``name`` exists as a non-histogram.
        """
        histogram = self.histogram(name, help, bounds=snapshot.bounds)
        with histogram._lock:
            histogram._counts = list(snapshot.counts)
            histogram._sum = snapshot.sum
            histogram._count = snapshot.count

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(tuple(self._metrics))

    def snapshot(self) -> tuple[MetricSample, ...]:
        """Freeze every instrument, in registration order."""
        with self._lock:
            rows = tuple(self._metrics.items())
        samples = []
        for name, (kind, help, instrument) in rows:
            if kind == "histogram":
                value: float | HistogramSnapshot = instrument.snapshot()
            else:
                value = instrument.value
            samples.append(
                MetricSample(name=name, kind=kind, value=value, help=help)
            )
        return tuple(samples)


def _fill(
    registry: MetricsRegistry,
    prefix: str,
    counters: Mapping[str, float],
    gauges: Mapping[str, float] = {},
) -> None:
    for field_name, value in counters.items():
        registry.counter(f"{prefix}.{field_name}").inc(value)
    for field_name, value in gauges.items():
        registry.gauge(f"{prefix}.{field_name}").set(value)


def _tier_metrics(registry: MetricsRegistry, prefix: str, tier) -> None:
    _fill(
        registry,
        prefix,
        {
            "hits": tier.hits,
            "misses": tier.misses,
            "fills": tier.fills,
            "writes": tier.writes,
            "evictions": tier.evictions,
            "errors": tier.errors,
        },
        {"entries": tier.entries, "bytes": tier.bytes},
    )


def workspace_metrics(
    stats: "WorkspaceStats",
    registry: MetricsRegistry | None = None,
) -> MetricsRegistry:
    """Adapt one :class:`WorkspaceStats` snapshot into the namespace.

    Every legacy counter is carried over exactly, under its family's
    prefix:

    * ``repro.workspace.*`` -- plan cache totals and the profile
      store's hit/miss counters;
    * ``repro.cache.{l1,l2,l3,profiles_remote}.*`` -- per-tier counters
      plus the ``entries``/``bytes`` occupancy gauges;
    * ``repro.solver.*`` -- the batched Algorithm-1 and Step-2 solver
      counters (process-wide);
    * ``repro.serve.*`` -- the bound service's counters and its exact
      latency histogram (only when a service is bound).

    Args:
        stats: any snapshot -- cumulative (``workspace.stats``) or a
            windowed delta (``stats.since(earlier)``).
        registry: registry to fill; None builds a fresh one.

    Returns:
        The filled registry (snapshot/render it via
        :mod:`repro.obs.export`).
    """
    if registry is None:
        registry = MetricsRegistry()
    profiles = stats.profiles
    _fill(
        registry,
        "repro.workspace",
        {
            "plan_hits": stats.plan_hits,
            "plan_misses": stats.plan_misses,
            "profile_hits": profiles.hits,
            "profile_misses": profiles.misses,
            "profile_cluster_hits": profiles.cluster_hits,
            "profile_cluster_misses": profiles.cluster_misses,
            "profile_layer_hits": profiles.layer_hits,
            "profile_layer_misses": profiles.layer_misses,
        },
    )
    cache = stats.cache
    _tier_metrics(registry, "repro.cache.l1", cache.l1)
    _tier_metrics(registry, "repro.cache.l2", cache.l2)
    _tier_metrics(registry, "repro.cache.l3", cache.l3)
    _tier_metrics(
        registry, "repro.cache.profiles_remote", cache.profiles_remote
    )
    solver = stats.solver
    _fill(
        registry,
        "repro.solver",
        {
            "solves": solver.solves,
            "cache_hits": solver.cache_hits,
            "batch_calls": solver.batch_calls,
            "evictions": solver.evictions,
            "step2_objective_calls": solver.step2_objective_calls,
            "step2_candidates": solver.step2_candidates,
        },
        {"max_batch_size": solver.max_batch_size},
    )
    service = stats.service
    if service is not None:
        _fill(
            registry,
            "repro.serve",
            {
                "requests": service.requests,
                "completed": service.completed,
                "failed": service.failed,
                "rejected": service.rejected,
                "dedup_hits": service.dedup_hits,
                "resolved": service.resolved,
                "batches": service.batches,
                "coalesced_requests": service.coalesced_requests,
                "futures_evicted": service.futures_evicted,
            },
            {
                "max_batch": service.max_batch,
                "p50_latency_ms": service.p50_latency_ms,
                "p95_latency_ms": service.p95_latency_ms,
            },
        )
        registry.set_histogram(
            "repro.serve.latency_ms",
            service.latency,
            "submission-to-resolution latency (ms)",
        )
    return registry
