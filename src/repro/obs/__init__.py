"""Unified telemetry layer: trace spans, metrics registry, exporters.

Stdlib-only (imports nothing from the rest of the library beyond the
error hierarchy), so every other layer -- planner, cache tiers,
serving, report runner -- can emit into it without import cycles:

* :mod:`repro.obs.trace` -- :class:`Tracer`/:class:`Span` structured
  tracing with contextvar nesting, a deterministic JSON-lines file
  format, and span-tree rendering/canonicalization;
* :mod:`repro.obs.metrics` -- Counter/Gauge/Histogram instruments and
  the :func:`workspace_metrics` adapter that maps the four legacy
  stats families into one ``repro.*`` namespace;
* :mod:`repro.obs.export` -- Prometheus-style text exposition and a
  lossless JSON dump (plus their parsers, for wire-format tests).

Tracing is off by default and zero-cost when off: hot paths hold a
``Tracer | None`` and guard with one ``if tracer is not None``; layers
without a tracer handle use :func:`maybe_span`, a single contextvar
read when no span is active.
"""

from .export import (
    parse_prometheus,
    prometheus_name,
    render_json,
    render_prometheus,
    samples_from_json,
)
from .metrics import (
    DEFAULT_LATENCY_BOUNDS_MS,
    EMPTY_LATENCY,
    LATENCY_GROWTH,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricSample,
    MetricsRegistry,
    empty_snapshot,
    exponential_bounds,
    workspace_metrics,
)
from .trace import (
    DEFAULT_MAX_SPANS,
    Span,
    SpanNode,
    SpanRecord,
    Tracer,
    build_tree,
    canonical_tree,
    current_span,
    maybe_span,
    read_trace,
    render_tree,
)

__all__ = [
    "DEFAULT_LATENCY_BOUNDS_MS",
    "DEFAULT_MAX_SPANS",
    "EMPTY_LATENCY",
    "LATENCY_GROWTH",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSnapshot",
    "MetricSample",
    "MetricsRegistry",
    "Span",
    "SpanNode",
    "SpanRecord",
    "Tracer",
    "build_tree",
    "canonical_tree",
    "current_span",
    "empty_snapshot",
    "exponential_bounds",
    "maybe_span",
    "parse_prometheus",
    "prometheus_name",
    "read_trace",
    "render_json",
    "render_prometheus",
    "render_tree",
    "samples_from_json",
    "workspace_metrics",
]
