"""Structured tracing core: spans, tracers and a JSON-lines trace format.

A :class:`Span` is one timed operation (a plan lookup, a compile, a
coalescer flush); a :class:`Tracer` collects finished spans into a
thread-safe bounded buffer and, optionally, appends each one to a
JSON-lines trace file.  Nesting is ambient: starting a span installs it
as the *current* span of the calling context (a :mod:`contextvars`
variable), and every span started while it is current becomes its
child -- so the planner, solver and serving layers emit child spans
without threading a tracer handle through every call signature
(:func:`maybe_span`).

Design constraints, in order:

* **off-by-default zero cost** -- nothing in this module runs unless a
  caller holds a :class:`Tracer` (hot paths guard with a single
  ``if tracer is not None``) or an *enclosing span is already active*
  (:func:`maybe_span` is one contextvar read and a None check);
* **monotonic timing** -- span times come from
  :func:`time.perf_counter_ns`, expressed in integer microseconds
  relative to the tracer's construction instant, so arithmetic on a
  trace is exact and wall-clock jumps cannot corrupt durations;
* **deterministic, round-trippable files** -- one sorted-key JSON
  object per line (:meth:`SpanRecord.to_json_line`), read back
  losslessly by :func:`read_trace`; and
* **bounded memory** -- the span buffer drops (and counts) spans beyond
  ``max_spans`` instead of growing without bound.

The span *tree* utilities at the bottom (:func:`build_tree`,
:func:`render_tree`, :func:`canonical_tree`) are what ``repro trace``
renders and what the determinism tests compare: ``canonical_tree``
strips span ids, timestamps and timing-valued attributes (names ending
in ``_ms``/``_us``/``_s``) and orders siblings canonically, so two runs
of the same warm sweep canonicalize identically even though their
timestamps and thread interleavings differ.
"""

from __future__ import annotations

import contextvars
import io
import itertools
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from ..errors import ConfigError

#: default bound on a tracer's in-memory span buffer.
DEFAULT_MAX_SPANS = 65536

#: attribute-name suffixes treated as timing-valued (dropped by
#: :func:`canonical_tree` so canonicalized trees are time-independent).
TIMING_ATTR_SUFFIXES = ("_ms", "_us", "_s", "_ns")

#: the ambient current span of this execution context (None = tracing
#: inactive here; child spans attach to it, see :func:`maybe_span`).
_CURRENT: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, exactly as serialized to the trace file.

    Attributes:
        name: the operation (``"plan"``, ``"compile"``, ``"flush"``, ...).
        span_id: tracer-unique integer id (1-based, allocation order).
        parent_id: enclosing span's id, or None for a root span.
        start_us: start time in integer microseconds since the tracer's
            epoch (monotonic clock).
        duration_us: end minus start, integer microseconds (>= 0).
        attrs: exact span attributes (plan digest, batch size, windowed
            solver counters, ...); values are JSON scalars.
    """

    name: str
    span_id: int
    parent_id: int | None
    start_us: int
    duration_us: int
    attrs: Mapping[str, object] = field(default_factory=dict)

    def to_json_line(self) -> str:
        """This record as one deterministic JSON line (sorted keys)."""
        return json.dumps(
            {
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent_id,
                "start_us": self.start_us,
                "duration_us": self.duration_us,
                "attrs": dict(self.attrs),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json_line(cls, line: str) -> "SpanRecord":
        """Parse one trace-file line back into a record.

        Raises:
            ConfigError: for invalid JSON or a malformed span object.
        """
        try:
            data = json.loads(line)
        except ValueError as exc:
            raise ConfigError(f"invalid trace line: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigError("trace line is not a JSON object")
        try:
            parent = data["parent"]
            return cls(
                name=str(data["name"]),
                span_id=int(data["id"]),
                parent_id=int(parent) if parent is not None else None,
                start_us=int(data["start_us"]),
                duration_us=int(data["duration_us"]),
                attrs=dict(data.get("attrs", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed span object: {exc}") from exc


class Span:
    """One in-flight operation; finished (and recorded) by :meth:`end`.

    Spans are created by :meth:`Tracer.start` (or :func:`maybe_span`),
    never directly.  Between ``start`` and ``end`` the span is the
    ambient current span of the starting context, so nested ``start``
    calls parent onto it.  The name may be rewritten before ``end`` --
    the workspace names a tier probe ``l1_probe`` up front and renames
    it ``l1_hit`` once the probe answers.
    """

    __slots__ = (
        "tracer", "name", "span_id", "parent_id",
        "_start_ns", "attrs", "_token", "_ended",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        start_ns: int,
        attrs: dict | None,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self._start_ns = start_ns
        self.attrs = attrs if attrs is not None else {}
        self._token: contextvars.Token | None = None
        self._ended = False

    def set(self, **attrs: object) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def end(self) -> SpanRecord:
        """Finish the span: restore the previous current span, record it.

        Idempotent -- a second ``end`` returns a fresh record of the
        same span without re-recording it.

        Returns:
            The finished :class:`SpanRecord` (the report runner reads
            its ``duration_us`` as the artifact wall time).
        """
        end_ns = time.perf_counter_ns()
        record = SpanRecord(
            name=self.name,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start_us=(self._start_ns - self.tracer.epoch_ns) // 1000,
            duration_us=max(0, end_ns - self._start_ns) // 1000,
            attrs=self.attrs,
        )
        if not self._ended:
            self._ended = True
            if self._token is not None:
                _CURRENT.reset(self._token)
                self._token = None
            self.tracer._record(record)
        return record

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()


class Tracer:
    """Collects spans into a bounded buffer and, optionally, a file.

    Args:
        path: optional JSON-lines trace file.  Opened lazily on the
            first finished span and appended to as spans finish, so a
            crashed process still leaves its trace behind; pass a fresh
            path per run for a self-contained trace.
        max_spans: bound on the in-memory buffer; spans finished beyond
            it are still written to ``path`` (when given) but dropped
            from the buffer and counted in :attr:`dropped`.

    Thread-safe: spans may start and finish on any thread.  Spans
    started on a thread with no ambient current span become roots.

    Raises:
        ConfigError: for a non-positive ``max_spans``.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        if max_spans < 1:
            raise ConfigError(f"max_spans must be >= 1, got {max_spans}")
        self.path = Path(path).expanduser() if path is not None else None
        self.max_spans = max_spans
        self.epoch_ns = time.perf_counter_ns()
        self._lock = threading.Lock()
        self._spans: list[SpanRecord] = []
        self._dropped = 0
        self._ids = itertools.count(1)
        self._file: io.TextIOBase | None = None

    def start(
        self,
        name: str,
        attrs: dict | None = None,
        *,
        parent: Span | None = None,
    ) -> Span:
        """Begin a span and install it as the context's current span.

        Args:
            name: the operation name (may be rewritten before ``end``).
            attrs: initial attributes (the span owns the dict).
            parent: explicit parent span; None parents onto the ambient
                current span of the calling context (making a root span
                when there is none).  Passing a parent explicitly is for
                work handed to pool threads, whose contexts don't carry
                the submitting thread's current span.
        """
        if parent is None:
            parent = _CURRENT.get()
        span = Span(
            tracer=self,
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start_ns=time.perf_counter_ns(),
            attrs=attrs,
        )
        span._token = _CURRENT.set(span)
        return span

    def start_detached(
        self,
        name: str,
        attrs: dict | None = None,
        *,
        parent: Span | None = None,
    ) -> Span:
        """Begin a span *without* installing it as the current span.

        For operations whose start and end live on different tasks or
        threads (the network server starts a request span on the
        connection-reader task and ends it on the responder task):
        installing the ambient contextvar there would either leak the
        span into every later request on the same task, or raise when
        ``end`` resets a token from a different context.  A detached
        span still parents onto the ambient current span (or the
        explicit ``parent``); it just never becomes one itself.
        """
        if parent is None:
            parent = _CURRENT.get()
        return Span(
            tracer=self,
            name=name,
            span_id=next(self._ids),
            parent_id=parent.span_id if parent is not None else None,
            start_ns=time.perf_counter_ns(),
            attrs=attrs,
        )

    def event(self, name: str, attrs: dict | None = None) -> SpanRecord:
        """Record a zero-duration point span (start and end collapsed)."""
        return self.start(name, attrs).end()

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append(record)
            else:
                self._dropped += 1
            if self.path is not None:
                if self._file is None:
                    self._file = open(self.path, "a")
                self._file.write(record.to_json_line() + "\n")
                self._file.flush()

    def spans(self) -> tuple[SpanRecord, ...]:
        """Snapshot of the buffered finished spans, in finish order."""
        with self._lock:
            return tuple(self._spans)

    @property
    def dropped(self) -> int:
        """Finished spans dropped from the buffer by ``max_spans``."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Empty the buffer and zero the drop counter (file untouched)."""
        with self._lock:
            self._spans.clear()
            self._dropped = 0

    def write(self, path: str | Path) -> int:
        """Dump the buffered spans to ``path`` (one JSON line each).

        Returns:
            The number of spans written.
        """
        records = self.spans()
        text = "".join(record.to_json_line() + "\n" for record in records)
        Path(path).expanduser().write_text(text)
        return len(records)

    def close(self) -> None:
        """Close the trace file, if one is open (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


def current_span() -> Span | None:
    """The calling context's ambient current span, if any."""
    return _CURRENT.get()


def maybe_span(name: str, attrs: dict | None = None) -> Span | None:
    """Start a child of the ambient current span, or None when inactive.

    The instrumentation idiom for layers that don't hold a tracer
    (compiler, solvers): one contextvar read and a None check when
    tracing is off, a real child span when some caller up-stack opened
    one.  Callers must guard the returned value::

        span = maybe_span("solve_degrees")
        try:
            ...
        finally:
            if span is not None:
                span.set(contexts=len(ctxs)).end()
    """
    parent = _CURRENT.get()
    if parent is None:
        return None
    return parent.tracer.start(name, attrs, parent=parent)


def read_trace(path: str | Path) -> tuple[SpanRecord, ...]:
    """Read a JSON-lines trace file back into records (blank lines ok).

    Raises:
        ConfigError: for an unparsable line.
        OSError: when the file cannot be read.
    """
    records = []
    for line in Path(path).expanduser().read_text().splitlines():
        if line.strip():
            records.append(SpanRecord.from_json_line(line))
    return tuple(records)


@dataclass
class SpanNode:
    """One node of a reconstructed span tree.

    Attributes:
        record: the span itself.
        children: child nodes, in record order.
    """

    record: SpanRecord
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def total_us(self) -> int:
        """The span's own duration (children run inside it)."""
        return self.record.duration_us

    @property
    def self_us(self) -> int:
        """Duration not covered by child spans (clamped at zero)."""
        return max(
            0,
            self.record.duration_us
            - sum(child.record.duration_us for child in self.children),
        )


def build_tree(records: Iterable[SpanRecord]) -> list[SpanNode]:
    """Reconstruct the span forest from finished-span records.

    A record whose parent id is absent from the trace (dropped by the
    buffer bound, or filtered by the caller) becomes a root.

    Returns:
        Root nodes, ordered by start time (ties by span id).
    """
    nodes = {r.span_id: SpanNode(record=r) for r in records}
    roots: list[SpanNode] = []
    for node in nodes.values():
        parent = nodes.get(node.record.parent_id)
        if parent is None or parent is node:
            roots.append(node)
        else:
            parent.children.append(node)
    for node in nodes.values():
        node.children.sort(
            key=lambda n: (n.record.start_us, n.record.span_id)
        )
    roots.sort(key=lambda n: (n.record.start_us, n.record.span_id))
    return roots


def _format_attrs(attrs: Mapping[str, object]) -> str:
    if not attrs:
        return ""
    parts = [f"{key}={attrs[key]}" for key in sorted(attrs)]
    return "  [" + " ".join(parts) + "]"


def render_tree(
    records: Iterable[SpanRecord], *, include_timings: bool = True
) -> str:
    """Render a trace as an indented span tree (what ``repro trace`` prints).

    Each line shows the span name, its total and self times (total =
    the span's duration, self = total minus its children's), and its
    attributes::

        plan  total 12.431 ms  self 0.102 ms  [digest=ab12… system=FSMoE]
          compile  total 12.329 ms  self 9.100 ms  [solver_solves=33]
            solve_degrees  total 3.229 ms  self 3.229 ms  [contexts=12]

    Args:
        records: the trace (any order; the tree is rebuilt).
        include_timings: False drops the time columns -- the byte-stable
            rendering used by determinism tests.
    """
    lines: list[str] = []

    def visit(node: SpanNode, depth: int) -> None:
        indent = "  " * depth
        if include_timings:
            timing = (
                f"  total {node.total_us / 1000.0:.3f} ms"
                f"  self {node.self_us / 1000.0:.3f} ms"
            )
        else:
            timing = ""
        lines.append(
            f"{indent}{node.record.name}{timing}"
            f"{_format_attrs(node.record.attrs)}"
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in build_tree(records):
        visit(root, 0)
    return "\n".join(lines)


def _canonical_node(node: SpanNode) -> dict:
    attrs = {
        key: value
        for key, value in node.record.attrs.items()
        if not key.endswith(TIMING_ATTR_SUFFIXES)
    }
    children = sorted(
        (_canonical_node(child) for child in node.children),
        key=lambda c: json.dumps(c, sort_keys=True),
    )
    canonical: dict = {"name": node.record.name, "attrs": attrs}
    if children:
        canonical["children"] = children
    return canonical


def canonical_tree(records: Iterable[SpanRecord]) -> list[dict]:
    """The trace's span tree with every nondeterministic part stripped.

    Span ids, timestamps, durations and timing-valued attributes
    (names ending in ``_ms``/``_us``/``_s``/``_ns``) are dropped;
    siblings and roots are ordered by their own canonical JSON, so
    thread interleavings don't reorder the result.  Two runs of the
    same warm sweep therefore produce *equal* canonical trees -- the
    trace analogue of ``render_report(include_timings=False)`` byte
    stability.

    Returns:
        Canonically ordered root dicts (``name``/``attrs``/``children``),
        directly comparable with ``==`` or via ``json.dumps``.
    """
    return sorted(
        (_canonical_node(root) for root in build_tree(records)),
        key=lambda c: json.dumps(c, sort_keys=True),
    )
