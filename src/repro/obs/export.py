"""Exporters: Prometheus-style text exposition and a JSON dump.

Both render a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`
(a tuple of :class:`~repro.obs.metrics.MetricSample`) so any snapshot
-- live registry, windowed delta, or one reassembled from a remote
``metrics`` op -- exports the same way.

The exposition format is the Prometheus text format restricted to what
this library emits: dotted registry names become underscore-separated
metric names, every metric gets ``# HELP``/``# TYPE`` lines, and
histograms expand into cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``.  :func:`parse_prometheus` reads that subset
back -- it exists so tests (and the CI obs smoke) can assert the wire
format round-trips exactly, not as a general Prometheus parser.
"""

from __future__ import annotations

import json
from typing import Sequence

from ..errors import ConfigError
from .metrics import HistogramSnapshot, MetricSample


def prometheus_name(name: str) -> str:
    """Registry name -> exposition name (dots become underscores)."""
    return name.replace(".", "_").replace("-", "_")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def render_prometheus(samples: Sequence[MetricSample]) -> str:
    """Render samples as Prometheus text exposition.

    Counters/gauges become single series; histograms expand into
    cumulative ``_bucket`` series (one per bound, plus ``+Inf``),
    ``_sum`` and ``_count``.  Output order follows the snapshot, so a
    registry renders deterministically.
    """
    lines: list[str] = []
    for sample in samples:
        name = prometheus_name(sample.name)
        if sample.help:
            lines.append(f"# HELP {name} {sample.help}")
        lines.append(f"# TYPE {name} {sample.kind}")
        if isinstance(sample.value, HistogramSnapshot):
            snap = sample.value
            cumulative = 0
            for bound, count in zip(snap.bounds, snap.counts):
                cumulative += count
                lines.append(
                    f'{name}_bucket{{le="{_format_value(bound)}"}} '
                    f"{cumulative}"
                )
            cumulative += snap.counts[-1]
            lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(snap.sum)}")
            lines.append(f"{name}_count {snap.count}")
        else:
            lines.append(f"{name} {_format_value(sample.value)}")
    return "\n".join(lines) + "\n"


def render_json(samples: Sequence[MetricSample]) -> str:
    """Render samples as a deterministic JSON document.

    Histograms keep their exact bucket state (bounds/counts/sum/count)
    so the dump is lossless: :func:`samples_from_json` reads it back.
    """
    rows = []
    for sample in samples:
        if isinstance(sample.value, HistogramSnapshot):
            value: object = {
                "bounds": list(sample.value.bounds),
                "counts": list(sample.value.counts),
                "sum": sample.value.sum,
                "count": sample.value.count,
            }
        else:
            value = sample.value
        rows.append(
            {
                "name": sample.name,
                "kind": sample.kind,
                "value": value,
                "help": sample.help,
            }
        )
    return json.dumps({"metrics": rows}, indent=2, sort_keys=True) + "\n"


def samples_from_json(text: str) -> tuple[MetricSample, ...]:
    """Parse a :func:`render_json` document back into samples.

    Raises:
        ConfigError: for malformed documents.
    """
    try:
        doc = json.loads(text)
        rows = doc["metrics"]
        samples = []
        for row in rows:
            value = row["value"]
            if row["kind"] == "histogram":
                value = HistogramSnapshot(
                    bounds=tuple(value["bounds"]),
                    counts=tuple(value["counts"]),
                    sum=value["sum"],
                    count=value["count"],
                )
            samples.append(
                MetricSample(
                    name=row["name"],
                    kind=row["kind"],
                    value=value,
                    help=row.get("help", ""),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ConfigError(f"malformed metrics JSON: {exc}") from exc
    return tuple(samples)


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse the exposition subset back into ``{series: value}``.

    Bucket series keep their label (``name_bucket{le="0.5"}``); the
    returned mapping holds every sample line verbatim, which is what
    exactness tests compare against legacy stats fields.

    Raises:
        ConfigError: for lines that are neither comments nor samples.
    """
    out: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            series, value = line.rsplit(" ", 1)
            out[series] = float(value)
        except ValueError as exc:
            raise ConfigError(
                f"malformed exposition line {lineno}: {line!r}"
            ) from exc
    return out
