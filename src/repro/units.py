"""Physical units and conversion constants used across the library.

Conventions (applied everywhere, never mixed):

* time        -> milliseconds (``ms``)
* data sizes  -> bytes
* bandwidth   -> bytes per millisecond (``bytes/ms``); note that
  1 GB/s == 1e6 bytes/ms, which keeps magnitudes readable.
* compute     -> multiply-accumulate operations (MACs); one (m, n, k) GEMM
  counts ``m * n * k`` MACs.
"""

from __future__ import annotations

# --- data sizes -------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: bytes per element for the dtypes the paper trains with.
DTYPE_BYTES = {
    "float32": 4,
    "float16": 2,
    "bfloat16": 2,
}

#: default training dtype in the paper's experiments (PyTorch-1.12 fp32 runs).
DEFAULT_DTYPE = "float32"


def dtype_nbytes(dtype: str) -> int:
    """Return bytes-per-element for ``dtype``.

    Raises:
        KeyError: if the dtype is not one of float32/float16/bfloat16.
    """
    return DTYPE_BYTES[dtype]


# --- bandwidth --------------------------------------------------------------


def gbps_to_bytes_per_ms(gigabytes_per_second: float) -> float:
    """Convert GB/s (decimal gigabytes) to bytes/ms."""
    return gigabytes_per_second * GB / 1_000.0


def gbit_to_bytes_per_ms(gigabits_per_second: float) -> float:
    """Convert Gb/s (network-style gigabits) to bytes/ms."""
    return gigabits_per_second / 8.0 * GB / 1_000.0


# --- time -------------------------------------------------------------------

MS_PER_S = 1_000.0
US_PER_MS = 1_000.0


def seconds(ms: float) -> float:
    """Convert milliseconds to seconds (for human-facing reports)."""
    return ms / MS_PER_S
