"""The plan compiler: heterogeneous stacks in, serializable plans out.

:class:`PlanCompiler` is the planner's middle layer.  It generalizes the
seed ``GenericScheduler`` facade in three ways:

* **heterogeneous stacks** -- every layer of an iteration may have its
  own :class:`~repro.config.MoELayerSpec` (different hidden sizes,
  expert counts, top-k) and its own routing function, the paper's
  Table 5 "configured layers" scenario taken to its logical end;
* **cached front-end** -- all profiling goes through a
  :class:`~repro.planner.store.ProfileStore`, so compiling a second
  system on the same stack, or the same stack on a second day, re-fits
  nothing;
* **persistable back-end** -- compilation produces an
  :class:`~repro.planner.plan.IterationPlan` that serializes to JSON and
  replays bit-identically.

The compiler never looks inside a training system: it hands layer
profiles to ``system.build_iteration_spec`` exactly like the paper's
back-end consumes only fitted models and sub-module profiles (§3.2).
"""

from __future__ import annotations

from typing import Sequence

from ..config import MoELayerSpec, ParallelSpec, standard_layout
from ..core.fastsolve import solver_stats
from ..core.perf_model import PerfModelSet
from ..core.pipeline_degree import DEFAULT_MAX_DEGREE, solve_degrees
from ..core.profiler import ProfileResult
from ..errors import ConfigError
from ..models.transformer import LayerProfile
from ..moe.gates import GateKind
from ..obs.trace import maybe_span
from ..parallel.collectives import A2AAlgorithm, CollectiveCostModel
from ..parallel.topology import ClusterSpec
from ..parallel.volumes import compute_layer_volumes
from ..sim.timeline import Timeline
from .plan import IterationPlan
from .store import ProfileStore


class PlanCompiler:
    """Compile (stack, system) pairs into serializable iteration plans.

    Args:
        cluster: the target (simulated) cluster.
        parallel: layout; defaults to the paper's standard deployment.
        store: profile cache; a private one is created when omitted.
            Pass a shared store to deduplicate work across compilers.
        models: pre-fitted performance models.  When given, the online
            profiler is bypassed entirely (no cluster profiling, and
            ``fit_quality`` is unavailable).
        noise: profiling measurement noise (0 = exact oracle readings).
        seed: profiling RNG seed.
        r_max: cap on pipeline degrees considered by the systems.
    """

    def __init__(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec | None = None,
        *,
        store: ProfileStore | None = None,
        models: PerfModelSet | None = None,
        noise: float = 0.0,
        seed: int = 0,
        r_max: int = DEFAULT_MAX_DEGREE,
    ) -> None:
        if parallel is None:
            parallel = standard_layout(
                cluster.total_gpus, cluster.gpus_per_node
            )
        self.cluster = cluster
        self.parallel = parallel
        self.store = store if store is not None else ProfileStore()
        self.r_max = r_max
        self._noise = noise
        self._seed = seed
        self._models = models
        self._profile_result: ProfileResult | None = None
        self._a2a_oracle = CollectiveCostModel(cluster)
        self._a2a_costs: dict[
            tuple[float, int], dict[A2AAlgorithm, float]
        ] = {}

    # -- front-end -----------------------------------------------------------

    @property
    def profile_result(self) -> ProfileResult | None:
        """The cluster's profiling result (None with injected models).

        Cached locally after the first access so the store's hit counter
        keeps meaning "avoided re-profilings", not "property reads".
        """
        if self._models is not None:
            return None
        if self._profile_result is None:
            self._profile_result = self.store.cluster_profile(
                self.cluster, self.parallel,
                noise=self._noise, seed=self._seed,
            )
        return self._profile_result

    @property
    def models(self) -> PerfModelSet:
        """The fitted performance models (the back-end's only input)."""
        if self._models is not None:
            return self._models
        return self.profile_result.models

    @property
    def fit_quality(self) -> dict[str, float]:
        """r-squared of each fitted model.

        Raises:
            ConfigError: when pre-fitted models were injected (there was
                no fit, hence no fit quality).
        """
        result = self.profile_result
        if result is None:
            raise ConfigError(
                "fit_quality is unavailable: compiler was built from "
                "pre-fitted models, not a profiling run"
            )
        return dict(result.r_squared)

    def layer_profile(
        self,
        spec: MoELayerSpec,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
        routing_overhead: float = 1.0,
    ) -> LayerProfile:
        """Profile one layer spec on this deployment (store-cached)."""
        return self.store.layer_profile(
            spec,
            self.parallel,
            self.models,
            gate_kind=gate_kind,
            routing_overhead=routing_overhead,
        )

    def resolve_stack(
        self,
        stack,
        *,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
    ) -> tuple[LayerProfile, ...]:
        """Profile every layer of a (possibly heterogeneous) stack.

        Args:
            stack: one :class:`MoELayerSpec` (single-layer stack) or a
                sequence with one spec per generalized layer.
            gate_kind: one routing function for the whole stack, or one
                per layer.
            routing_overhead: multiplier on gate+order compute.

        Raises:
            ConfigError: for an empty stack or a per-layer ``gate_kind``
                sequence whose length disagrees with the stack.
        """
        if isinstance(stack, MoELayerSpec):
            stack = (stack,)
        specs = tuple(stack)
        if not specs:
            raise ConfigError("stack must contain at least one layer spec")
        if isinstance(gate_kind, GateKind):
            gates: tuple[GateKind, ...] = (gate_kind,) * len(specs)
        else:
            gates = tuple(gate_kind)
            if len(gates) != len(specs):
                raise ConfigError(
                    f"gate_kind sequence has {len(gates)} entries for "
                    f"{len(specs)} layers"
                )
        return tuple(
            self.layer_profile(
                spec, gate_kind=gate, routing_overhead=routing_overhead
            )
            for spec, gate in zip(specs, gates)
        )

    # -- back-end ------------------------------------------------------------

    def compile(
        self,
        stack,
        system,
        *,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        include_gar: bool = True,
    ) -> IterationPlan:
        """Compile one iteration of ``stack`` under ``system``.

        Args:
            stack: layer spec(s), see :meth:`resolve_stack`.
            system: a :class:`~repro.systems.base.TrainingSystem`.
            gate_kind: routing function(s) for the timing profiles.
            routing_overhead: multiplier on gate+order compute.
            include_gar: set False to exclude gradient synchronization.
        """
        span = maybe_span("compile")
        before = solver_stats() if span is not None else None
        profiles: tuple[LayerProfile, ...] = ()
        try:
            profiles = self.resolve_stack(
                stack, gate_kind=gate_kind, routing_overhead=routing_overhead
            )
            # Batch-solve every distinct layer context the system will ask
            # Algorithm 1 about -- one vectorized pass instead of one solve
            # per layer; the solver memo serves the per-layer lookups below.
            contexts = getattr(system, "schedule_contexts", lambda _: ())(
                profiles
            )
            if contexts:
                solve_degrees(contexts, getattr(system, "r_max", self.r_max))
            spec = system.build_iteration_spec(
                profiles, self.models, include_gar
            )
            return IterationPlan.from_spec(spec)
        finally:
            if span is not None:
                # Window the process-wide solver counters over this
                # compile (other threads' concurrent compiles bleed in;
                # exact in single-threaded compiles).
                window = solver_stats() - before
                span.set(
                    layers=len(profiles),
                    system=getattr(system, "name", type(system).__name__),
                    solver_solves=window.solves,
                    solver_cache_hits=window.cache_hits,
                    solver_batch_calls=window.batch_calls,
                ).end()

    def simulate(
        self,
        stack,
        system,
        *,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        routing_overhead: float = 1.0,
        phase: str = "both",
    ) -> Timeline:
        """Compile and execute one iteration; returns the full trace."""
        plan = self.compile(
            stack, system, gate_kind=gate_kind,
            routing_overhead=routing_overhead,
        )
        return plan.simulate(phase=phase)

    def iteration_time_ms(
        self,
        stack,
        system,
        *,
        gate_kind: GateKind | Sequence[GateKind] = GateKind.GSHARD,
        phase: str = "both",
    ) -> float:
        """Simulated makespan of one iteration of ``stack``."""
        return self.simulate(
            stack, system, gate_kind=gate_kind, phase=phase
        ).makespan_ms

    # -- AlltoAll algorithm choice -------------------------------------------

    def best_a2a_algorithm(
        self, spec: MoELayerSpec
    ) -> tuple[A2AAlgorithm, dict[A2AAlgorithm, float]]:
        """Pick the cheapest AlltoAll algorithm for this layer's messages.

        The paper pre-implements three dispatch algorithms (NCCL direct,
        Hetu's 1DH, Tutel/DeepSpeed's 2DH) precisely so the system can
        choose per deployment (§3.1).  Costs are cached per (message
        size, EP width): two layer shapes that exchange the same bytes
        share one cost table.

        Returns:
            The winning algorithm and the per-algorithm cost table (ms).
        """
        volumes = compute_layer_volumes(spec, self.parallel)
        key = (volumes.a2a_bytes, self.parallel.n_ep)
        costs = self._a2a_costs.get(key)
        if costs is None:
            costs = {
                algo: self._a2a_oracle.alltoall_ms(
                    volumes.a2a_bytes, self.parallel.n_ep, algo
                )
                for algo in A2AAlgorithm
            }
            self._a2a_costs[key] = costs
        best = min(costs, key=costs.get)
        return best, dict(costs)
