"""The planning subsystem: cached, batched, heterogeneous scheduling.

Three layers on top of the scheduling core:

* :mod:`~repro.planner.store` -- :class:`ProfileStore`, a thread-safe
  content-addressed cache over the online profiler, so repeated planning
  never re-fits performance models;
* :mod:`~repro.planner.compiler` -- :class:`PlanCompiler`, which turns a
  (possibly heterogeneous) stack of layer specs plus a training system
  into a serializable :class:`IterationPlan` (JSON in/out, bit-identical
  replay);
* :mod:`~repro.planner.batch` -- :func:`plan_many`, a concurrent sweep
  over ``clusters x stacks x systems`` grids with all profiling
  deduplicated through one shared store.

The seed-era :class:`~repro.core.scheduler.GenericScheduler` facade
remains as a thin compatibility shim over :class:`PlanCompiler`.
"""

from .store import ProfileStore, StoreStats
from .plan import PLAN_SCHEMA_VERSION, IterationPlan
from .compiler import PlanCompiler
from .batch import PlanPoint, SweepResult, plan_many

__all__ = [
    "ProfileStore",
    "StoreStats",
    "PLAN_SCHEMA_VERSION",
    "IterationPlan",
    "PlanCompiler",
    "PlanPoint",
    "SweepResult",
    "plan_many",
]
