"""Serializable iteration plans: persist a schedule, replay it anywhere.

The back-end's product is a fully-resolved description of one training
iteration -- per-layer pipeline degrees, chunk timings, stream mapping
and gradient-AllReduce placement.  :class:`IterationPlan` captures that
product as plain numbers so it can be written to JSON, shipped to
another process, and re-simulated *bit-identically* without re-running
profiling, Algorithm 1 or the gradient partitioner.

Round-trip guarantee: ``IterationPlan.from_json(plan.to_json())``
reconstructs a plan whose simulated timeline equals the original's
exactly.  JSON floats survive because Python serializes them with
``repr`` (shortest round-tripping form) and parses them back to the same
IEEE-754 value.

The JSON schema (version 1) is documented in the README.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.constraints import PipelineContext
from ..core.gradient_partition import GradientPartitionPlan
from ..core.perf_model import LinearPerfModel
from ..core.schedules import (
    GarMode,
    GarPlacement,
    IterationSpec,
    LayerPhaseSchedule,
    StreamMap,
    build_iteration_graph,
)
from ..errors import ScheduleError
from ..sim.engine import simulate
from ..sim.timeline import Timeline

#: current serialization format version.
PLAN_SCHEMA_VERSION = 1


def _model_to_dict(model: LinearPerfModel) -> dict:
    return {"alpha": model.alpha, "beta": model.beta}


def _model_from_dict(data: dict) -> LinearPerfModel:
    return LinearPerfModel(alpha=data["alpha"], beta=data["beta"])


def _ctx_to_dict(ctx: PipelineContext) -> dict:
    return {
        "a2a": _model_to_dict(ctx.a2a),
        "n_a2a": ctx.n_a2a,
        "ag": _model_to_dict(ctx.ag),
        "n_ag": ctx.n_ag,
        "rs": _model_to_dict(ctx.rs),
        "n_rs": ctx.n_rs,
        "exp": _model_to_dict(ctx.exp),
        "n_exp": ctx.n_exp,
        "t_gar": ctx.t_gar,
    }


def _ctx_from_dict(data: dict) -> PipelineContext:
    return PipelineContext(
        a2a=_model_from_dict(data["a2a"]),
        n_a2a=data["n_a2a"],
        ag=_model_from_dict(data["ag"]),
        n_ag=data["n_ag"],
        rs=_model_from_dict(data["rs"]),
        n_rs=data["n_rs"],
        exp=_model_from_dict(data["exp"]),
        n_exp=data["n_exp"],
        t_gar=data["t_gar"],
    )


def _phase_to_dict(phase: LayerPhaseSchedule) -> dict:
    return {
        "degree": phase.degree,
        "dense_ms": phase.dense_ms,
        "ctx": _ctx_to_dict(phase.ctx),
    }


def _phase_from_dict(data: dict) -> LayerPhaseSchedule:
    return LayerPhaseSchedule(
        ctx=_ctx_from_dict(data["ctx"]),
        degree=data["degree"],
        dense_ms=data["dense_ms"],
    )


@dataclass(frozen=True)
class IterationPlan:
    """A fully-resolved, serializable training-iteration schedule.

    Thin immutable wrapper around the same information as
    :class:`~repro.core.schedules.IterationSpec`, with the gradient
    placement reduced to :class:`~repro.core.schedules.GarPlacement`
    (plain numbers, no solver state).

    Attributes:
        name: system label the plan was compiled for.
        forward: per-layer forward schedules (may all differ --
            heterogeneous stacks are first-class).
        backward: per-layer backward schedules.
        grad_bytes: dense-gradient bytes produced per layer.
        ar_model: fitted Gradient-AllReduce model.
        streams: stream mapping (contention model).
        gar_mode: Gradient-AllReduce placement strategy.
        gar_chunk_bytes: chunk size for ``FIXED_CHUNKS``.
        gar: byte placement, present iff ``gar_mode`` is ``ADAPTIVE``.
    """

    name: str
    forward: tuple[LayerPhaseSchedule, ...]
    backward: tuple[LayerPhaseSchedule, ...]
    grad_bytes: tuple[float, ...]
    ar_model: LinearPerfModel
    streams: StreamMap
    gar_mode: GarMode
    gar_chunk_bytes: float
    gar: GarPlacement | None = None

    @property
    def num_layers(self) -> int:
        """Generalized layers in the planned iteration."""
        return len(self.forward)

    @property
    def degrees(self) -> tuple[tuple[int, int], ...]:
        """Per-layer (forward, backward) pipeline degrees."""
        return tuple(
            (fw.degree, bw.degree)
            for fw, bw in zip(self.forward, self.backward)
        )

    # -- spec bridge ---------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: IterationSpec) -> "IterationPlan":
        """Capture an :class:`IterationSpec` as a persistable plan."""
        gar: GarPlacement | None = None
        if spec.plan is not None:
            if isinstance(spec.plan, GradientPartitionPlan):
                gar = spec.plan.placement
            else:
                gar = spec.plan
        return cls(
            name=spec.name,
            forward=spec.forward,
            backward=spec.backward,
            grad_bytes=spec.grad_bytes,
            ar_model=spec.ar_model,
            streams=spec.streams,
            gar_mode=spec.gar_mode,
            gar_chunk_bytes=spec.gar_chunk_bytes,
            gar=gar,
        )

    def to_spec(self) -> IterationSpec:
        """Rebuild the :class:`IterationSpec` this plan describes."""
        return IterationSpec(
            name=self.name,
            forward=self.forward,
            backward=self.backward,
            grad_bytes=self.grad_bytes,
            ar_model=self.ar_model,
            streams=self.streams,
            gar_mode=self.gar_mode,
            gar_chunk_bytes=self.gar_chunk_bytes,
            plan=self.gar,
        )

    def simulate(self, phase: str = "both") -> Timeline:
        """Execute the planned iteration on the discrete-event engine."""
        return simulate(build_iteration_graph(self.to_spec(), phase=phase))

    def makespan_ms(self, phase: str = "both") -> float:
        """Simulated duration of the planned iteration (or one phase)."""
        return self.simulate(phase=phase).makespan_ms

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data representation (schema version 1)."""
        return {
            "version": PLAN_SCHEMA_VERSION,
            "name": self.name,
            "streams": {
                "compute": self.streams.compute,
                "intra": self.streams.intra,
                "inter": self.streams.inter,
            },
            "gar_mode": self.gar_mode.value,
            "gar_chunk_bytes": self.gar_chunk_bytes,
            "grad_bytes": list(self.grad_bytes),
            "ar_model": _model_to_dict(self.ar_model),
            "layers": [
                {
                    "forward": _phase_to_dict(fw),
                    "backward": _phase_to_dict(bw),
                }
                for fw, bw in zip(self.forward, self.backward)
            ],
            "gar": (
                None
                if self.gar is None
                else {
                    "moe_window_bytes": list(self.gar.moe_window_bytes),
                    "dense_window_bytes": list(self.gar.dense_window_bytes),
                    "extra_bytes": list(self.gar.extra_bytes),
                    "tail_bytes": self.gar.tail_bytes,
                    "t_gar_ms": list(self.gar.t_gar_ms),
                }
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "IterationPlan":
        """Inverse of :meth:`to_dict`.

        Raises:
            ScheduleError: for an unknown schema version.
        """
        version = data.get("version")
        if version != PLAN_SCHEMA_VERSION:
            raise ScheduleError(
                f"unsupported plan schema version {version!r} "
                f"(this build reads version {PLAN_SCHEMA_VERSION})"
            )
        gar_data = data.get("gar")
        gar = None
        if gar_data is not None:
            gar = GarPlacement(
                moe_window_bytes=tuple(gar_data["moe_window_bytes"]),
                dense_window_bytes=tuple(gar_data["dense_window_bytes"]),
                extra_bytes=tuple(gar_data["extra_bytes"]),
                tail_bytes=gar_data["tail_bytes"],
                t_gar_ms=tuple(gar_data["t_gar_ms"]),
            )
        return cls(
            name=data["name"],
            forward=tuple(
                _phase_from_dict(layer["forward"]) for layer in data["layers"]
            ),
            backward=tuple(
                _phase_from_dict(layer["backward"]) for layer in data["layers"]
            ),
            grad_bytes=tuple(data["grad_bytes"]),
            ar_model=_model_from_dict(data["ar_model"]),
            streams=StreamMap(
                compute=data["streams"]["compute"],
                intra=data["streams"]["intra"],
                inter=data["streams"]["inter"],
            ),
            gar_mode=GarMode(data["gar_mode"]),
            gar_chunk_bytes=data["gar_chunk_bytes"],
            gar=gar,
        )

    def to_json(self, *, indent: int | None = None) -> str:
        """Serialize to a JSON string (floats round-trip exactly)."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "IterationPlan":
        """Parse a plan serialized with :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
