"""Content-addressed profile cache: the planner's front-end memory.

The paper's front-end profiles a deployment once and reuses the fitted
models for every subsequent scheduling question (§3.2).  The seed
implementation re-ran :func:`~repro.core.profiler.profile_cluster` and
:func:`~repro.models.transformer.profile_layer` from scratch on every
call; :class:`ProfileStore` memoizes both behind content-addressed keys
so repeated planning -- a sweep grid, a re-planned deployment, a second
system on the same stack -- never pays for profiling twice.

Keys are the frozen spec dataclasses themselves (``ClusterSpec``,
``ParallelSpec``, ``MoELayerSpec``, ...), plus every knob that changes
the measurement (gate kind, noise, seed, ...): equal content means equal
key, no serialization involved.

The store is thread-safe and suitable for the concurrent fan-out of
:func:`~repro.planner.batch.plan_many`: each key is computed exactly
once even under races (losers block on the winner's
:class:`~concurrent.futures.Future`), so the hit/miss counters are exact
and "re-planning did zero new profiling" is directly assertable.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Callable

from ..config import MoELayerSpec, ParallelSpec
from ..core.perf_model import PerfModelSet
from ..core.profiler import ProfileResult, profile_cluster
from ..models.transformer import LayerProfile, profile_layer
from ..moe.gates import GateKind
from ..parallel.collectives import A2AAlgorithm
from ..parallel.topology import ClusterSpec


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of the store's hit/miss counters.

    Attributes:
        cluster_hits: cluster-profile requests served from cache.
        cluster_misses: cluster profiles actually measured and fitted.
        layer_hits: layer-profile requests served from cache.
        layer_misses: layer profiles actually computed.
    """

    cluster_hits: int = 0
    cluster_misses: int = 0
    layer_hits: int = 0
    layer_misses: int = 0

    @property
    def hits(self) -> int:
        """All requests served from cache."""
        return self.cluster_hits + self.layer_hits

    @property
    def misses(self) -> int:
        """All requests that had to compute."""
        return self.cluster_misses + self.layer_misses

    def __sub__(self, other: "StoreStats") -> "StoreStats":
        """Counter delta between two snapshots (``after - before``)."""
        return StoreStats(
            cluster_hits=self.cluster_hits - other.cluster_hits,
            cluster_misses=self.cluster_misses - other.cluster_misses,
            layer_hits=self.layer_hits - other.layer_hits,
            layer_misses=self.layer_misses - other.layer_misses,
        )


class ProfileStore:
    """Memoizes cluster and layer profiling behind content-addressed keys.

    One store can back many :class:`~repro.planner.compiler.PlanCompiler`
    instances (one per cluster in a sweep); sharing a store across a
    sweep is what deduplicates the work.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: dict[tuple, Future] = {}
        self._cluster_hits = 0
        self._cluster_misses = 0
        self._layer_hits = 0
        self._layer_misses = 0
        self._remote_fetch: "Callable[[tuple], object | None] | None" = None
        self._remote_publish: "Callable[[tuple, object], None] | None" = None

    def set_remote(
        self,
        fetch: "Callable[[tuple], object | None] | None",
        publish: "Callable[[tuple, object], None] | None",
    ) -> None:
        """Attach (or detach, with ``None``) a shared remote tier.

        ``fetch(full_key)`` returns a cached value or None; it is tried
        before computing, and a remote answer counts as a *hit* (a warm
        fleet fits zero new profiles, so ``misses == 0`` stays the
        definition of warm).  ``publish(full_key, value)`` is called
        after each fresh computation.  Both must be best-effort: they
        may never raise into the profiling path (the workspace's
        wrappers swallow transport errors and count them).
        """
        self._remote_fetch = fetch
        self._remote_publish = publish

    def _count_locked(self, namespace: str, *, hit: bool) -> None:
        """Bump one hit or miss counter; caller holds ``self._lock``."""
        if namespace == "cluster":
            if hit:
                self._cluster_hits += 1
            else:
                self._cluster_misses += 1
        elif hit:
            self._layer_hits += 1
        else:
            self._layer_misses += 1

    def _count(self, namespace: str, *, hit: bool) -> None:
        """Bump exactly one hit or miss counter for ``namespace``."""
        with self._lock:
            self._count_locked(namespace, hit=hit)

    @property
    def stats(self) -> StoreStats:
        """Current counter snapshot (consistent under concurrency)."""
        with self._lock:
            return StoreStats(
                cluster_hits=self._cluster_hits,
                cluster_misses=self._cluster_misses,
                layer_hits=self._layer_hits,
                layer_misses=self._layer_misses,
            )

    def __len__(self) -> int:
        """Number of cached entries (cluster + layer)."""
        with self._lock:
            return len(self._entries)

    # -- persistence hooks ---------------------------------------------------

    def entries(self) -> dict[tuple, object]:
        """Snapshot of every *settled* cache entry, keyed by its full key.

        Full keys start with the namespace (``"cluster"`` or ``"layer"``);
        in-flight and failed computations are excluded.  This is the
        export side of :meth:`preload` -- together they let a
        :class:`~repro.api.workspace.Workspace` persist the store to disk
        and warm-start a later process.
        """
        with self._lock:
            futures = dict(self._entries)
        return {
            key: future.result()
            for key, future in futures.items()
            if future.done() and future.exception() is None
        }

    def preload(self, entries: dict[tuple, object]) -> None:
        """Seed the cache with previously exported entries.

        Preloaded entries do not touch the hit/miss counters: the counters
        keep describing *this session's* requests, so "a warm run fitted
        zero new profiles" stays directly assertable as ``misses == 0``.
        Existing (possibly in-flight) entries are never overwritten.
        """
        with self._lock:
            for key, value in entries.items():
                if key in self._entries:
                    continue
                future: Future = Future()
                future.set_result(value)
                self._entries[key] = future

    def _memoize(self, namespace: str, key: tuple, compute):
        """Return the cached value for ``key``, computing it at most once.

        The winner of a race computes outside the lock while losers block
        on the shared future; a compute that raises is evicted so the next
        request retries instead of caching the exception forever.
        """
        full_key = (namespace,) + key
        with self._lock:
            future = self._entries.get(full_key)
            if future is None:
                future = Future()
                self._entries[full_key] = future
                owner = True
            else:
                owner = False
                self._count_locked(namespace, hit=True)
        if owner:
            fetch = self._remote_fetch
            value = fetch(full_key) if fetch is not None else None
            if value is not None:
                # Served by the shared tier: this session computed
                # nothing, so it is a hit -- a warm fleet keeps
                # ``misses == 0``.
                self._count(namespace, hit=True)
                future.set_result(value)
            else:
                self._count(namespace, hit=False)
                try:
                    result = compute()
                except BaseException as exc:  # noqa: BLE001 - re-raised
                    with self._lock:
                        del self._entries[full_key]
                    future.set_exception(exc)
                else:
                    future.set_result(result)
                    publish = self._remote_publish
                    if publish is not None:
                        publish(full_key, result)
        return future.result()

    # -- cluster profiles ----------------------------------------------------

    def cluster_profile(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec,
        *,
        a2a_algorithm: A2AAlgorithm = A2AAlgorithm.NCCL,
        noise: float = 0.0,
        repeats: int = 5,
        seed: int = 0,
    ) -> ProfileResult:
        """Profile ``cluster`` under ``parallel`` (cached).

        Same signature and semantics as
        :func:`~repro.core.profiler.profile_cluster`.
        """
        key = (cluster, parallel, a2a_algorithm, noise, repeats, seed)
        return self._memoize(
            "cluster",
            key,
            lambda: profile_cluster(
                cluster,
                parallel,
                a2a_algorithm=a2a_algorithm,
                noise=noise,
                repeats=repeats,
                seed=seed,
            ),
        )

    def models(
        self,
        cluster: ClusterSpec,
        parallel: ParallelSpec,
        *,
        noise: float = 0.0,
        seed: int = 0,
    ) -> PerfModelSet:
        """Fitted performance models of a deployment (cached)."""
        return self.cluster_profile(
            cluster, parallel, noise=noise, seed=seed
        ).models

    # -- layer profiles ------------------------------------------------------

    def layer_profile(
        self,
        spec: MoELayerSpec,
        parallel: ParallelSpec,
        models: PerfModelSet,
        *,
        gate_kind: GateKind = GateKind.GSHARD,
        routing_overhead: float = 1.0,
    ) -> LayerProfile:
        """Profile one layer spec on one deployment (cached).

        Same signature and semantics as
        :func:`~repro.models.transformer.profile_layer`.  Repeated calls
        return the *same object*, so downstream per-profile caches (the
        systems' ``lru_cache`` of Algorithm-1 solutions) hit as well.
        """
        key = (spec, parallel, models, gate_kind, routing_overhead)
        return self._memoize(
            "layer",
            key,
            lambda: profile_layer(
                spec,
                parallel,
                models,
                gate_kind=gate_kind,
                routing_overhead=routing_overhead,
            ),
        )
