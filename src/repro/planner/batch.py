"""Batch planning: sweep many deployments through one shared cache.

``plan_many`` is the planner's top layer.  It takes a grid -- layer
stacks x training systems x clusters -- fans the points out over a
thread pool, deduplicates all profiling through a shared
:class:`~repro.planner.store.ProfileStore`, and returns a tidy result
table.  A 12-point grid over 4 stacks, 3 systems and 1 cluster performs
exactly one cluster profile and four layer profiles; re-planning the
same grid against the same store performs zero.

Threads (not processes) are the right fan-out here: the work is
numpy/scipy-bound (which release the GIL in their kernels), every spec
object is immutable, and the store's future-based memoization makes
concurrent duplicate requests collapse onto one computation.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..config import MoELayerSpec, ParallelSpec
from ..core.perf_model import PerfModelSet
from ..errors import ConfigError
from ..moe.gates import GateKind
from ..parallel.topology import ClusterSpec
from .compiler import PlanCompiler
from .plan import IterationPlan
from .store import ProfileStore


@dataclass(frozen=True)
class PlanPoint:
    """One planned grid point: a stack under a system on a cluster.

    Attributes:
        cluster: the target cluster.
        parallel: the layout the plan was compiled for.
        stack: per-layer specs of the planned iteration.
        system_name: the training system's display name.
        gate_kind: routing function used for the timing profiles (the
            first layer's, for stacks with per-layer overrides).
        plan: the compiled, serializable iteration plan.
        makespan_ms: simulated iteration time of the plan.
        gate_kinds: per-layer routing functions, when they differ from a
            uniform ``gate_kind`` (None for homogeneous gating).
    """

    cluster: ClusterSpec
    parallel: ParallelSpec
    stack: tuple[MoELayerSpec, ...]
    system_name: str
    gate_kind: GateKind
    plan: IterationPlan
    makespan_ms: float
    gate_kinds: tuple[GateKind, ...] | None = None

    def row(self) -> dict[str, object]:
        """Flat dict view for tables / pandas post-processing."""
        first = self.stack[0]
        if self.gate_kinds is not None:
            gate = ",".join(kind.value for kind in self.gate_kinds)
        else:
            gate = self.gate_kind.value
        return {
            "cluster": self.cluster.name,
            "system": self.system_name,
            "num_layers": len(self.stack),
            "heterogeneous": len(set(self.stack)) > 1,
            "batch_size": first.batch_size,
            "seq_len": first.seq_len,
            "embed_dim": first.embed_dim,
            "num_experts": first.num_experts,
            "top_k": first.top_k,
            "gate_kind": gate,
            "makespan_ms": self.makespan_ms,
        }


@dataclass(frozen=True)
class SweepResult:
    """All planned points of one ``plan_many`` call, in grid order.

    Grid order is ``clusters`` (outer) x ``specs`` x ``systems``
    (inner), independent of which worker finished first.
    """

    points: tuple[PlanPoint, ...]
    store: ProfileStore

    def __len__(self) -> int:
        return len(self.points)

    def rows(self) -> list[dict[str, object]]:
        """Tidy table: one flat dict per planned point."""
        return [point.row() for point in self.points]

    def times_by_config(
        self,
    ) -> dict[tuple[ClusterSpec, tuple[MoELayerSpec, ...]], dict[str, float]]:
        """Group makespans as (cluster, stack) -> system -> ms.

        Keys hold the :class:`ClusterSpec` itself (not its name): two
        different clusters sharing a label stay distinct.
        """
        grouped: dict[
            tuple[ClusterSpec, tuple[MoELayerSpec, ...]], dict[str, float]
        ] = {}
        for point in self.points:
            key = (point.cluster, point.stack)
            grouped.setdefault(key, {})[point.system_name] = (
                point.makespan_ms
            )
        return grouped


def _as_stack(entry) -> tuple[MoELayerSpec, ...]:
    if isinstance(entry, MoELayerSpec):
        return (entry,)
    stack = tuple(entry)
    if not stack:
        raise ConfigError("plan_many received an empty layer stack")
    for spec in stack:
        if not isinstance(spec, MoELayerSpec):
            raise ConfigError(
                f"stack entries must be MoELayerSpec, got {type(spec).__name__}"
            )
    return stack


def plan_many(
    specs: Sequence,
    systems: Sequence,
    clusters: Sequence[ClusterSpec],
    *,
    gate_kind: GateKind = GateKind.GSHARD,
    num_layers: int = 1,
    store: ProfileStore | None = None,
    models_by_cluster: Mapping[ClusterSpec, PerfModelSet] | None = None,
    parallel_by_cluster: Mapping[ClusterSpec, ParallelSpec] | None = None,
    noise: float = 0.0,
    seed: int = 0,
    max_workers: int | None = None,
) -> SweepResult:
    """Plan and simulate the full ``clusters x specs x systems`` grid.

    Args:
        specs: grid axis of layer stacks.  Each entry is either one
            :class:`MoELayerSpec` (replicated ``num_layers`` times) or a
            sequence of specs forming an explicit -- possibly
            heterogeneous -- stack (used as given).
        systems: grid axis of :class:`~repro.systems.base.TrainingSystem`
            instances.
        clusters: grid axis of target clusters (standard layout unless
            overridden via ``parallel_by_cluster``).
        gate_kind: routing function for all timing profiles.
        num_layers: stack depth for single-spec entries.
        store: shared profile cache; created fresh when omitted.  Pass
            the same store across calls to re-plan without re-profiling.
        models_by_cluster: pre-fitted models per cluster; those clusters
            skip online profiling entirely.
        parallel_by_cluster: explicit layouts per cluster.
        noise / seed: online-profiler knobs for clusters without
            pre-fitted models.
        max_workers: thread-pool width; defaults to the CPU count
            capped at the number of grid points.

    Returns:
        A :class:`SweepResult` whose points follow grid order.

    Raises:
        ConfigError: for an empty grid axis or malformed stack entry.
    """
    if num_layers < 1:
        raise ConfigError(f"num_layers must be positive, got {num_layers}")
    stacks = [_as_stack(entry) for entry in specs]
    stacks = [
        stack * num_layers if len(stack) == 1 and num_layers > 1 else stack
        for stack in stacks
    ]
    systems = list(systems)
    clusters = list(clusters)
    if not stacks or not systems or not clusters:
        raise ConfigError(
            "plan_many needs at least one spec, one system and one cluster"
        )

    if store is None:
        store = ProfileStore()
    compilers: dict[ClusterSpec, PlanCompiler] = {}
    for cluster in clusters:
        models = None
        if models_by_cluster is not None:
            models = models_by_cluster.get(cluster)
        parallel = None
        if parallel_by_cluster is not None:
            parallel = parallel_by_cluster.get(cluster)
        compilers[cluster] = PlanCompiler(
            cluster,
            parallel,
            store=store,
            models=models,
            noise=noise,
            seed=seed,
        )

    grid = [
        (cluster, stack, system)
        for cluster in clusters
        for stack in stacks
        for system in systems
    ]

    def plan_point(point) -> PlanPoint:
        cluster, stack, system = point
        compiler = compilers[cluster]
        plan = compiler.compile(stack, system, gate_kind=gate_kind)
        return PlanPoint(
            cluster=cluster,
            parallel=compiler.parallel,
            stack=stack,
            system_name=system.name,
            gate_kind=gate_kind,
            plan=plan,
            makespan_ms=plan.makespan_ms(),
        )

    if max_workers is None:
        max_workers = min(len(grid), os.cpu_count() or 1)
    max_workers = max(1, max_workers)
    if max_workers == 1:
        points = tuple(plan_point(point) for point in grid)
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            points = tuple(pool.map(plan_point, grid))
    return SweepResult(points=points, store=store)
