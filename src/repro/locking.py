"""Advisory inter-process file locks for shared workspace roots.

A :class:`FileLock` serializes critical sections *across processes*
sharing one directory -- the missing piece once several ``repro serve``
processes (or plain CLI invocations) point at the same workspace root.
In-process concurrency is already handled by ordinary thread locks; this
module only guards the disk.

Implementation: ``flock(2)`` on a dedicated lock file (the lock file is
*not* the data file -- data files are replaced atomically, which would
drop any lock held on the old inode).  Lock files are created on demand
and intentionally never deleted: unlinking a lock file while another
process still holds or awaits its ``flock`` silently splits the lock in
two (the classic unlink race), and an empty inode per digest is cheaper
than that bug.  On platforms without ``fcntl`` the lock degrades to an
``O_EXCL`` spin lock with a staleness timeout.

Acquisition polls with :data:`DEFAULT_POLL_S` sleeps rather than
blocking in ``flock`` so a ``timeout_s`` can be honoured exactly and a
wedged peer turns into a diagnosable :class:`~repro.errors.LockTimeout`
instead of a hung process.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from .errors import LockTimeout

try:  # POSIX (the supported platform); msvcrt fallback is best-effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

#: default bound on one acquisition attempt, seconds.
DEFAULT_TIMEOUT_S = 60.0

#: sleep between non-blocking acquisition attempts, seconds.
DEFAULT_POLL_S = 0.005


class FileLock:
    """An advisory, exclusive, inter-process lock on ``path``.

    Not reentrant and not thread-local: one instance guards one critical
    section at a time (re-acquiring a held instance raises).  Distinct
    instances -- in the same process or in different processes --
    targeting the same path exclude each other.

    Args:
        path: lock-file location (created on demand, never deleted).
        timeout_s: bound on one acquisition attempt.
        poll_s: sleep between non-blocking attempts.

    Raises:
        LockTimeout: when acquisition exceeds ``timeout_s``.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        timeout_s: float = DEFAULT_TIMEOUT_S,
        poll_s: float = DEFAULT_POLL_S,
    ) -> None:
        self.path = Path(path)
        self.timeout_s = timeout_s
        self.poll_s = poll_s
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        """True while this instance holds the lock."""
        return self._fd is not None

    def acquire(self) -> None:
        """Take the lock, polling until ``timeout_s`` elapses.

        Raises:
            LockTimeout: when the deadline passes without acquisition.
            RuntimeError: when this instance already holds the lock.
        """
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} is already held")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = time.monotonic() + self.timeout_s
        if fcntl is not None:
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    self._fd = fd
                    return
                except OSError:
                    if time.monotonic() >= deadline:
                        os.close(fd)
                        raise LockTimeout(
                            f"could not acquire {self.path} within "
                            f"{self.timeout_s:g} s (held by another "
                            f"process?)"
                        ) from None
                    time.sleep(self.poll_s)
        # Degraded O_EXCL spin lock: stale files (a crashed holder) are
        # broken after the timeout window.
        while True:  # pragma: no cover - non-POSIX fallback
            try:
                fd = os.open(
                    self.path, os.O_RDWR | os.O_CREAT | os.O_EXCL, 0o644
                )
                self._fd = fd
                return
            except FileExistsError:
                try:
                    age = time.time() - self.path.stat().st_mtime
                    if age > self.timeout_s:
                        self.path.unlink(missing_ok=True)
                        continue
                except OSError:
                    continue
                if time.monotonic() >= deadline:
                    raise LockTimeout(
                        f"could not acquire {self.path} within "
                        f"{self.timeout_s:g} s"
                    ) from None
                time.sleep(self.poll_s)

    def release(self) -> None:
        """Drop the lock (idempotent)."""
        fd, self._fd = self._fd, None
        if fd is None:
            return
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover - non-POSIX fallback
            os.close(fd)
            self.path.unlink(missing_ok=True)

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()
